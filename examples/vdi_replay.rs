//! Replay a real block trace (MSR-Cambridge CSV format) through the
//! simulator — the path a user with the paper's original traces would take.
//!
//! ```text
//! cargo run --release --example vdi_replay [path/to/trace.csv]
//! ```
//!
//! Without an argument the example writes a small embedded MSR-format
//! sample to a temp file first, so it is runnable out of the box and
//! demonstrates the full parse -> replay -> report pipeline.

use reqblock::prelude::*;
use reqblock::trace::msr;
use std::path::PathBuf;

/// A miniature MSR-format trace: a few hot 4 KB writes (offset 8 MB region)
/// interleaved with one large sequential write burst and re-reads.
const EMBEDDED_SAMPLE: &str = "\
128166372003061629,vdi,0,Write,8388608,4096,100
128166372013061629,vdi,0,Write,8392704,4096,100
128166372023061629,vdi,0,Write,104857600,262144,900
128166372033061629,vdi,0,Write,105119744,262144,900
128166372043061629,vdi,0,Read,8388608,8192,80
128166372053061629,vdi,0,Write,8388608,4096,100
128166372063061629,vdi,0,Read,104857600,131072,300
128166372073061629,vdi,0,Write,8392704,4096,100
128166372083061629,vdi,0,Read,8388608,4096,60
";

fn main() {
    let path: PathBuf = match std::env::args().nth(1) {
        Some(p) => p.into(),
        None => {
            let p = std::env::temp_dir().join("reqblock_vdi_sample.csv");
            std::fs::write(&p, EMBEDDED_SAMPLE).expect("write sample trace");
            println!("no trace given; using embedded sample at {}\n", p.display());
            p
        }
    };

    let requests = match msr::parse_file(&path) {
        Ok(reqs) => reqs,
        Err(e) => {
            eprintln!("failed to parse {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let stats = reqblock::trace::stats::compute(&requests);
    println!("parsed {} requests:", stats.requests);
    println!("  write ratio      : {:.1}%", stats.write_ratio * 100.0);
    println!("  mean write size  : {:.1} KB", stats.mean_write_kb);
    println!("  distinct pages   : {}", stats.distinct_pages);
    println!(
        "  frequent (>=3)   : {:.1}% overall, {:.1}% of written pages\n",
        stats.frequent_ratio * 100.0,
        stats.frequent_write_ratio * 100.0
    );

    for policy in [PolicyKind::ReqBlock(ReqBlockConfig::paper()), PolicyKind::Lru] {
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, policy);
        let r = run_trace(&cfg, requests.iter().copied());
        println!(
            "{:<10} hit {:>6.2}%   avg response {:>8.3} ms   flash writes {}",
            r.policy,
            r.metrics.hit_ratio() * 100.0,
            r.metrics.avg_response_ms(),
            r.flash.user_programs
        );
    }
}
