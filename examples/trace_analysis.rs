//! Reproduce the paper's *motivation analysis* (Figures 2 and 3) on any of
//! the six workloads: where do cache hits come from, by request size?
//!
//! ```text
//! cargo run --release --example trace_analysis [trace] [scale]
//! ```
//!
//! Runs the workload through a 16 MB LRU buffer (the paper's motivation
//! setup) with the Figure 2/3 probes attached and prints the insert/hit
//! CDFs plus the large-request reuse split.

use reqblock::obs::Fanout;
use reqblock::prelude::*;
use reqblock::sim::probes::{LargeReqHitProbe, SizeCdfProbe};
use reqblock::sim::run_trace_recorded;
use reqblock::trace::profiles::profile_by_name;
use reqblock::trace::stats::StatsBuilder;

fn main() {
    let mut args = std::env::args().skip(1);
    let trace_name = args.next().unwrap_or_else(|| "proj_0".into());
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let profile = profile_by_name(&trace_name).unwrap_or_else(|| {
        eprintln!("unknown trace {trace_name:?}; use hm_1|lun_1|usr_0|src1_2|ts_0|proj_0");
        std::process::exit(2);
    });
    let profile = profile.scaled(scale);

    // The paper's "small request" threshold: the trace's mean request size.
    let mut b = StatsBuilder::new();
    for req in SyntheticTrace::new(profile.clone()) {
        b.add(&req);
    }
    let stats = b.finish();
    let mean_req_pages = stats.total_page_accesses as f64 / stats.requests as f64;
    let threshold = mean_req_pages.round().max(1.0) as u32;
    println!(
        "trace {} at scale {scale}: mean request size {:.1} pages -> 'large' means > {threshold} pages\n",
        profile.name, mean_req_pages
    );

    let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru);
    let mut cdf = SizeCdfProbe::new();
    let mut large = LargeReqHitProbe::new(threshold);
    {
        let mut fan = Fanout::new();
        fan.push(&mut cdf);
        fan.push(&mut large);
        run_trace_recorded(&cfg, SyntheticTrace::new(profile), &mut fan);
    }
    large.finish();

    println!("Figure 2 reproduction (16MB cache, LRU):");
    println!("{:>12} {:>14} {:>14}", "req size", "insert CDF", "hit CDF");
    for size in [1u32, 2, 4, 8, 16, 32, 64, 128] {
        println!(
            "{:>9} pp {:>13.1}% {:>13.1}%",
            size,
            cdf.insert_fraction_upto(size) * 100.0,
            cdf.hit_fraction_upto(size) * 100.0
        );
    }
    println!(
        "\n=> requests of <= {threshold} pages contribute {:.1}% of all hits while \
         inserting only {:.1}% of cached pages (the paper's Observation 1).",
        cdf.hit_fraction_upto(threshold) * 100.0,
        cdf.insert_fraction_upto(threshold) * 100.0
    );

    println!(
        "\nFigure 3 reproduction: of {} page insertions from large requests, \
         {:.1}% were re-accessed while cached (paper reports 22.0-37.2%).",
        large.episodes,
        large.hit_fraction() * 100.0
    );
}
