//! Compare every implemented cache policy on one workload.
//!
//! ```text
//! cargo run --release --example policy_comparison [trace] [scale]
//! ```
//!
//! `trace` is one of `hm_1 | lun_1 | usr_0 | src1_2 | ts_0 | proj_0`
//! (default `src1_2`), `scale` the trace scale factor (default 0.05). The
//! example runs all nine policies — the paper's four compared schemes plus
//! the cited FIFO/LFU/CFLRU/FAB/PUD-LRU — on the paper's SSD with a 32 MB cache.

use reqblock::cache::policies::{BplruConfig, CflruConfig, VbbmsConfig};
use reqblock::prelude::*;
use reqblock::trace::profiles::profile_by_name;

fn main() {
    let mut args = std::env::args().skip(1);
    let trace_name = args.next().unwrap_or_else(|| "src1_2".into());
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let profile = profile_by_name(&trace_name).unwrap_or_else(|| {
        eprintln!("unknown trace {trace_name:?}; use hm_1|lun_1|usr_0|src1_2|ts_0|proj_0");
        std::process::exit(2);
    });
    let profile = profile.scaled(scale);
    println!("trace {} at scale {scale} ({} requests), 32MB cache\n", profile.name, profile.requests);

    let policies = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Lfu,
        PolicyKind::Cflru(CflruConfig::default()),
        PolicyKind::Fab,
        PolicyKind::PudLru,
        PolicyKind::Bplru(BplruConfig::default()),
        PolicyKind::Vbbms(VbbmsConfig::default()),
        PolicyKind::ReqBlock(ReqBlockConfig::paper()),
    ];

    println!(
        "{:<10} {:>9} {:>12} {:>11} {:>12} {:>10}",
        "policy", "hit %", "resp ms", "evict pgs", "flash wr", "meta KB"
    );
    let mut rows: Vec<(String, f64)> = Vec::new();
    for policy in policies {
        let cfg = SimConfig::paper(CacheSizeMb::Mb32, policy);
        let r = run_trace(&cfg, SyntheticTrace::new(profile.clone()));
        println!(
            "{:<10} {:>8.2}% {:>12.3} {:>11.1} {:>12} {:>10.1}",
            r.policy,
            r.metrics.hit_ratio() * 100.0,
            r.metrics.avg_response_ms(),
            r.metrics.avg_pages_per_eviction(),
            r.flash.user_programs,
            r.metrics.avg_metadata_bytes() / 1024.0,
        );
        rows.push((r.policy.clone(), r.metrics.hit_ratio()));
    }

    let best = rows
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("hit ratios are finite"))
        .expect("at least one policy ran");
    println!("\nbest hit ratio: {} ({:.2}%)", best.0, best.1 * 100.0);
}
