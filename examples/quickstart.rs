//! Quickstart: simulate one workload through the Req-block write buffer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's SSD (Table 1), generates a scaled-down version of the
//! ts_0 workload (Table 2), replays it through a 16 MB Req-block cache, and
//! prints the headline metrics next to a plain-LRU run of the same trace.

use reqblock::prelude::*;

fn main() {
    // A 2 %-scale ts_0: ~36k requests, 82 % writes, 8 KB mean write size.
    let profile = reqblock::trace::profiles::ts_0().scaled(0.02);
    println!(
        "workload: {} ({} requests, {:.1}% writes, {:.1} KB mean write)\n",
        profile.name,
        profile.requests,
        profile.write_ratio * 100.0,
        profile.target_mean_write_pages * 4.0
    );

    for policy in [PolicyKind::ReqBlock(ReqBlockConfig::paper()), PolicyKind::Lru] {
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, policy);
        let result = run_trace(&cfg, SyntheticTrace::new(profile.clone()));
        let m = &result.metrics;
        println!("policy: {}", result.policy);
        println!("  page hit ratio     : {:.2}% (writes {:.2}%, reads {:.2}%)",
            m.hit_ratio() * 100.0, m.write_hit_ratio() * 100.0, m.read_hit_ratio() * 100.0);
        println!("  avg response time  : {:.3} ms", m.avg_response_ms());
        println!("  evictions          : {} ({:.1} pages each)",
            m.evictions, m.avg_pages_per_eviction());
        println!("  flash programs     : {} user + {} GC",
            result.flash.user_programs, result.flash.gc_programs);
        println!();
    }

    println!("Req-block keeps hot small-request data in its SRL list and evicts");
    println!("cold large request blocks in parallel batches — which is where both");
    println!("the extra hits and the response-time win come from (paper §4.2).");
}
