//! Property-based tests for the baseline policies and the slab list.
//!
//! Two kinds of properties:
//!
//! * **Universal invariants** every [`WriteBuffer`] must keep under
//!   arbitrary access sequences: occupancy never exceeds capacity, hit
//!   reporting agrees with `contains`, page conservation (inserted =
//!   evicted + resident), and `drain` empties the buffer exactly.
//! * **Model-based checks**: [`SlabList`] against `VecDeque`, and the LRU
//!   policy against a reference implementation.

use proptest::prelude::*;
use reqblock_cache::policies::{
    BplruCache, BplruConfig, CflruCache, CflruConfig, FabCache, FifoCache, LfuCache, LruCache,
    PudLruCache, VbbmsCache, VbbmsConfig,
};
use reqblock_cache::{Access, Arena, ArenaId, EvictionBatch, FxHashMap, SlabList, WriteBuffer};
use std::collections::{HashMap, HashSet, VecDeque};

/// One step of a generated workload: (is_write, start lpn, pages).
type Step = (bool, u64, u64);

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (any::<bool>(), 0u64..400, 1u64..24),
        1..300,
    )
}

fn build_policies(capacity: usize) -> Vec<Box<dyn WriteBuffer>> {
    vec![
        Box::new(LruCache::new(capacity)),
        Box::new(FifoCache::new(capacity)),
        Box::new(LfuCache::new(capacity)),
        Box::new(CflruCache::new(capacity, CflruConfig::default())),
        Box::new(CflruCache::new(
            capacity,
            CflruConfig { window_fraction: 0.5, cache_reads: true },
        )),
        Box::new(FabCache::new(capacity, 8)),
        Box::new(PudLruCache::new(capacity, 8)),
        Box::new(BplruCache::new(capacity, 8, BplruConfig::default())),
        Box::new(BplruCache::new(capacity, 8, BplruConfig { page_padding: true })),
        Box::new(VbbmsCache::new(capacity, VbbmsConfig::default())),
    ]
}

/// Drive one policy through the steps, checking invariants at every access.
fn drive(buf: &mut dyn WriteBuffer, steps: &[Step]) -> Result<(), TestCaseError> {
    let mut resident: HashSet<u64> = HashSet::new();
    let mut ev: Vec<EvictionBatch> = Vec::new();
    let mut now = 0u64;
    for (req_id, &(is_write, start, pages)) in steps.iter().enumerate() {
        for i in 0..pages {
            now += 1;
            let lpn = start + i;
            let a = Access { lpn, req_id: req_id as u64, req_pages: pages as u32, now };
            ev.clear();
            let was_resident = resident.contains(&lpn);
            let hit = if is_write {
                buf.write(&a, &mut ev)
            } else {
                buf.read(&a, &mut ev)
            };
            prop_assert_eq!(
                hit,
                was_resident,
                "{}: hit report disagrees with model for lpn {}",
                buf.name(),
                lpn
            );
            for batch in &ev {
                for l in &batch.lpns {
                    // BPLRU padding writes non-resident pages too; only
                    // resident ones must leave the model.
                    resident.remove(l);
                }
            }
            if is_write {
                resident.insert(lpn);
            } else if !hit && buf.contains(lpn) {
                // Read-caching policy inserted a clean page.
                resident.insert(lpn);
            }
            prop_assert!(
                buf.len_pages() <= buf.capacity_pages(),
                "{}: over capacity",
                buf.name()
            );
            prop_assert_eq!(
                buf.len_pages(),
                resident.len(),
                "{}: occupancy disagrees with model",
                buf.name()
            );
        }
    }
    // contains() agrees with the model for every page we ever touched.
    for &(_, start, pages) in steps {
        for lpn in start..start + pages {
            prop_assert_eq!(
                buf.contains(lpn),
                resident.contains(&lpn),
                "{}: contains({}) disagrees",
                buf.name(),
                lpn
            );
        }
    }
    // Drain returns exactly the residents.
    let drained = buf.drain();
    let mut pages: Vec<u64> = drained
        .iter()
        .flat_map(|b| b.lpns.iter().copied())
        .filter(|l| resident.contains(l))
        .collect();
    pages.sort_unstable();
    pages.dedup();
    prop_assert_eq!(pages.len(), resident.len(), "{}: drain mismatch", buf.name());
    prop_assert_eq!(buf.len_pages(), 0);
    Ok(())
}

/// The indexed-removal structure mirroring reqblock-core's hot path: an
/// [`Arena`] of per-block page vectors plus an `lpn -> (block, slot)` index
/// kept exact by swap-remove slot fixup. Every operation is O(1).
#[derive(Default)]
struct IndexedBlocks {
    blocks: Arena<Vec<u64>>,
    index: FxHashMap<u64, (ArenaId, u32)>,
}

impl IndexedBlocks {
    fn create_block(&mut self) -> ArenaId {
        self.blocks.insert(Vec::new())
    }

    fn add_page(&mut self, bid: ArenaId, lpn: u64) {
        let pages = &mut self.blocks[bid];
        pages.push(lpn);
        self.index.insert(lpn, (bid, (pages.len() - 1) as u32));
    }

    fn remove_page(&mut self, lpn: u64) -> bool {
        let Some((bid, pos)) = self.index.remove(&lpn) else {
            return false;
        };
        let pages = &mut self.blocks[bid];
        pages.swap_remove(pos as usize);
        // The page that filled the hole changed slot: patch its entry.
        if let Some(&moved) = pages.get(pos as usize) {
            self.index.get_mut(&moved).expect("resident page must be indexed").1 = pos;
        }
        true
    }

    fn remove_block(&mut self, bid: ArenaId) -> Vec<u64> {
        let pages = self.blocks.remove(bid);
        for lpn in &pages {
            self.index.remove(lpn);
        }
        pages
    }
}

/// Naive model: blocks in a `HashMap` under never-reused ids, page lookup
/// by linear scan over every block's page vector.
#[derive(Default)]
struct NaiveBlocks {
    blocks: HashMap<u64, Vec<u64>>,
    next_id: u64,
}

impl NaiveBlocks {
    fn create_block(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.blocks.insert(id, Vec::new());
        id
    }

    fn remove_page(&mut self, lpn: u64) -> bool {
        for pages in self.blocks.values_mut() {
            if let Some(pos) = pages.iter().position(|&l| l == lpn) {
                pages.remove(pos);
                return true;
            }
        }
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The arena-backed `(block, slot)` page index behaves exactly like a
    /// naive HashMap-of-blocks with linear-scan page lookup, and stale
    /// arena ids never resolve after their block is removed.
    #[test]
    fn indexed_page_removal_matches_linear_scan_model(
        ops in proptest::collection::vec((0u8..4, any::<u16>()), 1..400),
    ) {
        let mut fast = IndexedBlocks::default();
        let mut naive = NaiveBlocks::default();
        // Live blocks, paired across both structures.
        let mut live: Vec<(ArenaId, u64)> = Vec::new();
        let mut retired: Vec<ArenaId> = Vec::new();
        let mut next_lpn = 0u64;
        for (op, pick) in ops {
            let pick = pick as usize;
            match op {
                // Open a block.
                0 => {
                    live.push((fast.create_block(), naive.create_block()));
                }
                // Add a fresh page to a random live block.
                1 if !live.is_empty() => {
                    let (bid, nid) = live[pick % live.len()];
                    fast.add_page(bid, next_lpn);
                    naive.blocks.get_mut(&nid).unwrap().push(next_lpn);
                    next_lpn += 1;
                }
                // Remove a random page (present or not) by lpn.
                2 if next_lpn > 0 => {
                    let lpn = (pick as u64 * 31) % next_lpn;
                    prop_assert_eq!(fast.remove_page(lpn), naive.remove_page(lpn));
                }
                // Evict a random live block wholesale.
                3 if !live.is_empty() => {
                    let (bid, nid) = live.swap_remove(pick % live.len());
                    let mut got = fast.remove_block(bid);
                    let mut expect = naive.blocks.remove(&nid).unwrap();
                    got.sort_unstable();
                    expect.sort_unstable();
                    prop_assert_eq!(got, expect);
                    retired.push(bid);
                }
                _ => {}
            }
            // Same shape: block count and per-block content (as sets;
            // swap_remove vs Vec::remove order differs by design).
            prop_assert_eq!(fast.blocks.len(), naive.blocks.len());
            let mut fast_sizes: Vec<usize> =
                fast.blocks.iter().map(|(_, pages)| pages.len()).collect();
            let mut naive_sizes: Vec<usize> =
                naive.blocks.values().map(|pages| pages.len()).collect();
            fast_sizes.sort_unstable();
            naive_sizes.sort_unstable();
            prop_assert_eq!(fast_sizes, naive_sizes);
            for &(bid, nid) in &live {
                let mut got = fast.blocks[bid].clone();
                let mut expect = naive.blocks[&nid].clone();
                got.sort_unstable();
                expect.sort_unstable();
                prop_assert_eq!(got, expect);
            }
            // Index exactness: every entry points at its own page.
            prop_assert_eq!(
                fast.index.len(),
                fast.blocks.iter().map(|(_, pages)| pages.len()).sum::<usize>()
            );
            for (&lpn, &(bid, pos)) in &fast.index {
                prop_assert_eq!(fast.blocks[bid][pos as usize], lpn);
            }
            // Generational safety: retired ids stay dead even though their
            // slots may have been handed out again.
            for &stale in &retired {
                prop_assert!(fast.blocks.get(stale).is_none());
            }
        }
    }

    #[test]
    fn all_policies_maintain_invariants(steps in steps(), capacity in 8usize..96) {
        for mut buf in build_policies(capacity) {
            drive(buf.as_mut(), &steps)?;
        }
    }

    /// LRU against a reference implementation (VecDeque of lpns, MRU front).
    #[test]
    fn lru_matches_reference_model(steps in steps(), capacity in 4usize..64) {
        let mut lru = LruCache::new(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut ev = Vec::new();
        let mut now = 0;
        for (req_id, &(is_write, start, pages)) in steps.iter().enumerate() {
            for i in 0..pages {
                now += 1;
                let lpn = start + i;
                let a = Access { lpn, req_id: req_id as u64, req_pages: pages as u32, now };
                ev.clear();
                if is_write {
                    let hit = lru.write(&a, &mut ev);
                    if let Some(pos) = model.iter().position(|&l| l == lpn) {
                        prop_assert!(hit);
                        model.remove(pos);
                    } else {
                        prop_assert!(!hit);
                        if model.len() == capacity {
                            let victim = model.pop_back().unwrap();
                            prop_assert_eq!(&ev[0].lpns, &vec![victim]);
                        }
                    }
                    model.push_front(lpn);
                } else {
                    let hit = lru.read(&a, &mut ev);
                    if let Some(pos) = model.iter().position(|&l| l == lpn) {
                        prop_assert!(hit);
                        model.remove(pos);
                        model.push_front(lpn);
                    } else {
                        prop_assert!(!hit);
                    }
                }
            }
        }
        // Final content and order must match: drain is LRU-first.
        let drained = lru.drain();
        let pages: Vec<u64> = drained.iter().flat_map(|b| b.lpns.iter().copied()).collect();
        let expect: Vec<u64> = model.iter().rev().copied().collect();
        prop_assert_eq!(pages, expect);
    }

    /// SlabList against VecDeque under pushes, pops and moves.
    #[test]
    fn slab_list_matches_vecdeque(ops in proptest::collection::vec(0u8..6, 1..200)) {
        let mut list = SlabList::new();
        let mut handles = Vec::new();
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        for op in ops {
            match op {
                0 | 1 => {
                    handles.push(list.push_front(next));
                    model.push_front(next);
                    next += 1;
                }
                2 => {
                    handles.push(list.push_back(next));
                    model.push_back(next);
                    next += 1;
                }
                3 if !handles.is_empty() => {
                    let h = handles.swap_remove((next as usize * 7) % handles.len());
                    let v = list.remove(h);
                    let pos = model.iter().position(|&x| x == v).unwrap();
                    model.remove(pos);
                }
                4 if !handles.is_empty() => {
                    let h = handles[(next as usize * 13) % handles.len()];
                    let v = *list.get(h);
                    list.move_to_front(h);
                    let pos = model.iter().position(|&x| x == v).unwrap();
                    model.remove(pos);
                    model.push_front(v);
                }
                5 if !handles.is_empty() => {
                    let h = handles[(next as usize * 17) % handles.len()];
                    let v = *list.get(h);
                    list.move_to_back(h);
                    let pos = model.iter().position(|&x| x == v).unwrap();
                    model.remove(pos);
                    model.push_back(v);
                }
                _ => {}
            }
            prop_assert_eq!(list.len(), model.len());
        }
        let front_to_back: Vec<u32> = list.iter_from_front().map(|h| *list.get(h)).collect();
        let expect: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(front_to_back, expect);
        let back_to_front: Vec<u32> = list.iter_from_back().map(|h| *list.get(h)).collect();
        let expect_rev: Vec<u32> = model.iter().rev().copied().collect();
        prop_assert_eq!(back_to_front, expect_rev);
    }
}
