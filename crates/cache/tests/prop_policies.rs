//! Property-based tests for the baseline policies and the slab list.
//!
//! Two kinds of properties:
//!
//! * **Universal invariants** every [`WriteBuffer`] must keep under
//!   arbitrary access sequences: occupancy never exceeds capacity, hit
//!   reporting agrees with `contains`, page conservation (inserted =
//!   evicted + resident), and `drain` empties the buffer exactly.
//! * **Model-based checks**: [`SlabList`] against `VecDeque`, and the LRU
//!   policy against a reference implementation.

use proptest::prelude::*;
use reqblock_cache::policies::{
    BplruCache, BplruConfig, CflruCache, CflruConfig, FabCache, FifoCache, LfuCache, LruCache,
    PudLruCache, VbbmsCache, VbbmsConfig,
};
use reqblock_cache::{Access, EvictionBatch, SlabList, WriteBuffer};
use std::collections::{HashSet, VecDeque};

/// One step of a generated workload: (is_write, start lpn, pages).
type Step = (bool, u64, u64);

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (any::<bool>(), 0u64..400, 1u64..24),
        1..300,
    )
}

fn build_policies(capacity: usize) -> Vec<Box<dyn WriteBuffer>> {
    vec![
        Box::new(LruCache::new(capacity)),
        Box::new(FifoCache::new(capacity)),
        Box::new(LfuCache::new(capacity)),
        Box::new(CflruCache::new(capacity, CflruConfig::default())),
        Box::new(CflruCache::new(
            capacity,
            CflruConfig { window_fraction: 0.5, cache_reads: true },
        )),
        Box::new(FabCache::new(capacity, 8)),
        Box::new(PudLruCache::new(capacity, 8)),
        Box::new(BplruCache::new(capacity, 8, BplruConfig::default())),
        Box::new(BplruCache::new(capacity, 8, BplruConfig { page_padding: true })),
        Box::new(VbbmsCache::new(capacity, VbbmsConfig::default())),
    ]
}

/// Drive one policy through the steps, checking invariants at every access.
fn drive(buf: &mut dyn WriteBuffer, steps: &[Step]) -> Result<(), TestCaseError> {
    let mut resident: HashSet<u64> = HashSet::new();
    let mut ev: Vec<EvictionBatch> = Vec::new();
    let mut now = 0u64;
    for (req_id, &(is_write, start, pages)) in steps.iter().enumerate() {
        for i in 0..pages {
            now += 1;
            let lpn = start + i;
            let a = Access { lpn, req_id: req_id as u64, req_pages: pages as u32, now };
            ev.clear();
            let was_resident = resident.contains(&lpn);
            let hit = if is_write {
                buf.write(&a, &mut ev)
            } else {
                buf.read(&a, &mut ev)
            };
            prop_assert_eq!(
                hit,
                was_resident,
                "{}: hit report disagrees with model for lpn {}",
                buf.name(),
                lpn
            );
            for batch in &ev {
                for l in &batch.lpns {
                    // BPLRU padding writes non-resident pages too; only
                    // resident ones must leave the model.
                    resident.remove(l);
                }
            }
            if is_write {
                resident.insert(lpn);
            } else if !hit && buf.contains(lpn) {
                // Read-caching policy inserted a clean page.
                resident.insert(lpn);
            }
            prop_assert!(
                buf.len_pages() <= buf.capacity_pages(),
                "{}: over capacity",
                buf.name()
            );
            prop_assert_eq!(
                buf.len_pages(),
                resident.len(),
                "{}: occupancy disagrees with model",
                buf.name()
            );
        }
    }
    // contains() agrees with the model for every page we ever touched.
    for &(_, start, pages) in steps {
        for lpn in start..start + pages {
            prop_assert_eq!(
                buf.contains(lpn),
                resident.contains(&lpn),
                "{}: contains({}) disagrees",
                buf.name(),
                lpn
            );
        }
    }
    // Drain returns exactly the residents.
    let drained = buf.drain();
    let mut pages: Vec<u64> = drained
        .iter()
        .flat_map(|b| b.lpns.iter().copied())
        .filter(|l| resident.contains(l))
        .collect();
    pages.sort_unstable();
    pages.dedup();
    prop_assert_eq!(pages.len(), resident.len(), "{}: drain mismatch", buf.name());
    prop_assert_eq!(buf.len_pages(), 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_policies_maintain_invariants(steps in steps(), capacity in 8usize..96) {
        for mut buf in build_policies(capacity) {
            drive(buf.as_mut(), &steps)?;
        }
    }

    /// LRU against a reference implementation (VecDeque of lpns, MRU front).
    #[test]
    fn lru_matches_reference_model(steps in steps(), capacity in 4usize..64) {
        let mut lru = LruCache::new(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut ev = Vec::new();
        let mut now = 0;
        for (req_id, &(is_write, start, pages)) in steps.iter().enumerate() {
            for i in 0..pages {
                now += 1;
                let lpn = start + i;
                let a = Access { lpn, req_id: req_id as u64, req_pages: pages as u32, now };
                ev.clear();
                if is_write {
                    let hit = lru.write(&a, &mut ev);
                    if let Some(pos) = model.iter().position(|&l| l == lpn) {
                        prop_assert!(hit);
                        model.remove(pos);
                    } else {
                        prop_assert!(!hit);
                        if model.len() == capacity {
                            let victim = model.pop_back().unwrap();
                            prop_assert_eq!(&ev[0].lpns, &vec![victim]);
                        }
                    }
                    model.push_front(lpn);
                } else {
                    let hit = lru.read(&a, &mut ev);
                    if let Some(pos) = model.iter().position(|&l| l == lpn) {
                        prop_assert!(hit);
                        model.remove(pos);
                        model.push_front(lpn);
                    } else {
                        prop_assert!(!hit);
                    }
                }
            }
        }
        // Final content and order must match: drain is LRU-first.
        let drained = lru.drain();
        let pages: Vec<u64> = drained.iter().flat_map(|b| b.lpns.iter().copied()).collect();
        let expect: Vec<u64> = model.iter().rev().copied().collect();
        prop_assert_eq!(pages, expect);
    }

    /// SlabList against VecDeque under pushes, pops and moves.
    #[test]
    fn slab_list_matches_vecdeque(ops in proptest::collection::vec(0u8..6, 1..200)) {
        let mut list = SlabList::new();
        let mut handles = Vec::new();
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        for op in ops {
            match op {
                0 | 1 => {
                    handles.push(list.push_front(next));
                    model.push_front(next);
                    next += 1;
                }
                2 => {
                    handles.push(list.push_back(next));
                    model.push_back(next);
                    next += 1;
                }
                3 if !handles.is_empty() => {
                    let h = handles.swap_remove((next as usize * 7) % handles.len());
                    let v = list.remove(h);
                    let pos = model.iter().position(|&x| x == v).unwrap();
                    model.remove(pos);
                }
                4 if !handles.is_empty() => {
                    let h = handles[(next as usize * 13) % handles.len()];
                    let v = *list.get(h);
                    list.move_to_front(h);
                    let pos = model.iter().position(|&x| x == v).unwrap();
                    model.remove(pos);
                    model.push_front(v);
                }
                5 if !handles.is_empty() => {
                    let h = handles[(next as usize * 17) % handles.len()];
                    let v = *list.get(h);
                    list.move_to_back(h);
                    let pos = model.iter().position(|&x| x == v).unwrap();
                    model.remove(pos);
                    model.push_back(v);
                }
                _ => {}
            }
            prop_assert_eq!(list.len(), model.len());
        }
        let front_to_back: Vec<u32> = list.iter_from_front().map(|h| *list.get(h)).collect();
        let expect: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(front_to_back, expect);
        let back_to_front: Vec<u32> = list.iter_from_back().map(|h| *list.get(h)).collect();
        let expect_rev: Vec<u32> = model.iter().rev().copied().collect();
        prop_assert_eq!(back_to_front, expect_rev);
    }
}
