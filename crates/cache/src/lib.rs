//! DRAM write-buffer framework and baseline cache policies.
//!
//! Inside the simulated SSD, the DRAM data cache is a **write buffer**: only
//! the data of write requests is inserted (paper §3.4), reads are served
//! from the buffer when they hit and from flash otherwise. This crate
//! defines the policy interface and implements every scheme the paper
//! compares against or cites:
//!
//! | policy | granularity | eviction | paper role |
//! |--------|-------------|----------|-----------|
//! | [`policies::lru::LruCache`] | page | LRU page | baseline (§4.1) |
//! | [`policies::fifo::FifoCache`] | page | FIFO page | related work (§2.1) |
//! | [`policies::lfu::LfuCache`] | page | least-frequently-used | related work (§2.1) |
//! | [`policies::cflru::CflruCache`] | page | clean-first LRU \[9\] | related work (§2.1) |
//! | [`policies::fab::FabCache`] | flash block | largest group \[19\] | related work (§2.1) |
//! | [`policies::pudlru::PudLruCache`] | flash block | largest predicted update distance \[21\] | related work (§2.1) |
//! | [`policies::bplru::BplruCache`] | flash block | block LRU + seq demotion \[15\] | compared baseline |
//! | [`policies::vbbms::VbbmsCache`] | virtual block | split random/seq regions \[16\] | compared baseline |
//!
//! The paper's own policy (Req-block) lives in the sibling crate
//! `reqblock-core` and implements the same [`WriteBuffer`] trait.
//!
//! # Interface contract
//!
//! [`WriteBuffer::write`] and [`WriteBuffer::read`] are **page-granular**:
//! the simulator walks each request's LPNs in ascending order (Algorithm 1
//! of the paper) and calls the buffer once per page, passing the request
//! context ([`Access`]). When an insertion needs room, the policy appends
//! [`EvictionBatch`]es describing which pages leave the cache and how the
//! flush should be placed on flash ([`Placement`]); the simulator performs
//! the actual flash traffic and timing.

pub mod arena;
pub mod fxhash;
pub mod list;
pub mod overhead;
pub mod policies;
pub mod policy;

pub use arena::{Arena, ArenaId};
pub use fxhash::{fx_map_with_capacity, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use list::{Handle, SlabList};
pub use policy::{Access, CacheEvents, EvictionBatch, Placement, WriteBuffer};
