//! BPLRU — Block Padding LRU (Kim & Ahn \[15\]; compared baseline §4.1).
//!
//! BPLRU manages the write buffer at flash-block granularity (64 pages):
//!
//! * any write to a page of a block moves the whole block to the MRU end
//!   ("block-level LRU");
//! * **LRU compensation**: a block whose pages were written strictly
//!   sequentially from page 0 through the last page is moved to the LRU end
//!   — fully sequential writes have "the least possibility of being
//!   rewritten in the near future";
//! * the LRU block is evicted as a unit and flushed onto a **single** flash
//!   block ([`crate::Placement::SingleBlock`]), which is why BPLRU cannot
//!   exploit channel parallelism (paper §4.2.2);
//! * **page padding** (optional here, see DESIGN.md §4): read the block's
//!   missing pages from flash and program the full block, turning the flush
//!   into a switch merge. Figures 10/11 are only consistent with padding
//!   disabled, so [`BplruConfig::page_padding`] defaults to `false` and the
//!   padded variant is measured as an ablation.
//!
//! Reads do not refresh block recency (BPLRU considers the buffer a write
//! buffer; read hits are still served from DRAM and counted by the
//! simulator).

use crate::list::{Handle, SlabList};
use crate::overhead::BLOCK_NODE_BYTES;
use crate::policy::{Access, EvictionBatch, WriteBuffer};
use reqblock_trace::Lpn;
use crate::fxhash::{fx_map_with_capacity, FxHashMap};

/// BPLRU tuning knobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BplruConfig {
    /// Pad evicted blocks to full size with flash reads (original BPLRU's
    /// switch-merge optimization). Default `false`; see module docs.
    pub page_padding: bool,
}

/// Sentinel for "sequential pattern broken".
const SEQ_BROKEN: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct BlockNode {
    /// Logical flash block number (lpn / pages_per_block).
    block: u64,
    /// Bitmap of cached pages.
    pages: u64,
    /// Next page index expected to keep the write pattern sequential;
    /// `SEQ_BROKEN` once violated.
    seq_next: u32,
}

impl BlockNode {
    fn count(&self) -> u32 {
        self.pages.count_ones()
    }
}

/// BPLRU write buffer.
pub struct BplruCache {
    capacity: usize,
    pages_per_block: u64,
    cfg: BplruConfig,
    list: SlabList<BlockNode>,
    map: FxHashMap<u64, Handle>,
    len_pages: usize,
}

impl BplruCache {
    /// BPLRU buffer of `capacity_pages` pages over `pages_per_block`-page
    /// blocks.
    pub fn new(capacity_pages: usize, pages_per_block: usize, cfg: BplruConfig) -> Self {
        assert!(capacity_pages > 0, "cache capacity must be positive");
        assert!((1..=64).contains(&pages_per_block), "pages_per_block must be 1..=64");
        Self {
            capacity: capacity_pages,
            pages_per_block: pages_per_block as u64,
            cfg,
            list: SlabList::new(),
            // At most one node per resident block; x2 keeps the load factor
            // below the resize threshold for the whole run.
            map: fx_map_with_capacity(capacity_pages.div_ceil(pages_per_block) * 2),
            len_pages: 0,
        }
    }

    fn split(&self, lpn: Lpn) -> (u64, u32) {
        (lpn / self.pages_per_block, (lpn % self.pages_per_block) as u32)
    }

    fn evict_lru_block(&mut self, evictions: &mut Vec<EvictionBatch>) {
        let h = self.list.back().expect("evicting from empty cache");
        let node = self.list.remove(h);
        self.map.remove(&node.block);
        let mut lpns = Vec::with_capacity(node.count() as usize);
        let mut missing = Vec::new();
        for p in 0..self.pages_per_block {
            let lpn = node.block * self.pages_per_block + p;
            if node.pages & (1 << p) != 0 {
                lpns.push(lpn);
            } else if self.cfg.page_padding {
                missing.push(lpn);
            }
        }
        self.len_pages -= lpns.len();
        let mut batch = if self.cfg.page_padding {
            // Padded flush writes the whole block; the missing pages must be
            // read from flash first.
            let mut all = lpns;
            all.extend_from_slice(&missing);
            all.sort_unstable();
            EvictionBatch::single_block(all)
        } else {
            EvictionBatch::single_block(lpns)
        };
        batch.pad_reads = missing;
        evictions.push(batch);
    }
}

impl WriteBuffer for BplruCache {
    fn name(&self) -> &str {
        "BPLRU"
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn len_pages(&self) -> usize {
        self.len_pages
    }

    fn contains(&self, lpn: Lpn) -> bool {
        let (block, page) = self.split(lpn);
        self.map
            .get(&block)
            .is_some_and(|&h| self.list.get(h).pages & (1 << page) != 0)
    }

    fn write(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool {
        let (block, page) = self.split(a.lpn);
        let hit = self.contains(a.lpn);
        if !hit {
            while self.len_pages >= self.capacity {
                self.evict_lru_block(evictions);
            }
        }
        let h = match self.map.get(&block) {
            Some(&h) => h,
            None => {
                let h = self
                    .list
                    .push_front(BlockNode { block, pages: 0, seq_next: 0 });
                self.map.insert(block, h);
                h
            }
        };
        {
            let node = self.list.get_mut(h);
            if !hit {
                node.pages |= 1 << page;
            }
            // Sequential-pattern tracking: pages must arrive as 0,1,2,...
            if node.seq_next != SEQ_BROKEN {
                if page == node.seq_next {
                    node.seq_next += 1;
                } else {
                    node.seq_next = SEQ_BROKEN;
                }
            }
        }
        if !hit {
            self.len_pages += 1;
        }
        // Recency: MRU on any write...
        self.list.move_to_front(h);
        // ...unless the block just completed a fully sequential fill, in
        // which case it is demoted for preferential eviction.
        let node = self.list.get(h);
        if node.seq_next as u64 == self.pages_per_block {
            self.list.move_to_back(h);
        }
        hit
    }

    fn read(&mut self, a: &Access, _evictions: &mut Vec<EvictionBatch>) -> bool {
        self.contains(a.lpn)
    }

    fn node_count(&self) -> usize {
        self.list.len()
    }

    fn metadata_bytes(&self) -> usize {
        self.node_count() * BLOCK_NODE_BYTES
    }

    fn drain(&mut self) -> Vec<EvictionBatch> {
        let mut out = Vec::new();
        while !self.list.is_empty() {
            self.evict_lru_block(&mut out);
        }
        debug_assert_eq!(self.len_pages, 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::*;

    fn bplru(cap: usize) -> BplruCache {
        BplruCache::new(cap, 8, BplruConfig::default())
    }

    #[test]
    fn evicts_whole_lru_block_to_single_flash_block() {
        let mut c = bplru(4);
        write_seq(&mut c, &[0, 1, 16, 17]); // blocks 0 and 2
        let mut ev = Vec::new();
        c.write(&Access { lpn: 32, req_id: 9, req_pages: 1, now: 9 }, &mut ev);
        assert_eq!(ev.len(), 1);
        assert_eq!(evicted_pages(&ev), vec![0, 1]);
        assert_eq!(ev[0].placement, crate::Placement::SingleBlock);
        assert!(ev[0].pad_reads.is_empty(), "padding disabled by default");
        check_invariants(&c);
    }

    #[test]
    fn any_page_write_promotes_block() {
        let mut c = bplru(4);
        write_seq(&mut c, &[0, 16]); // block 0 older
        let mut ev = Vec::new();
        // Touch block 0 via a different page.
        c.write(&Access { lpn: 1, req_id: 9, req_pages: 1, now: 3 }, &mut ev);
        c.write(&Access { lpn: 32, req_id: 10, req_pages: 1, now: 4 }, &mut ev);
        c.write(&Access { lpn: 33, req_id: 10, req_pages: 1, now: 5 }, &mut ev);
        // Now over capacity: block 2 (page 16) is LRU.
        assert_eq!(evicted_pages(&ev), vec![16]);
    }

    #[test]
    fn fully_sequential_block_demoted_to_lru_end() {
        let mut c = bplru(16);
        // Fill block 1 sequentially (pages 8..16).
        let mut ev = Vec::new();
        for (i, lpn) in (8..16).enumerate() {
            c.write(&Access { lpn, req_id: 1, req_pages: 8, now: i as u64 }, &mut ev);
        }
        // Add a (non-sequential) page of block 0 afterwards.
        c.write(&Access { lpn: 1, req_id: 2, req_pages: 1, now: 20 }, &mut ev);
        // Force eviction: the sequential block must go first even though it
        // was written more recently than nothing else — and before block 0.
        for (i, lpn) in (24..32).enumerate() {
            c.write(&Access { lpn, req_id: 3, req_pages: 8, now: 30 + i as u64 }, &mut ev);
        }
        assert!(!ev.is_empty());
        assert_eq!(evicted_pages(&ev)[..8], [8, 9, 10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn non_sequential_fill_keeps_plain_lru_order() {
        let mut c = bplru(16);
        let mut ev = Vec::new();
        // Fill block 1 in reverse: never recognized as sequential, so no
        // demotion happens and plain LRU order decides.
        for (i, lpn) in (8..16).rev().enumerate() {
            c.write(&Access { lpn, req_id: 1, req_pages: 8, now: i as u64 }, &mut ev);
        }
        c.write(&Access { lpn: 0, req_id: 2, req_pages: 1, now: 20 }, &mut ev);
        for (i, lpn) in (24..32).enumerate() {
            c.write(&Access { lpn, req_id: 3, req_pages: 8, now: 30 + i as u64 }, &mut ev);
        }
        // Victim is block 1 — oldest by LRU, not demoted (contrast with the
        // sequential-fill test where the *newest* block is evicted).
        assert_eq!(evicted_pages(&ev)[..8], [8, 9, 10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn padding_emits_pad_reads_and_full_block() {
        let mut c = BplruCache::new(4, 8, BplruConfig { page_padding: true });
        write_seq(&mut c, &[0, 3]); // block 0, pages 0 and 3
        write_seq(&mut c, &[16, 17]);
        let mut ev = Vec::new();
        c.write(&Access { lpn: 32, req_id: 9, req_pages: 1, now: 9 }, &mut ev);
        assert_eq!(ev.len(), 1);
        let b = &ev[0];
        assert_eq!(b.lpns.len(), 8, "padded flush writes the whole block");
        assert_eq!(b.pad_reads, vec![1, 2, 4, 5, 6, 7]);
    }

    #[test]
    fn read_hit_does_not_refresh() {
        let mut c = bplru(4);
        write_seq(&mut c, &[0, 16]);
        let mut ev = Vec::new();
        assert!(c.read(&Access { lpn: 0, req_id: 9, req_pages: 1, now: 5 }, &mut ev));
        c.write(&Access { lpn: 32, req_id: 10, req_pages: 1, now: 6 }, &mut ev);
        c.write(&Access { lpn: 33, req_id: 10, req_pages: 1, now: 7 }, &mut ev);
        c.write(&Access { lpn: 34, req_id: 10, req_pages: 1, now: 8 }, &mut ev);
        // Block 0 still LRU despite the read hit.
        assert_eq!(evicted_pages(&ev), vec![0]);
    }

    #[test]
    fn write_hit_updates_in_place() {
        let mut c = bplru(4);
        write_seq(&mut c, &[5]);
        let mut ev = Vec::new();
        assert!(c.write(&Access { lpn: 5, req_id: 9, req_pages: 1, now: 2 }, &mut ev));
        assert_eq!(c.len_pages(), 1);
        assert!(ev.is_empty());
    }

    #[test]
    fn drain_flushes_block_batches() {
        let mut c = bplru(8);
        write_seq(&mut c, &[0, 1, 16]);
        let d = c.drain();
        assert_eq!(d.len(), 2);
        assert_eq!(c.len_pages(), 0);
        let total: usize = d.iter().map(|b| b.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn metadata_counts_blocks() {
        let mut c = bplru(8);
        write_seq(&mut c, &[0, 1, 2, 16]);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.metadata_bytes(), 48);
    }
}
