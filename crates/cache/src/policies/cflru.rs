//! CFLRU — Clean-First LRU (Park et al. \[9\]; related work §2.1).
//!
//! CFLRU divides the LRU list into a *working region* (MRU side) and a
//! *clean-first region* (LRU side, `window_fraction` of capacity). On
//! eviction the least-recently-used **clean** page inside the clean-first
//! region is preferred, because dropping clean data costs no flash program;
//! only when the window holds no clean page is the LRU page (dirty) flushed.
//!
//! In the paper's write-buffer setting all cached pages are dirty and CFLRU
//! degenerates to LRU; the distinction becomes meaningful with
//! [`CflruConfig::cache_reads`], which inserts read-miss data as clean pages
//! (how the original paper deployed it). Both modes are exercised by the
//! ablation benches.

use crate::list::{Handle, SlabList};
use crate::overhead::PAGE_NODE_BYTES;
use crate::policy::{Access, EvictionBatch, WriteBuffer};
use reqblock_trace::Lpn;
use crate::fxhash::{fx_map_with_capacity, FxHashMap};

/// CFLRU tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CflruConfig {
    /// Fraction of capacity forming the clean-first (LRU-side) window.
    /// The original paper tunes this per workload; 0.25 is a common choice.
    pub window_fraction: f64,
    /// Insert read-miss data as clean pages (original CFLRU deployment).
    /// `false` keeps pure write-buffer semantics.
    pub cache_reads: bool,
}

impl Default for CflruConfig {
    fn default() -> Self {
        Self { window_fraction: 0.25, cache_reads: false }
    }
}

#[derive(Debug, Clone, Copy)]
struct PageMeta {
    lpn: Lpn,
    dirty: bool,
}

/// CFLRU write buffer.
pub struct CflruCache {
    capacity: usize,
    window: usize,
    cache_reads: bool,
    list: SlabList<PageMeta>,
    map: FxHashMap<Lpn, Handle>,
}

impl CflruCache {
    /// CFLRU buffer holding up to `capacity_pages` pages.
    pub fn new(capacity_pages: usize, cfg: CflruConfig) -> Self {
        assert!(capacity_pages > 0, "cache capacity must be positive");
        assert!(
            (0.0..=1.0).contains(&cfg.window_fraction),
            "window_fraction out of range"
        );
        let window = ((capacity_pages as f64 * cfg.window_fraction) as usize).max(1);
        Self {
            capacity: capacity_pages,
            window,
            cache_reads: cfg.cache_reads,
            list: SlabList::with_capacity(capacity_pages),
            map: fx_map_with_capacity(capacity_pages * 2),
        }
    }

    /// Size of the clean-first window in pages.
    pub fn window_pages(&self) -> usize {
        self.window
    }

    /// Pick the victim per CFLRU: first clean page within `window` entries
    /// from the LRU end, else the LRU page itself.
    fn evict_one(&mut self, evictions: &mut Vec<EvictionBatch>) {
        let mut victim = None;
        for (scanned, h) in self.list.iter_from_back().enumerate() {
            if scanned >= self.window {
                break;
            }
            if !self.list.get(h).dirty {
                victim = Some(h);
                break;
            }
        }
        let h = victim.unwrap_or_else(|| self.list.back().expect("evicting from empty cache"));
        let meta = self.list.remove(h);
        self.map.remove(&meta.lpn);
        let mut batch = EvictionBatch::striped(vec![meta.lpn]);
        batch.dirty = meta.dirty;
        evictions.push(batch);
    }

    fn insert(&mut self, lpn: Lpn, dirty: bool, evictions: &mut Vec<EvictionBatch>) {
        while self.list.len() >= self.capacity {
            self.evict_one(evictions);
        }
        let h = self.list.push_front(PageMeta { lpn, dirty });
        self.map.insert(lpn, h);
    }
}

impl WriteBuffer for CflruCache {
    fn name(&self) -> &str {
        "CFLRU"
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn len_pages(&self) -> usize {
        self.list.len()
    }

    fn contains(&self, lpn: Lpn) -> bool {
        self.map.contains_key(&lpn)
    }

    fn write(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool {
        if let Some(&h) = self.map.get(&a.lpn) {
            self.list.get_mut(h).dirty = true;
            self.list.move_to_front(h);
            return true;
        }
        self.insert(a.lpn, true, evictions);
        false
    }

    fn read(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool {
        if let Some(&h) = self.map.get(&a.lpn) {
            self.list.move_to_front(h);
            return true;
        }
        if self.cache_reads {
            self.insert(a.lpn, false, evictions);
        }
        false
    }

    fn node_count(&self) -> usize {
        self.list.len()
    }

    fn metadata_bytes(&self) -> usize {
        self.node_count() * PAGE_NODE_BYTES
    }

    fn drain(&mut self) -> Vec<EvictionBatch> {
        let mut dirty = Vec::new();
        let mut clean = Vec::new();
        for h in self.list.iter_from_back() {
            let m = self.list.get(h);
            if m.dirty {
                dirty.push(m.lpn);
            } else {
                clean.push(m.lpn);
            }
        }
        self.list = SlabList::new();
        self.map.clear();
        let mut out = Vec::new();
        if !dirty.is_empty() {
            out.push(EvictionBatch::striped(dirty));
        }
        if !clean.is_empty() {
            let mut b = EvictionBatch::striped(clean);
            b.dirty = false;
            out.push(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::*;

    fn with_reads(cap: usize) -> CflruCache {
        CflruCache::new(cap, CflruConfig { window_fraction: 0.5, cache_reads: true })
    }

    #[test]
    fn degenerates_to_lru_for_write_only() {
        let mut c = CflruCache::new(3, CflruConfig::default());
        write_seq(&mut c, &[1, 2, 3, 4]);
        // All dirty: LRU page 1 evicted, flagged dirty.
        let mut ev = Vec::new();
        c.write(&Access { lpn: 5, req_id: 9, req_pages: 1, now: 9 }, &mut ev);
        assert_eq!(evicted_pages(&ev), vec![2]);
        assert!(ev[0].dirty);
        check_invariants(&c);
    }

    #[test]
    fn clean_page_preferred_within_window() {
        let mut c = with_reads(4); // window = 2
        write_seq(&mut c, &[1, 2, 3]); // dirty: 1,2,3 (LRU order 1,2,3)
        let mut ev = Vec::new();
        // Read miss inserts clean page 10 at MRU.
        assert!(!c.read(&Access { lpn: 10, req_id: 9, req_pages: 1, now: 4 }, &mut ev));
        assert_eq!(c.len_pages(), 4);
        // Touch 10's recency by reading 1..3? No — evict now: LRU order is
        // [1,2,3,10]; window of 2 sees {1,2}, both dirty -> evict 1 (dirty).
        c.write(&Access { lpn: 11, req_id: 10, req_pages: 1, now: 5 }, &mut ev);
        assert_eq!(evicted_pages(&ev), vec![1]);
        assert!(ev[0].dirty);

        // Now demote 10 to the LRU side by touching the others.
        ev.clear();
        for (i, lpn) in [2u64, 3, 11].iter().enumerate() {
            c.read(&Access { lpn: *lpn, req_id: 11, req_pages: 1, now: 6 + i as u64 }, &mut ev);
        }
        // LRU order now [10, 2, 3, 11]; clean 10 inside window -> dropped
        // clean on the next insertion.
        c.write(&Access { lpn: 12, req_id: 12, req_pages: 1, now: 9 }, &mut ev);
        assert_eq!(evicted_pages(&ev), vec![10]);
        assert!(!ev[0].dirty, "clean page must not be flushed");
    }

    #[test]
    fn rewritten_clean_page_becomes_dirty() {
        let mut c = with_reads(2);
        let mut ev = Vec::new();
        c.read(&Access { lpn: 1, req_id: 1, req_pages: 1, now: 0 }, &mut ev); // clean insert
        assert!(c.write(&Access { lpn: 1, req_id: 2, req_pages: 1, now: 1 }, &mut ev));
        let d = c.drain();
        assert_eq!(d.len(), 1);
        assert!(d[0].dirty);
    }

    #[test]
    fn read_miss_without_cache_reads_does_not_insert() {
        let mut c = CflruCache::new(2, CflruConfig::default());
        let mut ev = Vec::new();
        assert!(!c.read(&Access { lpn: 1, req_id: 1, req_pages: 1, now: 0 }, &mut ev));
        assert_eq!(c.len_pages(), 0);
    }

    #[test]
    fn drain_separates_dirty_and_clean() {
        let mut c = with_reads(4);
        let mut ev = Vec::new();
        c.write(&Access { lpn: 1, req_id: 1, req_pages: 1, now: 0 }, &mut ev);
        c.read(&Access { lpn: 2, req_id: 2, req_pages: 1, now: 1 }, &mut ev);
        let d = c.drain();
        assert_eq!(d.len(), 2);
        let dirty_batch = d.iter().find(|b| b.dirty).unwrap();
        let clean_batch = d.iter().find(|b| !b.dirty).unwrap();
        assert_eq!(dirty_batch.lpns, vec![1]);
        assert_eq!(clean_batch.lpns, vec![2]);
    }

    #[test]
    fn window_is_at_least_one() {
        let c = CflruCache::new(2, CflruConfig { window_fraction: 0.0, cache_reads: false });
        assert_eq!(c.window_pages(), 1);
    }
}
