//! PUD-LRU — Predicted-Update-Distance LRU (Hu et al. \[21\]; related work
//! §2.1: "SSD block-level cache management approaches including FAB, BPLRU,
//! and PUD-LRU have been proposed to better exploit spatial locality").
//!
//! PUD-LRU manages the write buffer at flash-block granularity and combines
//! *frequency* and *recency* into a Predicted Update Distance: blocks that
//! were updated often and recently are predicted to be updated again soon
//! and are kept; the victim is the block with the **largest** PUD —
//! approximated here, per the original's F/R formulation, as
//!
//! ```text
//! PUD(block) = (now - last_update) / update_count
//! ```
//!
//! i.e. the expected logical time until the next update. The whole victim
//! block is flushed to a single flash block (the scheme's goal is
//! erase-efficiency: full-block flushes avoid partial merges).
//!
//! Comparison is done in exact integer arithmetic like Req-block's Eq. 1,
//! and the victim search uses a lazy max-heap keyed on the PUD snapshot,
//! re-validated on pop (update counts only grow, so stale entries are
//! detected by comparing the stored snapshot against the live value).

use crate::overhead::BLOCK_NODE_BYTES;
use crate::policy::{Access, EvictionBatch, WriteBuffer};
use reqblock_trace::Lpn;
use crate::fxhash::{fx_map_with_capacity, FxHashMap};

#[derive(Debug, Clone)]
struct BlockState {
    /// Bitmap of cached pages within the flash block.
    pages: u64,
    /// Updates (page writes, including overwrites) since the block entered
    /// the buffer.
    update_count: u64,
    /// Logical time of the last update.
    last_update: u64,
}

/// PUD-LRU write buffer.
pub struct PudLruCache {
    capacity: usize,
    pages_per_block: u64,
    blocks: FxHashMap<u64, BlockState>,
    len_pages: usize,
    /// Logical clock of the most recent access (eviction-time `now`).
    now: u64,
}

impl PudLruCache {
    /// PUD-LRU buffer of `capacity_pages` pages over `pages_per_block`-page
    /// blocks.
    pub fn new(capacity_pages: usize, pages_per_block: usize) -> Self {
        assert!(capacity_pages > 0, "cache capacity must be positive");
        assert!((1..=64).contains(&pages_per_block), "pages_per_block must be 1..=64");
        Self {
            capacity: capacity_pages,
            pages_per_block: pages_per_block as u64,
            // At most one entry per resident block; x2 keeps the load
            // factor below the resize threshold for the whole run.
            blocks: fx_map_with_capacity(capacity_pages.div_ceil(pages_per_block) * 2),
            len_pages: 0,
            now: 0,
        }
    }

    fn split(&self, lpn: Lpn) -> (u64, u32) {
        (lpn / self.pages_per_block, (lpn % self.pages_per_block) as u32)
    }

    /// Is PUD(a) strictly greater than PUD(b)? Exact integer comparison of
    /// `(now-La)/Ua > (now-Lb)/Ub` via cross multiplication.
    fn pud_greater(now: u64, a: &BlockState, b: &BlockState) -> bool {
        let age_a = now.saturating_sub(a.last_update) as u128;
        let age_b = now.saturating_sub(b.last_update) as u128;
        age_a * b.update_count.max(1) as u128 > age_b * a.update_count.max(1) as u128
    }

    /// Victim = block with the largest predicted update distance. O(blocks)
    /// scan; block counts are bounded by capacity / 1, and in practice by
    /// capacity / mean-pages-per-block, which keeps this acceptable for the
    /// comparison experiments this policy participates in.
    fn evict_one(&mut self, evictions: &mut Vec<EvictionBatch>) {
        let victim = self
            .blocks
            .iter()
            .reduce(|best, cur| {
                if Self::pud_greater(self.now, cur.1, best.1) {
                    cur
                } else {
                    best
                }
            })
            .map(|(&blk, _)| blk)
            .expect("evicting from empty cache");
        let state = self.blocks.remove(&victim).expect("victim exists");
        let mut lpns = Vec::with_capacity(state.pages.count_ones() as usize);
        for p in 0..self.pages_per_block {
            if state.pages & (1 << p) != 0 {
                lpns.push(victim * self.pages_per_block + p);
            }
        }
        self.len_pages -= lpns.len();
        evictions.push(EvictionBatch::single_block(lpns));
    }
}

impl WriteBuffer for PudLruCache {
    fn name(&self) -> &str {
        "PUD-LRU"
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn len_pages(&self) -> usize {
        self.len_pages
    }

    fn contains(&self, lpn: Lpn) -> bool {
        let (blk, p) = self.split(lpn);
        self.blocks.get(&blk).is_some_and(|b| b.pages & (1 << p) != 0)
    }

    fn write(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool {
        self.now = a.now;
        let (blk, p) = self.split(a.lpn);
        let hit = self.contains(a.lpn);
        if !hit {
            while self.len_pages >= self.capacity {
                self.evict_one(evictions);
            }
        }
        let state = self.blocks.entry(blk).or_insert(BlockState {
            pages: 0,
            update_count: 0,
            last_update: a.now,
        });
        state.update_count += 1;
        state.last_update = a.now;
        if !hit {
            state.pages |= 1 << p;
            self.len_pages += 1;
        }
        hit
    }

    fn read(&mut self, a: &Access, _evictions: &mut Vec<EvictionBatch>) -> bool {
        // Reads are served from the buffer but do not predict updates.
        self.contains(a.lpn)
    }

    fn node_count(&self) -> usize {
        self.blocks.len()
    }

    fn metadata_bytes(&self) -> usize {
        self.node_count() * BLOCK_NODE_BYTES
    }

    fn drain(&mut self) -> Vec<EvictionBatch> {
        let mut out = Vec::new();
        while !self.blocks.is_empty() {
            self.evict_one(&mut out);
        }
        debug_assert_eq!(self.len_pages, 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::*;

    fn pud(cap: usize) -> PudLruCache {
        PudLruCache::new(cap, 8)
    }

    fn write_at(c: &mut PudLruCache, lpn: Lpn, now: u64, ev: &mut Vec<EvictionBatch>) -> bool {
        c.write(&Access { lpn, req_id: now, req_pages: 1, now }, ev)
    }

    #[test]
    fn evicts_block_with_largest_update_distance() {
        let mut c = pud(4);
        let mut ev = Vec::new();
        // Block 0: updated 3 times, recently. Block 1: once, long ago.
        write_at(&mut c, 0, 1, &mut ev);
        write_at(&mut c, 8, 2, &mut ev); // block 1
        write_at(&mut c, 0, 50, &mut ev);
        write_at(&mut c, 1, 51, &mut ev);
        write_at(&mut c, 2, 52, &mut ev);
        // Cache at 4/4 pages; next miss evicts block 1 (PUD (53-2)/1 = 51
        // vs block 0's (53-52)/4 < 1).
        write_at(&mut c, 16, 53, &mut ev);
        assert_eq!(evicted_pages(&ev), vec![8]);
        assert!(c.contains(0) && c.contains(1) && c.contains(2));
        check_invariants(&c);
    }

    #[test]
    fn frequency_protects_old_but_hot_blocks() {
        let mut c = pud(4);
        let mut ev = Vec::new();
        // Block 0 updated 10 times early; block 1 updated once later.
        for t in 0..10 {
            write_at(&mut c, t % 3, t, &mut ev); // block 0, 3 pages
        }
        write_at(&mut c, 8, 20, &mut ev); // block 1
        ev.clear();
        // At now=24: PUD(blk0) = (24-9)/10 = 1.5; PUD(blk1) = (24-20)/1 = 4.
        write_at(&mut c, 16, 24, &mut ev);
        assert_eq!(evicted_pages(&ev), vec![8]);
    }

    #[test]
    fn whole_block_flushed_to_single_flash_block() {
        let mut c = pud(4);
        let mut ev = Vec::new();
        for (t, lpn) in [0u64, 1, 2, 3].iter().enumerate() {
            write_at(&mut c, *lpn, t as u64, &mut ev);
        }
        write_at(&mut c, 8, 10, &mut ev);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].lpns, vec![0, 1, 2, 3]);
        assert_eq!(ev[0].placement, crate::Placement::SingleBlock);
    }

    #[test]
    fn read_hits_do_not_refresh_prediction() {
        let mut c = pud(4);
        let mut ev = Vec::new();
        write_at(&mut c, 0, 0, &mut ev);
        write_at(&mut c, 8, 1, &mut ev);
        // Read block 0 much later: must not make it "recently updated".
        assert!(c.read(&Access { lpn: 0, req_id: 9, req_pages: 1, now: 100 }, &mut ev));
        write_at(&mut c, 16, 101, &mut ev);
        write_at(&mut c, 17, 102, &mut ev);
        write_at(&mut c, 18, 103, &mut ev);
        // Block 0 (update age 103) evicted before block 1 (update age 102).
        assert_eq!(evicted_pages(&ev), vec![0]);
    }

    #[test]
    fn drain_and_metadata() {
        let mut c = pud(8);
        let mut ev = Vec::new();
        write_at(&mut c, 0, 0, &mut ev);
        write_at(&mut c, 8, 1, &mut ev);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.metadata_bytes(), 48);
        let d = c.drain();
        let mut pages = evicted_pages(&d);
        pages.sort_unstable();
        assert_eq!(pages, vec![0, 8]);
        assert_eq!(c.len_pages(), 0);
    }
}
