//! Page-granularity FIFO (related work, §2.1).
//!
//! Pages are evicted in insertion order; hits do not refresh position.
//! A write hit updates the cached data in place (still a hit), a read hit
//! serves from DRAM. Same 12 B/page metadata model as LRU.

use crate::list::{Handle, SlabList};
use crate::overhead::PAGE_NODE_BYTES;
use crate::policy::{Access, EvictionBatch, WriteBuffer};
use reqblock_trace::Lpn;
use crate::fxhash::{fx_map_with_capacity, FxHashMap};

/// Page-level FIFO write buffer.
pub struct FifoCache {
    capacity: usize,
    list: SlabList<Lpn>,
    map: FxHashMap<Lpn, Handle>,
}

impl FifoCache {
    /// FIFO buffer holding up to `capacity_pages` pages.
    pub fn new(capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "cache capacity must be positive");
        Self {
            capacity: capacity_pages,
            list: SlabList::with_capacity(capacity_pages),
            map: fx_map_with_capacity(capacity_pages * 2),
        }
    }
}

impl WriteBuffer for FifoCache {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn len_pages(&self) -> usize {
        self.list.len()
    }

    fn contains(&self, lpn: Lpn) -> bool {
        self.map.contains_key(&lpn)
    }

    fn write(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool {
        if self.map.contains_key(&a.lpn) {
            return true; // update in place; FIFO order unchanged
        }
        while self.list.len() >= self.capacity {
            let victim = self.list.back().expect("evicting from empty cache");
            let lpn = self.list.remove(victim);
            self.map.remove(&lpn);
            evictions.push(EvictionBatch::striped(vec![lpn]));
        }
        let h = self.list.push_front(a.lpn);
        self.map.insert(a.lpn, h);
        false
    }

    fn read(&mut self, a: &Access, _evictions: &mut Vec<EvictionBatch>) -> bool {
        self.map.contains_key(&a.lpn)
    }

    fn node_count(&self) -> usize {
        self.list.len()
    }

    fn metadata_bytes(&self) -> usize {
        self.node_count() * PAGE_NODE_BYTES
    }

    fn drain(&mut self) -> Vec<EvictionBatch> {
        let lpns: Vec<Lpn> = self.list.iter_from_back().map(|h| *self.list.get(h)).collect();
        self.list = SlabList::new();
        self.map.clear();
        if lpns.is_empty() {
            Vec::new()
        } else {
            vec![EvictionBatch::striped(lpns)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::*;

    #[test]
    fn evicts_in_insertion_order_despite_hits() {
        let mut c = FifoCache::new(2);
        write_seq(&mut c, &[1, 2]);
        // Hit page 1 repeatedly; FIFO must still evict 1 first.
        let mut ev = Vec::new();
        for now in 0..3 {
            let a = Access { lpn: 1, req_id: 9, req_pages: 1, now };
            assert!(c.write(&a, &mut ev));
        }
        let ev = write_seq(&mut c, &[3]);
        assert_eq!(evicted_pages(&ev), vec![1]);
        check_invariants(&c);
    }

    #[test]
    fn read_hits_do_not_reorder() {
        let mut c = FifoCache::new(2);
        write_seq(&mut c, &[1, 2]);
        let mut ev = Vec::new();
        let a = Access { lpn: 1, req_id: 9, req_pages: 1, now: 3 };
        assert!(c.read(&a, &mut ev));
        let ev = write_seq(&mut c, &[3]);
        assert_eq!(evicted_pages(&ev), vec![1]);
    }

    #[test]
    fn drain_oldest_first() {
        let mut c = FifoCache::new(3);
        write_seq(&mut c, &[4, 5, 6]);
        let ev = c.drain();
        assert_eq!(evicted_pages(&ev), vec![4, 5, 6]);
        assert_eq!(c.len_pages(), 0);
    }

    #[test]
    fn miss_inserts_and_counts() {
        let mut c = FifoCache::new(4);
        let ev = write_seq(&mut c, &[10, 11]);
        assert!(ev.is_empty());
        assert_eq!(c.len_pages(), 2);
        assert_eq!(c.metadata_bytes(), 24);
    }
}
