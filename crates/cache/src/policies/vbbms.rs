//! VBBMS — Virtual-Block-based Buffer Management Scheme (Du et al. \[16\];
//! compared baseline §4.1).
//!
//! VBBMS splits the buffer into a **random-request region** and a
//! **sequential-request region** at a 3:2 capacity ratio (paper §4.1) and
//! manages each at *virtual block* granularity: 3-page VBs under LRU in the
//! random region, 4-page VBs under FIFO in the sequential region. A request
//! is classified by size: requests larger than
//! [`VbbmsConfig::seq_threshold_pages`] go to the sequential region.
//! Evicting a VB flushes its few pages striped across channels, which is
//! why VBBMS keeps good response times (paper §4.2.2).
//!
//! A page cached in one region that is re-written by a request of the other
//! class stays where it is (it is a hit; no migration) — VBBMS regions are
//! about *insertion* routing.

use crate::list::{Handle, SlabList};
use crate::overhead::BLOCK_NODE_BYTES;
use crate::policy::{Access, EvictionBatch, WriteBuffer};
use reqblock_trace::Lpn;
use crate::fxhash::{fx_map_with_capacity, FxHashMap};

/// VBBMS tuning knobs (defaults follow the paper's §4.1 description).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VbbmsConfig {
    /// Random-region share of capacity, as (numerator, denominator).
    pub random_share: (usize, usize),
    /// Virtual-block size of the random region, pages.
    pub random_vb_pages: u64,
    /// Virtual-block size of the sequential region, pages.
    pub seq_vb_pages: u64,
    /// Requests with more pages than this go to the sequential region.
    pub seq_threshold_pages: u32,
}

impl Default for VbbmsConfig {
    fn default() -> Self {
        Self {
            random_share: (3, 5),
            random_vb_pages: 3,
            seq_vb_pages: 4,
            seq_threshold_pages: 4,
        }
    }
}

#[derive(Debug, Clone)]
struct Vb {
    id: u64,
    /// Bitmap of cached pages within the VB (vb sizes are <= 8).
    pages: u8,
}

/// One region: a VB list (LRU or FIFO) with a page budget.
struct Region {
    vb_pages: u64,
    cap_pages: usize,
    /// LRU regions refresh on hit; FIFO regions do not.
    lru: bool,
    list: SlabList<Vb>,
    map: FxHashMap<u64, Handle>,
    len_pages: usize,
}

impl Region {
    fn new(vb_pages: u64, cap_pages: usize, lru: bool) -> Self {
        assert!((1..=8).contains(&vb_pages), "VB size must be 1..=8 pages");
        Self {
            vb_pages,
            cap_pages,
            lru,
            list: SlabList::new(),
            // At most one node per resident virtual block; x2 keeps the
            // load factor below the resize threshold for the whole run.
            map: fx_map_with_capacity((cap_pages as u64).div_ceil(vb_pages) as usize * 2),
            len_pages: 0,
        }
    }

    fn vb_of(&self, lpn: Lpn) -> (u64, u8) {
        ((lpn / self.vb_pages), (lpn % self.vb_pages) as u8)
    }

    fn contains(&self, lpn: Lpn) -> bool {
        let (id, p) = self.vb_of(lpn);
        self.map.get(&id).is_some_and(|&h| self.list.get(h).pages & (1 << p) != 0)
    }

    /// Refresh recency on a hit (LRU regions only).
    fn touch(&mut self, lpn: Lpn) {
        if !self.lru {
            return;
        }
        let (id, _) = self.vb_of(lpn);
        if let Some(&h) = self.map.get(&id) {
            self.list.move_to_front(h);
        }
    }

    fn evict_back(&mut self, evictions: &mut Vec<EvictionBatch>) {
        let h = self.list.back().expect("evicting from empty region");
        let vb = self.list.remove(h);
        self.map.remove(&vb.id);
        let mut lpns = Vec::with_capacity(vb.pages.count_ones() as usize);
        for p in 0..self.vb_pages {
            if vb.pages & (1 << p) != 0 {
                lpns.push(vb.id * self.vb_pages + p);
            }
        }
        self.len_pages -= lpns.len();
        evictions.push(EvictionBatch::striped(lpns));
    }

    /// Insert a missing page, evicting VBs of *this region* as needed.
    fn insert(&mut self, lpn: Lpn, evictions: &mut Vec<EvictionBatch>) {
        while self.len_pages >= self.cap_pages {
            self.evict_back(evictions);
        }
        let (id, p) = self.vb_of(lpn);
        let h = match self.map.get(&id) {
            Some(&h) => {
                if self.lru {
                    self.list.move_to_front(h);
                }
                h
            }
            None => {
                let h = self.list.push_front(Vb { id, pages: 0 });
                self.map.insert(id, h);
                h
            }
        };
        let vb = self.list.get_mut(h);
        debug_assert_eq!(vb.pages & (1 << p), 0);
        vb.pages |= 1 << p;
        self.len_pages += 1;
    }

    fn drain_into(&mut self, out: &mut Vec<EvictionBatch>) {
        while !self.list.is_empty() {
            self.evict_back(out);
        }
    }
}

/// VBBMS write buffer.
pub struct VbbmsCache {
    capacity: usize,
    cfg: VbbmsConfig,
    random: Region,
    sequential: Region,
}

impl VbbmsCache {
    /// VBBMS buffer of `capacity_pages` total pages split per `cfg`.
    pub fn new(capacity_pages: usize, cfg: VbbmsConfig) -> Self {
        assert!(capacity_pages > 0, "cache capacity must be positive");
        let (num, den) = cfg.random_share;
        assert!(num > 0 && num < den, "random_share must be a proper fraction");
        let rand_cap = (capacity_pages * num / den).max(1);
        let seq_cap = (capacity_pages - rand_cap).max(1);
        Self {
            capacity: capacity_pages,
            random: Region::new(cfg.random_vb_pages, rand_cap, true),
            sequential: Region::new(cfg.seq_vb_pages, seq_cap, false),
            cfg,
        }
    }

    /// Capacity of the random region in pages.
    pub fn random_capacity_pages(&self) -> usize {
        self.random.cap_pages
    }

    /// Capacity of the sequential region in pages.
    pub fn sequential_capacity_pages(&self) -> usize {
        self.sequential.cap_pages
    }

    fn is_sequential_request(&self, a: &Access) -> bool {
        a.req_pages > self.cfg.seq_threshold_pages
    }
}

impl WriteBuffer for VbbmsCache {
    fn name(&self) -> &str {
        "VBBMS"
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn len_pages(&self) -> usize {
        self.random.len_pages + self.sequential.len_pages
    }

    fn contains(&self, lpn: Lpn) -> bool {
        self.random.contains(lpn) || self.sequential.contains(lpn)
    }

    fn write(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool {
        if self.random.contains(a.lpn) {
            self.random.touch(a.lpn);
            return true;
        }
        if self.sequential.contains(a.lpn) {
            return true; // FIFO: no recency update
        }
        if self.is_sequential_request(a) {
            self.sequential.insert(a.lpn, evictions);
        } else {
            self.random.insert(a.lpn, evictions);
        }
        false
    }

    fn read(&mut self, a: &Access, _evictions: &mut Vec<EvictionBatch>) -> bool {
        if self.random.contains(a.lpn) {
            self.random.touch(a.lpn);
            true
        } else {
            self.sequential.contains(a.lpn)
        }
    }

    fn node_count(&self) -> usize {
        self.random.list.len() + self.sequential.list.len()
    }

    fn metadata_bytes(&self) -> usize {
        self.node_count() * BLOCK_NODE_BYTES
    }

    fn drain(&mut self) -> Vec<EvictionBatch> {
        let mut out = Vec::new();
        self.random.drain_into(&mut out);
        self.sequential.drain_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::*;

    fn vbbms(cap: usize) -> VbbmsCache {
        VbbmsCache::new(cap, VbbmsConfig::default())
    }

    fn small_write(c: &mut VbbmsCache, lpn: Lpn, now: u64, ev: &mut Vec<EvictionBatch>) -> bool {
        c.write(&Access { lpn, req_id: now, req_pages: 1, now }, ev)
    }

    fn large_write(c: &mut VbbmsCache, lpn: Lpn, now: u64, ev: &mut Vec<EvictionBatch>) -> bool {
        c.write(&Access { lpn, req_id: 777, req_pages: 16, now }, ev)
    }

    #[test]
    fn capacity_split_is_three_to_two() {
        let c = vbbms(10);
        assert_eq!(c.random_capacity_pages(), 6);
        assert_eq!(c.sequential_capacity_pages(), 4);
    }

    #[test]
    fn small_requests_go_to_random_region() {
        let mut c = vbbms(10);
        let mut ev = Vec::new();
        small_write(&mut c, 0, 0, &mut ev);
        assert!(c.random.contains(0));
        assert!(!c.sequential.contains(0));
    }

    #[test]
    fn large_requests_go_to_sequential_region() {
        let mut c = vbbms(10);
        let mut ev = Vec::new();
        large_write(&mut c, 100, 0, &mut ev);
        assert!(c.sequential.contains(100));
        assert!(!c.random.contains(100));
    }

    #[test]
    fn regions_evict_independently() {
        let mut c = vbbms(10); // random cap 6, seq cap 4
        let mut ev = Vec::new();
        // Fill the sequential region with 4 pages; the random region stays
        // empty. A 5th sequential page must evict from sequential only.
        for i in 0..5 {
            large_write(&mut c, 100 + i, i, &mut ev);
        }
        assert!(!ev.is_empty());
        // Evicted pages must come from the 100.. range, not random.
        for b in &ev {
            for &lpn in &b.lpns {
                assert!(lpn >= 100);
            }
        }
        check_invariants(&c);
    }

    #[test]
    fn random_region_is_lru() {
        let mut c = vbbms(5); // random cap 3 (1 VB), seq cap 2
        let mut ev = Vec::new();
        // VB size 3: lpns 0..3 are VB 0; lpns 3..6 are VB 1.
        small_write(&mut c, 0, 0, &mut ev);
        small_write(&mut c, 3, 1, &mut ev);
        small_write(&mut c, 4, 2, &mut ev);
        // Touch VB 0 so VB 1 becomes LRU.
        small_write(&mut c, 0, 3, &mut ev);
        ev.clear();
        small_write(&mut c, 1, 4, &mut ev); // random region full -> evict
        assert_eq!(evicted_pages(&ev), vec![3, 4], "LRU VB 1 must be evicted");
    }

    #[test]
    fn sequential_region_is_fifo() {
        let mut c = vbbms(20); // seq cap 8 = 2 VBs of 4
        let mut ev = Vec::new();
        // Two sequential VBs: 100..104 (VB 25) and 104..108 (VB 26).
        for i in 0..8 {
            large_write(&mut c, 100 + i, i, &mut ev);
        }
        // Hit the first VB; FIFO must ignore recency.
        assert!(large_write(&mut c, 100, 10, &mut ev));
        ev.clear();
        large_write(&mut c, 108, 11, &mut ev); // full -> evict oldest VB
        assert_eq!(evicted_pages(&ev), vec![100, 101, 102, 103]);
    }

    #[test]
    fn vb_eviction_is_striped_batch() {
        let mut c = vbbms(5);
        let mut ev = Vec::new();
        for lpn in [0u64, 1, 2] {
            small_write(&mut c, lpn, lpn, &mut ev);
        }
        small_write(&mut c, 3, 4, &mut ev);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].placement, crate::Placement::Striped);
        assert_eq!(ev[0].len(), 3);
    }

    #[test]
    fn cross_region_rewrite_is_hit_in_place() {
        let mut c = vbbms(10);
        let mut ev = Vec::new();
        small_write(&mut c, 0, 0, &mut ev); // in random
        // A large request touching lpn 0 is a hit; page stays in random.
        assert!(large_write(&mut c, 0, 1, &mut ev));
        assert!(c.random.contains(0));
        assert!(!c.sequential.contains(0));
    }

    #[test]
    fn read_hits_both_regions() {
        let mut c = vbbms(10);
        let mut ev = Vec::new();
        small_write(&mut c, 0, 0, &mut ev);
        large_write(&mut c, 100, 1, &mut ev);
        assert!(c.read(&Access { lpn: 0, req_id: 9, req_pages: 1, now: 2 }, &mut ev));
        assert!(c.read(&Access { lpn: 100, req_id: 9, req_pages: 1, now: 3 }, &mut ev));
        assert!(!c.read(&Access { lpn: 55, req_id: 9, req_pages: 1, now: 4 }, &mut ev));
    }

    #[test]
    fn drain_empties_both_regions() {
        let mut c = vbbms(10);
        let mut ev = Vec::new();
        small_write(&mut c, 0, 0, &mut ev);
        large_write(&mut c, 100, 1, &mut ev);
        let d = c.drain();
        let mut pages = evicted_pages(&d);
        pages.sort_unstable();
        assert_eq!(pages, vec![0, 100]);
        assert_eq!(c.len_pages(), 0);
    }

    #[test]
    fn metadata_counts_vbs() {
        let mut c = vbbms(20);
        let mut ev = Vec::new();
        small_write(&mut c, 0, 0, &mut ev);
        small_write(&mut c, 1, 1, &mut ev); // same VB
        large_write(&mut c, 100, 2, &mut ev);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.metadata_bytes(), 48);
    }
}
