//! Baseline cache policies (see crate docs for the table of schemes).

pub mod bplru;
pub mod cflru;
pub mod fab;
pub mod fifo;
pub mod lfu;
pub mod lru;
pub mod pudlru;
pub mod vbbms;

pub use bplru::{BplruCache, BplruConfig};
pub use cflru::{CflruCache, CflruConfig};
pub use fab::FabCache;
pub use fifo::FifoCache;
pub use lfu::LfuCache;
pub use lru::LruCache;
pub use pudlru::PudLruCache;
pub use vbbms::{VbbmsCache, VbbmsConfig};

#[cfg(test)]
#[allow(dead_code)] // helpers are shared across policy test modules
pub(crate) mod testutil {
    //! Shared helpers for policy unit tests.

    use crate::policy::{Access, EvictionBatch, WriteBuffer};
    use reqblock_trace::Lpn;

    /// Drive a sequence of single-page writes with unique request ids.
    /// Returns all eviction batches produced.
    pub fn write_seq<B: WriteBuffer>(buf: &mut B, lpns: &[Lpn]) -> Vec<EvictionBatch> {
        let mut ev = Vec::new();
        for (i, &lpn) in lpns.iter().enumerate() {
            let a = Access { lpn, req_id: 1_000_000 + i as u64, req_pages: 1, now: i as u64 };
            buf.write(&a, &mut ev);
        }
        ev
    }

    /// Write one multi-page request starting at `start`.
    pub fn write_req<B: WriteBuffer>(
        buf: &mut B,
        req_id: u64,
        start: Lpn,
        pages: u64,
        now: u64,
        ev: &mut Vec<EvictionBatch>,
    ) -> usize {
        let mut hits = 0;
        for i in 0..pages {
            let a = Access {
                lpn: start + i,
                req_id,
                req_pages: pages as u32,
                now: now + i,
            };
            if buf.write(&a, ev) {
                hits += 1;
            }
        }
        hits
    }

    /// Read one multi-page request; returns page hits.
    pub fn read_req<B: WriteBuffer>(
        buf: &mut B,
        req_id: u64,
        start: Lpn,
        pages: u64,
        now: u64,
        ev: &mut Vec<EvictionBatch>,
    ) -> usize {
        let mut hits = 0;
        for i in 0..pages {
            let a = Access {
                lpn: start + i,
                req_id,
                req_pages: pages as u32,
                now: now + i,
            };
            if buf.read(&a, ev) {
                hits += 1;
            }
        }
        hits
    }

    /// All pages evicted so far, flattened in order.
    pub fn evicted_pages(batches: &[EvictionBatch]) -> Vec<Lpn> {
        batches.iter().flat_map(|b| b.lpns.iter().copied()).collect()
    }

    /// Check the universal invariants after a batch of operations.
    pub fn check_invariants<B: WriteBuffer>(buf: &B) {
        assert!(
            buf.len_pages() <= buf.capacity_pages(),
            "{}: len {} exceeds capacity {}",
            buf.name(),
            buf.len_pages(),
            buf.capacity_pages()
        );
    }
}
