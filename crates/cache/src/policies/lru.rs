//! Page-granularity LRU — the paper's primary baseline.
//!
//! Every cached page is one node in a recency list; hits (read or write)
//! move the page to the MRU end; the LRU page is evicted alone, striped
//! placement. Metadata: 12 B per page node (§4.2.5).

use crate::list::{Handle, SlabList};
use crate::overhead::PAGE_NODE_BYTES;
use crate::policy::{Access, EvictionBatch, WriteBuffer};
use reqblock_trace::Lpn;
use crate::fxhash::{fx_map_with_capacity, FxHashMap};

/// Spare page-buffer pool ceiling shared by the recycling policies: enough
/// for any realistic in-flight eviction burst, small enough that the pool
/// never holds meaningful memory.
pub(crate) const SPARE_PAGE_BUFFERS: usize = 32;

/// Page-level LRU write buffer.
pub struct LruCache {
    capacity: usize,
    list: SlabList<Lpn>,
    map: FxHashMap<Lpn, Handle>,
    /// Recycled single-page eviction buffers (see [`WriteBuffer::recycle`]).
    spare: Vec<Vec<Lpn>>,
}

impl LruCache {
    /// LRU buffer holding up to `capacity_pages` pages.
    pub fn new(capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "cache capacity must be positive");
        Self {
            capacity: capacity_pages,
            list: SlabList::with_capacity(capacity_pages),
            map: fx_map_with_capacity(capacity_pages * 2),
            spare: Vec::new(),
        }
    }

    fn evict_one(&mut self, evictions: &mut Vec<EvictionBatch>) {
        let victim = self.list.back().expect("evicting from empty cache");
        let lpn = self.list.remove(victim);
        self.map.remove(&lpn);
        let mut lpns = self.spare.pop().unwrap_or_default();
        lpns.push(lpn);
        evictions.push(EvictionBatch::striped(lpns));
    }
}

impl WriteBuffer for LruCache {
    fn name(&self) -> &str {
        "LRU"
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn len_pages(&self) -> usize {
        self.list.len()
    }

    fn contains(&self, lpn: Lpn) -> bool {
        self.map.contains_key(&lpn)
    }

    fn write(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool {
        if let Some(&h) = self.map.get(&a.lpn) {
            self.list.move_to_front(h);
            return true;
        }
        while self.list.len() >= self.capacity {
            self.evict_one(evictions);
        }
        let h = self.list.push_front(a.lpn);
        self.map.insert(a.lpn, h);
        false
    }

    fn read(&mut self, a: &Access, _evictions: &mut Vec<EvictionBatch>) -> bool {
        if let Some(&h) = self.map.get(&a.lpn) {
            self.list.move_to_front(h);
            true
        } else {
            false
        }
    }

    fn node_count(&self) -> usize {
        self.list.len()
    }

    fn metadata_bytes(&self) -> usize {
        self.node_count() * PAGE_NODE_BYTES
    }

    fn drain(&mut self) -> Vec<EvictionBatch> {
        let lpns: Vec<Lpn> = self.list.iter_from_back().map(|h| *self.list.get(h)).collect();
        self.list = SlabList::new();
        self.map.clear();
        if lpns.is_empty() {
            Vec::new()
        } else {
            vec![EvictionBatch::striped(lpns)]
        }
    }

    fn recycle(&mut self, batch: EvictionBatch) {
        if self.spare.len() < SPARE_PAGE_BUFFERS {
            let mut lpns = batch.lpns;
            lpns.clear();
            self.spare.push(lpns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        write_seq(&mut c, &[1, 2, 3]);
        // Touch 1 so 2 becomes LRU.
        let mut ev = Vec::new();
        let a = Access { lpn: 1, req_id: 99, req_pages: 1, now: 10 };
        assert!(c.write(&a, &mut ev));
        let ev = write_seq(&mut c, &[4]);
        assert_eq!(evicted_pages(&ev), vec![2]);
        assert!(c.contains(1) && c.contains(3) && c.contains(4));
        check_invariants(&c);
    }

    #[test]
    fn read_hit_refreshes_recency() {
        let mut c = LruCache::new(2);
        write_seq(&mut c, &[1, 2]);
        let mut ev = Vec::new();
        let a = Access { lpn: 1, req_id: 50, req_pages: 1, now: 5 };
        assert!(c.read(&a, &mut ev));
        let ev = write_seq(&mut c, &[3]);
        // 2 was LRU after the read refreshed 1.
        assert_eq!(evicted_pages(&ev), vec![2]);
    }

    #[test]
    fn read_miss_does_not_insert() {
        let mut c = LruCache::new(2);
        let mut ev = Vec::new();
        let a = Access { lpn: 7, req_id: 1, req_pages: 1, now: 0 };
        assert!(!c.read(&a, &mut ev));
        assert_eq!(c.len_pages(), 0);
        assert!(!c.contains(7));
    }

    #[test]
    fn write_hit_absorbs_without_eviction() {
        let mut c = LruCache::new(1);
        write_seq(&mut c, &[5]);
        let mut ev = Vec::new();
        let a = Access { lpn: 5, req_id: 2, req_pages: 1, now: 1 };
        assert!(c.write(&a, &mut ev));
        assert!(ev.is_empty());
        assert_eq!(c.len_pages(), 1);
    }

    #[test]
    fn evictions_are_single_page_striped() {
        let mut c = LruCache::new(2);
        let ev = write_seq(&mut c, &[1, 2, 3, 4]);
        assert_eq!(ev.len(), 2);
        for b in &ev {
            assert_eq!(b.len(), 1);
            assert_eq!(b.placement, crate::Placement::Striped);
            assert!(b.dirty);
        }
    }

    #[test]
    fn metadata_is_12_bytes_per_page() {
        let mut c = LruCache::new(10);
        write_seq(&mut c, &[1, 2, 3]);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.metadata_bytes(), 36);
    }

    #[test]
    fn drain_returns_everything_lru_first() {
        let mut c = LruCache::new(3);
        write_seq(&mut c, &[1, 2, 3]);
        let ev = c.drain();
        assert_eq!(evicted_pages(&ev), vec![1, 2, 3]);
        assert_eq!(c.len_pages(), 0);
        assert!(!c.contains(1));
    }

    #[test]
    fn capacity_one_replaces_constantly() {
        let mut c = LruCache::new(1);
        let ev = write_seq(&mut c, &[1, 2, 3]);
        assert_eq!(evicted_pages(&ev), vec![1, 2]);
        assert!(c.contains(3));
        check_invariants(&c);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::new(0);
    }
}
