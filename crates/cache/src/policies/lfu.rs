//! Page-granularity LFU (related work, §2.1).
//!
//! Victim = page with the lowest access frequency; ties broken by age
//! (earlier insertion evicted first), which makes the policy a member of the
//! LRFU spectrum the paper cites \[24\]. Frequencies count both read and write
//! hits. Metadata: a page node plus a counter (16 B).

use crate::overhead::LFU_NODE_BYTES;
use crate::policy::{Access, EvictionBatch, WriteBuffer};
use reqblock_trace::Lpn;
use crate::fxhash::{fx_map_with_capacity, FxHashMap};
use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy)]
struct Entry {
    freq: u32,
    /// Monotone insertion sequence for tie-breaking.
    seq: u64,
}

/// Page-level LFU write buffer.
pub struct LfuCache {
    capacity: usize,
    entries: FxHashMap<Lpn, Entry>,
    /// Ordered victims: (freq, seq, lpn). `first()` is the coldest page.
    order: BTreeSet<(u32, u64, Lpn)>,
    next_seq: u64,
}

impl LfuCache {
    /// LFU buffer holding up to `capacity_pages` pages.
    pub fn new(capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "cache capacity must be positive");
        Self {
            capacity: capacity_pages,
            entries: fx_map_with_capacity(capacity_pages * 2),
            order: BTreeSet::new(),
            next_seq: 0,
        }
    }

    fn bump(&mut self, lpn: Lpn) {
        let e = self.entries.get_mut(&lpn).expect("bump on uncached page");
        let removed = self.order.remove(&(e.freq, e.seq, lpn));
        debug_assert!(removed);
        e.freq = e.freq.saturating_add(1);
        self.order.insert((e.freq, e.seq, lpn));
    }

    fn evict_one(&mut self, evictions: &mut Vec<EvictionBatch>) {
        let &(freq, seq, lpn) = self.order.iter().next().expect("evicting from empty cache");
        self.order.remove(&(freq, seq, lpn));
        self.entries.remove(&lpn);
        evictions.push(EvictionBatch::striped(vec![lpn]));
    }
}

impl WriteBuffer for LfuCache {
    fn name(&self) -> &str {
        "LFU"
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn len_pages(&self) -> usize {
        self.entries.len()
    }

    fn contains(&self, lpn: Lpn) -> bool {
        self.entries.contains_key(&lpn)
    }

    fn write(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool {
        if self.entries.contains_key(&a.lpn) {
            self.bump(a.lpn);
            return true;
        }
        while self.entries.len() >= self.capacity {
            self.evict_one(evictions);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(a.lpn, Entry { freq: 1, seq });
        self.order.insert((1, seq, a.lpn));
        false
    }

    fn read(&mut self, a: &Access, _evictions: &mut Vec<EvictionBatch>) -> bool {
        if self.entries.contains_key(&a.lpn) {
            self.bump(a.lpn);
            true
        } else {
            false
        }
    }

    fn node_count(&self) -> usize {
        self.entries.len()
    }

    fn metadata_bytes(&self) -> usize {
        self.node_count() * LFU_NODE_BYTES
    }

    fn drain(&mut self) -> Vec<EvictionBatch> {
        let lpns: Vec<Lpn> = self.order.iter().map(|&(_, _, lpn)| lpn).collect();
        self.order.clear();
        self.entries.clear();
        if lpns.is_empty() {
            Vec::new()
        } else {
            vec![EvictionBatch::striped(lpns)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::*;

    #[test]
    fn evicts_least_frequent() {
        let mut c = LfuCache::new(2);
        write_seq(&mut c, &[1, 2]);
        // Page 1 gets two extra hits.
        let mut ev = Vec::new();
        for now in 0..2 {
            let a = Access { lpn: 1, req_id: 9, req_pages: 1, now };
            assert!(c.write(&a, &mut ev));
        }
        let ev = write_seq(&mut c, &[3]);
        assert_eq!(evicted_pages(&ev), vec![2]);
        assert!(c.contains(1));
        check_invariants(&c);
    }

    #[test]
    fn ties_break_by_age() {
        let mut c = LfuCache::new(2);
        write_seq(&mut c, &[1, 2]); // both freq 1; 1 is older
        let ev = write_seq(&mut c, &[3]);
        assert_eq!(evicted_pages(&ev), vec![1]);
    }

    #[test]
    fn read_hits_count_toward_frequency() {
        let mut c = LfuCache::new(2);
        write_seq(&mut c, &[1, 2]);
        let mut ev = Vec::new();
        let a = Access { lpn: 1, req_id: 9, req_pages: 1, now: 5 };
        assert!(c.read(&a, &mut ev));
        let ev = write_seq(&mut c, &[3]);
        assert_eq!(evicted_pages(&ev), vec![2]);
    }

    #[test]
    fn drain_coldest_first() {
        let mut c = LfuCache::new(3);
        write_seq(&mut c, &[1, 2, 3]);
        let mut ev = Vec::new();
        let a = Access { lpn: 3, req_id: 9, req_pages: 1, now: 9 };
        c.write(&a, &mut ev); // 3 now hottest
        let d = c.drain();
        let pages = evicted_pages(&d);
        assert_eq!(pages.last(), Some(&3));
        assert_eq!(c.len_pages(), 0);
    }

    #[test]
    fn metadata_sixteen_bytes_per_node() {
        let mut c = LfuCache::new(8);
        write_seq(&mut c, &[1, 2]);
        assert_eq!(c.metadata_bytes(), 32);
    }
}
