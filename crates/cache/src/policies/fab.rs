//! FAB — Flash-Aware Buffer (Jo et al. \[19\]; related work §2.1).
//!
//! FAB clusters cached pages by the flash block they map to (64 pages) and,
//! when space is needed, evicts the **group holding the most pages** (ties
//! broken towards the least recently touched group). The whole group is
//! flushed to a single flash block, which suits the sequential media-player
//! workloads FAB targets and is exactly why it struggles on random-dominated
//! traces (§2.1: "FAB only considers the group size while neglecting data
//! recency").

use crate::overhead::BLOCK_NODE_BYTES;
use crate::policy::{Access, EvictionBatch, WriteBuffer};
use reqblock_trace::Lpn;
use crate::fxhash::{fx_map_with_capacity, FxHashMap};
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
struct Group {
    /// Bitmap of cached pages within the flash block.
    pages: u64,
    /// Last-touch sequence (for the LRU tie-break).
    seq: u64,
}

impl Group {
    fn count(&self) -> u32 {
        self.pages.count_ones()
    }
}

/// FAB write buffer grouping pages by `pages_per_block`-page flash blocks.
pub struct FabCache {
    capacity: usize,
    pages_per_block: u64,
    groups: FxHashMap<u64, Group>,
    /// (page_count, last_touch_seq, block): the victim is the largest group;
    /// among equals, the smallest seq (least recently touched).
    order: BTreeSet<(u32, u64, u64)>,
    len_pages: usize,
    next_seq: u64,
}

impl FabCache {
    /// FAB buffer of `capacity_pages` pages over `pages_per_block`-page
    /// blocks (the paper's SSD uses 64).
    pub fn new(capacity_pages: usize, pages_per_block: usize) -> Self {
        assert!(capacity_pages > 0, "cache capacity must be positive");
        assert!((1..=64).contains(&pages_per_block), "pages_per_block must be 1..=64");
        Self {
            capacity: capacity_pages,
            pages_per_block: pages_per_block as u64,
            // At most one group per resident block; x2 keeps the load
            // factor below the resize threshold for the whole run.
            groups: fx_map_with_capacity(capacity_pages.div_ceil(pages_per_block) * 2),
            order: BTreeSet::new(),
            len_pages: 0,
            next_seq: 0,
        }
    }

    fn split(&self, lpn: Lpn) -> (u64, u32) {
        (lpn / self.pages_per_block, (lpn % self.pages_per_block) as u32)
    }

    fn touch(&mut self, block: u64, add_page: Option<u32>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let g = self.groups.get_mut(&block).expect("touch on missing group");
        self.order.remove(&(g.count(), g.seq, block));
        if let Some(p) = add_page {
            debug_assert_eq!(g.pages & (1 << p), 0);
            g.pages |= 1 << p;
            self.len_pages += 1;
        }
        g.seq = seq;
        self.order.insert((g.count(), g.seq, block));
    }

    /// Evict the largest (tie: least recently touched) group.
    fn evict_group(&mut self, evictions: &mut Vec<EvictionBatch>) {
        let &(max_count, _, _) = self.order.iter().next_back().expect("evicting from empty cache");
        // Smallest seq among groups with max_count.
        let &(count, seq, block) = self
            .order
            .range((max_count, 0, 0)..)
            .next()
            .expect("range must contain the max-count entry");
        debug_assert_eq!(count, max_count);
        self.order.remove(&(count, seq, block));
        let g = self.groups.remove(&block).expect("group in order but not in map");
        let mut lpns = Vec::with_capacity(g.count() as usize);
        for p in 0..self.pages_per_block {
            if g.pages & (1 << p) != 0 {
                lpns.push(block * self.pages_per_block + p);
            }
        }
        self.len_pages -= lpns.len();
        evictions.push(EvictionBatch::single_block(lpns));
    }
}

impl WriteBuffer for FabCache {
    fn name(&self) -> &str {
        "FAB"
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn len_pages(&self) -> usize {
        self.len_pages
    }

    fn contains(&self, lpn: Lpn) -> bool {
        let (block, page) = self.split(lpn);
        self.groups.get(&block).is_some_and(|g| g.pages & (1 << page) != 0)
    }

    fn write(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool {
        let (block, page) = self.split(a.lpn);
        if self.contains(a.lpn) {
            self.touch(block, None);
            return true;
        }
        while self.len_pages >= self.capacity {
            self.evict_group(evictions);
        }
        if !self.groups.contains_key(&block) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.groups.insert(block, Group { pages: 0, seq });
            self.order.insert((0, seq, block));
        }
        self.touch(block, Some(page));
        false
    }

    fn read(&mut self, a: &Access, _evictions: &mut Vec<EvictionBatch>) -> bool {
        let (block, _) = self.split(a.lpn);
        if self.contains(a.lpn) {
            self.touch(block, None);
            true
        } else {
            false
        }
    }

    fn node_count(&self) -> usize {
        self.groups.len()
    }

    fn metadata_bytes(&self) -> usize {
        self.node_count() * BLOCK_NODE_BYTES
    }

    fn drain(&mut self) -> Vec<EvictionBatch> {
        let mut out = Vec::new();
        while !self.groups.is_empty() {
            self.evict_group(&mut out);
        }
        debug_assert_eq!(self.len_pages, 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::*;

    fn fab(cap: usize) -> FabCache {
        FabCache::new(cap, 8)
    }

    #[test]
    fn evicts_largest_group() {
        let mut c = fab(6);
        // Block 0 gets 4 pages, block 1 gets 2.
        write_seq(&mut c, &[0, 1, 2, 3, 8, 9]);
        let mut ev = Vec::new();
        c.write(&Access { lpn: 16, req_id: 9, req_pages: 1, now: 9 }, &mut ev);
        assert_eq!(ev.len(), 1);
        assert_eq!(evicted_pages(&ev), vec![0, 1, 2, 3]);
        assert_eq!(ev[0].placement, crate::Placement::SingleBlock);
        check_invariants(&c);
    }

    #[test]
    fn tie_breaks_toward_least_recent() {
        let mut c = fab(4);
        // Two groups of 2 pages each; group of block 0 touched last.
        write_seq(&mut c, &[8, 9, 0, 1]);
        let mut ev = Vec::new();
        c.write(&Access { lpn: 0, req_id: 5, req_pages: 1, now: 4 }, &mut ev); // touch blk 0
        c.write(&Access { lpn: 16, req_id: 6, req_pages: 1, now: 5 }, &mut ev);
        assert_eq!(evicted_pages(&ev), vec![8, 9]);
    }

    #[test]
    fn hit_detection_within_group() {
        let mut c = fab(4);
        write_seq(&mut c, &[0]);
        assert!(c.contains(0));
        assert!(!c.contains(1), "same group, different page is not cached");
        let mut ev = Vec::new();
        assert!(c.read(&Access { lpn: 0, req_id: 9, req_pages: 1, now: 1 }, &mut ev));
        assert!(!c.read(&Access { lpn: 1, req_id: 9, req_pages: 1, now: 2 }, &mut ev));
    }

    #[test]
    fn group_eviction_frees_many_pages() {
        let mut c = fab(8);
        write_seq(&mut c, &[0, 1, 2, 3, 4, 5, 6, 7]); // one full group
        let mut ev = Vec::new();
        c.write(&Access { lpn: 64, req_id: 9, req_pages: 1, now: 9 }, &mut ev);
        assert_eq!(ev[0].len(), 8);
        assert_eq!(c.len_pages(), 1);
    }

    #[test]
    fn drain_empties_everything() {
        let mut c = fab(8);
        write_seq(&mut c, &[0, 8, 16, 24]);
        let d = c.drain();
        let mut pages = evicted_pages(&d);
        pages.sort_unstable();
        assert_eq!(pages, vec![0, 8, 16, 24]);
        assert_eq!(c.len_pages(), 0);
        assert_eq!(c.node_count(), 0);
    }

    #[test]
    fn metadata_counts_groups_not_pages() {
        let mut c = fab(8);
        write_seq(&mut c, &[0, 1, 2, 8]);
        assert_eq!(c.node_count(), 2); // blocks 0 and 1
        assert_eq!(c.metadata_bytes(), 48);
    }
}
