//! Space-overhead model of §4.2.5 / Figure 12.
//!
//! The paper charges each cached *item* one list node: "the granularity of
//! cached items in LRU, BPLRU, and Req-block is a page, a block, and a
//! request block, and the corresponding node requires 12 Byte, 24 Byte, and
//! 32 Byte, respectively. Specially, the VBBMS adopts a virtual block, which
//! needs the same memory as a block." Policies report their live node count
//! through [`crate::WriteBuffer::node_count`]; multiplying by these
//! constants yields Figure 12's kilobyte numbers.

/// Bytes per page node (LRU, FIFO, CFLRU).
pub const PAGE_NODE_BYTES: usize = 12;
/// Bytes per page node with a frequency counter (LFU; not in the paper's
/// table — one extra u32 over a plain page node).
pub const LFU_NODE_BYTES: usize = 16;
/// Bytes per block / virtual-block node (BPLRU, FAB, VBBMS).
pub const BLOCK_NODE_BYTES: usize = 24;
/// Bytes per request-block node (Req-block).
pub const REQ_BLOCK_NODE_BYTES: usize = 32;

/// Space overhead in bytes for `nodes` nodes of `bytes_per_node`.
#[inline]
pub fn metadata_bytes(nodes: usize, bytes_per_node: usize) -> usize {
    nodes * bytes_per_node
}

/// Overhead as a fraction of the data-cache capacity (`capacity_pages` 4 KB
/// pages), as reported in the text of §4.2.5 ("an average of 0.41 % of total
/// cache space").
pub fn overhead_fraction(meta_bytes: usize, capacity_pages: usize) -> f64 {
    if capacity_pages == 0 {
        return 0.0;
    }
    meta_bytes as f64 / (capacity_pages as f64 * 4096.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_sizes_match_paper() {
        assert_eq!(PAGE_NODE_BYTES, 12);
        assert_eq!(BLOCK_NODE_BYTES, 24);
        assert_eq!(REQ_BLOCK_NODE_BYTES, 32);
    }

    #[test]
    fn fully_paged_lru_overhead_is_0_29_percent() {
        // A full page-granularity cache: one 12 B node per 4 KB page
        // = 12/4096 = 0.293 % — the paper's "LRU ... 0.29 %".
        let capacity = 4096; // 16 MB
        let bytes = metadata_bytes(capacity, PAGE_NODE_BYTES);
        let frac = overhead_fraction(bytes, capacity);
        assert!((frac - 12.0 / 4096.0).abs() < 1e-12);
        assert!((frac * 100.0 - 0.29).abs() < 0.01);
    }

    #[test]
    fn zero_capacity_fraction_is_zero() {
        assert_eq!(overhead_fraction(1000, 0), 0.0);
    }
}
