//! Slab-backed doubly-linked list with stable O(1) handles.
//!
//! Every cache policy in this workspace is built on linked lists ("the
//! adjustment operations on the linked-list cause O(1) time complexity",
//! paper §4.2.5). A pointer-based list is slow and unsafe-heavy in Rust, so
//! [`SlabList`] stores nodes in a `Vec` with an internal free list: handles
//! are indices, removal is O(1), and move-to-front — the hot operation of
//! every LRU variant — touches at most three nodes.
//!
//! # Handle validity
//!
//! A [`Handle`] is valid from the `push_*` that returned it until the
//! `remove` that consumes it. Using a handle after removal is detected when
//! the slot is still free (panic) but **not** when the slot has been reused;
//! callers (the policies) therefore always own their handles exclusively via
//! their lookup maps.

const NIL: u32 = u32::MAX;

/// Opaque index of a live node in a [`SlabList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle(u32);

impl Default for Handle {
    /// A dangling placeholder handle that matches no live node. Useful when
    /// a record must be constructed before its list node exists; using it
    /// against a list panics.
    fn default() -> Self {
        Handle(NIL)
    }
}

#[derive(Debug, Clone)]
struct Node<T> {
    prev: u32,
    next: u32,
    data: Option<T>,
}

/// Doubly-linked list over a slab of nodes. Front = most recent by
/// convention of the policies in this workspace.
#[derive(Debug, Clone)]
pub struct SlabList<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl<T> Default for SlabList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SlabList<T> {
    /// Empty list.
    pub fn new() -> Self {
        Self { nodes: Vec::new(), free: Vec::new(), head: NIL, tail: NIL, len: 0 }
    }

    /// Empty list with room for `cap` nodes before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Self { nodes: Vec::with_capacity(cap), free: Vec::new(), head: NIL, tail: NIL, len: 0 }
    }

    /// Number of live nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no node is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, data: T) -> u32 {
        if let Some(idx) = self.free.pop() {
            let n = &mut self.nodes[idx as usize];
            debug_assert!(n.data.is_none());
            n.data = Some(data);
            n.prev = NIL;
            n.next = NIL;
            idx
        } else {
            assert!(self.nodes.len() < NIL as usize, "SlabList exhausted u32 index space");
            self.nodes.push(Node { prev: NIL, next: NIL, data: Some(data) });
            (self.nodes.len() - 1) as u32
        }
    }

    /// Insert at the front (most-recent end). O(1).
    pub fn push_front(&mut self, data: T) -> Handle {
        let idx = self.alloc(data);
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
        self.len += 1;
        Handle(idx)
    }

    /// Insert at the back (least-recent end). O(1).
    pub fn push_back(&mut self, data: T) -> Handle {
        let idx = self.alloc(data);
        self.nodes[idx as usize].prev = self.tail;
        if self.tail != NIL {
            self.nodes[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
        self.len += 1;
        Handle(idx)
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            debug_assert!(n.data.is_some(), "unlinking a dead node");
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Remove a node, returning its payload. O(1). The handle is dead
    /// afterwards.
    pub fn remove(&mut self, h: Handle) -> T {
        let idx = h.0;
        self.unlink(idx);
        let data = self.nodes[idx as usize].data.take().expect("remove on dead handle");
        self.free.push(idx);
        self.len -= 1;
        data
    }

    /// Move a live node to the front. O(1).
    pub fn move_to_front(&mut self, h: Handle) {
        if self.head == h.0 {
            return;
        }
        self.unlink(h.0);
        let idx = h.0;
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Move a live node to the back. O(1).
    pub fn move_to_back(&mut self, h: Handle) {
        if self.tail == h.0 {
            return;
        }
        self.unlink(h.0);
        let idx = h.0;
        self.nodes[idx as usize].next = NIL;
        self.nodes[idx as usize].prev = self.tail;
        if self.tail != NIL {
            self.nodes[self.tail as usize].next = idx;
        }
        self.tail = idx;
        if self.head == NIL {
            self.head = idx;
        }
    }

    /// Handle of the front node, if any.
    #[inline]
    pub fn front(&self) -> Option<Handle> {
        (self.head != NIL).then_some(Handle(self.head))
    }

    /// Handle of the back node, if any.
    #[inline]
    pub fn back(&self) -> Option<Handle> {
        (self.tail != NIL).then_some(Handle(self.tail))
    }

    /// Payload of a live node.
    #[inline]
    pub fn get(&self, h: Handle) -> &T {
        self.nodes[h.0 as usize].data.as_ref().expect("get on dead handle")
    }

    /// Mutable payload of a live node.
    #[inline]
    pub fn get_mut(&mut self, h: Handle) -> &mut T {
        self.nodes[h.0 as usize].data.as_mut().expect("get_mut on dead handle")
    }

    /// Neighbour towards the back (less recent), if any.
    #[inline]
    pub fn next_towards_back(&self, h: Handle) -> Option<Handle> {
        let nxt = self.nodes[h.0 as usize].next;
        (nxt != NIL).then_some(Handle(nxt))
    }

    /// Iterate handles from back (least recent) to front. Borrows the list.
    pub fn iter_from_back(&self) -> IterBack<'_, T> {
        IterBack { list: self, cur: self.tail }
    }

    /// Iterate handles from front to back.
    pub fn iter_from_front(&self) -> IterFront<'_, T> {
        IterFront { list: self, cur: self.head }
    }
}

/// Back-to-front handle iterator.
pub struct IterBack<'a, T> {
    list: &'a SlabList<T>,
    cur: u32,
}

impl<'a, T> Iterator for IterBack<'a, T> {
    type Item = Handle;
    fn next(&mut self) -> Option<Handle> {
        if self.cur == NIL {
            return None;
        }
        let h = Handle(self.cur);
        self.cur = self.list.nodes[self.cur as usize].prev;
        Some(h)
    }
}

/// Front-to-back handle iterator.
pub struct IterFront<'a, T> {
    list: &'a SlabList<T>,
    cur: u32,
}

impl<'a, T> Iterator for IterFront<'a, T> {
    type Item = Handle;
    fn next(&mut self) -> Option<Handle> {
        if self.cur == NIL {
            return None;
        }
        let h = Handle(self.cur);
        self.cur = self.list.nodes[self.cur as usize].next;
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contents<T: Copy>(l: &SlabList<T>) -> Vec<T> {
        l.iter_from_front().map(|h| *l.get(h)).collect()
    }

    #[test]
    fn push_front_orders_mru_first() {
        let mut l = SlabList::new();
        l.push_front(1);
        l.push_front(2);
        l.push_front(3);
        assert_eq!(contents(&l), vec![3, 2, 1]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn push_back_appends() {
        let mut l = SlabList::new();
        l.push_back(1);
        l.push_back(2);
        assert_eq!(contents(&l), vec![1, 2]);
    }

    #[test]
    fn remove_middle_front_back() {
        let mut l = SlabList::new();
        let a = l.push_back('a');
        let b = l.push_back('b');
        let c = l.push_back('c');
        assert_eq!(l.remove(b), 'b');
        assert_eq!(contents(&l), vec!['a', 'c']);
        assert_eq!(l.remove(a), 'a');
        assert_eq!(contents(&l), vec!['c']);
        assert_eq!(l.remove(c), 'c');
        assert!(l.is_empty());
        assert_eq!(l.front(), None);
        assert_eq!(l.back(), None);
    }

    #[test]
    fn move_to_front_reorders() {
        let mut l = SlabList::new();
        let a = l.push_back(1);
        let _b = l.push_back(2);
        let _c = l.push_back(3);
        l.move_to_front(a); // already somewhere else
        assert_eq!(contents(&l), vec![1, 2, 3][..1].iter().chain([2, 3].iter()).copied().collect::<Vec<_>>());
        // Clearer assertion:
        assert_eq!(contents(&l), vec![1, 2, 3]);
        let c = l.back().unwrap();
        l.move_to_front(c);
        assert_eq!(contents(&l), vec![3, 1, 2]);
    }

    #[test]
    fn move_to_back_reorders() {
        let mut l = SlabList::new();
        let a = l.push_back(1);
        l.push_back(2);
        l.move_to_back(a);
        assert_eq!(contents(&l), vec![2, 1]);
        // Moving the tail is a no-op.
        l.move_to_back(a);
        assert_eq!(contents(&l), vec![2, 1]);
    }

    #[test]
    fn slots_are_reused() {
        let mut l = SlabList::new();
        let a = l.push_front(1);
        l.remove(a);
        let b = l.push_front(2);
        // The freed slot is recycled: same underlying index.
        assert_eq!(a.0, b.0);
        assert_eq!(l.len(), 1);
    }

    #[test]
    #[should_panic(expected = "dead handle")]
    fn get_after_remove_panics() {
        let mut l = SlabList::new();
        let a = l.push_front(1);
        l.remove(a);
        let _ = l.get(a);
    }

    #[test]
    fn iter_from_back_is_reverse() {
        let mut l = SlabList::new();
        for i in 0..5 {
            l.push_front(i);
        }
        let back: Vec<i32> = l.iter_from_back().map(|h| *l.get(h)).collect();
        assert_eq!(back, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn next_towards_back_walks_list() {
        let mut l = SlabList::new();
        l.push_back(1);
        l.push_back(2);
        l.push_back(3);
        let mut cur = l.front();
        let mut seen = Vec::new();
        while let Some(h) = cur {
            seen.push(*l.get(h));
            cur = l.next_towards_back(h);
        }
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn single_element_invariants() {
        let mut l = SlabList::new();
        let a = l.push_front(42);
        assert_eq!(l.front(), Some(a));
        assert_eq!(l.back(), Some(a));
        l.move_to_front(a);
        l.move_to_back(a);
        assert_eq!(l.len(), 1);
        assert_eq!(l.remove(a), 42);
    }

    #[test]
    fn stress_random_ops_maintain_len() {
        // Deterministic pseudo-random mix of pushes and removals.
        let mut l = SlabList::new();
        let mut handles = Vec::new();
        let mut x = 12345u64;
        for i in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if handles.is_empty() || !x.is_multiple_of(3) {
                handles.push(l.push_front(i));
            } else {
                let idx = (x / 3) as usize % handles.len();
                let h = handles.swap_remove(idx);
                l.remove(h);
            }
            assert_eq!(l.len(), handles.len());
        }
        // Walk both ways; lengths must agree.
        assert_eq!(l.iter_from_front().count(), l.len());
        assert_eq!(l.iter_from_back().count(), l.len());
    }
}
