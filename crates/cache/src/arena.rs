//! Generational slab arena for per-block cache state.
//!
//! The Req-block policy keeps one record per live request block. Storing
//! them in a `HashMap<u64, Block>` costs a hash and a probe on every
//! access; this arena stores them in a plain `Vec` indexed by slot, with a
//! free list for reuse, so every access is one bounds-checked array index.
//!
//! Ids are **generational**: a slot's generation is bumped when it is
//! freed, and an [`ArenaId`] only resolves while its generation matches.
//! This preserves the semantics the policy relied on when ids were
//! never-reused `u64`s — a stale id (e.g. the `origin` back-reference of a
//! split block whose original has since been evicted) looks up as absent
//! rather than aliasing whatever block reused the slot.

/// Handle to an arena entry: slot index plus the generation it was
/// allocated under. 8 bytes, `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArenaId {
    slot: u32,
    gen: u32,
}

impl ArenaId {
    /// Slot index (stable while the entry is live; reused afterwards).
    #[inline]
    pub fn slot(self) -> u32 {
        self.slot
    }

    /// Generation the id was allocated under.
    #[inline]
    pub fn generation(self) -> u32 {
        self.gen
    }
}

impl std::fmt::Display for ArenaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}v{}", self.slot, self.gen)
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    /// Bumped every time the slot is freed, so outstanding ids go stale.
    gen: u32,
    value: Option<T>,
}

/// Slab arena with generational ids and free-list slot reuse.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Empty arena.
    pub fn new() -> Self {
        Self { slots: Vec::new(), free: Vec::new(), len: 0 }
    }

    /// Empty arena with room for `capacity` entries before reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { slots: Vec::with_capacity(capacity), free: Vec::new(), len: 0 }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value, reusing a freed slot when one exists.
    pub fn insert(&mut self, value: T) -> ArenaId {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.value.is_none());
            s.value = Some(value);
            ArenaId { slot, gen: s.gen }
        } else {
            let slot = u32::try_from(self.slots.len()).expect("arena exceeds u32 slots");
            self.slots.push(Slot { gen: 0, value: Some(value) });
            ArenaId { slot, gen: 0 }
        }
    }

    /// Shared access; `None` if the id is stale or never existed.
    #[inline]
    pub fn get(&self, id: ArenaId) -> Option<&T> {
        match self.slots.get(id.slot as usize) {
            Some(s) if s.gen == id.gen => s.value.as_ref(),
            _ => None,
        }
    }

    /// Mutable access; `None` if the id is stale or never existed.
    #[inline]
    pub fn get_mut(&mut self, id: ArenaId) -> Option<&mut T> {
        match self.slots.get_mut(id.slot as usize) {
            Some(s) if s.gen == id.gen => s.value.as_mut(),
            _ => None,
        }
    }

    /// `true` if `id` refers to a live entry.
    #[inline]
    pub fn contains(&self, id: ArenaId) -> bool {
        self.get(id).is_some()
    }

    /// Remove and return the entry behind `id`.
    ///
    /// # Panics
    /// Panics if the id is stale — removal through a dangling handle is
    /// always a logic error in the caller.
    pub fn remove(&mut self, id: ArenaId) -> T {
        let s = &mut self.slots[id.slot as usize];
        assert!(s.gen == id.gen && s.value.is_some(), "removing stale arena id {id}");
        let value = s.value.take().expect("checked above");
        // Bump the generation on free so every outstanding id to this slot
        // goes stale before the slot is handed out again.
        s.gen = s.gen.wrapping_add(1);
        self.free.push(id.slot);
        self.len -= 1;
        value
    }

    /// Iterate over live `(id, &value)` pairs in slot order. O(slots), for
    /// consistency checks and draining — not the hot path.
    pub fn iter(&self) -> impl Iterator<Item = (ArenaId, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value
                .as_ref()
                .map(|v| (ArenaId { slot: i as u32, gen: s.gen }, v))
        })
    }
}

impl<T> std::ops::Index<ArenaId> for Arena<T> {
    type Output = T;

    /// # Panics
    /// Panics if the id is stale or never existed.
    #[inline]
    fn index(&self, id: ArenaId) -> &T {
        self.get(id).expect("indexing stale arena id")
    }
}

impl<T> std::ops::IndexMut<ArenaId> for Arena<T> {
    /// # Panics
    /// Panics if the id is stale or never existed.
    #[inline]
    fn index_mut(&mut self, id: ArenaId) -> &mut T {
        self.get_mut(id).expect("indexing stale arena id")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = Arena::new();
        let x = a.insert("x");
        let y = a.insert("y");
        assert_eq!(a.len(), 2);
        assert_eq!(a[x], "x");
        assert_eq!(a[y], "y");
        assert_eq!(a.remove(x), "x");
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(x), None);
        assert_eq!(a[y], "y");
    }

    #[test]
    fn stale_ids_do_not_alias_reused_slots() {
        let mut a = Arena::new();
        let x = a.insert(1);
        a.remove(x);
        let y = a.insert(2);
        // The slot is reused but the generation differs.
        assert_eq!(y.slot(), x.slot());
        assert_ne!(y.generation(), x.generation());
        assert_eq!(a.get(x), None, "stale id must not see the new tenant");
        assert_eq!(a[y], 2);
        assert!(!a.contains(x));
        assert!(a.contains(y));
    }

    #[test]
    #[should_panic(expected = "stale arena id")]
    fn removing_stale_id_panics() {
        let mut a = Arena::new();
        let x = a.insert(1);
        a.remove(x);
        a.remove(x);
    }

    #[test]
    fn iter_visits_only_live_entries() {
        let mut a = Arena::new();
        let ids: Vec<_> = (0..5).map(|i| a.insert(i)).collect();
        a.remove(ids[1]);
        a.remove(ids[3]);
        let live: Vec<i32> = a.iter().map(|(_, &v)| v).collect();
        assert_eq!(live, vec![0, 2, 4]);
        for (id, &v) in a.iter() {
            assert_eq!(a[id], v);
        }
    }

    #[test]
    fn free_slots_are_reused_before_growing() {
        let mut a = Arena::with_capacity(4);
        let ids: Vec<_> = (0..4).map(|i| a.insert(i)).collect();
        for &id in &ids {
            a.remove(id);
        }
        assert!(a.is_empty());
        for i in 0..4 {
            let id = a.insert(i);
            assert!(id.slot() < 4, "must reuse freed slots, got {}", id.slot());
        }
        assert_eq!(a.len(), 4);
    }
}
