//! The policy interface between the simulator and cache schemes.

use reqblock_trace::Lpn;
use serde::{Deserialize, Serialize};

/// One page-granular access delivered to the write buffer, together with the
/// context of the request it belongs to (Algorithm 1 walks requests page by
/// page; policies like Req-block and VBBMS need the request identity/size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Logical page being accessed.
    pub lpn: Lpn,
    /// Monotone id of the enclosing request (groups pages into request
    /// blocks).
    pub req_id: u64,
    /// Total pages of the enclosing request (`R_size` in Algorithm 1).
    pub req_pages: u32,
    /// Logical time: count of page accesses processed so far. Used as the
    /// time base of the paper's Eq. 1 and for LFU/CFLRU tie-breaking.
    pub now: u64,
}

/// How a flush batch should be placed on flash (mirrors
/// `reqblock_ftl::Placement`; kept separate so the cache layer does not
/// depend on the FTL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Stripe pages round-robin across chips — exploits channel parallelism.
    Striped,
    /// Append the whole batch on one chip (BPLRU/FAB whole-block flushes).
    SingleBlock,
}

/// A group of pages leaving the cache in one eviction operation.
///
/// Figure 10 of the paper ("average page number of each eviction") counts
/// the `lpns` of one batch; the simulator flushes the batch as a unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictionBatch {
    /// Pages evicted together.
    pub lpns: Vec<Lpn>,
    /// Flush placement on flash.
    pub placement: Placement,
    /// Pages the simulator must *read from flash* before programming the
    /// batch (BPLRU page padding). Empty for every other policy.
    pub pad_reads: Vec<Lpn>,
    /// `false` for clean pages that can be dropped without flash writes
    /// (only possible when a policy caches read data, e.g. CFLRU with
    /// `cache_reads`).
    pub dirty: bool,
}

impl EvictionBatch {
    /// A dirty, striped batch (the common case).
    pub fn striped(lpns: Vec<Lpn>) -> Self {
        Self { lpns, placement: Placement::Striped, pad_reads: Vec::new(), dirty: true }
    }

    /// A dirty batch targeting a single flash block.
    pub fn single_block(lpns: Vec<Lpn>) -> Self {
        Self { lpns, placement: Placement::SingleBlock, pad_reads: Vec::new(), dirty: true }
    }

    /// Number of pages in the batch.
    pub fn len(&self) -> usize {
        self.lpns.len()
    }

    /// `true` if the batch carries no pages.
    pub fn is_empty(&self) -> bool {
        self.lpns.is_empty()
    }
}

/// Structural transition counters a policy may expose to the observability
/// layer. The Req-block scheme reports its IRL/SRL/DRL list dynamics here
/// (upgrades, splits, downgraded merges); simpler policies report nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheEvents {
    /// Blocks promoted into the SRL (small-block hit, Algorithm 1 line 21).
    pub srl_upgrades: u64,
    /// Pages split off a large block into a DRL block (Figure 5(a)).
    pub drl_splits: u64,
    /// Victim evictions that merged a split block with its IRL original
    /// (the downgraded merging of Figure 6).
    pub downgrade_merges: u64,
    /// Victim selections performed (eviction operations).
    pub victim_selections: u64,
}

/// The write-buffer policy interface.
///
/// Implementations must maintain: `len_pages() <= capacity_pages()` after
/// every call, and `contains(lpn)` consistent with the pages inserted and
/// evicted so far.
pub trait WriteBuffer {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> &str;

    /// Capacity in pages.
    fn capacity_pages(&self) -> usize;

    /// Pages currently cached.
    fn len_pages(&self) -> usize;

    /// Is `lpn` currently cached?
    fn contains(&self, lpn: Lpn) -> bool;

    /// Write one page. Returns `true` if the page was already cached (a
    /// write hit, absorbed in DRAM). On a miss the page is inserted;
    /// evictions required to make room are appended to `evictions`.
    fn write(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool;

    /// Read one page. Returns `true` on a buffer hit. Policies that cache
    /// read data may insert here (and thus evict); write-buffer policies
    /// only update recency metadata.
    fn read(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool;

    /// Number of policy metadata nodes currently allocated (list entries) —
    /// the basis of the paper's Figure 12 space-overhead model.
    fn node_count(&self) -> usize;

    /// Bytes of metadata: `node_count() * bytes-per-node` with the per-node
    /// sizes of §4.2.5 (LRU 12 B, block/virtual-block 24 B, request block
    /// 32 B).
    fn metadata_bytes(&self) -> usize;

    /// Pages per Req-block list level `[IRL, SRL, DRL]`; `None` for every
    /// other policy (Figure 13 probe).
    fn list_occupancy(&self) -> Option<[usize; 3]> {
        None
    }

    /// Structural transition counters; `None` for policies without any
    /// (only Req-block reports its list dynamics today).
    fn events(&self) -> Option<&CacheEvents> {
        None
    }

    /// Remove and return everything still cached (end-of-trace drain).
    fn drain(&mut self) -> Vec<EvictionBatch>;

    /// Hand a flushed [`EvictionBatch`] back to the policy so it can reuse
    /// the batch's page buffers for future blocks or batches instead of
    /// allocating fresh ones — the simulator calls this after every flush.
    /// The pages are already on flash; implementations must treat the
    /// contents as garbage. The default drops the batch.
    fn recycle(&mut self, _batch: EvictionBatch) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_constructors() {
        let b = EvictionBatch::striped(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.placement, Placement::Striped);
        assert!(b.dirty);
        assert!(b.pad_reads.is_empty());

        let s = EvictionBatch::single_block(vec![9]);
        assert_eq!(s.placement, Placement::SingleBlock);
    }

    #[test]
    fn empty_batch() {
        let b = EvictionBatch::striped(vec![]);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
