//! A shared fast, non-cryptographic hasher for the simulator's hot maps.
//!
//! Every per-page cache operation goes through at least one `HashMap`
//! keyed by a small integer (an LPN, a flash-block id, a request id).
//! `std`'s default SipHash-1-3 is DoS-resistant but costs tens of
//! nanoseconds per lookup, which the simulator — whose keys are not
//! attacker-controlled — does not need. This module provides the
//! Firefox/rustc "Fx" hash: one rotate, one xor, and one multiply per
//! 8-byte word, in-repo because the build environment has no crates.io
//! access.
//!
//! Use [`FxHashMap`]/[`FxHashSet`] anywhere the key space is internal
//! simulator state.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from the Fx hash (a 64-bit truncation of π's digits, as
/// used by rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// rustc's `FxHasher`: `hash = (hash.rotate_left(5) ^ word) * SEED` per
/// 8-byte word. Not DoS-resistant; do not expose to untrusted keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_ne_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_ne_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (stateless, so `Default` works
/// everywhere `HashMap::default()` is wanted).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An `FxHashMap` with pre-allocated capacity (the alias cannot offer
/// `with_capacity`, which assumes `RandomState`).
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_keys_hash_identically() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one(42u64), b.hash_one(42u64));
        assert_ne!(b.hash_one(42u64), b.hash_one(43u64));
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<u64, u32> = fx_map_with_capacity(16);
        for i in 0..1_000u64 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 1_000);
        for i in 0..1_000u64 {
            assert_eq!(m.get(&i), Some(&((i * 2) as u32)));
        }
        assert_eq!(m.remove(&500), Some(1_000));
        assert!(!m.contains_key(&500));
    }

    #[test]
    fn long_and_partial_writes_differ() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        assert_ne!(b.hash_one([1u8, 2, 3]), b.hash_one([1u8, 2, 3, 4]));
        assert_ne!(
            b.hash_one([1u8; 16]),
            b.hash_one([2u8; 16]),
            "multi-word inputs must mix"
        );
    }
}
