//! Physical addressing: channels, chips, blocks, pages.
//!
//! A physical page number ([`Ppn`]) is a dense `u64` encoding
//! `chip * pages_per_chip + block * pages_per_block + page`, which keeps FTL
//! map entries small. [`Addr`] is the unpacked form used when scheduling
//! operations.

use crate::config::SsdConfig;
use serde::{Deserialize, Serialize};

/// Dense physical page number (see module docs for the encoding).
pub type Ppn = u64;

/// Global chip index in `0..cfg.total_chips()`; chips of channel `c` are
/// `c * chips_per_channel ..` consecutively.
pub type ChipId = usize;

/// Unpacked physical page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Addr {
    /// Channel index.
    pub channel: usize,
    /// Chip index within the channel.
    pub chip: usize,
    /// Block index within the chip.
    pub block: usize,
    /// Page index within the block.
    pub page: usize,
}

impl Addr {
    /// Global chip id of this address.
    #[inline]
    pub fn chip_id(&self, cfg: &SsdConfig) -> ChipId {
        self.channel * cfg.chips_per_channel + self.chip
    }

    /// Pack into a dense [`Ppn`].
    #[inline]
    pub fn to_ppn(&self, cfg: &SsdConfig) -> Ppn {
        let chip = self.chip_id(cfg) as u64;
        chip * cfg.pages_per_chip()
            + self.block as u64 * cfg.pages_per_block as u64
            + self.page as u64
    }

    /// Unpack a dense [`Ppn`].
    #[inline]
    pub fn from_ppn(ppn: Ppn, cfg: &SsdConfig) -> Self {
        let pages_per_chip = cfg.pages_per_chip();
        let chip_id = (ppn / pages_per_chip) as usize;
        let within = ppn % pages_per_chip;
        let block = (within / cfg.pages_per_block as u64) as usize;
        let page = (within % cfg.pages_per_block as u64) as usize;
        Self {
            channel: chip_id / cfg.chips_per_channel,
            chip: chip_id % cfg.chips_per_channel,
            block,
            page,
        }
    }
}

/// Channel that owns a global chip id.
#[inline]
pub fn channel_of(chip: ChipId, cfg: &SsdConfig) -> usize {
    chip / cfg.chips_per_channel
}

/// Global block id (`chip * blocks_per_chip + block`), used by the FTL.
#[inline]
pub fn block_id(chip: ChipId, block: usize, cfg: &SsdConfig) -> usize {
    chip * cfg.blocks_per_chip() + block
}

/// Split a global block id back into `(chip, block)`.
#[inline]
pub fn split_block_id(gid: usize, cfg: &SsdConfig) -> (ChipId, usize) {
    (gid / cfg.blocks_per_chip(), gid % cfg.blocks_per_chip())
}

/// First [`Ppn`] of a global block id.
#[inline]
pub fn block_first_ppn(gid: usize, cfg: &SsdConfig) -> Ppn {
    let (chip, block) = split_block_id(gid, cfg);
    chip as u64 * cfg.pages_per_chip() + block as u64 * cfg.pages_per_block as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppn_roundtrip_paper_geometry() {
        let cfg = SsdConfig::paper();
        let a = Addr { channel: 7, chip: 1, block: 32_767, page: 63 };
        let ppn = a.to_ppn(&cfg);
        assert_eq!(Addr::from_ppn(ppn, &cfg), a);
        // Last page of the drive.
        assert_eq!(ppn, cfg.total_pages() - 1);
    }

    #[test]
    fn ppn_roundtrip_exhaustive_tiny() {
        let cfg = SsdConfig::tiny();
        for ppn in 0..cfg.total_pages() {
            let a = Addr::from_ppn(ppn, &cfg);
            assert_eq!(a.to_ppn(&cfg), ppn);
            assert!(a.channel < cfg.channels);
            assert!(a.chip < cfg.chips_per_channel);
            assert!(a.block < cfg.blocks_per_chip());
            assert!(a.page < cfg.pages_per_block);
        }
    }

    #[test]
    fn chip_ids_are_dense_and_channel_major() {
        let cfg = SsdConfig::paper();
        let a = Addr { channel: 3, chip: 1, block: 0, page: 0 };
        assert_eq!(a.chip_id(&cfg), 7);
        assert_eq!(channel_of(7, &cfg), 3);
    }

    #[test]
    fn block_id_roundtrip() {
        let cfg = SsdConfig::tiny();
        for chip in 0..cfg.total_chips() {
            for block in 0..cfg.blocks_per_chip() {
                let gid = block_id(chip, block, &cfg);
                assert_eq!(split_block_id(gid, &cfg), (chip, block));
            }
        }
    }

    #[test]
    fn block_first_ppn_is_page_zero() {
        let cfg = SsdConfig::tiny();
        let gid = block_id(1, 3, &cfg);
        let ppn = block_first_ppn(gid, &cfg);
        let a = Addr::from_ppn(ppn, &cfg);
        assert_eq!(a.page, 0);
        assert_eq!(a.block, 3);
        assert_eq!(a.chip_id(&cfg), 1);
    }
}
