//! Resource timelines: when is each channel bus and each chip free?
//!
//! The simulator is trace-driven rather than event-driven: operations are
//! issued in request order, and each operation reserves its resources by
//! advancing per-resource "busy until" horizons. This is the standard
//! technique SSDsim-style simulators use for open-loop trace replay and it
//! captures the effects the paper's evaluation depends on:
//!
//! * two programs to chips on *different* channels overlap fully;
//! * two programs to the *same* chip serialize on the array;
//! * two operations on different chips of the same channel serialize only
//!   for their bus-transfer phases (the array phases overlap);
//! * a GC erase makes the chip unavailable for 15 ms, which later operations
//!   on that chip observe as queueing delay.
//!
//! Operation anatomy:
//!
//! * **read**: array sense (`read_latency`) on the chip, then bus transfer
//!   out (`page_transfer`), holding the chip until the transfer completes
//!   (data sits in the chip's page register until moved out);
//! * **program**: bus transfer in, then array program; the bus is released
//!   once the transfer is done, the chip when the program finishes;
//! * **erase**: chip only, no bus traffic.

use crate::addr::ChipId;
use crate::config::SsdConfig;
use serde::{Deserialize, Serialize};

/// Start and end of a scheduled flash operation, in simulated ns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When the operation began occupying its first resource.
    pub start_ns: u64,
    /// When its last resource was released (the operation's finish time).
    pub end_ns: u64,
}

/// Running totals of flash operations, split by originator so the harness
/// can report user-visible flushes (Figure 11) separately from GC traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounters {
    /// Host/user page reads.
    pub user_reads: u64,
    /// Pages programmed on behalf of cache flushes (Figure 11's write count).
    pub user_programs: u64,
    /// Pages read back during GC valid-page migration.
    pub gc_reads: u64,
    /// Pages programmed during GC valid-page migration.
    pub gc_programs: u64,
    /// Block erases.
    pub erases: u64,
}

impl OpCounters {
    /// All page programs (user + GC), the write-amplification numerator.
    pub fn total_programs(&self) -> u64 {
        self.user_programs + self.gc_programs
    }

    /// Write amplification factor; 1.0 when no GC traffic has occurred.
    pub fn write_amplification(&self) -> f64 {
        if self.user_programs == 0 {
            return 1.0;
        }
        self.total_programs() as f64 / self.user_programs as f64
    }
}

/// Always-on busy-time accounting, kept separate from [`OpCounters`] (whose
/// exact shape is pinned by golden tests). Busy horizons say when a resource
/// frees up; these say how much of the elapsed run each resource actually
/// worked — the basis of the channel-utilization time series and the
/// queueing-delay diagnostics of the observability layer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BusyStats {
    /// Bus-transfer time accumulated per channel, ns.
    pub channel_busy_ns: Vec<u64>,
    /// Array + register occupancy accumulated per chip, ns.
    pub chip_busy_ns: Vec<u64>,
    /// Total time operations spent queued behind busy resources (start
    /// delayed past the requested issue time), ns.
    pub wait_ns: u128,
    /// Operations that had to wait at all.
    pub waited_ops: u64,
}

impl BusyStats {
    fn new(channels: usize, chips: usize) -> Self {
        Self {
            channel_busy_ns: vec![0; channels],
            chip_busy_ns: vec![0; chips],
            wait_ns: 0,
            waited_ops: 0,
        }
    }

    fn note_wait(&mut self, requested_ns: u64, start_ns: u64) {
        let wait = start_ns.saturating_sub(requested_ns);
        if wait > 0 {
            self.wait_ns += wait as u128;
            self.waited_ops += 1;
        }
    }

    /// Sum of per-channel bus busy time, ns.
    pub fn total_channel_busy_ns(&self) -> u128 {
        self.channel_busy_ns.iter().map(|&b| b as u128).sum()
    }

    /// Sum of per-chip busy time, ns.
    pub fn total_chip_busy_ns(&self) -> u128 {
        self.chip_busy_ns.iter().map(|&b| b as u128).sum()
    }

    /// Mean channel (bus) utilization over `[0, now_ns]`; 0 when `now_ns`
    /// is 0. Can exceed 1.0 when horizons run past `now_ns` (overload).
    pub fn channel_utilization(&self, now_ns: u64) -> f64 {
        if now_ns == 0 || self.channel_busy_ns.is_empty() {
            return 0.0;
        }
        self.total_channel_busy_ns() as f64
            / (self.channel_busy_ns.len() as u128 * now_ns as u128) as f64
    }
}

/// Who issued an operation (for counter attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Host request or cache flush.
    User,
    /// Garbage-collection traffic.
    Gc,
}

/// Kind of a captured flash operation (interval labelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Page read (sense + transfer out).
    Read,
    /// Page program (transfer in + array program).
    Program,
    /// Block erase.
    Erase,
}

impl OpKind {
    /// Stable lowercase name (trace-export slice label).
    pub const fn name(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Program => "program",
            OpKind::Erase => "erase",
        }
    }
}

/// One captured busy interval on a chip or channel track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpInterval {
    /// When the resource became busy, ns.
    pub start_ns: u64,
    /// When the resource was released, ns.
    pub end_ns: u64,
    /// What occupied it.
    pub kind: OpKind,
    /// Whether GC issued the operation.
    pub gc: bool,
}

/// Per-interval capture cap per track; beyond it intervals are counted in
/// [`IntervalLog::dropped`] instead of stored (a full-scale trace would
/// otherwise hold millions of intervals nobody renders).
const TRACK_CAP: usize = 4_096;

/// Captured per-chip and per-channel busy intervals (opt-in via
/// [`FlashTimeline::enable_interval_capture`]; the plain path never
/// allocates this). Intervals on one track never overlap: the busy-horizon
/// scheduling discipline starts every operation at or after the previous
/// release of the same resource.
#[derive(Debug, Clone, Default)]
pub struct IntervalLog {
    /// Intervals per chip, in schedule order (monotone start times).
    pub chip: Vec<Vec<OpInterval>>,
    /// Intervals per channel bus, in schedule order.
    pub channel: Vec<Vec<OpInterval>>,
    /// Intervals that did not fit under the per-track cap.
    pub dropped: u64,
}

impl IntervalLog {
    fn new(channels: usize, chips: usize) -> Self {
        Self { chip: vec![Vec::new(); chips], channel: vec![Vec::new(); channels], dropped: 0 }
    }

    fn push_chip(&mut self, chip: ChipId, iv: OpInterval) {
        if self.chip[chip].len() < TRACK_CAP {
            self.chip[chip].push(iv);
        } else {
            self.dropped += 1;
        }
    }

    fn push_channel(&mut self, ch: usize, iv: OpInterval) {
        if self.channel[ch].len() < TRACK_CAP {
            self.channel[ch].push(iv);
        } else {
            self.dropped += 1;
        }
    }
}

/// Per-channel and per-chip busy horizons plus operation counters.
#[derive(Debug, Clone)]
pub struct FlashTimeline {
    channel_free_ns: Vec<u64>,
    chip_free_ns: Vec<u64>,
    chips_per_channel: usize,
    /// `log2(chips_per_channel)` when it is a power of two: the chip →
    /// channel division on every operation becomes a shift.
    chan_shift: u32,
    /// Whether `chan_shift` applies (`chips_per_channel.is_power_of_two()`).
    chan_pow2: bool,
    /// Cached [`SsdConfig::page_transfer_ns`] — recomputed per call
    /// otherwise, and each operation needs it two or three times.
    xfer_ns: u64,
    counters: OpCounters,
    busy: BusyStats,
    /// Opt-in busy-interval capture (`None` on the plain path; one cold
    /// branch per operation when disabled).
    intervals: Option<Box<IntervalLog>>,
    /// Running maximum over all per-resource horizons, maintained on every
    /// scheduled operation so [`Self::horizon_ns`] is O(1) instead of a
    /// max-scan over channels + chips (it sits on the per-sample path of
    /// the utilization time series).
    horizon_ns: u64,
}

impl FlashTimeline {
    /// Fresh timeline: every resource free at t = 0.
    pub fn new(cfg: &SsdConfig) -> Self {
        Self {
            channel_free_ns: vec![0; cfg.channels],
            chip_free_ns: vec![0; cfg.total_chips()],
            chips_per_channel: cfg.chips_per_channel,
            chan_shift: cfg.chips_per_channel.trailing_zeros(),
            chan_pow2: cfg.chips_per_channel.is_power_of_two(),
            xfer_ns: cfg.page_transfer_ns(),
            counters: OpCounters::default(),
            busy: BusyStats::new(cfg.channels, cfg.total_chips()),
            intervals: None,
            horizon_ns: 0,
        }
    }

    /// Operation counters so far.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Busy-time accounting so far.
    pub fn busy(&self) -> &BusyStats {
        &self.busy
    }

    /// Start capturing per-chip / per-channel busy intervals from this
    /// point on (idempotent; intervals already captured are kept).
    pub fn enable_interval_capture(&mut self) {
        if self.intervals.is_none() {
            self.intervals = Some(Box::new(IntervalLog::new(
                self.channel_free_ns.len(),
                self.chip_free_ns.len(),
            )));
        }
    }

    /// Captured busy intervals, when capture is enabled.
    pub fn intervals(&self) -> Option<&IntervalLog> {
        self.intervals.as_deref()
    }

    /// Earliest time `chip` can start an array operation.
    pub fn chip_free_at(&self, chip: ChipId) -> u64 {
        self.chip_free_ns[chip]
    }

    /// Channel owning `chip` (shift when the per-channel chip count is a
    /// power of two, as in every shipped geometry).
    #[inline]
    fn chan(&self, chip: ChipId) -> usize {
        if self.chan_pow2 { chip >> self.chan_shift } else { chip / self.chips_per_channel }
    }

    /// Earliest time the channel owning `chip` can start a transfer.
    pub fn channel_free_at(&self, chip: ChipId) -> u64 {
        self.channel_free_ns[self.chan(chip)]
    }

    /// Per-chip completion horizon: when every operation already scheduled
    /// through `chip`'s pipeline (its array *and* its channel bus) has
    /// finished. This is the NCQ drain point the host engine's per-chip
    /// ready cursors key on — an operation completing at
    /// `chip_horizon_ns(chip)` is the last one outstanding on that chip.
    pub fn chip_horizon_ns(&self, chip: ChipId) -> u64 {
        self.chip_free_ns[chip].max(self.channel_free_ns[self.chan(chip)])
    }

    /// Schedule a page read on `chip` no earlier than `at`.
    pub fn read(&mut self, cfg: &SsdConfig, chip: ChipId, at: u64, origin: Origin) -> Completion {
        let ch = self.chan(chip);
        let sense_start = at.max(self.chip_free_ns[chip]);
        let sense_done = sense_start + cfg.read_latency_ns;
        let xfer_start = sense_done.max(self.channel_free_ns[ch]);
        let end = xfer_start + self.xfer_ns;
        // Chip holds the page register until the data is moved out.
        self.chip_free_ns[chip] = end;
        self.channel_free_ns[ch] = end;
        self.horizon_ns = self.horizon_ns.max(end);
        self.busy.note_wait(at, sense_start);
        self.busy.channel_busy_ns[ch] += self.xfer_ns;
        self.busy.chip_busy_ns[chip] += end - sense_start;
        match origin {
            Origin::User => self.counters.user_reads += 1,
            Origin::Gc => self.counters.gc_reads += 1,
        }
        if let Some(log) = self.intervals.as_deref_mut() {
            let gc = origin == Origin::Gc;
            log.push_chip(chip, OpInterval { start_ns: sense_start, end_ns: end, kind: OpKind::Read, gc });
            log.push_channel(ch, OpInterval { start_ns: xfer_start, end_ns: end, kind: OpKind::Read, gc });
        }
        Completion { start_ns: sense_start, end_ns: end }
    }

    /// Schedule a page program on `chip` no earlier than `at`.
    pub fn program(
        &mut self,
        cfg: &SsdConfig,
        chip: ChipId,
        at: u64,
        origin: Origin,
    ) -> Completion {
        let ch = self.chan(chip);
        // Data must be moved over the bus into the chip's register, so both
        // the bus and the chip must be free before the transfer starts.
        let xfer_start = at.max(self.channel_free_ns[ch]).max(self.chip_free_ns[chip]);
        let xfer_done = xfer_start + self.xfer_ns;
        let end = xfer_done + cfg.program_latency_ns;
        self.channel_free_ns[ch] = xfer_done; // bus released after transfer
        self.chip_free_ns[chip] = end;
        self.horizon_ns = self.horizon_ns.max(end);
        self.busy.note_wait(at, xfer_start);
        self.busy.channel_busy_ns[ch] += self.xfer_ns;
        self.busy.chip_busy_ns[chip] += end - xfer_start;
        match origin {
            Origin::User => self.counters.user_programs += 1,
            Origin::Gc => self.counters.gc_programs += 1,
        }
        if let Some(log) = self.intervals.as_deref_mut() {
            let gc = origin == Origin::Gc;
            log.push_chip(chip, OpInterval { start_ns: xfer_start, end_ns: end, kind: OpKind::Program, gc });
            log.push_channel(ch, OpInterval { start_ns: xfer_start, end_ns: xfer_done, kind: OpKind::Program, gc });
        }
        Completion { start_ns: xfer_start, end_ns: end }
    }

    /// The device-wide completion horizon: the latest instant any channel
    /// bus or chip array stays busy, i.e. when the last scheduled operation
    /// finishes. 0 on an idle device.
    ///
    /// This is the natural upper edge of a utilization window: per-resource
    /// busy time can never exceed its own horizon, so windowing
    /// [`BusyStats::channel_utilization`] on `horizon_ns().max(now)` keeps
    /// the ratio within `[0, 1]` even when service outruns arrivals.
    pub fn horizon_ns(&self) -> u64 {
        self.horizon_ns
    }

    /// Schedule a block erase on `chip` no earlier than `at`.
    pub fn erase(&mut self, cfg: &SsdConfig, chip: ChipId, at: u64) -> Completion {
        let start = at.max(self.chip_free_ns[chip]);
        let end = start + cfg.erase_latency_ns;
        self.chip_free_ns[chip] = end;
        self.horizon_ns = self.horizon_ns.max(end);
        self.busy.note_wait(at, start);
        self.busy.chip_busy_ns[chip] += cfg.erase_latency_ns;
        self.counters.erases += 1;
        if let Some(log) = self.intervals.as_deref_mut() {
            log.push_chip(chip, OpInterval { start_ns: start, end_ns: end, kind: OpKind::Erase, gc: true });
        }
        Completion { start_ns: start, end_ns: end }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SsdConfig {
        SsdConfig::paper()
    }

    #[test]
    fn single_program_timing() {
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        let c = tl.program(&cfg, 0, 1_000, Origin::User);
        assert_eq!(c.start_ns, 1_000);
        assert_eq!(c.end_ns, 1_000 + cfg.page_transfer_ns() + cfg.program_latency_ns);
        assert_eq!(tl.counters().user_programs, 1);
    }

    #[test]
    fn single_read_timing() {
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        let c = tl.read(&cfg, 5, 0, Origin::User);
        assert_eq!(c.end_ns, cfg.read_latency_ns + cfg.page_transfer_ns());
        assert_eq!(tl.counters().user_reads, 1);
    }

    #[test]
    fn programs_on_different_channels_overlap() {
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        // Chips 0 and 2 are on channels 0 and 1.
        let a = tl.program(&cfg, 0, 0, Origin::User);
        let b = tl.program(&cfg, 2, 0, Origin::User);
        assert_eq!(a.end_ns, b.end_ns, "independent channels must run in parallel");
    }

    #[test]
    fn programs_on_same_chip_serialize_fully() {
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        let a = tl.program(&cfg, 0, 0, Origin::User);
        let b = tl.program(&cfg, 0, 0, Origin::User);
        assert_eq!(b.start_ns, a.end_ns, "same chip: second waits for program");
    }

    #[test]
    fn programs_on_same_channel_different_chip_pipeline() {
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        // Chips 0 and 1 share channel 0: the second transfer waits only for
        // the first transfer (bus), then both programs proceed in parallel.
        let a = tl.program(&cfg, 0, 0, Origin::User);
        let b = tl.program(&cfg, 1, 0, Origin::User);
        assert_eq!(b.start_ns, cfg.page_transfer_ns());
        assert_eq!(b.end_ns, a.end_ns + cfg.page_transfer_ns());
    }

    #[test]
    fn read_holds_chip_through_transfer() {
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        let a = tl.read(&cfg, 0, 0, Origin::User);
        // Next array op on the same chip cannot start before the data left
        // the page register.
        let b = tl.read(&cfg, 0, 0, Origin::User);
        assert_eq!(b.start_ns, a.end_ns);
    }

    #[test]
    fn erase_uses_no_bus() {
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        let e = tl.erase(&cfg, 0, 0);
        assert_eq!(e.end_ns, cfg.erase_latency_ns);
        // Bus of channel 0 still free: a program on chip 1 starts at t=0.
        let p = tl.program(&cfg, 1, 0, Origin::User);
        assert_eq!(p.start_ns, 0);
        assert_eq!(tl.counters().erases, 1);
    }

    #[test]
    fn erase_delays_later_ops_on_chip() {
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        tl.erase(&cfg, 3, 0);
        let r = tl.read(&cfg, 3, 0, Origin::Gc);
        assert_eq!(r.start_ns, cfg.erase_latency_ns);
        assert_eq!(tl.counters().gc_reads, 1);
    }

    #[test]
    fn idle_gap_respected() {
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        tl.program(&cfg, 0, 0, Origin::User);
        // An op requested far in the future starts exactly then.
        let late = 1_000_000_000;
        let c = tl.program(&cfg, 0, late, Origin::User);
        assert_eq!(c.start_ns, late);
    }

    #[test]
    fn counters_attribute_origin() {
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        tl.program(&cfg, 0, 0, Origin::User);
        tl.program(&cfg, 0, 0, Origin::Gc);
        tl.read(&cfg, 0, 0, Origin::Gc);
        let c = tl.counters();
        assert_eq!(c.user_programs, 1);
        assert_eq!(c.gc_programs, 1);
        assert_eq!(c.gc_reads, 1);
        assert_eq!(c.total_programs(), 2);
        assert!((c.write_amplification() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn write_amplification_defaults_to_one() {
        assert_eq!(OpCounters::default().write_amplification(), 1.0);
    }

    #[test]
    fn busy_stats_track_transfer_and_occupancy() {
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        let c = tl.program(&cfg, 0, 0, Origin::User);
        let b = tl.busy();
        assert_eq!(b.channel_busy_ns[0], cfg.page_transfer_ns());
        assert_eq!(b.chip_busy_ns[0], c.end_ns - c.start_ns);
        assert_eq!(b.wait_ns, 0, "first op on idle device never waits");
        assert_eq!(b.waited_ops, 0);
        // A second program on the same chip queues behind the first.
        let c2 = tl.program(&cfg, 0, 0, Origin::User);
        let b = tl.busy();
        assert_eq!(b.waited_ops, 1);
        assert_eq!(b.wait_ns, c2.start_ns as u128);
        assert!(b.channel_utilization(c2.end_ns) > 0.0);
        assert!(b.channel_utilization(0) == 0.0);
    }

    #[test]
    fn busy_stats_erase_charges_chip_only() {
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        tl.erase(&cfg, 2, 0);
        let b = tl.busy();
        assert_eq!(b.chip_busy_ns[2], cfg.erase_latency_ns);
        assert_eq!(b.total_channel_busy_ns(), 0);
        assert_eq!(b.total_chip_busy_ns(), cfg.erase_latency_ns as u128);
    }

    #[test]
    fn horizon_tracks_last_completion() {
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        assert_eq!(tl.horizon_ns(), 0, "idle device has no horizon");
        let a = tl.program(&cfg, 0, 0, Origin::User);
        assert_eq!(tl.horizon_ns(), a.end_ns);
        let e = tl.erase(&cfg, 5, 0);
        assert_eq!(tl.horizon_ns(), a.end_ns.max(e.end_ns));
    }

    #[test]
    fn chip_horizon_includes_channel_bus() {
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        // Program on chip 0 busies channel 0's bus for the transfer; chip 1
        // shares that bus, so its pipeline horizon reflects the bus even
        // though its array is idle.
        let a = tl.program(&cfg, 0, 0, Origin::User);
        assert_eq!(tl.chip_horizon_ns(0), a.end_ns);
        assert_eq!(tl.chip_horizon_ns(1), cfg.page_transfer_ns());
        // Chip 2 is on channel 1: fully idle.
        assert_eq!(tl.chip_horizon_ns(2), 0);
    }

    #[test]
    fn utilization_windowed_on_horizon_never_exceeds_one() {
        // Overload: many same-channel programs all "arrive" at t = 0, so the
        // horizon runs far past the last arrival. Windowed on the arrival
        // clock utilization would be >> 1; windowed on the horizon it must
        // stay within [0, 1].
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        for _ in 0..64 {
            tl.program(&cfg, 0, 0, Origin::User);
        }
        let last_arrival = 0;
        assert!(tl.horizon_ns() > last_arrival);
        let util = tl.busy().channel_utilization(tl.horizon_ns().max(last_arrival));
        assert!(util > 0.0);
        assert!(util <= 1.0, "horizon-windowed utilization must be <= 1, got {util}");
    }

    #[test]
    fn interval_capture_is_opt_in_and_non_overlapping() {
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        tl.program(&cfg, 0, 0, Origin::User);
        assert!(tl.intervals().is_none(), "capture must be opt-in");
        tl.enable_interval_capture();
        tl.program(&cfg, 0, 0, Origin::User);
        tl.read(&cfg, 0, 0, Origin::User);
        tl.read(&cfg, 1, 0, Origin::Gc);
        tl.erase(&cfg, 0, 0);
        let log = tl.intervals().unwrap();
        // Chip 0: program, read, erase — all after the uncaptured first op.
        let kinds: Vec<OpKind> = log.chip[0].iter().map(|iv| iv.kind).collect();
        assert_eq!(kinds, vec![OpKind::Program, OpKind::Read, OpKind::Erase]);
        assert!(log.chip[1][0].gc, "GC origin must be labelled");
        assert_eq!(log.dropped, 0);
        // Per-track non-overlap: each interval starts at or after the
        // previous one's end (chips and channels alike).
        for track in log.chip.iter().chain(&log.channel) {
            for w in track.windows(2) {
                assert!(w[1].start_ns >= w[0].end_ns, "overlap: {w:?}");
            }
        }
        // The channel track saw the program transfer and both read xfers.
        assert_eq!(log.channel[0].len(), 3);
    }

    #[test]
    fn sixteen_chip_fanout_bounded_by_channels() {
        // Flushing 8 pages striped over 8 channels costs one program latency
        // plus one transfer, not eight.
        let cfg = cfg();
        let mut tl = FlashTimeline::new(&cfg);
        let mut last_end = 0;
        for ch in 0..8 {
            let chip = ch * cfg.chips_per_channel;
            last_end = last_end.max(tl.program(&cfg, chip, 0, Origin::User).end_ns);
        }
        assert_eq!(last_end, cfg.page_transfer_ns() + cfg.program_latency_ns);
    }
}
