//! Flash array substrate (SSDsim-style timing model).
//!
//! The paper evaluates Req-block on SSDsim \[26\] configured per its Table 1:
//! a 128 GB drive with 8 channels x 2 chips, 64 pages per block, 4 KB pages,
//! 75 us reads, 2 ms programs, 15 ms erases, a 10 ns/byte channel bus and a
//! 10 % GC threshold. This crate models exactly those resources:
//!
//! * [`SsdConfig`] — the Table 1 parameter set plus derived geometry.
//! * [`Addr`]/[`Ppn`] — physical page addressing across channels, chips,
//!   blocks and pages.
//! * [`FlashTimeline`] — per-channel bus and per-chip array occupancy
//!   timelines; scheduling an operation returns its start/finish times and
//!   advances the busy horizons, which is how multi-channel parallelism (and
//!   BPLRU's lack of it when flushing to a single block) becomes visible in
//!   simulated response times.
//!
//! Reliability: [`fault`] adds a seeded, deterministic fault model
//! ([`FaultConfig`]/[`FaultModel`]) that the FTL consults to fail
//! reads/programs/erases with configurable, wear-scaled probabilities. The
//! default configuration is zero-fault and bit-identical to a build without
//! the layer.
//!
//! The FTL (sibling crate `reqblock-ftl`) owns block/page *state*; this crate
//! owns *geometry, time, and fault decisions*.

pub mod addr;
pub mod config;
pub mod fault;
pub mod timeline;

pub use addr::{Addr, ChipId, Ppn};
pub use config::SsdConfig;
pub use fault::{DegradedMode, FaultConfig, FaultModel, FaultStats, PPM_SCALE};
pub use timeline::{BusyStats, Completion, FlashTimeline, IntervalLog, OpCounters, OpInterval, OpKind};
