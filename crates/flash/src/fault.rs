//! Deterministic fault injection for the flash substrate.
//!
//! Real NAND fails: reads suffer raw bit errors that force retries with
//! tuned reference voltages, programs fail and condemn their block, erases
//! fail and retire blocks outright — and all three get *more* likely as a
//! block wears. The simulator reproduces those behaviours with a seeded
//! [`FaultModel`] so that reliability experiments stay exactly as
//! reproducible as the happy path: identical seed + config ⇒ the same
//! operations fail at the same points ⇒ byte-identical telemetry.
//!
//! Design constraints (see DESIGN.md §9):
//!
//! * **No external dependencies.** The PRNG is an inline xorshift64*
//!   generator, consistent with the offline-build policy (the `compat/`
//!   stand-ins provide no real randomness on purpose).
//! * **Integer probabilities.** Fail rates are expressed in parts per
//!   million ([`PPM_SCALE`]) and compared against `next_u64 % 1_000_000`,
//!   so there is no floating-point rounding to drift across platforms.
//! * **Zero-fault is free.** With every rate at 0 (the
//!   [`FaultConfig::default`]), [`FaultModel::is_inert`] is true, every
//!   decision short-circuits before touching the PRNG, and the simulator
//!   behaves bit-for-bit like a build without the fault layer — the golden
//!   determinism tests and the hot-path bench gate run with the layer
//!   enabled-but-zeroed.
//!
//! The model only *decides*; the FTL (`reqblock-ftl`) owns the consequences
//! (retry scheduling, page remap, block retirement, degraded mode) and
//! accounts them in [`FaultStats`].

use serde::{Deserialize, Serialize};

/// Probability scale: rates are parts per million (1_000_000 = always).
pub const PPM_SCALE: u32 = 1_000_000;

/// What the FTL does once a chip can no longer honour new writes (free
/// blocks below [`FaultConfig::read_only_free_floor`], or physical
/// exhaustion while faults are active).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradedMode {
    /// Reject new host writes but keep serving reads — how real drives
    /// fail: the data you have stays readable.
    #[default]
    ReadOnly,
    /// Escalate with a panic: for harnesses that treat capacity exhaustion
    /// under faults as a configuration error rather than a scenario.
    Escalate,
}

/// Configuration of the deterministic fault layer. All-zero rates (the
/// default) disable injection entirely.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// PRNG seed; together with the operation sequence it fully determines
    /// which operations fail.
    pub seed: u64,
    /// Base probability that a flash read needs retries, in ppm.
    pub read_fail_ppm: u32,
    /// Base probability that a program operation fails, in ppm.
    pub program_fail_ppm: u32,
    /// Base probability that an erase operation fails, in ppm.
    pub erase_fail_ppm: u32,
    /// Wear scaling: added to each base rate once per erase the target
    /// block has seen (`effective = base + erase_count * this`, saturating
    /// at [`PPM_SCALE`]).
    pub wear_ppm_per_erase: u32,
    /// Read retries attempted before declaring a read uncorrectable. Each
    /// retry is a full flash read that re-occupies the chip/bus timelines.
    pub max_read_retries: u32,
    /// Per-chip free-block floor that triggers degraded mode; `0` (the
    /// default) never degrades, preserving the legacy out-of-space panic.
    pub read_only_free_floor: usize,
    /// Behaviour once the floor is crossed (or a chip is physically out of
    /// space while faults are active).
    pub on_exhaustion: DegradedMode,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED_F417_C0DE_2022,
            read_fail_ppm: 0,
            program_fail_ppm: 0,
            erase_fail_ppm: 0,
            wear_ppm_per_erase: 0,
            max_read_retries: 3,
            read_only_free_floor: 0,
            on_exhaustion: DegradedMode::ReadOnly,
        }
    }
}

impl FaultConfig {
    /// A config failing reads/programs/erases at the given base rates (ppm)
    /// with the given seed; other knobs at their defaults.
    pub fn with_rates(seed: u64, read_ppm: u32, program_ppm: u32, erase_ppm: u32) -> Self {
        Self {
            seed,
            read_fail_ppm: read_ppm,
            program_fail_ppm: program_ppm,
            erase_fail_ppm: erase_ppm,
            ..Self::default()
        }
    }

    /// True when no operation can ever fail under this config.
    pub fn is_inert(&self) -> bool {
        self.read_fail_ppm == 0
            && self.program_fail_ppm == 0
            && self.erase_fail_ppm == 0
            && self.wear_ppm_per_erase == 0
    }
}

/// Reliability counters, owned by the FTL. Kept separate from
/// [`crate::OpCounters`] and `FtlStats` (whose exact shapes are pinned by
/// golden tests) — same pattern as `FtlObs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Reads whose first attempt failed (each then entered the retry loop).
    pub read_faults: u64,
    /// Total retry read operations issued (each a full timed flash read).
    pub read_retries: u64,
    /// Reads still failing after [`FaultConfig::max_read_retries`] retries.
    pub read_uncorrectable: u64,
    /// Program operations that failed (each retires a block).
    pub program_failures: u64,
    /// Erase operations that failed (each retires a block).
    pub erase_failures: u64,
    /// Blocks permanently retired (marked bad).
    pub retired_blocks: u64,
    /// Valid pages migrated off retiring blocks (remap traffic).
    pub remapped_pages: u64,
    /// Host write pages rejected while the device was in read-only
    /// degraded mode.
    pub rejected_write_pages: u64,
}

/// Seeded fault decision engine: one per FTL instance.
///
/// Decisions are drawn from an inline xorshift64* PRNG, consumed **only**
/// when the corresponding effective rate is nonzero, so enabling the layer
/// with zero rates changes nothing — and a run with only program faults
/// draws exactly one number per program, never for reads or erases.
#[derive(Debug, Clone)]
pub struct FaultModel {
    cfg: FaultConfig,
    state: u64,
    inert: bool,
}

impl FaultModel {
    /// Build a model; the PRNG state derives from `cfg.seed`.
    pub fn new(cfg: FaultConfig) -> Self {
        let inert = cfg.is_inert();
        // xorshift must not start at 0; fold in a constant and force a bit.
        let state = (cfg.seed ^ 0x9E37_79B9_7F4A_7C15) | 1;
        Self { cfg, state, inert }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True when no operation can ever fail (all rates zero): callers may
    /// skip wear lookups and bookkeeping entirely.
    #[inline]
    pub fn is_inert(&self) -> bool {
        self.inert
    }

    /// xorshift64* step.
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// One fault decision at `base_ppm` on a block with `wear` erases.
    /// Consumes a PRNG draw only when the effective rate is nonzero.
    #[inline]
    fn roll(&mut self, base_ppm: u32, wear: u32) -> bool {
        if self.inert {
            return false;
        }
        let eff = (base_ppm as u64 + wear as u64 * self.cfg.wear_ppm_per_erase as u64)
            .min(PPM_SCALE as u64);
        if eff == 0 {
            return false;
        }
        self.next_u64() % (PPM_SCALE as u64) < eff
    }

    /// Does a read (initial attempt or retry) on a block with `wear` erases
    /// fail?
    #[inline]
    pub fn read_fails(&mut self, wear: u32) -> bool {
        self.roll(self.cfg.read_fail_ppm, wear)
    }

    /// Does a program on a block with `wear` erases fail?
    #[inline]
    pub fn program_fails(&mut self, wear: u32) -> bool {
        self.roll(self.cfg.program_fail_ppm, wear)
    }

    /// Does an erase of a block with `wear` prior erases fail?
    #[inline]
    pub fn erase_fails(&mut self, wear: u32) -> bool {
        self.roll(self.cfg.erase_fail_ppm, wear)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inert() {
        let cfg = FaultConfig::default();
        assert!(cfg.is_inert());
        let mut m = FaultModel::new(cfg);
        assert!(m.is_inert());
        for wear in [0, 10, 1_000] {
            assert!(!m.read_fails(wear));
            assert!(!m.program_fails(wear));
            assert!(!m.erase_fails(wear));
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let cfg = FaultConfig::with_rates(42, 250_000, 125_000, 62_500);
        let mut a = FaultModel::new(cfg.clone());
        let mut b = FaultModel::new(cfg);
        for wear in 0..1_000 {
            assert_eq!(a.read_fails(wear % 7), b.read_fails(wear % 7));
            assert_eq!(a.program_fails(wear % 5), b.program_fails(wear % 5));
            assert_eq!(a.erase_fails(wear % 3), b.erase_fails(wear % 3));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultModel::new(FaultConfig::with_rates(1, 500_000, 0, 0));
        let mut b = FaultModel::new(FaultConfig::with_rates(2, 500_000, 0, 0));
        let diverged = (0..256).any(|_| a.read_fails(0) != b.read_fails(0));
        assert!(diverged, "seeds 1 and 2 produced identical decision streams");
    }

    #[test]
    fn certain_failure_at_full_scale() {
        let mut m = FaultModel::new(FaultConfig::with_rates(7, PPM_SCALE, PPM_SCALE, PPM_SCALE));
        for _ in 0..64 {
            assert!(m.read_fails(0));
            assert!(m.program_fails(0));
            assert!(m.erase_fails(0));
        }
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        // 10% read-fail rate over 100k trials: the observed frequency must
        // land well inside ±1.5% (xorshift64* is far better than that).
        let mut m = FaultModel::new(FaultConfig::with_rates(1234, 100_000, 0, 0));
        let trials = 100_000;
        let fails = (0..trials).filter(|_| m.read_fails(0)).count();
        let rate = fails as f64 / trials as f64;
        assert!((rate - 0.10).abs() < 0.015, "observed {rate}");
    }

    #[test]
    fn wear_scaling_raises_failure_rate() {
        let cfg = FaultConfig {
            read_fail_ppm: 10_000,       // 1% when fresh
            wear_ppm_per_erase: 10_000,  // +1% per erase
            ..FaultConfig::with_rates(99, 0, 0, 0)
        };
        let count = |wear: u32| {
            let mut m = FaultModel::new(cfg.clone());
            (0..20_000).filter(|_| m.read_fails(wear)).count()
        };
        let fresh = count(0);
        let worn = count(50); // effective 51%
        assert!(worn > fresh * 10, "fresh {fresh} vs worn {worn}");
    }

    #[test]
    fn wear_scaling_saturates_at_certainty() {
        let cfg = FaultConfig {
            wear_ppm_per_erase: PPM_SCALE, // one erase is enough
            ..FaultConfig::with_rates(5, 0, 0, 0)
        };
        let mut m = FaultModel::new(cfg);
        assert!(!m.program_fails(0), "no base rate, fresh block never fails");
        assert!(m.program_fails(1));
        assert!(m.program_fails(u32::MAX), "saturating math must not overflow");
    }

    #[test]
    fn zero_rate_ops_consume_no_randomness() {
        // Only programs can fail: interleaving read decisions must not
        // perturb the program decision stream.
        let cfg = FaultConfig::with_rates(11, 0, 300_000, 0);
        let mut plain = FaultModel::new(cfg.clone());
        let with_reads = {
            let mut m = FaultModel::new(cfg);
            (0..500)
                .map(|_| {
                    assert!(!m.read_fails(0));
                    m.program_fails(0)
                })
                .collect::<Vec<_>>()
        };
        let alone: Vec<bool> = (0..500).map(|_| plain.program_fails(0)).collect();
        assert_eq!(with_reads, alone);
    }
}
