//! SSD configuration: the paper's Table 1 plus derived geometry.

use serde::{Deserialize, Serialize};

/// Full parameter set of the simulated SSD.
///
/// [`SsdConfig::paper`] returns Table 1 verbatim; [`SsdConfig::tiny`] is a
/// miniature drive for unit tests where GC must trigger quickly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Number of channels (Table 1: 8).
    pub channels: usize,
    /// Chips per channel (Table 1: 2).
    pub chips_per_channel: usize,
    /// Pages per flash block (Table 1: 64).
    pub pages_per_block: usize,
    /// Page size in bytes (Table 1: 4 KB).
    pub page_size: u64,
    /// Total raw capacity in bytes (Table 1: 128 GB).
    pub capacity_bytes: u64,
    /// Flash array read (sense) latency in ns (Table 1: 0.075 ms).
    pub read_latency_ns: u64,
    /// Flash program latency in ns (Table 1: 2 ms).
    pub program_latency_ns: u64,
    /// Block erase latency in ns (Table 1: 15 ms).
    pub erase_latency_ns: u64,
    /// Channel bus transfer time per byte in ns (Table 1: 10 ns/B).
    pub transfer_ns_per_byte: u64,
    /// GC triggers on a chip when its free-block fraction drops below this
    /// (Table 1: 10 %).
    pub gc_threshold: f64,
    /// DRAM access time per page for cache hits/inserts, in ns. Not in
    /// Table 1; SSDsim charges a small constant for buffer traffic. 2 us is
    /// the bus transfer time of half a page and is negligible next to the
    /// 2 ms program latency, matching the paper's premise that buffered
    /// writes are "significantly shortened".
    pub dram_access_ns: u64,
}

impl SsdConfig {
    /// The exact configuration of the paper's Table 1.
    pub fn paper() -> Self {
        Self {
            channels: 8,
            chips_per_channel: 2,
            pages_per_block: 64,
            page_size: 4096,
            capacity_bytes: 128 * (1 << 30),
            read_latency_ns: 75_000,
            program_latency_ns: 2_000_000,
            erase_latency_ns: 15_000_000,
            transfer_ns_per_byte: 10,
            gc_threshold: 0.10,
            dram_access_ns: 2_000,
        }
    }

    /// A miniature SSD (2 channels x 1 chip, 32 blocks/chip, 8 pages/block)
    /// whose GC triggers after a few hundred page writes — for unit tests.
    pub fn tiny() -> Self {
        let channels = 2;
        let chips_per_channel = 1;
        let pages_per_block = 8;
        let page_size = 4096;
        let blocks_per_chip = 32u64;
        Self {
            channels,
            chips_per_channel,
            pages_per_block,
            page_size,
            capacity_bytes: blocks_per_chip
                * (channels * chips_per_channel) as u64
                * pages_per_block as u64
                * page_size,
            read_latency_ns: 75_000,
            program_latency_ns: 2_000_000,
            erase_latency_ns: 15_000_000,
            transfer_ns_per_byte: 10,
            gc_threshold: 0.10,
            dram_access_ns: 2_000,
        }
    }

    /// Check internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.chips_per_channel == 0 {
            return Err("need at least one channel and one chip".into());
        }
        if self.pages_per_block == 0 || self.pages_per_block > 64 {
            // The FTL packs per-block valid bitmaps into a u64.
            return Err("pages_per_block must be in 1..=64".into());
        }
        if self.page_size == 0 {
            return Err("page_size must be > 0".into());
        }
        let chip_bytes =
            self.total_chips() as u64 * self.pages_per_block as u64 * self.page_size;
        if self.capacity_bytes < chip_bytes {
            return Err("capacity smaller than one block per chip".into());
        }
        if !self.capacity_bytes.is_multiple_of(chip_bytes) {
            return Err("capacity must be a whole number of blocks per chip".into());
        }
        if !(0.0..1.0).contains(&self.gc_threshold) {
            return Err("gc_threshold must be in [0,1)".into());
        }
        Ok(())
    }

    /// Total number of chips (`channels * chips_per_channel`).
    #[inline]
    pub fn total_chips(&self) -> usize {
        self.channels * self.chips_per_channel
    }

    /// Blocks on each chip.
    #[inline]
    pub fn blocks_per_chip(&self) -> usize {
        (self.capacity_bytes
            / (self.total_chips() as u64 * self.pages_per_block as u64 * self.page_size))
            as usize
    }

    /// Pages on each chip.
    #[inline]
    pub fn pages_per_chip(&self) -> u64 {
        self.blocks_per_chip() as u64 * self.pages_per_block as u64
    }

    /// Total blocks on the drive.
    #[inline]
    pub fn total_blocks(&self) -> usize {
        self.blocks_per_chip() * self.total_chips()
    }

    /// Total physical pages on the drive.
    #[inline]
    pub fn total_pages(&self) -> u64 {
        self.pages_per_chip() * self.total_chips() as u64
    }

    /// Time to move one page over a channel bus, in ns.
    #[inline]
    pub fn page_transfer_ns(&self) -> u64 {
        self.page_size * self.transfer_ns_per_byte
    }

    /// Free-block count below which a chip runs GC.
    #[inline]
    pub fn gc_free_blocks_floor(&self) -> usize {
        ((self.blocks_per_chip() as f64) * self.gc_threshold).ceil() as usize
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_validates() {
        SsdConfig::paper().validate().unwrap();
    }

    #[test]
    fn tiny_config_validates() {
        SsdConfig::tiny().validate().unwrap();
    }

    #[test]
    fn paper_geometry_matches_table1() {
        let c = SsdConfig::paper();
        assert_eq!(c.total_chips(), 16);
        // 128 GB / (16 chips * 64 pages * 4 KB) = 32768 blocks per chip.
        assert_eq!(c.blocks_per_chip(), 32_768);
        assert_eq!(c.total_blocks(), 524_288);
        assert_eq!(c.total_pages(), 33_554_432);
        // 4 KB at 10 ns/B = 40.96 us per page transfer.
        assert_eq!(c.page_transfer_ns(), 40_960);
        // 10 % of 32768 blocks.
        assert_eq!(c.gc_free_blocks_floor(), 3_277);
    }

    #[test]
    fn paper_latencies_match_table1() {
        let c = SsdConfig::paper();
        assert_eq!(c.read_latency_ns, 75_000); // 0.075 ms
        assert_eq!(c.program_latency_ns, 2_000_000); // 2 ms
        assert_eq!(c.erase_latency_ns, 15_000_000); // 15 ms
        assert_eq!(c.transfer_ns_per_byte, 10);
        assert!((c.gc_threshold - 0.10).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_zero_channels() {
        let mut c = SsdConfig::paper();
        c.channels = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_oversized_blocks() {
        let mut c = SsdConfig::paper();
        c.pages_per_block = 128; // valid-bitmap packing limit
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_ragged_capacity() {
        let mut c = SsdConfig::tiny();
        c.capacity_bytes += 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_gc_threshold() {
        let mut c = SsdConfig::paper();
        c.gc_threshold = 1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(SsdConfig::default(), SsdConfig::paper());
    }
}
