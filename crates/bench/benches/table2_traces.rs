//! Table 2: trace specifications — prints paper-vs-measured statistics and
//! times synthetic trace generation + statistics collection.

use criterion::{criterion_group, criterion_main, Criterion};
use reqblock_bench::{bench_opts, timing_profile};
use reqblock_experiments::figures;
use reqblock_trace::stats::StatsBuilder;
use reqblock_trace::SyntheticTrace;

fn bench(c: &mut Criterion) {
    println!("{}", figures::table2(&bench_opts()).to_markdown());
    c.bench_function("table2/generate_ts0_9k_requests", |b| {
        b.iter(|| SyntheticTrace::new(timing_profile()).generate_all())
    });
    c.bench_function("table2/stats_ts0_9k_requests", |b| {
        let reqs = SyntheticTrace::new(timing_profile()).generate_all();
        b.iter(|| {
            let mut s = StatsBuilder::new();
            for r in &reqs {
                s.add(r);
            }
            s.finish()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
