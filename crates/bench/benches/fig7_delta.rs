//! Figure 7: delta sensitivity — prints the normalized hit/response series
//! and times Req-block runs at the extremes of the sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use reqblock_bench::{bench_opts, timing_profile};
use reqblock_core::ReqBlockConfig;
use reqblock_experiments::figures;
use reqblock_sim::{run_trace, CacheSizeMb, PolicyKind, SimConfig};
use reqblock_trace::SyntheticTrace;

fn bench(c: &mut Criterion) {
    let (hits, resp) = figures::fig7(&bench_opts());
    println!("{}", hits.to_markdown());
    println!("{}", resp.to_markdown());
    for delta in [1u32, 5, 9] {
        c.bench_function(&format!("fig7/reqblock_delta_{delta}"), |b| {
            b.iter(|| {
                let cfg = SimConfig::paper(
                    CacheSizeMb::Mb32,
                    PolicyKind::ReqBlock(ReqBlockConfig::with_delta(delta)),
                );
                run_trace(&cfg, SyntheticTrace::new(timing_profile()))
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
