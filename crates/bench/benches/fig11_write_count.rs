//! Figure 11: write count to flash — prints the table and times a drained
//! run (which includes the end-of-trace flush accounting).

use criterion::{criterion_group, criterion_main, Criterion};
use reqblock_bench::{bench_opts, timing_profile};
use reqblock_core::ReqBlockConfig;
use reqblock_experiments::figures;
use reqblock_sim::runner::run_trace_drained;
use reqblock_sim::{CacheSizeMb, PolicyKind, SimConfig};
use reqblock_trace::SyntheticTrace;

fn bench(c: &mut Criterion) {
    let cmp = figures::comparison(&bench_opts());
    println!("{}", figures::fig11(&cmp).to_markdown());
    c.bench_function("fig11/drained_run_ts0_reqblock", |b| {
        b.iter(|| {
            let r = run_trace_drained(
                &SimConfig::paper(CacheSizeMb::Mb32, PolicyKind::ReqBlock(ReqBlockConfig::paper())),
                SyntheticTrace::new(timing_profile()),
            );
            std::hint::black_box(r.flash.user_programs)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
