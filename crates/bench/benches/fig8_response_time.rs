//! Figure 8: I/O response time comparison — prints the normalized table and
//! times one run per compared policy.

use criterion::{criterion_group, criterion_main, Criterion};
use reqblock_bench::{bench_opts, timing_profile};
use reqblock_experiments::figures;
use reqblock_sim::{run_trace, CacheSizeMb, PolicyKind, SimConfig};
use reqblock_trace::SyntheticTrace;

fn bench(c: &mut Criterion) {
    let cmp = figures::comparison(&bench_opts());
    println!("{}", figures::fig8(&cmp).to_markdown());
    for policy in PolicyKind::paper_comparison() {
        c.bench_function(&format!("fig8/run_ts0_16MB/{}", policy.name()), |b| {
            b.iter(|| {
                run_trace(
                    &SimConfig::paper(CacheSizeMb::Mb16, policy),
                    SyntheticTrace::new(timing_profile()),
                )
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
