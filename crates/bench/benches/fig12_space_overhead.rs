//! Figure 12: metadata space overhead — prints the table and times the
//! metadata accounting of each policy under churn.

use criterion::{criterion_group, criterion_main, Criterion};
use reqblock_bench::bench_opts;
use reqblock_cache::{Access, EvictionBatch};
use reqblock_experiments::figures;
use reqblock_sim::PolicyKind;

fn bench(c: &mut Criterion) {
    let cmp = figures::comparison(&bench_opts());
    println!("{}", figures::fig12(&cmp).to_markdown());
    for policy in PolicyKind::paper_comparison() {
        c.bench_function(&format!("fig12/metadata_churn/{}", policy.name()), |b| {
            b.iter(|| {
                let mut buf = policy.build(1024, 64);
                let mut ev: Vec<EvictionBatch> = Vec::new();
                let mut meta = 0usize;
                for i in 0..8_192u64 {
                    let a = Access { lpn: (i * 37) % 16_384, req_id: i, req_pages: 4, now: i };
                    buf.write(&a, &mut ev);
                    ev.clear();
                    if i % 256 == 0 {
                        meta += buf.metadata_bytes();
                    }
                }
                std::hint::black_box(meta)
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
