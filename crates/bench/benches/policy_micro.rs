//! Policy micro-benchmarks: raw write/read throughput of every policy's
//! data structures under a reuse-heavy access pattern (no simulator, no
//! flash timing — pure cache-operation cost, the §4.2.5 "run-time overhead"
//! discussion).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reqblock_cache::policies::{BplruConfig, CflruConfig, VbbmsConfig};
use reqblock_cache::{Access, EvictionBatch};
use reqblock_core::ReqBlockConfig;
use reqblock_sim::PolicyKind;

const OPS: u64 = 50_000;
const CAPACITY: usize = 4_096;

fn access_pattern() -> Vec<Access> {
    let mut rng = SmallRng::seed_from_u64(0xbeef);
    let mut out = Vec::with_capacity(OPS as usize);
    let mut req_id = 0;
    let mut now = 0;
    while out.len() < OPS as usize {
        req_id += 1;
        // 80 % small (1-4 pages, hot 20 % of space), 20 % large (16-48).
        let (start, pages) = if rng.gen::<f64>() < 0.8 {
            (rng.gen_range(0..20_000u64), rng.gen_range(1..=4u64))
        } else {
            (rng.gen_range(0..100_000u64), rng.gen_range(16..=48u64))
        };
        for i in 0..pages {
            now += 1;
            out.push(Access { lpn: start + i, req_id, req_pages: pages as u32, now });
            if out.len() == OPS as usize {
                break;
            }
        }
    }
    out
}

fn bench(c: &mut Criterion) {
    let pattern = access_pattern();
    let mut group = c.benchmark_group("policy_micro");
    group.throughput(Throughput::Elements(OPS));
    for policy in [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Lfu,
        PolicyKind::Cflru(CflruConfig::default()),
        PolicyKind::Fab,
        PolicyKind::PudLru,
        PolicyKind::Bplru(BplruConfig::default()),
        PolicyKind::Vbbms(VbbmsConfig::default()),
        PolicyKind::ReqBlock(ReqBlockConfig::paper()),
    ] {
        group.bench_function(format!("write_mix/{}", policy.name()), |b| {
            b.iter(|| {
                let mut buf = policy.build(CAPACITY, 64);
                let mut ev: Vec<EvictionBatch> = Vec::new();
                let mut hits = 0u64;
                for a in &pattern {
                    if buf.write(a, &mut ev) {
                        hits += 1;
                    }
                    ev.clear();
                }
                std::hint::black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
