//! Ablation benches (DESIGN.md A1-A4): measure what each Req-block design
//! choice buys by running the same workload with the mechanism disabled,
//! plus BPLRU with and without page padding. Prints a comparison table and
//! times each variant.

use criterion::{criterion_group, criterion_main, Criterion};
use reqblock_bench::SERIES_SCALE;
use reqblock_cache::policies::BplruConfig;
use reqblock_core::{PriorityModel, ReqBlockConfig};
use reqblock_sim::{run_trace, CacheSizeMb, PolicyKind, SimConfig};
use reqblock_trace::{profiles, SyntheticTrace};

fn variants() -> Vec<(&'static str, PolicyKind)> {
    vec![
        ("reqblock/paper", PolicyKind::ReqBlock(ReqBlockConfig::paper())),
        (
            "reqblock/no_split(A1)",
            PolicyKind::ReqBlock(ReqBlockConfig {
                split_large_on_hit: false,
                ..ReqBlockConfig::paper()
            }),
        ),
        (
            "reqblock/no_merge(A2)",
            PolicyKind::ReqBlock(ReqBlockConfig {
                merge_on_evict: false,
                ..ReqBlockConfig::paper()
            }),
        ),
        (
            "reqblock/no_size_term(A3)",
            PolicyKind::ReqBlock(ReqBlockConfig {
                priority: PriorityModel::NoSize,
                ..ReqBlockConfig::paper()
            }),
        ),
        (
            "reqblock/no_age_term(A3)",
            PolicyKind::ReqBlock(ReqBlockConfig {
                priority: PriorityModel::NoAge,
                ..ReqBlockConfig::paper()
            }),
        ),
        ("bplru/no_padding", PolicyKind::Bplru(BplruConfig { page_padding: false })),
        ("bplru/padding(A4)", PolicyKind::Bplru(BplruConfig { page_padding: true })),
    ]
}

fn bench(c: &mut Criterion) {
    // Print the ablation comparison on the two most revealing workloads.
    println!("## Ablations (32MB cache, scale {SERIES_SCALE})\n");
    println!("| variant | trace | hit ratio | avg resp (ms) | flash writes |");
    println!("|---|---|---|---|---|");
    for profile in [profiles::src1_2(), profiles::proj_0()] {
        let profile = profile.scaled(SERIES_SCALE);
        for (name, policy) in variants() {
            let r = run_trace(
                &SimConfig::paper(CacheSizeMb::Mb32, policy),
                SyntheticTrace::new(profile.clone()),
            );
            println!(
                "| {name} | {} | {:.4} | {:.3} | {} |",
                profile.name,
                r.metrics.hit_ratio(),
                r.metrics.avg_response_ms(),
                r.flash.user_programs
            );
        }
    }
    println!();
    let timing = profiles::ts_0().scaled(reqblock_bench::TIMING_SCALE);
    for (name, policy) in variants() {
        c.bench_function(&format!("ablation/{name}"), |b| {
            b.iter(|| {
                run_trace(
                    &SimConfig::paper(CacheSizeMb::Mb32, policy),
                    SyntheticTrace::new(timing.clone()),
                )
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
