//! Figure 9: cache hit ratio comparison — prints the normalized table and
//! times the full (policy x size) sweep for one trace.

use criterion::{criterion_group, criterion_main, Criterion};
use reqblock_bench::{bench_opts, timing_profile};
use reqblock_experiments::figures;
use reqblock_sim::{run_trace, CacheSizeMb, PolicyKind, SimConfig};
use reqblock_trace::SyntheticTrace;

fn bench(c: &mut Criterion) {
    let cmp = figures::comparison(&bench_opts());
    println!("{}", figures::fig9(&cmp).to_markdown());
    c.bench_function("fig9/sweep_ts0_all_policies_all_sizes", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for cache in CacheSizeMb::ALL {
                for policy in PolicyKind::paper_comparison() {
                    let r = run_trace(
                        &SimConfig::paper(cache, policy),
                        SyntheticTrace::new(timing_profile()),
                    );
                    total += r.metrics.hit_ratio();
                }
            }
            std::hint::black_box(total)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
