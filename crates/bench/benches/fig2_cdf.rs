//! Figure 2: CDFs of page inserts/hits vs write request size — prints the
//! CDF rows and times a probed LRU run.

use criterion::{criterion_group, criterion_main, Criterion};
use reqblock_bench::{bench_opts, timing_profile};
use reqblock_experiments::figures;
use reqblock_sim::probes::SizeCdfProbe;
use reqblock_sim::{run_trace_recorded, CacheSizeMb, PolicyKind, SimConfig};
use reqblock_trace::SyntheticTrace;

fn bench(c: &mut Criterion) {
    let (fig2, _fig3) = figures::fig2_fig3(&bench_opts());
    println!("{}", fig2.to_markdown());
    c.bench_function("fig2/recorded_lru_run_ts0", |b| {
        b.iter(|| {
            let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru);
            let mut probe = SizeCdfProbe::new();
            run_trace_recorded(&cfg, SyntheticTrace::new(timing_profile()), &mut probe);
            std::hint::black_box(probe.hit_cdf())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
