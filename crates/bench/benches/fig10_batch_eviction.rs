//! Figure 10: average pages per eviction — prints the table and times the
//! eviction-heavy large-write workload per block-granularity policy.

use criterion::{criterion_group, criterion_main, Criterion};
use reqblock_bench::{bench_opts, timing_profile_large};
use reqblock_core::ReqBlockConfig;
use reqblock_experiments::figures;
use reqblock_sim::{run_trace, CacheSizeMb, PolicyKind, SimConfig};
use reqblock_trace::SyntheticTrace;

fn bench(c: &mut Criterion) {
    let cmp = figures::comparison(&bench_opts());
    println!("{}", figures::fig10(&cmp).to_markdown());
    for policy in [
        PolicyKind::Bplru(Default::default()),
        PolicyKind::Vbbms(Default::default()),
        PolicyKind::ReqBlock(ReqBlockConfig::paper()),
    ] {
        c.bench_function(&format!("fig10/evictions_proj0/{}", policy.name()), |b| {
            b.iter(|| {
                let r = run_trace(
                    &SimConfig::paper(CacheSizeMb::Mb32, policy),
                    SyntheticTrace::new(timing_profile_large()),
                );
                std::hint::black_box(r.metrics.avg_pages_per_eviction())
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
