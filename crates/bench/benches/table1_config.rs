//! Table 1: SSD configuration — prints the settings table and times config
//! derivation plus device construction.

use criterion::{criterion_group, criterion_main, Criterion};
use reqblock_experiments::figures;
use reqblock_flash::SsdConfig;
use reqblock_sim::{CacheSizeMb, PolicyKind, SimConfig, Ssd};

fn bench(c: &mut Criterion) {
    println!("{}", figures::table1().to_markdown());
    c.bench_function("table1/config_derivation", |b| {
        b.iter(|| {
            let cfg = SsdConfig::paper();
            cfg.validate().unwrap();
            std::hint::black_box((cfg.total_pages(), cfg.gc_free_blocks_floor()))
        })
    });
    c.bench_function("table1/device_construction_paper", |b| {
        b.iter(|| Ssd::new(SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
