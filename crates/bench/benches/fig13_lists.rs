//! Figure 13: Req-block list occupancy over time — prints the per-list
//! share summary and times a probed Req-block run.

use criterion::{criterion_group, criterion_main, Criterion};
use reqblock_bench::{bench_opts, timing_profile};
use reqblock_core::ReqBlockConfig;
use reqblock_experiments::figures;
use reqblock_sim::probes::{ListOccupancyProbe, Probe};
use reqblock_sim::{run_trace_probed, CacheSizeMb, PolicyKind, SimConfig};
use reqblock_trace::SyntheticTrace;

fn bench(c: &mut Criterion) {
    let (_samples, shares) = figures::fig13(&bench_opts());
    println!("{}", shares.to_markdown());
    c.bench_function("fig13/probed_reqblock_run_ts0", |b| {
        b.iter(|| {
            let cfg =
                SimConfig::paper(CacheSizeMb::Mb32, PolicyKind::ReqBlock(ReqBlockConfig::paper()));
            let mut probe = ListOccupancyProbe::new(100);
            let mut probes: [&mut dyn Probe; 1] = [&mut probe];
            run_trace_probed(&cfg, SyntheticTrace::new(timing_profile()), &mut probes);
            std::hint::black_box(probe.samples.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
