//! Figure 13: Req-block list occupancy over time — prints the per-list
//! share summary and times a probed Req-block run.

use criterion::{criterion_group, criterion_main, Criterion};
use reqblock_bench::{bench_opts, timing_profile};
use reqblock_core::ReqBlockConfig;
use reqblock_experiments::figures;
use reqblock_obs::MemoryRecorder;
use reqblock_sim::{run_trace_recorded, CacheSizeMb, PolicyKind, SampleInterval, SimConfig};
use reqblock_trace::SyntheticTrace;

fn bench(c: &mut Criterion) {
    let (_samples, shares) = figures::fig13(&bench_opts());
    println!("{}", shares.to_markdown());
    c.bench_function("fig13/recorded_reqblock_run_ts0", |b| {
        b.iter(|| {
            let cfg =
                SimConfig::paper(CacheSizeMb::Mb32, PolicyKind::ReqBlock(ReqBlockConfig::paper()))
                    .with_sampling(SampleInterval::Requests(100));
            let mut rec = MemoryRecorder::default();
            run_trace_recorded(&cfg, SyntheticTrace::new(timing_profile()), &mut rec);
            std::hint::black_box(rec.series_points("irl_pages").len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
