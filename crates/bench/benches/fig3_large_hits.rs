//! Figure 3: large-request hit statistics — prints the per-trace hit split
//! and times the probe.

use criterion::{criterion_group, criterion_main, Criterion};
use reqblock_bench::{bench_opts, timing_profile_large};
use reqblock_experiments::figures;
use reqblock_sim::probes::LargeReqHitProbe;
use reqblock_sim::{run_trace_recorded, CacheSizeMb, PolicyKind, SimConfig};
use reqblock_trace::SyntheticTrace;

fn bench(c: &mut Criterion) {
    let (_fig2, fig3) = figures::fig2_fig3(&bench_opts());
    println!("{}", fig3.to_markdown());
    c.bench_function("fig3/recorded_lru_run_proj0", |b| {
        b.iter(|| {
            let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru);
            let mut probe = LargeReqHitProbe::new(10);
            run_trace_recorded(&cfg, SyntheticTrace::new(timing_profile_large()), &mut probe);
            probe.finish();
            std::hint::black_box(probe.hit_fraction())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
