//! Dependency-free sweep benchmark: wall-clock for a full `repro all`.
//!
//! Measures [`reqblock_experiments::sweep::run_all`] — the barrier-free
//! pool behind `repro all` — in three modes, interleaved inside every
//! repeat so background noise hits all of them the same way:
//!
//! * `uncached_serial`   — shared trace cache off, one worker thread. This
//!   is the pre-optimization shape: every figure re-synthesizes every
//!   trace it touches, jobs run one after another.
//! * `cached_serial`     — trace cache on, one worker. Isolates what the
//!   shared `Arc<[Request]>` cache buys on its own: each (source, scale)
//!   pair is synthesized once per sweep instead of once per figure.
//! * `cached_parallel`   — trace cache on, `--threads` workers. The full
//!   configuration; on a multi-core host this adds the pool speedup on
//!   top of the cache (on one core it tracks `cached_serial`).
//!
//! Every repeat asserts the three modes emit byte-identical tables and
//! telemetry (the "perf" section is excluded — it embeds host wall-clock),
//! so the benchmark doubles as an end-to-end determinism check.
//!
//! ```text
//! cargo run --release -p reqblock-bench --bin sweep -- \
//!     [--scale 0.05] [--repeats 3] [--threads N] [--out sweep.json]
//! ```
//!
//! Without `--out` the JSON goes to stdout. `scripts/bench.sh` wraps this
//! and gates the cached_parallel median against `BENCH_sweep.json`.

use reqblock_experiments::sweep::{run_all, AllArtifacts};
use reqblock_experiments::Opts;
use reqblock_trace::shared;
use std::fmt::Write as _;
use std::time::Instant;

/// Render the comparable artifact surface: every section's tables as
/// markdown (minus "perf", whose cells embed host timings) plus the
/// telemetry JSONL.
fn artifact_digest(art: &AllArtifacts) -> String {
    let mut s = String::new();
    for (name, tables) in &art.sections {
        if name == "perf" {
            continue;
        }
        for t in tables {
            let _ = writeln!(s, "## {name}\n{}", t.to_markdown());
        }
    }
    s.push_str(&art.telemetry_jsonl);
    s
}

/// One timed `run_all` with the trace cache set as given. The cache is
/// cleared first either way, so every measurement is one cold `repro all`.
fn timed_run(opts: &Opts, cache_on: bool) -> (f64, String) {
    shared::set_enabled(cache_on);
    shared::clear();
    let t0 = Instant::now();
    let art = run_all(opts);
    let elapsed = t0.elapsed().as_secs_f64();
    shared::set_enabled(true);
    (elapsed, artifact_digest(&art))
}

fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    assert!(n > 0, "median of an empty sample set");
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn best(samples: &[f64]) -> f64 {
    samples.iter().fold(f64::INFINITY, |a, &b| a.min(b))
}

fn main() {
    let mut scale = 0.02f64;
    let mut repeats = 3u32;
    let mut threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scale" => scale = value("--scale").parse().expect("--scale must be a number"),
            "--repeats" => repeats = value("--repeats").parse().expect("--repeats must be an int"),
            "--threads" => {
                threads = value("--threads").parse().expect("--threads must be an int");
                assert!(threads > 0, "--threads must be positive");
            }
            "--out" => out = Some(value("--out")),
            other => {
                panic!("unknown argument {other:?} (expected --scale/--repeats/--threads/--out)")
            }
        }
    }

    let out_dir = std::env::temp_dir().join("reqblock_bench_sweep");
    let serial = Opts { scale, threads: 1, out_dir: out_dir.clone(), trace_dir: None };
    let parallel = Opts { scale, threads, out_dir, trace_dir: None };
    eprintln!("sweep: repro-all workload at scale {scale}, {repeats} repeats, {threads} threads");

    // Warm-up: page in code paths once, and pin the reference artifacts
    // every measured run must reproduce.
    let (_, reference) = timed_run(&serial, true);

    let mut times: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let modes: [(&str, &Opts, bool); 3] = [
        ("uncached_serial", &serial, false),
        ("cached_serial", &serial, true),
        ("cached_parallel", &parallel, true),
    ];
    for rep in 0..repeats {
        for (i, (name, opts, cache_on)) in modes.iter().enumerate() {
            let (elapsed, digest) = timed_run(opts, *cache_on);
            assert_eq!(
                digest, reference,
                "{name} emitted different artifacts on repeat {rep}"
            );
            eprintln!("sweep: repeat {rep} {name:<16} {elapsed:>7.2} s");
            times[i].push(elapsed);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"sweep\",");
    let _ = writeln!(json, "  \"workload\": \"repro all\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"modes\": [");
    for (i, (name, _, _)) in modes.iter().enumerate() {
        let t = &times[i];
        let samples: Vec<String> = t.iter().map(|v| format!("{v:.3}")).collect();
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"times_s\": [{}], \"best_s\": {:.3}, \"median_s\": {:.3}}}{}",
            samples.join(", "),
            best(t),
            median(t),
            if i + 1 < modes.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let speedup =
        |num: &[f64], den: &[f64]| (best(num) / best(den), median(num) / median(den));
    let (sb, sm) = speedup(&times[0], &times[1]);
    let _ = writeln!(
        json,
        "  \"speedup_cache\": {{\"best\": {sb:.2}, \"median\": {sm:.2}}},"
    );
    let (pb, pm) = speedup(&times[0], &times[2]);
    let _ = writeln!(
        json,
        "  \"speedup_total\": {{\"best\": {pb:.2}, \"median\": {pm:.2}}}"
    );
    json.push_str("}\n");

    eprintln!("sweep: cache speedup {sm:.2}x, total speedup {pm:.2}x (median over repeats)");
    match out {
        Some(path) => std::fs::write(&path, json).expect("cannot write bench output"),
        None => print!("{json}"),
    }
}
