//! Dependency-free hot-path benchmark: requests/sec for full-device replay.
//!
//! criterion needs crates.io, which the build environment cannot reach, so
//! this binary measures the end-to-end hot path with nothing but
//! `std::time::Instant`: it replays a scaled `ts_0` synthetic trace through
//! the Req-block policy and LRU on the paper's 16 MB device, repeats each
//! replay a few times, and reports the best requests/sec as JSON.
//!
//! ```text
//! cargo run --release -p reqblock-bench --bin hotpath -- \
//!     [--scale 0.25] [--repeats 3] [--out hotpath.json]
//! ```
//!
//! Without `--out` the JSON goes to stdout. `scripts/bench.sh` wraps this
//! and diffs the numbers against the committed `BENCH_hotpath.json`.

use reqblock_core::ReqBlockConfig;
use reqblock_sim::{run_source, CacheSizeMb, PolicyKind, SimConfig, TraceSource};
use std::fmt::Write as _;
use std::time::Instant;

struct PolicyResult {
    name: &'static str,
    requests_per_sec: f64,
    best_elapsed_ms: f64,
    hit_ratio: f64,
}

fn measure(policy: PolicyKind, source: &TraceSource, requests: u64, repeats: u32) -> PolicyResult {
    let cfg = SimConfig::paper(CacheSizeMb::Mb16, policy);
    // Warm-up replay: page in code and the trace generator's tables.
    let warm = run_source(&cfg, source);
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let res = run_source(&cfg, source);
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(
            res.metrics, warm.metrics,
            "replay must be deterministic across repeats"
        );
        best = best.min(elapsed);
    }
    PolicyResult {
        name: match policy {
            PolicyKind::ReqBlock(_) => "Req-block",
            _ => "LRU",
        },
        requests_per_sec: requests as f64 / best,
        best_elapsed_ms: best * 1e3,
        hit_ratio: warm.metrics.hit_ratio(),
    }
}

fn main() {
    let mut scale = 0.25f64;
    let mut repeats = 3u32;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scale" => scale = value("--scale").parse().expect("--scale must be a number"),
            "--repeats" => repeats = value("--repeats").parse().expect("--repeats must be an int"),
            "--out" => out = Some(value("--out")),
            other => panic!("unknown argument {other:?} (expected --scale/--repeats/--out)"),
        }
    }

    let profile = reqblock_trace::profiles::ts_0().scaled(scale);
    let requests = profile.requests;
    let source = TraceSource::Synthetic(profile);
    eprintln!("hotpath: ts_0 x{scale} = {requests} requests, {repeats} repeats per policy");

    let results = [
        measure(
            PolicyKind::ReqBlock(ReqBlockConfig::paper()),
            &source,
            requests,
            repeats,
        ),
        measure(PolicyKind::Lru, &source, requests, repeats),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"hotpath\",");
    let _ = writeln!(json, "  \"trace\": \"ts_0\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"requests\": {requests},");
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    json.push_str("  \"policies\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"requests_per_sec\": {:.1}, \"best_elapsed_ms\": {:.2}, \"hit_ratio\": {:.6}}}{}",
            r.name,
            r.requests_per_sec,
            r.best_elapsed_ms,
            r.hit_ratio,
            if i + 1 < results.len() { "," } else { "" }
        );
        eprintln!(
            "hotpath: {:<9} {:>12.0} req/s  (best {:.1} ms, hit ratio {:.4})",
            r.name, r.requests_per_sec, r.best_elapsed_ms, r.hit_ratio
        );
    }
    json.push_str("  ]\n}\n");

    match out {
        Some(path) => std::fs::write(&path, json).expect("cannot write bench output"),
        None => print!("{json}"),
    }
}
