//! Dependency-free hot-path benchmark: requests/sec for full-device replay.
//!
//! criterion needs crates.io, which the build environment cannot reach, so
//! this binary measures the end-to-end hot path with nothing but
//! `std::time::Instant`: it replays a scaled `ts_0` synthetic trace through
//! the Req-block policy and LRU on the paper's 16 MB device, repeats each
//! replay a few times, and reports best-of and median-of-repeats
//! requests/sec as JSON (the regression gate reads the median — it is
//! robust to a single noisy repeat in either direction).
//!
//! Each policy is measured four times: with the no-op recorder (the normal
//! synchronous path — this is what the regression gates watch, since a
//! disabled observability layer must cost ~nothing), with a full
//! [`MemoryRecorder`] capturing page events and sampled time series, in
//! queued submit mode (`Queued { depth: 8 }`) to track the host layer's
//! flush-window overhead, and with latency attribution configured but the
//! recorder disabled (`attr_noop`) — the double gate must monomorphize the
//! whole attribution layer away, so this mode is gated against the plain
//! no-op path of the same run. The JSON reports all four plus the recording
//! overhead percentage.
//!
//! ```text
//! cargo run --release -p reqblock-bench --bin hotpath -- \
//!     [--scale 0.25] [--repeats 3] [--out hotpath.json]
//! ```
//!
//! Without `--out` the JSON goes to stdout. `scripts/bench.sh` wraps this
//! and diffs the numbers against the committed `BENCH_hotpath.json`.

use reqblock_core::ReqBlockConfig;
use reqblock_obs::MemoryRecorder;
use reqblock_sim::{
    run_source, run_source_recorded, AttrConfig, CacheSizeMb, PolicyKind, SampleInterval,
    SimConfig, SubmitMode, TraceSource,
};
use std::fmt::Write as _;
use std::time::Instant;

struct PolicyResult {
    name: &'static str,
    requests_per_sec: f64,
    best_elapsed_ms: f64,
    median_requests_per_sec: f64,
    median_elapsed_ms: f64,
    hit_ratio: f64,
}

/// Median of a sample set (mean of the middle pair for even counts).
fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    assert!(n > 0, "median of an empty sample set");
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn policy_name(policy: PolicyKind) -> &'static str {
    match policy {
        PolicyKind::ReqBlock(_) => "Req-block",
        _ => "LRU",
    }
}

/// Best-of-`repeats` replay, measured four times per repeat: with the
/// no-op recorder (the normal path), with a full [`MemoryRecorder`]
/// capturing page events plus time series sampled every 1000 requests, in
/// queued submit mode (`Queued { depth: 8 }`, no-op recorder) to track
/// the flush-window overhead of the host layer, and with attribution
/// configured under the no-op recorder (`attr_noop`) — the engine's
/// double gate (`rec.enabled() && attr configured`) must compile the
/// attribution bookkeeping out of this path entirely. The modes are
/// interleaved inside every repeat so a load spike on a shared machine
/// hits all of them the same way — sequential blocks would let background
/// noise masquerade as (or hide) per-mode overhead.
fn measure(
    policy: PolicyKind,
    source: &TraceSource,
    requests: u64,
    repeats: u32,
) -> (PolicyResult, PolicyResult, PolicyResult, PolicyResult) {
    let cfg = SimConfig::paper(CacheSizeMb::Mb16, policy);
    let cfg_rec = cfg.clone().with_sampling(SampleInterval::Requests(1_000));
    let cfg_queued = cfg.clone().with_submit(SubmitMode::Queued { depth: 8 });
    let cfg_attr = cfg.clone().with_attribution(AttrConfig::default());
    // Warm-up replays: page in code and the trace generator's tables.
    let warm = run_source(&cfg, source);
    let mut warm_rec = MemoryRecorder::default();
    let warm_recorded = run_source_recorded(&cfg_rec, source, &mut warm_rec);
    assert_eq!(
        warm.metrics, warm_recorded.metrics,
        "recording must not change the simulated model"
    );
    let warm_queued = run_source(&cfg_queued, source);
    assert_eq!(
        warm.flash, warm_queued.flash,
        "flash traffic must be depth-invariant across submit modes"
    );
    let warm_attr = run_source(&cfg_attr, source);
    assert_eq!(
        warm.metrics, warm_attr.metrics,
        "attribution config must not change the simulated model"
    );
    let mut noop_times = Vec::with_capacity(repeats as usize);
    let mut recording_times = Vec::with_capacity(repeats as usize);
    let mut queued_times = Vec::with_capacity(repeats as usize);
    let mut attr_times = Vec::with_capacity(repeats as usize);
    for _ in 0..repeats {
        let t0 = Instant::now();
        let res = run_source(&cfg, source);
        noop_times.push(t0.elapsed().as_secs_f64());
        assert_eq!(
            res.metrics, warm.metrics,
            "replay must be deterministic across repeats"
        );

        let mut rec = MemoryRecorder::default();
        let t0 = Instant::now();
        let res = run_source_recorded(&cfg_rec, source, &mut rec);
        recording_times.push(t0.elapsed().as_secs_f64());
        assert_eq!(
            res.metrics, warm.metrics,
            "recorded replay must be deterministic across repeats"
        );

        let t0 = Instant::now();
        let res = run_source(&cfg_queued, source);
        queued_times.push(t0.elapsed().as_secs_f64());
        assert_eq!(
            res.metrics, warm_queued.metrics,
            "queued replay must be deterministic across repeats"
        );

        let t0 = Instant::now();
        let res = run_source(&cfg_attr, source);
        attr_times.push(t0.elapsed().as_secs_f64());
        assert_eq!(
            res.metrics, warm.metrics,
            "attr-noop replay must be deterministic across repeats"
        );
    }
    let result = |times: &[f64]| {
        let best = times.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let med = median(times);
        PolicyResult {
            name: policy_name(policy),
            requests_per_sec: requests as f64 / best,
            best_elapsed_ms: best * 1e3,
            median_requests_per_sec: requests as f64 / med,
            median_elapsed_ms: med * 1e3,
            hit_ratio: warm.metrics.hit_ratio(),
        }
    };
    (
        result(&noop_times),
        result(&recording_times),
        result(&queued_times),
        result(&attr_times),
    )
}

fn push_policy_array(json: &mut String, key: &str, results: &[PolicyResult], last: bool) {
    let _ = writeln!(json, "  \"{key}\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"requests_per_sec\": {:.1}, \"best_elapsed_ms\": {:.2}, \
             \"median_requests_per_sec\": {:.1}, \"median_elapsed_ms\": {:.2}, \"hit_ratio\": {:.6}}}{}",
            r.name,
            r.requests_per_sec,
            r.best_elapsed_ms,
            r.median_requests_per_sec,
            r.median_elapsed_ms,
            r.hit_ratio,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]{}", if last { "" } else { "," });
}

fn main() {
    let mut scale = 0.25f64;
    let mut repeats = 3u32;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scale" => scale = value("--scale").parse().expect("--scale must be a number"),
            "--repeats" => repeats = value("--repeats").parse().expect("--repeats must be an int"),
            "--out" => out = Some(value("--out")),
            other => panic!("unknown argument {other:?} (expected --scale/--repeats/--out)"),
        }
    }

    let profile = reqblock_trace::profiles::ts_0().scaled(scale);
    let requests = profile.requests;
    let source = TraceSource::Synthetic(profile);
    eprintln!("hotpath: ts_0 x{scale} = {requests} requests, {repeats} repeats per policy");

    let policies = [PolicyKind::ReqBlock(ReqBlockConfig::paper()), PolicyKind::Lru];
    let mut noop = Vec::new();
    let mut recording = Vec::new();
    let mut queued = Vec::new();
    let mut attr_noop = Vec::new();
    for &p in &policies {
        let (n, r, q, a) = measure(p, &source, requests, repeats);
        noop.push(n);
        recording.push(r);
        queued.push(q);
        attr_noop.push(a);
    }

    for r in &noop {
        eprintln!(
            "hotpath: {:<9} noop      {:>12.0} req/s  (best {:.1} ms, median {:.1} ms, hit ratio {:.4})",
            r.name, r.requests_per_sec, r.best_elapsed_ms, r.median_elapsed_ms, r.hit_ratio
        );
    }
    for (n, r) in noop.iter().zip(&recording) {
        let pct = (r.best_elapsed_ms - n.best_elapsed_ms) / n.best_elapsed_ms * 100.0;
        eprintln!(
            "hotpath: {:<9} recording {:>12.0} req/s  (best {:.1} ms, overhead {:+.1}%)",
            r.name, r.requests_per_sec, r.best_elapsed_ms, pct
        );
    }
    for (n, q) in noop.iter().zip(&queued) {
        let pct = (q.best_elapsed_ms - n.best_elapsed_ms) / n.best_elapsed_ms * 100.0;
        eprintln!(
            "hotpath: {:<9} queued qd8 {:>11.0} req/s  (best {:.1} ms, overhead {:+.1}%)",
            q.name, q.requests_per_sec, q.best_elapsed_ms, pct
        );
    }
    for (n, a) in noop.iter().zip(&attr_noop) {
        let pct = (a.best_elapsed_ms - n.best_elapsed_ms) / n.best_elapsed_ms * 100.0;
        eprintln!(
            "hotpath: {:<9} attr noop {:>12.0} req/s  (best {:.1} ms, overhead {:+.1}%)",
            a.name, a.requests_per_sec, a.best_elapsed_ms, pct
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"hotpath\",");
    let _ = writeln!(json, "  \"trace\": \"ts_0\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"requests\": {requests},");
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    push_policy_array(&mut json, "policies", &noop, false);
    push_policy_array(&mut json, "recording_policies", &recording, false);
    push_policy_array(&mut json, "queued_policies", &queued, false);
    push_policy_array(&mut json, "attr_noop_policies", &attr_noop, false);
    json.push_str("  \"recording_overhead_pct\": [\n");
    for (i, (n, r)) in noop.iter().zip(&recording).enumerate() {
        let pct = (r.best_elapsed_ms - n.best_elapsed_ms) / n.best_elapsed_ms * 100.0;
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"pct\": {:.2}}}{}",
            n.name,
            pct,
            if i + 1 < noop.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    match out {
        Some(path) => std::fs::write(&path, json).expect("cannot write bench output"),
        None => print!("{json}"),
    }
}
