//! Shared plumbing for the criterion benchmark targets.
//!
//! Every paper table/figure has a bench target in `benches/` (see the
//! workspace `DESIGN.md` §5 index). Each target does two things:
//!
//! 1. **Regenerate the artifact's series** at benchmark scale and print it,
//!    so `cargo bench` output contains the same rows the paper reports
//!    (absolute reproduction numbers come from `repro --full`, which uses
//!    the paper's exact request counts).
//! 2. **Time the simulations behind it** with criterion, so performance
//!    regressions in the simulator or the policies are caught.

use reqblock_experiments::figures::Opts;
use reqblock_trace::WorkloadProfile;

/// Scale used when a bench regenerates a figure's series (printed once).
pub const SERIES_SCALE: f64 = 0.02;

/// Scale used for the timed inner loop (kept small so criterion's repeated
/// sampling stays in seconds).
pub const TIMING_SCALE: f64 = 0.005;

/// Harness options for series regeneration inside benches.
pub fn bench_opts() -> Opts {
    Opts {
        scale: SERIES_SCALE,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        out_dir: std::path::PathBuf::from("results/bench"),
        trace_dir: None,
    }
}

/// A small timed workload (ts_0-like: high reuse, small writes).
pub fn timing_profile() -> WorkloadProfile {
    reqblock_trace::profiles::ts_0().scaled(TIMING_SCALE)
}

/// A small timed workload with a heavy large-write mix (proj_0-like).
pub fn timing_profile_large() -> WorkloadProfile {
    reqblock_trace::profiles::proj_0().scaled(TIMING_SCALE)
}
