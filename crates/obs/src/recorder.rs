//! The [`Recorder`] sink trait and its standard implementations.

use std::collections::BTreeMap;

/// One page-level cache access, as the simulator saw it. Neutral mirror of
/// the cache layer's `Access` so figure consumers (size CDFs, large-request
/// hit tracking) can live downstream of this crate without a cache
/// dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageEvent {
    /// Logical page accessed.
    pub lpn: u64,
    /// Monotone id of the enclosing request.
    pub req_id: u64,
    /// Total pages of the enclosing request.
    pub req_pages: u32,
    /// Logical time (pages processed so far).
    pub now: u64,
    /// `true` for a write access, `false` for a read.
    pub is_write: bool,
    /// Did the buffer already hold the page?
    pub hit: bool,
}

/// Aggregate of one named span: how often it fired and how long it took.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Times the span was recorded.
    pub count: u64,
    /// Sum of recorded durations, ns.
    pub total_ns: u128,
    /// Longest single duration, ns.
    pub max_ns: u64,
}

impl SpanStats {
    /// Mean duration in ns (0 when never fired).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.total_ns as f64 / self.count as f64
    }

    fn record(&mut self, dur_ns: u64) {
        self.count += 1;
        self.total_ns += dur_ns as u128;
        self.max_ns = self.max_ns.max(dur_ns);
    }
}

/// Observability sink. Every hook defaults to a no-op and
/// [`enabled`](Recorder::enabled) defaults to `false`, so instrumented code
/// caches `let on = rec.enabled();` once per request and skips the per-event
/// virtual calls entirely when recording is off — that is the whole
/// "zero overhead when off" contract.
///
/// Implementations are free to ignore hooks they don't care about: a figure
/// probe may only consume [`page`](Recorder::page) events, a telemetry
/// collector everything.
pub trait Recorder {
    /// Should producers bother calling the per-event hooks?
    fn enabled(&self) -> bool {
        false
    }

    /// Add `delta` to the named monotone counter.
    fn counter(&mut self, _key: &str, _delta: u64) {}

    /// Set the named gauge to its latest value.
    fn gauge(&mut self, _key: &str, _value: f64) {}

    /// Record one duration of the named span (e.g. a flush-induced stall).
    fn span(&mut self, _key: &str, _dur_ns: u64) {}

    /// Append one `(t, value)` point to the named time series.
    fn sample(&mut self, _series: &str, _t: u64, _value: f64) {}

    /// One page-level cache access.
    fn page(&mut self, _ev: &PageEvent) {}

    /// A request finished (its pages were all delivered via
    /// [`page`](Recorder::page) beforehand).
    fn request_end(&mut self, _req_index: u64) {}
}

/// The disabled sink: reports `enabled() == false` and drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// In-memory collector. Counters, gauges, spans and series live in
/// `BTreeMap`s keyed by name, so iteration — and the JSONL rendered from it
/// — is byte-deterministic for a deterministic run.
#[derive(Debug, Clone, Default)]
pub struct MemoryRecorder {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    spans: BTreeMap<String, SpanStats>,
    series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl MemoryRecorder {
    /// Fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Value of a counter (0 when never touched).
    pub fn counter_value(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Latest value of a gauge.
    pub fn gauge_value(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Aggregate of a span.
    pub fn span_stats(&self, key: &str) -> Option<&SpanStats> {
        self.spans.get(key)
    }

    /// Points of one time series (empty when never sampled).
    pub fn series_points(&self, series: &str) -> &[(u64, f64)] {
        self.series.get(series).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All counters, sorted by key.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, sorted by key.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All spans, sorted by key.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &SpanStats)> {
        self.spans.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All series names, sorted.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&mut self, key: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(key) {
            *v += delta;
        } else {
            self.counters.insert(key.to_string(), delta);
        }
    }

    fn gauge(&mut self, key: &str, value: f64) {
        if let Some(v) = self.gauges.get_mut(key) {
            *v = value;
        } else {
            self.gauges.insert(key.to_string(), value);
        }
    }

    fn span(&mut self, key: &str, dur_ns: u64) {
        if let Some(s) = self.spans.get_mut(key) {
            s.record(dur_ns);
        } else {
            let mut s = SpanStats::default();
            s.record(dur_ns);
            self.spans.insert(key.to_string(), s);
        }
    }

    fn sample(&mut self, series: &str, t: u64, value: f64) {
        if let Some(points) = self.series.get_mut(series) {
            points.push((t, value));
        } else {
            self.series.insert(series.to_string(), vec![(t, value)]);
        }
    }
}

/// Drives several recorders from one run. `enabled()` is the OR of the
/// children, and every event is forwarded to each child (children that left
/// a hook defaulted simply ignore it).
#[derive(Default)]
pub struct Fanout<'a> {
    sinks: Vec<&'a mut dyn Recorder>,
}

impl<'a> Fanout<'a> {
    /// Empty fanout (equivalent to [`NoopRecorder`] until sinks are added).
    pub fn new() -> Self {
        Self { sinks: Vec::new() }
    }

    /// Add a child sink.
    pub fn push(&mut self, sink: &'a mut dyn Recorder) {
        self.sinks.push(sink);
    }
}

impl Recorder for Fanout<'_> {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn counter(&mut self, key: &str, delta: u64) {
        for s in &mut self.sinks {
            s.counter(key, delta);
        }
    }

    fn gauge(&mut self, key: &str, value: f64) {
        for s in &mut self.sinks {
            s.gauge(key, value);
        }
    }

    fn span(&mut self, key: &str, dur_ns: u64) {
        for s in &mut self.sinks {
            s.span(key, dur_ns);
        }
    }

    fn sample(&mut self, series: &str, t: u64, value: f64) {
        for s in &mut self.sinks {
            s.sample(series, t, value);
        }
    }

    fn page(&mut self, ev: &PageEvent) {
        for s in &mut self.sinks {
            s.page(ev);
        }
    }

    fn request_end(&mut self, req_index: u64) {
        for s in &mut self.sinks {
            s.request_end(req_index);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.counter("x", 1);
        r.gauge("y", 2.0);
        r.span("z", 3);
        r.sample("s", 0, 1.0);
    }

    #[test]
    fn memory_recorder_accumulates() {
        let mut r = MemoryRecorder::new();
        assert!(r.enabled());
        r.counter("evictions", 2);
        r.counter("evictions", 3);
        r.gauge("wa", 1.5);
        r.gauge("wa", 1.7);
        r.span("flush_wait", 100);
        r.span("flush_wait", 300);
        r.sample("hit_ratio", 0, 0.5);
        r.sample("hit_ratio", 10, 0.6);

        assert_eq!(r.counter_value("evictions"), 5);
        assert_eq!(r.counter_value("missing"), 0);
        assert_eq!(r.gauge_value("wa"), Some(1.7));
        let s = r.span_stats("flush_wait").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 400);
        assert_eq!(s.max_ns, 300);
        assert_eq!(s.mean_ns(), 200.0);
        assert_eq!(r.series_points("hit_ratio"), &[(0, 0.5), (10, 0.6)]);
    }

    #[test]
    fn iteration_is_sorted_by_key() {
        let mut r = MemoryRecorder::new();
        r.counter("zeta", 1);
        r.counter("alpha", 1);
        r.counter("mid", 1);
        let keys: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn fanout_forwards_to_all_children() {
        let mut a = MemoryRecorder::new();
        let mut b = MemoryRecorder::new();
        {
            let mut fan = Fanout::new();
            fan.push(&mut a);
            fan.push(&mut b);
            assert!(fan.enabled());
            fan.counter("c", 1);
            fan.page(&PageEvent {
                lpn: 7,
                req_id: 0,
                req_pages: 1,
                now: 1,
                is_write: true,
                hit: false,
            });
            fan.request_end(0);
        }
        assert_eq!(a.counter_value("c"), 1);
        assert_eq!(b.counter_value("c"), 1);
    }

    #[test]
    fn empty_fanout_is_disabled() {
        let fan = Fanout::new();
        assert!(!fan.enabled());
    }

    #[test]
    fn fanout_of_noops_is_disabled() {
        let mut n1 = NoopRecorder;
        let mut n2 = NoopRecorder;
        let mut fan = Fanout::new();
        fan.push(&mut n1);
        fan.push(&mut n2);
        assert!(!fan.enabled());
    }
}
