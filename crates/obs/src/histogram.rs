//! Reusable log-bucketed histogram.
//!
//! Generalizes the simulator's original fixed-shape latency histogram:
//! buckets grow geometrically (x2) from a runtime-chosen base, with exact
//! tracking of count, sum, min and max. The default shape is the latency
//! preset the paper's tail-percentile extension uses — 30 buckets from
//! 1 us, covering 1 us .. ~1100 s — but producers can size one for any
//! quantity (queue depths, batch sizes, GC pause lengths).
//!
//! Two histograms [`merge`](Histogram::merge) only when their shapes match;
//! merged counts are exact because bucket boundaries coincide.

use serde::{Deserialize, Serialize};

/// Bucket count of the latency preset.
const LATENCY_BUCKETS: usize = 30;
/// Base (lower bound of bucket 0) of the latency preset: 1 us in ns.
const LATENCY_BASE_NS: u64 = 1_000;

/// Log2-bucketed histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive upper bound of bucket 0; each later bucket doubles it.
    base: u64,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::latency()
    }
}

impl Histogram {
    /// Empty histogram with `buckets` geometric buckets starting at `base`
    /// (bucket 0 holds samples `<= base`; the last bucket is unbounded).
    pub fn new(base: u64, buckets: usize) -> Self {
        assert!(base > 0, "histogram base must be positive");
        assert!(buckets >= 2, "need at least two buckets");
        Self { base, counts: vec![0; buckets], total: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// The latency preset: 1 us base, 30 buckets (1 us .. ~1100 s in ns).
    pub fn latency() -> Self {
        Self::new(LATENCY_BASE_NS, LATENCY_BUCKETS)
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Smallest bucket whose upper bound covers `v`: bucket `i` holds
    /// samples in `(base << (i-1), base << i]` (bucket 0: `[0, base]`).
    ///
    /// Division-free: the answer is the smallest `i` with `v <= base << i`,
    /// which bit lengths pin to within one — `base << (i0 - 1)` has fewer
    /// bits than `v` (so the answer is at least `i0`) and `base << (i0 + 1)`
    /// has more (so at most `i0 + 1`); one comparison decides. This sits on
    /// the per-request response path, where a 64-bit divide is measurable.
    fn bucket_of(&self, v: u64) -> usize {
        if v <= self.base {
            return 0;
        }
        let i0 = (self.base.leading_zeros() - v.leading_zeros()) as usize;
        let i = if v <= self.base << i0 { i0 } else { i0 + 1 };
        i.min(self.counts.len() - 1)
    }

    /// Inclusive upper bound of bucket `i` (the last bucket is unbounded
    /// and reports `u64::MAX`).
    pub fn bucket_upper(&self, i: usize) -> u64 {
        if i >= self.counts.len() - 1 {
            u64::MAX
        } else {
            self.base.saturating_shl(i as u32)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let b = self.bucket_of(v);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Upper bound of the bucket containing the q-quantile
    /// (`0.0 <= q <= 1.0`; out-of-range panics). Bucketed, so accurate to
    /// a factor of two — enough to distinguish "microseconds" from "a
    /// flush stall". Edge cases are exact instead of bucketed: `None` when
    /// empty (no sentinel — an empty histogram has no quantiles), the
    /// exact minimum at `q = 0.0`, the exact maximum at `q = 1.0`, and a
    /// single-sample histogram returns that sample for every `q`.
    pub fn quantile_upper(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return None;
        }
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= rank {
                // Clamp to the observed range: tighter than bucket bounds
                // (and exact for a single sample, where min == max).
                return Some(self.bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one. Panics if the shapes (base
    /// and bucket count) differ — merged buckets would be meaningless.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.base, other.base, "histogram base mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "histogram bucket-count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// `(bucket_upper, count)` pairs for non-empty buckets.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_upper(i), c))
            .collect()
    }
}

/// `u64 << n` that saturates instead of overflowing (very large bases with
/// many buckets would otherwise wrap).
trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, n: u32) -> u64 {
        if n >= self.leading_zeros() {
            u64::MAX
        } else {
            self << n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::latency();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile_upper(0.99), None, "empty histogram has no quantiles");
        assert_eq!(h.quantile_upper(0.0), None);
        assert_eq!(h.quantile_upper(1.0), None);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::latency();
        h.record(3_333);
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_upper(q), Some(3_333), "q={q}");
        }
    }

    #[test]
    fn extreme_quantiles_are_exact_min_and_max() {
        let mut h = Histogram::latency();
        for v in [1_500u64, 7_000, 90_000, 2_000_000] {
            h.record(v);
        }
        assert_eq!(h.quantile_upper(0.0), Some(1_500));
        assert_eq!(h.quantile_upper(1.0), Some(2_000_000));
    }

    #[test]
    fn exact_stats_are_exact() {
        let mut h = Histogram::latency();
        for v in [1_000u64, 2_000, 3_000, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 4_000.0);
        assert_eq!(h.min(), 1_000);
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.sum(), 16_000);
    }

    #[test]
    fn quantiles_bracket_samples() {
        let mut h = Histogram::latency();
        // 99 fast samples, 1 slow one.
        for _ in 0..99 {
            h.record(2_000);
        }
        h.record(50_000_000); // 50 ms
        let p50 = h.quantile_upper(0.5).unwrap();
        assert!(p50 <= 4_000, "p50 {p50}");
        let p99 = h.quantile_upper(0.99).unwrap();
        assert!(p99 <= 4_000, "p99 {p99}");
        let p100 = h.quantile_upper(1.0);
        assert_eq!(p100, Some(50_000_000));
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        let h = Histogram::latency();
        let mut prev = 0;
        for i in 0..h.buckets() {
            let b = h.bucket_upper(i);
            assert!(b > prev);
            prev = b;
        }
    }

    #[test]
    fn samples_fall_into_their_bucket() {
        let mut h = Histogram::latency();
        for v in [0u64, 1, 999, 1_000, 1_001, 123_456, u64::MAX / 2] {
            h.record(v);
            let b = h.bucket_of(v);
            assert!(v <= h.bucket_upper(b));
            if b > 0 {
                assert!(v > h.bucket_upper(b - 1));
            }
        }
    }

    #[test]
    fn custom_shape_buckets_small_values() {
        // A queue-depth histogram: base 1, 8 buckets -> 1,2,4,...,unbounded.
        let mut h = Histogram::new(1, 8);
        for d in [1u64, 2, 3, 9, 200] {
            h.record(d);
        }
        assert_eq!(h.bucket_upper(0), 1);
        assert_eq!(h.bucket_upper(1), 2);
        assert_eq!(h.bucket_upper(2), 4);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 200);
        assert_eq!(h.nonzero_buckets().len(), 5); // 1 | 2 | 3..4 | 9..16 | 200
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::latency();
        let mut b = Histogram::latency();
        a.record(1_000);
        b.record(1_000_000);
        b.record(8_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 1_000);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.nonzero_buckets().len(), 3);
    }

    #[test]
    fn merge_is_commutative_on_counts() {
        let mut a = Histogram::new(10, 6);
        let mut b = Histogram::new(10, 6);
        for v in [5u64, 11, 80, 641] {
            a.record(v);
        }
        for v in [9u64, 10, 10_000] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 7);
    }

    #[test]
    #[should_panic(expected = "histogram base mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = Histogram::new(1, 8);
        let b = Histogram::new(2, 8);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_out_of_range() {
        let h = Histogram::latency();
        let _ = h.quantile_upper(1.5);
    }

    #[test]
    fn saturating_shift_never_wraps() {
        let h = Histogram::new(u64::MAX / 2, 8);
        assert_eq!(h.bucket_upper(5), u64::MAX);
    }
}
