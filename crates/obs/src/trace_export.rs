//! Chrome `trace_event` JSON export (Perfetto / `about:tracing`).
//!
//! The attribution subsystem captures sampled request lifecycles
//! ([`crate::attr::SpanRecord`]) and the flash layer captures chip/channel
//! busy intervals; this module renders both as the Trace Event Format's
//! JSON object form — `{"traceEvents":[...]}` with complete (`"ph":"X"`)
//! slices plus metadata (`"ph":"M"`) track names — which Perfetto and
//! Chrome's `about:tracing` load directly.
//!
//! Layout conventions (the `repro why` exporter uses these; nothing here
//! enforces them): one process per domain (requests / chips / channels),
//! one thread per track (one sampled request, one chip, one channel).
//! Slices on a track must not overlap — Perfetto renders overlap as nested
//! slices, which would misread as causality. The builder sorts each
//! track's slices by start time at [`TraceBuilder::finish`]; producers are
//! responsible for not emitting overlapping intervals on one track (the
//! flash timeline's busy horizons guarantee it for chips and channels, and
//! the request exporter lays components out back-to-back). A workspace
//! smoke test re-parses the emitted JSON and asserts per-track
//! non-overlap.
//!
//! Timestamps: the format counts microseconds; simulator time is
//! nanoseconds. Values render as fixed-point `µs.nnn` strings
//! (`1234 ns` → `1.234`), so the conversion is exact and byte-deterministic
//! — no float formatting is involved.

use crate::telemetry::jsonl_escape;

/// One complete slice, ns-resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Slice {
    pid: u32,
    tid: u32,
    name: String,
    cat: String,
    start_ns: u64,
    dur_ns: u64,
}

/// Builder for a Trace Event Format JSON document.
#[derive(Debug, Default, Clone)]
pub struct TraceBuilder {
    processes: Vec<(u32, String)>,
    threads: Vec<(u32, u32, String)>,
    slices: Vec<Slice>,
}

/// Exact ns → µs fixed-point rendering (`1234` → `"1.234"`).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

impl TraceBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Name a process (a top-level track group in the UI).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.processes.push((pid, name.to_string()));
    }

    /// Name a thread (one track).
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.threads.push((pid, tid, name.to_string()));
    }

    /// Add one complete slice (`ph:"X"`) to a track.
    pub fn slice(&mut self, pid: u32, tid: u32, name: &str, cat: &str, start_ns: u64, dur_ns: u64) {
        self.slices.push(Slice {
            pid,
            tid,
            name: name.to_string(),
            cat: cat.to_string(),
            start_ns,
            dur_ns,
        });
    }

    /// Number of slices added so far.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Render the document. Slices sort by `(pid, tid, start, insertion)`
    /// so every track reads in time order; the sort is stable and inputs
    /// are deterministic, so output bytes are too.
    pub fn finish(mut self) -> String {
        self.slices.sort_by_key(|s| (s.pid, s.tid, s.start_ns));
        let mut out = String::new();
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };
        for (pid, name) in &self.processes {
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    jsonl_escape(name)
                ),
                &mut out,
            );
        }
        for (pid, tid, name) in &self.threads {
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    jsonl_escape(name)
                ),
                &mut out,
            );
        }
        for s in &self.slices {
            push(
                format!(
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\
                     \"ts\":{},\"dur\":{}}}",
                    s.pid,
                    s.tid,
                    jsonl_escape(&s.name),
                    jsonl_escape(&s.cat),
                    us(s.start_ns),
                    us(s.dur_ns)
                ),
                &mut out,
            );
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_to_us_is_exact_fixed_point() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_000), "1.000");
        assert_eq!(us(1_234_567), "1234.567");
    }

    #[test]
    fn document_shape_and_ordering() {
        let mut b = TraceBuilder::new();
        b.process_name(1, "requests");
        b.thread_name(1, 42, "req 42");
        // Inserted out of time order on one track; finish() sorts.
        b.slice(1, 42, "read_service", "attr", 5_000, 1_000);
        b.slice(1, 42, "cache_service", "attr", 0, 5_000);
        let json = b.finish();
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.trim_end().ends_with("]}"));
        let cache_pos = json.find("cache_service").unwrap();
        let read_pos = json.find("read_service").unwrap();
        assert!(cache_pos < read_pos, "track must read in time order");
        assert!(json.contains("\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\""));
        assert!(json.contains("\"args\":{\"name\":\"req 42\"}"));
        assert!(json.contains("\"ts\":0.000,\"dur\":5.000"));
        assert!(json.contains("\"ts\":5.000,\"dur\":1.000"));
    }

    #[test]
    fn output_is_deterministic() {
        let build = || {
            let mut b = TraceBuilder::new();
            b.process_name(2, "chips");
            for i in 0..10u32 {
                b.thread_name(2, i, &format!("chip {i}"));
                b.slice(2, i, "read", "flash", (i as u64) * 100, 40);
            }
            b.finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn names_are_escaped() {
        let mut b = TraceBuilder::new();
        b.slice(1, 1, "odd\"name", "c\\at", 0, 1);
        let json = b.finish();
        assert!(json.contains("odd\\\"name"));
        assert!(json.contains("c\\\\at"));
    }

    #[test]
    fn empty_builder_is_still_valid_shape() {
        let json = TraceBuilder::new().finish();
        assert_eq!(json, "{\"traceEvents\":[\n\n]}\n");
    }
}
