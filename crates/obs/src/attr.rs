//! Per-request latency attribution (DESIGN.md §7.4).
//!
//! A tail request's response time is an opaque sum of waits: flush-window
//! stalls, per-chip read queue contention, GC interference, read retries.
//! This module holds the *accumulator* side of the attribution subsystem:
//! the engine decomposes every request's response into named
//! [`Component`]s whose parts **sum exactly** to the recorded response
//! time (the engine attributes each advance of the request's completion
//! horizon exactly once — a workspace proptest pins the invariant), and
//! feeds them into an [`AttrAcc`]:
//!
//! * per-component log-bucketed [`Histogram`]s plus exact totals, so a
//!   report can say "at this load point, 78 % of p99.9 is flush stall";
//! * a deterministic sampling policy — every-Kth request (seeded phase)
//!   plus an exact slowest-N reservoir — that captures full
//!   [`SpanRecord`]s for export as Chrome `trace_event` JSON
//!   (see [`crate::trace_export`]).
//!
//! Determinism: sampling depends only on `(req_id, response_ns, seed)`,
//! never on wall-clock or allocation order, so the same run samples the
//! same requests at any worker-thread count.

use crate::histogram::Histogram;

/// Number of named response-time components.
pub const COMPONENTS: usize = 7;

/// A named share of one request's response time.
///
/// The engine charges every nanosecond of response to exactly one
/// component; the variants mirror the places a request can spend time in
/// the simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// Time between arrival and dispatch. The current engine dispatches at
    /// arrival under every submit mode, so this is structurally zero; it is
    /// reserved so the decomposition stays stable when an admission queue
    /// lands (ROADMAP item 1).
    DispatchWait = 0,
    /// DRAM cache service: buffered writes and read hits.
    CacheService = 1,
    /// Stall waiting for an eviction flush the request's write triggered
    /// (or, in queued mode, waiting for a flush-window slot).
    FlushStall = 2,
    /// Read-miss time spent queued behind earlier operations on the target
    /// chip or channel before the sense even starts.
    ReadQueueWait = 3,
    /// Read-miss service proper: sense plus bus transfer.
    ReadService = 4,
    /// Time attributable to garbage collection occupying the chips the
    /// request needed.
    GcInterference = 5,
    /// Extra flash occupancy from fault-injected read retries.
    ReadRetry = 6,
}

impl Component {
    /// All components, in index order.
    pub const ALL: [Component; COMPONENTS] = [
        Component::DispatchWait,
        Component::CacheService,
        Component::FlushStall,
        Component::ReadQueueWait,
        Component::ReadService,
        Component::GcInterference,
        Component::ReadRetry,
    ];

    /// Stable array index of this component.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Telemetry/trace name (snake_case, stable — consumers key on it).
    pub const fn name(self) -> &'static str {
        match self {
            Component::DispatchWait => "dispatch_wait",
            Component::CacheService => "cache_service",
            Component::FlushStall => "flush_stall",
            Component::ReadQueueWait => "read_queue_wait",
            Component::ReadService => "read_service",
            Component::GcInterference => "gc_interference",
            Component::ReadRetry => "read_retry",
        }
    }
}

/// Sampling policy for full span capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrConfig {
    /// Capture every `sample_every`-th request (by id, with a seeded
    /// phase). `0` disables the every-Kth stream.
    pub sample_every: u64,
    /// Size of the exact slowest-N reservoir (`0` disables it).
    pub slowest: usize,
    /// Seed for the every-Kth phase; part of the deterministic identity of
    /// a run's sample set.
    pub seed: u64,
}

impl Default for AttrConfig {
    fn default() -> Self {
        Self { sample_every: 1_024, slowest: 16, seed: 0x7A11_F0CE_5EED }
    }
}

/// Soft cap on stored every-Kth records; a run longer than
/// `cap * sample_every` requests keeps the first `cap` and counts the rest
/// in [`AttrAcc::dropped_samples`] (the slowest-N reservoir is unaffected).
const EVERY_KTH_CAP: usize = 4_096;

/// One fully captured request lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Engine-assigned request id (submission order).
    pub req_id: u64,
    /// Arrival time, ns.
    pub start_ns: u64,
    /// Total response time, ns.
    pub response_ns: u64,
    /// Per-component share, indexed by [`Component::index`]. Sums exactly
    /// to `response_ns`.
    pub parts: [u64; COMPONENTS],
}

impl SpanRecord {
    /// Sum of the per-component parts (equals `response_ns` by the
    /// engine's exact-decomposition invariant).
    pub fn parts_sum(&self) -> u64 {
        self.parts.iter().sum()
    }
}

/// Accumulator for per-request attribution: histograms, exact totals, and
/// the deterministic sample streams.
#[derive(Debug, Clone)]
pub struct AttrAcc {
    cfg: AttrConfig,
    /// Seeded phase of the every-Kth stream: sample when
    /// `req_id % sample_every == phase`.
    phase: u64,
    hists: [Histogram; COMPONENTS],
    response: Histogram,
    totals: [u128; COMPONENTS],
    total_response_ns: u128,
    requests: u64,
    every_kth: Vec<SpanRecord>,
    dropped_samples: u64,
    slowest: Vec<SpanRecord>,
}

impl AttrAcc {
    /// Fresh accumulator with the given sampling policy.
    pub fn new(cfg: AttrConfig) -> Self {
        let phase = if cfg.sample_every == 0 {
            0
        } else {
            // One xorshift64* step over the seed picks the phase, so two
            // runs with different seeds sample different request lanes.
            let mut x = if cfg.seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { cfg.seed };
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D) % cfg.sample_every
        };
        Self {
            cfg,
            phase,
            hists: std::array::from_fn(|_| Histogram::latency()),
            response: Histogram::latency(),
            totals: [0; COMPONENTS],
            total_response_ns: 0,
            requests: 0,
            every_kth: Vec::new(),
            dropped_samples: 0,
            slowest: Vec::new(),
        }
    }

    /// The sampling policy in effect.
    pub fn config(&self) -> &AttrConfig {
        &self.cfg
    }

    /// Whether the every-Kth stream selects `req_id`.
    pub fn selects_every_kth(&self, req_id: u64) -> bool {
        self.cfg.sample_every != 0 && req_id % self.cfg.sample_every == self.phase
    }

    /// Record one request's decomposition. `parts` must sum to
    /// `response_ns` (debug-asserted; the engine guarantees it by
    /// construction).
    pub fn observe(&mut self, req_id: u64, start_ns: u64, response_ns: u64, parts: [u64; COMPONENTS]) {
        debug_assert_eq!(
            parts.iter().sum::<u64>(),
            response_ns,
            "attributed parts must sum exactly to the response time"
        );
        self.requests += 1;
        self.response.record(response_ns);
        self.total_response_ns += response_ns as u128;
        for (i, &p) in parts.iter().enumerate() {
            // Component histograms only count requests that actually spent
            // time in the component — an all-zeros column would drown the
            // quantiles of rare-but-huge components like GC pauses.
            if p > 0 {
                self.hists[i].record(p);
            }
            self.totals[i] += p as u128;
        }
        if self.selects_every_kth(req_id) {
            if self.every_kth.len() < EVERY_KTH_CAP {
                self.every_kth.push(SpanRecord { req_id, start_ns, response_ns, parts });
            } else {
                self.dropped_samples += 1;
            }
        }
        if self.cfg.slowest > 0 {
            let candidate = SpanRecord { req_id, start_ns, response_ns, parts };
            if self.slowest.len() < self.cfg.slowest {
                self.slowest.push(candidate);
            } else {
                // Exact top-N: replace the current minimum when strictly
                // slower; ties keep the earlier req_id (deterministic).
                let (mi, min) = self
                    .slowest
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, r)| (r.response_ns, std::cmp::Reverse(r.req_id)))
                    .expect("reservoir is non-empty");
                if candidate.response_ns > min.response_ns {
                    self.slowest[mi] = candidate;
                }
            }
        }
    }

    /// Number of observed requests.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Histogram of one component's nonzero shares.
    pub fn component_hist(&self, c: Component) -> &Histogram {
        &self.hists[c.index()]
    }

    /// Histogram of full response times.
    pub fn response_hist(&self) -> &Histogram {
        &self.response
    }

    /// Exact total nanoseconds charged to one component.
    pub fn total_ns(&self, c: Component) -> u128 {
        self.totals[c.index()]
    }

    /// Exact total response nanoseconds (equals the sum over components).
    pub fn total_response_ns(&self) -> u128 {
        self.total_response_ns
    }

    /// Every-Kth records, in observation order.
    pub fn every_kth(&self) -> &[SpanRecord] {
        &self.every_kth
    }

    /// Every-Kth records that did not fit under the soft cap.
    pub fn dropped_samples(&self) -> u64 {
        self.dropped_samples
    }

    /// The slowest-N reservoir, sorted slowest-first (ties by req_id).
    pub fn slowest(&self) -> Vec<SpanRecord> {
        let mut out = self.slowest.clone();
        out.sort_by_key(|r| (std::cmp::Reverse(r.response_ns), r.req_id));
        out
    }

    /// Union of both sample streams, deduplicated by req_id and sorted by
    /// req_id — the span set the trace export renders.
    pub fn sampled_spans(&self) -> Vec<SpanRecord> {
        let mut out = self.every_kth.clone();
        out.extend(self.slowest.iter().cloned());
        out.sort_by_key(|r| r.req_id);
        out.dedup_by_key(|r| r.req_id);
        out
    }

    /// The component with the largest share of total time over the
    /// slowest-N reservoir — "what the tail is made of". Falls back to the
    /// whole-run totals when the reservoir is empty. Ties resolve to the
    /// lower component index (stable).
    pub fn dominant_tail_component(&self) -> Component {
        let mut sums = [0u128; COMPONENTS];
        if self.slowest.is_empty() {
            sums = self.totals;
        } else {
            for r in &self.slowest {
                for (s, &p) in sums.iter_mut().zip(&r.parts) {
                    *s += p as u128;
                }
            }
        }
        let mut best = Component::DispatchWait;
        let mut best_v = 0u128;
        for c in Component::ALL {
            if sums[c.index()] > best_v {
                best_v = sums[c.index()];
                best = c;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts(vals: [u64; COMPONENTS]) -> [u64; COMPONENTS] {
        vals
    }

    fn observe_simple(acc: &mut AttrAcc, req_id: u64, response: u64) {
        let mut p = [0u64; COMPONENTS];
        p[Component::CacheService.index()] = response;
        acc.observe(req_id, req_id * 10, response, p);
    }

    #[test]
    fn totals_and_histograms_accumulate() {
        let mut acc = AttrAcc::new(AttrConfig::default());
        let mut p = [0u64; COMPONENTS];
        p[Component::CacheService.index()] = 100;
        p[Component::FlushStall.index()] = 900;
        acc.observe(0, 0, 1_000, p);
        assert_eq!(acc.requests(), 1);
        assert_eq!(acc.total_response_ns(), 1_000);
        assert_eq!(acc.total_ns(Component::FlushStall), 900);
        assert_eq!(acc.component_hist(Component::FlushStall).count(), 1);
        // Zero parts are not recorded into the component histogram.
        assert_eq!(acc.component_hist(Component::ReadRetry).count(), 0);
        let sum: u128 = Component::ALL.iter().map(|&c| acc.total_ns(c)).sum();
        assert_eq!(sum, acc.total_response_ns());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "sum exactly"))]
    fn mismatched_parts_are_rejected_in_debug() {
        let mut acc = AttrAcc::new(AttrConfig::default());
        let p = parts([1, 0, 0, 0, 0, 0, 0]);
        acc.observe(0, 0, 2, p);
        // Release builds skip the debug assertion; make the test pass there.
        #[cfg(debug_assertions)]
        unreachable!();
    }

    #[test]
    fn every_kth_is_seeded_and_periodic() {
        let cfg = AttrConfig { sample_every: 8, slowest: 0, seed: 7 };
        let mut acc = AttrAcc::new(cfg);
        for id in 0..64 {
            observe_simple(&mut acc, id, 1_000);
        }
        let ids: Vec<u64> = acc.every_kth().iter().map(|r| r.req_id).collect();
        assert_eq!(ids.len(), 8, "64 requests at K=8 -> 8 samples");
        for w in ids.windows(2) {
            assert_eq!(w[1] - w[0], 8, "samples every Kth request");
        }
        // Identical config -> identical selection; different seed -> (here)
        // a different phase.
        let mut again = AttrAcc::new(cfg);
        for id in 0..64 {
            observe_simple(&mut again, id, 1_000);
        }
        let again_ids: Vec<u64> = again.every_kth().iter().map(|r| r.req_id).collect();
        assert_eq!(ids, again_ids);
        let mut other = AttrAcc::new(AttrConfig { seed: 8, ..cfg });
        for id in 0..64 {
            observe_simple(&mut other, id, 1_000);
        }
        let other_ids: Vec<u64> = other.every_kth().iter().map(|r| r.req_id).collect();
        assert_ne!(ids, other_ids, "seed must move the sampling phase");
    }

    #[test]
    fn slowest_reservoir_is_exact_top_n() {
        let cfg = AttrConfig { sample_every: 0, slowest: 3, seed: 1 };
        let mut acc = AttrAcc::new(cfg);
        for (id, resp) in [(0, 50), (1, 10), (2, 99), (3, 70), (4, 99), (5, 5)] {
            observe_simple(&mut acc, id, resp);
        }
        let slow = acc.slowest();
        let got: Vec<(u64, u64)> = slow.iter().map(|r| (r.response_ns, r.req_id)).collect();
        assert_eq!(got, vec![(99, 2), (99, 4), (70, 3)]);
    }

    #[test]
    fn sampled_spans_dedup_and_sort() {
        let cfg = AttrConfig { sample_every: 2, slowest: 2, seed: 3 };
        let mut acc = AttrAcc::new(cfg);
        for id in 0..10 {
            observe_simple(&mut acc, id, 1_000 + id);
        }
        let spans = acc.sampled_spans();
        let mut ids: Vec<u64> = spans.iter().map(|r| r.req_id).collect();
        let orig = ids.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(orig, ids, "sampled spans must be sorted and unique");
    }

    #[test]
    fn dominant_tail_component_reads_the_reservoir() {
        let cfg = AttrConfig { sample_every: 0, slowest: 2, seed: 1 };
        let mut acc = AttrAcc::new(cfg);
        // Many fast cache-service requests, two slow GC-dominated ones.
        for id in 0..50 {
            observe_simple(&mut acc, id, 2_000);
        }
        for id in 50..52 {
            let mut p = [0u64; COMPONENTS];
            p[Component::GcInterference.index()] = 900_000;
            p[Component::ReadService.index()] = 100_000;
            acc.observe(id, 0, 1_000_000, p);
        }
        assert_eq!(acc.dominant_tail_component(), Component::GcInterference);
    }

    #[test]
    fn zero_sampling_disables_both_streams() {
        let cfg = AttrConfig { sample_every: 0, slowest: 0, seed: 1 };
        let mut acc = AttrAcc::new(cfg);
        for id in 0..100 {
            observe_simple(&mut acc, id, 500);
        }
        assert!(acc.every_kth().is_empty());
        assert!(acc.slowest().is_empty());
        assert_eq!(acc.requests(), 100);
    }
}
