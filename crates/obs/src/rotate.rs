//! Size-rotating JSONL telemetry sink (the fleet-ready writer).
//!
//! One simulated device emits one JSONL stream; a fleet-scale sweep
//! (ROADMAP item 1) emits thousands, and an unbounded single file stops
//! being a useful artifact. [`RotatingSink`] splits a line stream into
//! byte-bounded chunks at **byte-deterministic** rotation points: a line
//! rotates to a fresh chunk exactly when appending it (plus its newline)
//! would push the current non-empty chunk past `max_bytes`. The decision
//! depends only on the bytes pushed so far — never on wall-clock, flush
//! timing, or the filesystem — so the same stream always shards at the
//! same lines, and chunk contents are byte-identical across runs and
//! thread counts. Lines longer than `max_bytes` still land whole (in a
//! chunk of their own): a JSONL line is the atomic unit and is never
//! split.
//!
//! [`TelemetryWriter`] is the file-backed form: it routes a sink's chunks
//! to `<dir>/<base>.NNN.jsonl` shards.

use std::io;
use std::path::{Path, PathBuf};

/// In-memory rotating line sink with byte-deterministic rotation points.
#[derive(Debug, Clone)]
pub struct RotatingSink {
    max_bytes: usize,
    sealed: Vec<String>,
    current: String,
}

impl RotatingSink {
    /// Sink whose chunks stay at or under `max_bytes` (except for single
    /// oversized lines, which get a chunk of their own).
    pub fn new(max_bytes: usize) -> Self {
        assert!(max_bytes > 0, "rotation threshold must be positive");
        Self { max_bytes, sealed: Vec::new(), current: String::new() }
    }

    /// Append one line (a trailing `\n` is added; `line` itself must not
    /// contain one). Rotates first when the line would not fit.
    pub fn push_line(&mut self, line: &str) {
        debug_assert!(!line.contains('\n'), "push_line takes a single line");
        let incoming = line.len() + 1;
        if !self.current.is_empty() && self.current.len() + incoming > self.max_bytes {
            self.sealed.push(std::mem::take(&mut self.current));
        }
        self.current.push_str(line);
        self.current.push('\n');
    }

    /// Append every line of a JSONL document.
    pub fn push_document(&mut self, jsonl: &str) {
        for line in jsonl.lines() {
            self.push_line(line);
        }
    }

    /// Number of chunks the stream has produced so far (including the
    /// in-progress one when non-empty).
    pub fn chunk_count(&self) -> usize {
        self.sealed.len() + usize::from(!self.current.is_empty())
    }

    /// All chunks, in order; the last one is the in-progress chunk.
    pub fn into_chunks(self) -> Vec<String> {
        let mut out = self.sealed;
        if !self.current.is_empty() {
            out.push(self.current);
        }
        out
    }
}

/// File-backed rotating telemetry writer: shards a line stream into
/// `<dir>/<base>.NNN.jsonl`.
#[derive(Debug)]
pub struct TelemetryWriter {
    dir: PathBuf,
    base: String,
    sink: RotatingSink,
}

impl TelemetryWriter {
    /// Writer for `<dir>/<base>.NNN.jsonl` shards rotating at `max_bytes`.
    pub fn new(dir: impl Into<PathBuf>, base: impl Into<String>, max_bytes: usize) -> Self {
        Self { dir: dir.into(), base: base.into(), sink: RotatingSink::new(max_bytes) }
    }

    /// Append one line (see [`RotatingSink::push_line`]).
    pub fn push_line(&mut self, line: &str) {
        self.sink.push_line(line);
    }

    /// Append every line of a JSONL document.
    pub fn push_document(&mut self, jsonl: &str) {
        self.sink.push_document(jsonl);
    }

    /// Write all shards and return their paths in order. Shards are
    /// numbered `000`, `001`, ... so lexicographic order is stream order.
    pub fn finish(self) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(&self.dir)?;
        let mut paths = Vec::new();
        for (i, chunk) in self.sink.into_chunks().into_iter().enumerate() {
            let path = self.dir.join(format!("{}.{:03}.jsonl", self.base, i));
            std::fs::write(&path, chunk)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

/// One-shot convenience: shard a complete JSONL document to
/// `<dir>/<base>.NNN.jsonl` files rotating at `max_bytes`.
pub fn write_rotated(
    dir: &Path,
    base: &str,
    max_bytes: usize,
    jsonl: &str,
) -> io::Result<Vec<PathBuf>> {
    let mut w = TelemetryWriter::new(dir, base, max_bytes);
    w.push_document(jsonl);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_points_are_byte_deterministic() {
        let run = |lines: &[&str]| {
            let mut sink = RotatingSink::new(16);
            for l in lines {
                sink.push_line(l);
            }
            sink.into_chunks()
        };
        let lines = ["aaaa", "bbbb", "cccc", "dddd", "eeee"];
        let a = run(&lines);
        let b = run(&lines);
        assert_eq!(a, b, "same stream must shard identically");
        // 16-byte chunks hold three 5-byte lines ("aaaa\n"): 3 + 2.
        assert_eq!(a.len(), 2);
        assert_eq!(a[0], "aaaa\nbbbb\ncccc\n");
        assert_eq!(a[1], "dddd\neeee\n");
    }

    #[test]
    fn reassembled_chunks_equal_the_stream() {
        let mut sink = RotatingSink::new(10);
        let mut expect = String::new();
        for i in 0..50 {
            let line = format!("line-{i}");
            sink.push_line(&line);
            expect.push_str(&line);
            expect.push('\n');
        }
        let chunks = sink.into_chunks();
        assert!(chunks.len() > 1, "must actually rotate");
        assert!(chunks.iter().all(|c| c.len() <= 10));
        assert_eq!(chunks.concat(), expect, "no bytes lost or reordered");
    }

    #[test]
    fn oversized_lines_land_whole() {
        let mut sink = RotatingSink::new(4);
        sink.push_line("tiny");
        sink.push_line("much-longer-than-the-threshold");
        sink.push_line("x");
        let chunks = sink.into_chunks();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[1], "much-longer-than-the-threshold\n");
    }

    #[test]
    fn chunk_count_tracks_progress() {
        let mut sink = RotatingSink::new(6);
        assert_eq!(sink.chunk_count(), 0);
        sink.push_line("abcd");
        assert_eq!(sink.chunk_count(), 1);
        sink.push_line("efgh");
        assert_eq!(sink.chunk_count(), 2);
    }

    #[test]
    fn writer_emits_ordered_shards() {
        let dir = std::env::temp_dir().join("reqblock_rotate_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = TelemetryWriter::new(&dir, "dev0", 12);
        for i in 0..6 {
            w.push_line(&format!("row-{i}"));
        }
        let paths = w.finish().unwrap();
        assert_eq!(paths.len(), 3, "six 6-byte lines at 12 bytes -> 3 shards");
        assert!(paths[0].ends_with("dev0.000.jsonl"));
        assert!(paths[2].ends_with("dev0.002.jsonl"));
        let mut all = String::new();
        for p in &paths {
            all.push_str(&std::fs::read_to_string(p).unwrap());
        }
        assert_eq!(all, "row-0\nrow-1\nrow-2\nrow-3\nrow-4\nrow-5\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_rotated_roundtrips_a_document() {
        let dir = std::env::temp_dir().join("reqblock_rotate_doc_test");
        let _ = std::fs::remove_dir_all(&dir);
        let doc = "{\"type\":\"run_meta\"}\n{\"type\":\"counter\"}\n{\"type\":\"gauge\"}\n";
        let paths = write_rotated(&dir, "t", 21, doc).unwrap();
        assert!(paths.len() >= 2);
        let mut all = String::new();
        for p in &paths {
            all.push_str(&std::fs::read_to_string(p).unwrap());
        }
        assert_eq!(all, doc);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "rotation threshold")]
    fn zero_threshold_rejected() {
        let _ = RotatingSink::new(0);
    }
}
