//! Well-known names for the host-layer time series and gauges.
//!
//! Producers pass series names as plain `&str` (the recorder vocabulary is
//! stringly typed on purpose — see [`crate::Recorder`]); these constants
//! exist so the host queue-depth instrumentation and its consumers (the X5
//! sweep, telemetry readers) agree on spelling. Device-level series
//! (`hit_ratio`, `chan_util`, ...) predate this module and stay literal at
//! their emission sites, pinned by the golden telemetry tests.

/// Outstanding asynchronous eviction flushes in the host window at sample
/// time. Emitted only when the submit mode admits background flushes
/// (`Queued { depth >= 2 }`), so synchronous telemetry is unchanged.
pub const QDEPTH: &str = "qdepth";

/// End-of-run gauge: the configured host queue depth.
pub const HOST_QDEPTH: &str = "host_qdepth";

/// End-of-run gauge: the largest number of flushes that were ever
/// outstanding at once (high-water mark of [`QDEPTH`]).
pub const HOST_MAX_OUTSTANDING: &str = "host_max_outstanding";

/// Outstanding flash read completions across all chips at sample time —
/// the NCQ-style in-flight read ledger ([`OUTSTANDING_READS`] counts reads
/// issued to chips whose completion the host has not yet observed). Like
/// [`QDEPTH`], emitted only when the submit mode admits background work,
/// so synchronous telemetry is unchanged.
pub const OUTSTANDING_READS: &str = "outstanding_reads";

/// End-of-run gauge: the largest number of flash reads ever in flight at
/// once (high-water mark of [`OUTSTANDING_READS`]).
pub const HOST_MAX_READS_OUTSTANDING: &str = "host_max_reads_outstanding";

/// Prefix of the per-component attribution rollup keys. Per
/// [`crate::Component`] the engine emits counters
/// `attr_<component>_ns` (total attributed nanoseconds) and
/// `attr_<component>_reqs` (requests with a nonzero share), plus gauge
/// `attr_<component>_max_ms` (largest single-request share). Emitted only
/// on attribution-enabled runs (`SimConfig::with_attribution`), so plain
/// telemetry bytes are unchanged.
pub const ATTR_PREFIX: &str = "attr_";

/// End-of-run counter: requests captured as full span records by the
/// deterministic sampler (every-Kth union slowest-N, deduplicated).
pub const ATTR_SAMPLED_SPANS: &str = "attr_sampled_spans";

/// End-of-run gauge: p99 of the attributed response-time histogram, ms
/// (the attribution layer's own view; matches the engine's
/// `p99_response_ms` gauge by construction).
pub const ATTR_P99_RESPONSE_MS: &str = "attr_p99_response_ms";
