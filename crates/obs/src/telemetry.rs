//! Deterministic JSONL rendering of a [`MemoryRecorder`].
//!
//! One run emits one JSONL file. Line types (the golden schema test in the
//! workspace pins these field names and types — extend, don't rename):
//!
//! ```text
//! {"type":"run_meta","schema":"reqblock-obs/1","policy":"Req-block",...}
//! {"type":"point","series":"hit_ratio","t":10000,"v":0.551}
//! {"type":"counter","key":"flash_user_programs","value":14863}
//! {"type":"gauge","key":"write_amp","value":1.0}
//! {"type":"span","key":"flush_wait","count":1626,"total_ns":..,"max_ns":..,"mean_ns":..}
//! ```
//!
//! * `run_meta` comes first; every value is a string; callers choose the
//!   pairs (policy, trace, cache size, scale, ...).
//! * `point` lines follow, series sorted by name, points in sample order.
//! * `counter`, `gauge`, `span` aggregates close the file, sorted by key.
//!
//! No serde JSON implementation exists in this offline workspace, so the
//! writer formats by hand; determinism comes from the recorder's `BTreeMap`
//! storage and Rust's shortest-roundtrip `f64` `Display`.

use crate::recorder::MemoryRecorder;
use std::fmt::Write as _;

/// Schema tag stamped into every `run_meta` line. Bump on breaking changes.
pub const SCHEMA_VERSION: &str = "reqblock-obs/1";

/// Escape a string for inclusion inside JSON double quotes.
pub fn jsonl_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (non-finite values become `null`, which
/// JSON has no number spelling for).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render one run's telemetry as JSONL. `meta` pairs land in the leading
/// `run_meta` line in the order given; everything else comes from the
/// recorder in sorted-key order, so identical runs yield identical bytes.
pub fn to_jsonl(rec: &MemoryRecorder, meta: &[(&str, String)]) -> String {
    let mut out = String::new();
    out.push_str("{\"type\":\"run_meta\",\"schema\":\"");
    out.push_str(SCHEMA_VERSION);
    out.push('"');
    for (k, v) in meta {
        let _ = write!(out, ",\"{}\":\"{}\"", jsonl_escape(k), jsonl_escape(v));
    }
    out.push_str("}\n");

    for name in rec.series_names() {
        for &(t, v) in rec.series_points(name) {
            let _ = writeln!(
                out,
                "{{\"type\":\"point\",\"series\":\"{}\",\"t\":{},\"v\":{}}}",
                jsonl_escape(name),
                t,
                json_f64(v)
            );
        }
    }
    for (key, value) in rec.counters() {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"key\":\"{}\",\"value\":{}}}",
            jsonl_escape(key),
            value
        );
    }
    for (key, value) in rec.gauges() {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"key\":\"{}\",\"value\":{}}}",
            jsonl_escape(key),
            json_f64(value)
        );
    }
    for (key, s) in rec.spans() {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"key\":\"{}\",\"count\":{},\"total_ns\":{},\"max_ns\":{},\"mean_ns\":{}}}",
            jsonl_escape(key),
            s.count,
            s.total_ns,
            s.max_ns,
            json_f64(s.mean_ns())
        );
    }
    out
}

/// Human-readable end-of-run summary: `(kind, name, value)` rows, in the
/// same order the JSONL emits aggregates. Callers lay these out as a table.
pub fn summary_rows(rec: &MemoryRecorder) -> Vec<(String, String, String)> {
    let mut rows = Vec::new();
    for (key, value) in rec.counters() {
        rows.push(("counter".into(), key.to_string(), value.to_string()));
    }
    for (key, value) in rec.gauges() {
        rows.push(("gauge".into(), key.to_string(), format!("{value:.4}")));
    }
    for (key, s) in rec.spans() {
        rows.push((
            "span".into(),
            key.to_string(),
            format!(
                "count={} total={:.3}ms max={:.3}ms mean={:.1}us",
                s.count,
                s.total_ns as f64 / 1e6,
                s.max_ns as f64 / 1e6,
                s.mean_ns() / 1e3
            ),
        ));
    }
    for name in rec.series_names() {
        let points = rec.series_points(name);
        let last = points.last().map(|&(_, v)| v).unwrap_or(0.0);
        rows.push((
            "series".into(),
            name.to_string(),
            format!("{} points, last={:.4}", points.len(), last),
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_recorder() -> MemoryRecorder {
        let mut r = MemoryRecorder::new();
        r.counter("b_counter", 7);
        r.counter("a_counter", 3);
        r.gauge("write_amp", 1.25);
        r.span("flush_wait", 1_000);
        r.span("flush_wait", 3_000);
        r.sample("hit_ratio", 0, 0.5);
        r.sample("hit_ratio", 100, 0.625);
        r
    }

    #[test]
    fn jsonl_layout_and_ordering() {
        let r = sample_recorder();
        let text = to_jsonl(&r, &[("policy", "LRU".into())]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"run_meta\",\"schema\":\"reqblock-obs/1\",\"policy\":\"LRU\"}"
        );
        assert_eq!(lines[1], "{\"type\":\"point\",\"series\":\"hit_ratio\",\"t\":0,\"v\":0.5}");
        assert_eq!(
            lines[2],
            "{\"type\":\"point\",\"series\":\"hit_ratio\",\"t\":100,\"v\":0.625}"
        );
        // Counters sorted by key: a_counter before b_counter.
        assert_eq!(lines[3], "{\"type\":\"counter\",\"key\":\"a_counter\",\"value\":3}");
        assert_eq!(lines[4], "{\"type\":\"counter\",\"key\":\"b_counter\",\"value\":7}");
        assert_eq!(lines[5], "{\"type\":\"gauge\",\"key\":\"write_amp\",\"value\":1.25}");
        assert!(lines[6].starts_with("{\"type\":\"span\",\"key\":\"flush_wait\",\"count\":2,"));
        assert_eq!(lines.len(), 7);
    }

    #[test]
    fn identical_recorders_render_identical_bytes() {
        let a = to_jsonl(&sample_recorder(), &[("seed", "42".into())]);
        let b = to_jsonl(&sample_recorder(), &[("seed", "42".into())]);
        assert_eq!(a, b);
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(jsonl_escape("a\"b"), "a\\\"b");
        assert_eq!(jsonl_escape("a\\b"), "a\\\\b");
        assert_eq!(jsonl_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(jsonl_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_gauges_become_null() {
        let mut r = MemoryRecorder::new();
        r.gauge("bad", f64::NAN);
        let text = to_jsonl(&r, &[]);
        assert!(text.contains("\"value\":null"), "{text}");
    }

    #[test]
    fn summary_rows_cover_every_kind() {
        let rows = summary_rows(&sample_recorder());
        let kinds: Vec<&str> = rows.iter().map(|(k, _, _)| k.as_str()).collect();
        assert_eq!(kinds, vec!["counter", "counter", "gauge", "span", "series"]);
        assert!(rows.iter().any(|(_, n, v)| n == "hit_ratio" && v.contains("2 points")));
    }
}
