//! Observability substrate for the Req-block simulator workspace.
//!
//! Diagnosing *why* a policy wins needs dynamics over time — GC bursts,
//! channel contention, write-amplification drift — not just end-of-run
//! aggregates. This crate provides the instrumentation vocabulary the rest
//! of the workspace speaks:
//!
//! * [`Recorder`] — the sink trait. Every hook has a no-op default and
//!   [`Recorder::enabled`] defaults to `false`, so instrumented code guards
//!   its per-event calls with one cached bool and a disabled run costs
//!   nothing measurable (the hot path stays at PR 1 speed; `scripts/bench.sh`
//!   gates the overhead at < 2 %).
//! * [`NoopRecorder`] — the disabled sink ([`Ssd::submit`]-style paths).
//! * [`MemoryRecorder`] — accumulates counters, gauges, span stats and
//!   sampled time series in `BTreeMap`s, so iteration order — and therefore
//!   the emitted telemetry — is deterministic for a deterministic run.
//! * [`Fanout`] — drives several recorders from one run (e.g. the Figure 2
//!   and Figure 3 consumers share a replay).
//! * [`Histogram`] — reusable log2-bucketed histogram (generalizes the old
//!   `sim/histogram.rs` latency histogram to runtime base/bucket counts).
//! * [`telemetry`] — deterministic JSONL rendering of a [`MemoryRecorder`]
//!   plus human-readable summary rows.
//! * [`attr`] — per-request latency attribution: named response-time
//!   [`Component`]s with per-component histograms, exact totals, and a
//!   deterministic sampling policy (every-Kth + slowest-N) capturing full
//!   [`attr::SpanRecord`]s.
//! * [`trace_export`] — Chrome `trace_event` JSON rendering of sampled
//!   spans and busy intervals (loads in Perfetto / `about:tracing`).
//! * [`rotate`] — size-rotating JSONL sink with byte-deterministic
//!   rotation points ([`RotatingSink`], file-backed [`TelemetryWriter`]).
//!
//! The crate is dependency-free (the `serde` dependency is the workspace's
//! offline marker-trait stand-in) and knows nothing about caches, FTLs or
//! flash: producers translate their events into the neutral vocabulary
//! (counter/gauge/span/sample/page).
//!
//! [`Ssd::submit`]: https://docs.rs/reqblock-sim

pub mod attr;
pub mod histogram;
pub mod recorder;
pub mod rotate;
pub mod series;
pub mod telemetry;
pub mod trace_export;

pub use attr::{AttrAcc, AttrConfig, Component, SpanRecord};
pub use histogram::Histogram;
pub use recorder::{Fanout, MemoryRecorder, NoopRecorder, PageEvent, Recorder, SpanStats};
pub use rotate::{RotatingSink, TelemetryWriter};
pub use telemetry::{jsonl_escape, SCHEMA_VERSION};
pub use trace_export::TraceBuilder;
