//! Property-based tests for the trace substrate.

use proptest::prelude::*;
use reqblock_trace::msr;
use reqblock_trace::zipf::Zipf;
use reqblock_trace::{OpType, Request, PAGE_SIZE};

proptest! {
    /// Page math: the page-count formula always matches the enumeration,
    /// and every enumerated page overlaps the byte range.
    #[test]
    fn page_count_matches_enumeration(offset in 0u64..1 << 40, len in 1u64..1 << 20) {
        let r = Request::new(0, OpType::Write, offset, len);
        let pages: Vec<_> = r.lpns().collect();
        prop_assert_eq!(pages.len() as u64, r.page_count());
        // Pages are contiguous and ascending.
        for w in pages.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1);
        }
        // First and last page must intersect the byte range.
        let first = pages[0];
        let last = *pages.last().unwrap();
        prop_assert!(first * PAGE_SIZE <= offset && offset < (first + 1) * PAGE_SIZE);
        let end = offset + len - 1;
        prop_assert!(last * PAGE_SIZE <= end && end < (last + 1) * PAGE_SIZE);
    }

    /// Byte ranges covering whole pages have exactly len/PAGE_SIZE pages.
    #[test]
    fn aligned_requests_have_exact_page_count(lpn in 0u64..1 << 28, pages in 1u64..256) {
        let r = Request::write_pages(0, lpn, pages);
        prop_assert_eq!(r.page_count(), pages);
        prop_assert_eq!(r.start_lpn(), lpn);
    }

    /// Zipf samples stay in the universe and the pmf sums to one.
    #[test]
    fn zipf_is_a_distribution(n in 1usize..2_000, s in 0.0f64..2.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Zipf pmf is non-increasing in rank for any positive exponent.
    #[test]
    fn zipf_pmf_monotone(n in 2usize..500, s in 0.01f64..2.0) {
        let z = Zipf::new(n, s);
        for k in 1..n {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    /// The MSR writer and parser round-trip arbitrary tick-aligned requests.
    #[test]
    fn msr_roundtrip(reqs in proptest::collection::vec(
        (0u64..1 << 40, any::<bool>(), 0u64..1 << 35, 1u64..1 << 20),
        1..50,
    )) {
        let requests: Vec<Request> = reqs
            .iter()
            .map(|&(ticks, is_write, offset, len)| Request {
                time_ns: ticks * 100,
                op: if is_write { OpType::Write } else { OpType::Read },
                offset,
                len,
            })
            .collect();
        let parsed = msr::parse_str(&msr::write_csv(&requests)).unwrap();
        prop_assert_eq!(parsed.len(), requests.len());
        let base = requests.iter().map(|r| r.time_ns).min().unwrap();
        for (orig, round) in requests.iter().zip(&parsed) {
            prop_assert_eq!(round.op, orig.op);
            prop_assert_eq!(round.offset, orig.offset);
            prop_assert_eq!(round.len, orig.len);
            prop_assert_eq!(round.time_ns, orig.time_ns - base);
        }
    }

    /// Scaled profiles always validate and respect their floors.
    #[test]
    fn scaling_preserves_validity(factor in 0.0001f64..2.0, idx in 0usize..6) {
        let profile = reqblock_trace::paper_profiles().swap_remove(idx);
        let scaled = profile.scaled(factor);
        prop_assert!(scaled.validate().is_ok(), "{:?}", scaled.validate());
        prop_assert!(scaled.requests >= 1_000);
        prop_assert!(scaled.hot_extents >= 50);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated request stays inside the declared footprint and the
    /// stream is deterministic in length.
    #[test]
    fn generator_respects_footprint(idx in 0usize..6, factor in 0.001f64..0.01) {
        let profile = reqblock_trace::paper_profiles().swap_remove(idx).scaled(factor);
        let gen = reqblock_trace::SyntheticTrace::new(profile.clone());
        let fp = gen.footprint_pages();
        let mut count = 0u64;
        for r in gen {
            prop_assert!(r.start_lpn() + r.page_count() <= fp);
            prop_assert!(r.page_count() >= 1);
            count += 1;
        }
        prop_assert_eq!(count, profile.requests);
    }
}
