//! Trace statistics reproducing the columns of Table 2.
//!
//! Table 2 of the paper characterizes each trace by request count, write
//! ratio, mean write size, and "Frequent R (Wr)". The paper defines
//! *Frequent R* as "the ratio of addresses requested not less than 3 \[times\]"
//! and *(Wr)* as "the percent of write addresses in which". We compute both
//! at 4 KB page granularity:
//!
//! * `frequent_ratio` — among all distinct pages touched by any request, the
//!   fraction accessed at least [`FREQUENT_THRESHOLD`] times;
//! * `frequent_write_ratio` — among distinct pages touched by writes, the
//!   fraction *written* at least [`FREQUENT_THRESHOLD`] times.
//!
//! These are the statistics the synthetic generators are calibrated against;
//! `repro table2` prints the measured values side by side with the paper's.

use crate::request::{Lpn, Request, PAGE_SIZE};
use std::collections::HashMap;

/// An address counts as "frequent" when accessed at least this many times
/// (the paper's "not less than 3").
pub const FREQUENT_THRESHOLD: u32 = 3;

/// Aggregate statistics of a request stream (the Table 2 columns plus a few
/// extras useful for calibration).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total request count ("Req #").
    pub requests: u64,
    /// Number of write requests.
    pub writes: u64,
    /// Fraction of requests that are writes ("Wr Ratio").
    pub write_ratio: f64,
    /// Mean write size in KB ("Wr Size").
    pub mean_write_kb: f64,
    /// Mean write size in pages.
    pub mean_write_pages: f64,
    /// Mean read size in pages (not in Table 2; used for calibration).
    pub mean_read_pages: f64,
    /// Fraction of distinct pages accessed >= 3 times ("Frequent R").
    pub frequent_ratio: f64,
    /// Fraction of distinct written pages written >= 3 times ("(Wr)").
    pub frequent_write_ratio: f64,
    /// Number of distinct pages touched (footprint).
    pub distinct_pages: u64,
    /// Total page accesses (reads + writes, page granularity).
    pub total_page_accesses: u64,
    /// Total pages written.
    pub total_pages_written: u64,
}

/// Per-page access counters used while accumulating stats.
#[derive(Default, Clone, Copy)]
struct PageCounts {
    all: u32,
    writes: u32,
}

/// Streaming statistics accumulator; feed requests with [`StatsBuilder::add`]
/// and finish with [`StatsBuilder::finish`].
#[derive(Default)]
pub struct StatsBuilder {
    requests: u64,
    writes: u64,
    write_pages_sum: u64,
    read_pages_sum: u64,
    page_counts: HashMap<Lpn, PageCounts>,
    total_page_accesses: u64,
    total_pages_written: u64,
}

impl StatsBuilder {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account one request.
    pub fn add(&mut self, r: &Request) {
        self.requests += 1;
        let pages = r.page_count();
        if r.is_write() {
            self.writes += 1;
            self.write_pages_sum += pages;
            self.total_pages_written += pages;
        } else {
            self.read_pages_sum += pages;
        }
        self.total_page_accesses += pages;
        for lpn in r.lpns() {
            let c = self.page_counts.entry(lpn).or_default();
            c.all = c.all.saturating_add(1);
            if r.is_write() {
                c.writes = c.writes.saturating_add(1);
            }
        }
    }

    /// Finalize into [`TraceStats`].
    pub fn finish(self) -> TraceStats {
        let reads = self.requests - self.writes;
        let distinct = self.page_counts.len() as u64;
        let mut frequent = 0u64;
        let mut written_pages = 0u64;
        let mut frequent_written = 0u64;
        for c in self.page_counts.values() {
            if c.all >= FREQUENT_THRESHOLD {
                frequent += 1;
            }
            if c.writes > 0 {
                written_pages += 1;
                if c.writes >= FREQUENT_THRESHOLD {
                    frequent_written += 1;
                }
            }
        }
        let ratio = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
        let mean_write_pages = ratio(self.write_pages_sum, self.writes);
        TraceStats {
            requests: self.requests,
            writes: self.writes,
            write_ratio: ratio(self.writes, self.requests),
            mean_write_kb: mean_write_pages * (PAGE_SIZE as f64 / 1024.0),
            mean_write_pages,
            mean_read_pages: ratio(self.read_pages_sum, reads),
            frequent_ratio: ratio(frequent, distinct),
            frequent_write_ratio: ratio(frequent_written, written_pages),
            distinct_pages: distinct,
            total_page_accesses: self.total_page_accesses,
            total_pages_written: self.total_pages_written,
        }
    }
}

/// Compute [`TraceStats`] over an iterator of requests.
pub fn compute<'a, I: IntoIterator<Item = &'a Request>>(reqs: I) -> TraceStats {
    let mut b = StatsBuilder::new();
    for r in reqs {
        b.add(r);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::OpType;

    fn w(lpn: Lpn, pages: u64) -> Request {
        Request::write_pages(0, lpn, pages)
    }

    fn r(lpn: Lpn, pages: u64) -> Request {
        Request::read_pages(0, lpn, pages)
    }

    #[test]
    fn empty_trace_yields_zeroes() {
        let s = compute([]);
        assert_eq!(s.requests, 0);
        assert_eq!(s.write_ratio, 0.0);
        assert_eq!(s.frequent_ratio, 0.0);
    }

    #[test]
    fn counts_and_write_ratio() {
        let reqs = vec![w(0, 1), w(1, 2), r(0, 1), r(5, 1)];
        let s = compute(&reqs);
        assert_eq!(s.requests, 4);
        assert_eq!(s.writes, 2);
        assert!((s.write_ratio - 0.5).abs() < 1e-12);
        assert!((s.mean_write_pages - 1.5).abs() < 1e-12);
        assert!((s.mean_write_kb - 6.0).abs() < 1e-12);
        assert!((s.mean_read_pages - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequent_ratio_threshold() {
        // Page 0 accessed 3x (frequent), page 1 accessed 2x, page 2 once.
        let reqs = vec![w(0, 1), r(0, 1), w(0, 1), w(1, 1), r(1, 1), r(2, 1)];
        let s = compute(&reqs);
        assert_eq!(s.distinct_pages, 3);
        assert!((s.frequent_ratio - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn frequent_write_ratio_counts_only_writes() {
        // Page 0: 3 writes -> frequent-written. Page 1: 1 write + 5 reads ->
        // written but not frequently written. Page 2: reads only -> excluded
        // from the write denominator entirely.
        let mut reqs = vec![w(0, 1), w(0, 1), w(0, 1), w(1, 1)];
        for _ in 0..5 {
            reqs.push(r(1, 1));
        }
        reqs.push(r(2, 1));
        let s = compute(&reqs);
        assert!((s.frequent_write_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn multi_page_requests_count_each_page() {
        let reqs = vec![w(0, 3), w(0, 3), w(0, 3)];
        let s = compute(&reqs);
        assert_eq!(s.distinct_pages, 3);
        assert_eq!(s.total_pages_written, 9);
        assert!((s.frequent_ratio - 1.0).abs() < 1e-12);
        assert!((s.frequent_write_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sub_page_requests_normalize_to_pages() {
        let reqs =
            vec![Request::new(0, OpType::Write, 100, 200), Request::new(0, OpType::Write, 50, 10)];
        let s = compute(&reqs);
        assert_eq!(s.distinct_pages, 1);
        assert!((s.mean_write_pages - 1.0).abs() < 1e-12);
    }

    #[test]
    fn builder_streaming_matches_batch() {
        let reqs = vec![w(0, 2), r(1, 4), w(3, 1)];
        let mut b = StatsBuilder::new();
        for q in &reqs {
            b.add(q);
        }
        assert_eq!(b.finish(), compute(&reqs));
    }
}
