//! Process-wide shared trace cache.
//!
//! The evaluation sweep (`repro all`) replays the same six traces across
//! dozens of (policy × cache size × delta) configurations. Before this
//! module existed every job re-synthesized or re-parsed its trace from
//! scratch — roughly 150 redundant generation passes per sweep. The shared
//! cache materializes each distinct trace exactly once into an
//! `Arc<[Request]>` and hands the same immutable slice to every replayer,
//! zero-copy ([`Request`] is `Copy`, so iterating the slice is as cheap as
//! streaming the generator).
//!
//! # Keys
//!
//! A trace is identified by a [`TraceKey`]: either the canonical file path
//! of an MSR CSV, or an injective fingerprint of a
//! [`WorkloadProfile`] (every field,
//! floats by exact bit pattern, the name length-prefixed so no two distinct
//! profiles can collide). Two jobs replaying `ts_0 × 0.25` therefore share
//! one slice; `ts_0 × 0.05` is a different key.
//!
//! # Concurrency
//!
//! The map itself sits behind a `Mutex`, but synthesis runs *outside* the
//! lock: each key maps to an `Arc<OnceLock<..>>` slot, so concurrent
//! requests for the same trace block on `OnceLock::get_or_init` (exactly
//! one thread generates) while requests for different traces proceed in
//! parallel.
//!
//! # Opting out
//!
//! The cache holds every materialized trace until [`clear`] is called, which
//! trades memory for sweep throughput (a full-scale six-trace sweep is
//! ~1.1 GB of requests). Set the environment variable
//! `REQBLOCK_TRACE_CACHE=0` — or call [`set_enabled`]`(false)` — to fall
//! back to per-job streaming; results are identical either way, as the
//! equivalence tests in `tests/sweep.rs` pin.

use crate::msr::{self, ParseError};
use crate::profiles::WorkloadProfile;
use crate::request::Request;
use crate::synth::SyntheticTrace;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Identity of a materialized trace.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TraceKey {
    /// Synthetic workload, identified by an injective profile fingerprint
    /// (see [`fingerprint`]).
    Synthetic(String),
    /// MSR-Cambridge CSV file, identified by path.
    File(PathBuf),
}

/// Injective textual fingerprint of a profile: every field participates,
/// floats by exact bit pattern (`f64::to_bits`), and the free-form name is
/// length-prefixed so a crafted name cannot collide with another profile's
/// encoding.
pub fn fingerprint(p: &WorkloadProfile) -> String {
    let f = f64::to_bits;
    format!(
        "{}:{}|{}|{:x}|{:x}|{:x}|{}|{}|{}|{}|{:x}|{}|{}|{:x}|{:x}|{:x}|{:x}|{:x}|{}|{}|{}",
        p.name.len(),
        p.name,
        p.requests,
        f(p.write_ratio),
        f(p.target_mean_write_pages),
        f(p.small_write_mean_pages),
        p.small_write_max_pages,
        p.large_write_min_pages,
        p.large_write_max_pages,
        p.hot_extents,
        f(p.zipf_s),
        p.streaming_pages,
        p.streams,
        f(p.p_stream_jump),
        f(p.p_large_rewrite),
        f(p.read_recent_small),
        f(p.read_hot),
        f(p.read_recent_large),
        p.cold_read_extra_pages,
        p.mean_interarrival_ns,
        p.seed,
    )
}

type Slot = Arc<OnceLock<Arc<[Request]>>>;

fn cache() -> &'static Mutex<HashMap<TraceKey, Slot>> {
    static CACHE: OnceLock<Mutex<HashMap<TraceKey, Slot>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn flag() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        let on = std::env::var("REQBLOCK_TRACE_CACHE").map_or(true, |v| v != "0");
        AtomicBool::new(on)
    })
}

/// Whether the shared cache is active (default `true`; the
/// `REQBLOCK_TRACE_CACHE=0` environment variable disables it at startup).
pub fn enabled() -> bool {
    flag().load(Ordering::Relaxed)
}

/// Turn the cache on or off at runtime. Used by the sweep benchmark to
/// measure the uncached architecture; disabling does not drop already
/// cached traces (call [`clear`] for that).
pub fn set_enabled(on: bool) {
    flag().store(on, Ordering::Relaxed);
}

/// Drop every cached trace. Slices still held by running jobs stay alive
/// (they are `Arc`s); only the cache's own references are released.
pub fn clear() {
    cache().lock().unwrap().clear();
}

/// Number of traces currently materialized in the cache.
pub fn cached_traces() -> usize {
    cache()
        .lock()
        .unwrap()
        .values()
        .filter(|slot| slot.get().is_some())
        .count()
}

fn slot_for(key: TraceKey) -> Slot {
    cache().lock().unwrap().entry(key).or_default().clone()
}

/// The shared request slice for `key`, materializing it with `build` if no
/// other caller has yet. Concurrent callers for the same key block until
/// the single builder finishes; callers for other keys are unaffected.
pub fn get_or_build<F>(key: TraceKey, build: F) -> Arc<[Request]>
where
    F: FnOnce() -> Vec<Request>,
{
    let slot = slot_for(key);
    let out = slot.get_or_init(|| Arc::from(build()));
    out.clone()
}

/// The shared slice for a synthetic workload, generating it on first use.
pub fn synthetic(profile: &WorkloadProfile) -> Arc<[Request]> {
    get_or_build(TraceKey::Synthetic(fingerprint(profile)), || {
        SyntheticTrace::new(profile.clone()).generate_all()
    })
}

/// The shared slice for an MSR CSV file, parsing it on first use.
///
/// Parsing happens outside the per-key slot so an I/O or syntax error is
/// returned to the caller instead of wedging the slot; if two threads race
/// on a cold file both parse and one result wins (the parse is
/// deterministic, so the loser's copy is identical and simply dropped).
pub fn msr_file(path: &Path) -> Result<Arc<[Request]>, ParseError> {
    let slot = slot_for(TraceKey::File(path.to_path_buf()));
    if let Some(cached) = slot.get() {
        return Ok(cached.clone());
    }
    let parsed = msr::parse_file(path)?;
    Ok(slot.get_or_init(|| Arc::from(parsed)).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ts_0;

    #[test]
    fn same_profile_shares_one_slice() {
        let p = ts_0().scaled(0.0007);
        let a = synthetic(&p);
        let b = synthetic(&p);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must reuse the slice");
        assert!(!a.is_empty());
    }

    #[test]
    fn different_scales_are_different_keys() {
        let a = synthetic(&ts_0().scaled(0.0007));
        let b = synthetic(&ts_0().scaled(0.0009));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.len(), b.len());
    }

    #[test]
    fn fingerprint_is_field_sensitive() {
        let base = ts_0().scaled(0.001);
        let mut seeded = base.clone();
        seeded.seed ^= 1;
        let mut renamed = base.clone();
        renamed.name.push('x');
        assert_ne!(fingerprint(&base), fingerprint(&seeded));
        assert_ne!(fingerprint(&base), fingerprint(&renamed));
        assert_eq!(fingerprint(&base), fingerprint(&base.clone()));
    }

    #[test]
    fn cached_slice_matches_fresh_generation() {
        let p = ts_0().scaled(0.0011);
        let cached = synthetic(&p);
        let fresh = SyntheticTrace::new(p).generate_all();
        assert_eq!(&cached[..], &fresh[..]);
    }

    #[test]
    fn msr_file_caches_by_path() {
        let p = ts_0().scaled(0.0005);
        let reqs = SyntheticTrace::new(p).generate_all();
        let path = std::env::temp_dir().join("reqblock_shared_trace_test.csv");
        msr::write_file(&path, &reqs).unwrap();
        let a = msr_file(&path).unwrap();
        let b = msr_file(&path).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), reqs.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_msr_file_is_an_error_not_a_poisoned_slot() {
        let path = std::env::temp_dir().join("reqblock_shared_trace_missing.csv");
        let _ = std::fs::remove_file(&path);
        assert!(msr_file(&path).is_err());
        // The slot must stay usable: create the file and retry.
        let p = ts_0().scaled(0.0004);
        let reqs = SyntheticTrace::new(p).generate_all();
        msr::write_file(&path, &reqs).unwrap();
        assert_eq!(msr_file(&path).unwrap().len(), reqs.len());
        let _ = std::fs::remove_file(&path);
    }
}
