//! I/O trace substrate for the Req-block reproduction.
//!
//! This crate provides everything the simulator consumes as workload input:
//!
//! * [`Request`] — the block-level I/O request model shared by every other
//!   crate (byte offsets/lengths on the wire, 4 KB page math on top).
//! * [`msr`] — a parser for the MSR-Cambridge block-trace CSV format used by
//!   the paper's five Microsoft Research traces, so the experiments can replay
//!   the original traces when they are available.
//! * [`synth`] — calibrated synthetic workload generators standing in for the
//!   six traces of Table 2 (`hm_1`, `lun_1`, `usr_0`, `src1_2`, `ts_0`,
//!   `proj_0`). Each generator is seeded and fully deterministic.
//! * [`stats`] — trace statistics reproducing the columns of Table 2
//!   (request count, write ratio, mean write size, frequent-address ratios).
//! * [`shared`] — process-wide trace cache: each distinct (source, scale) is
//!   synthesized/parsed exactly once into an `Arc<[Request]>` and shared
//!   zero-copy by every job of an evaluation sweep.
//! * [`zipf`] — a Zipf-distributed sampler used by the generators to shape
//!   the re-reference skew of small writes.
//!
//! # Page geometry
//!
//! The paper's SSD uses 4 KB pages ([`PAGE_SIZE`]); all cache and FTL
//! structures operate on logical page numbers ([`Lpn`]). Requests address
//! bytes; [`Request::start_lpn`] / [`Request::page_count`] perform the
//! conversion, counting every page the byte range touches.

pub mod msr;
pub mod profiles;
pub mod request;
pub mod shared;
pub mod stats;
pub mod synth;
pub mod zipf;

pub use profiles::{paper_profiles, WorkloadProfile};
pub use request::{Lpn, OpType, Request, PAGE_SIZE};
pub use stats::TraceStats;
pub use synth::SyntheticTrace;
