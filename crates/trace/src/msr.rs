//! Parser for the MSR-Cambridge block I/O trace format.
//!
//! Five of the paper's six workloads (`hm_1`, `usr_0`, `src1_2`, `ts_0`,
//! `proj_0`) come from the MSR-Cambridge collection (Narayanan et al., "Write
//! off-loading", ACM TOS 2008). Each line of those CSV files is
//!
//! ```text
//! Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//! 128166372003061629,hm,1,Read,383496192,32768,413
//! ```
//!
//! * `Timestamp` — Windows filetime (100 ns ticks since 1601-01-01),
//! * `Type` — `Read` or `Write` (case-insensitive),
//! * `Offset`/`Size` — bytes,
//! * `ResponseTime` — microseconds on the original system (ignored here).
//!
//! The parser normalizes timestamps so the first request arrives at `t = 0`
//! and converts ticks to nanoseconds. Malformed lines yield a descriptive
//! [`ParseError`] carrying the 1-based line number.

use crate::request::{OpType, Request};
use std::fmt;
use std::io::BufRead;

/// Error produced while parsing an MSR trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MSR trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Number of nanoseconds per Windows filetime tick.
const NS_PER_TICK: u64 = 100;

/// Parse one CSV record (without the newline) into its raw fields.
///
/// Returns `(timestamp_ticks, op, offset, size)`.
fn parse_line(line: &str, lineno: usize) -> Result<(u64, OpType, u64, u64), ParseError> {
    let err = |msg: String| ParseError { line: lineno, message: msg };
    let mut fields = line.split(',');
    let ts: u64 = fields
        .next()
        .ok_or_else(|| err("missing timestamp".into()))?
        .trim()
        .parse()
        .map_err(|e| err(format!("bad timestamp: {e}")))?;
    let _host = fields.next().ok_or_else(|| err("missing hostname".into()))?;
    let _disk = fields.next().ok_or_else(|| err("missing disk number".into()))?;
    let ty = fields.next().ok_or_else(|| err("missing op type".into()))?.trim();
    let op = if ty.eq_ignore_ascii_case("read") {
        OpType::Read
    } else if ty.eq_ignore_ascii_case("write") {
        OpType::Write
    } else {
        return Err(err(format!("unknown op type {ty:?}")));
    };
    let offset: u64 = fields
        .next()
        .ok_or_else(|| err("missing offset".into()))?
        .trim()
        .parse()
        .map_err(|e| err(format!("bad offset: {e}")))?;
    let size: u64 = fields
        .next()
        .ok_or_else(|| err("missing size".into()))?
        .trim()
        .parse()
        .map_err(|e| err(format!("bad size: {e}")))?;
    Ok((ts, op, offset, size))
}

/// Parse a whole MSR-format trace from a buffered reader.
///
/// * Empty lines and lines starting with `#` are skipped.
/// * Zero-size requests are dropped (a handful exist in the raw traces).
/// * Timestamps are rebased so the earliest record is `t = 0` and converted
///   from 100 ns ticks to nanoseconds.
pub fn parse_reader<R: BufRead>(reader: R) -> Result<Vec<Request>, ParseError> {
    let mut raw: Vec<(u64, OpType, u64, u64)> = Vec::new();
    scan_records(reader, |rec| raw.push(rec))?;
    let base = raw.iter().map(|r| r.0).min().unwrap_or(0);
    Ok(raw
        .into_iter()
        .map(|(ts, op, offset, size)| Request {
            time_ns: ts.saturating_sub(base) * NS_PER_TICK,
            op,
            offset,
            len: size,
        })
        .collect())
}

/// Scan every valid record of an MSR trace, invoking `f` once per record in
/// file order. Shared by the materializing ([`parse_reader`]) and streaming
/// ([`stream_file`]) entry points so both apply identical filtering.
fn scan_records<R: BufRead, F>(reader: R, mut f: F) -> Result<(), ParseError>
where
    F: FnMut((u64, OpType, u64, u64)),
{
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| ParseError {
            line: lineno,
            message: format!("I/O error: {e}"),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let rec = parse_line(trimmed, lineno)?;
        if rec.3 == 0 {
            continue;
        }
        f(rec);
    }
    Ok(())
}

/// Stream an MSR-format trace file record by record without materializing a
/// `Vec<Request>`. Semantics are identical to [`parse_file`] — the same
/// filtering and the same rebase-to-earliest-timestamp — implemented as two
/// passes over the file (pass one finds the earliest timestamp, pass two
/// emits rebased requests), so memory stays O(1) in the trace length.
///
/// Returns the number of requests emitted.
pub fn stream_file<F>(path: &std::path::Path, mut f: F) -> Result<u64, ParseError>
where
    F: FnMut(Request),
{
    let open = || {
        std::fs::File::open(path)
            .map(std::io::BufReader::new)
            .map_err(|e| ParseError {
                line: 0,
                message: format!("cannot open {}: {e}", path.display()),
            })
    };
    let mut base = u64::MAX;
    scan_records(open()?, |(ts, _, _, _)| base = base.min(ts))?;
    if base == u64::MAX {
        return Ok(0);
    }
    let mut count = 0u64;
    scan_records(open()?, |(ts, op, offset, size)| {
        f(Request {
            time_ns: ts.saturating_sub(base) * NS_PER_TICK,
            op,
            offset,
            len: size,
        });
        count += 1;
    })?;
    Ok(count)
}

/// Parse an MSR-format trace from a string (convenience for tests and small
/// embedded traces).
pub fn parse_str(s: &str) -> Result<Vec<Request>, ParseError> {
    parse_reader(s.as_bytes())
}

/// Parse an MSR-format trace file from disk.
pub fn parse_file(path: &std::path::Path) -> Result<Vec<Request>, ParseError> {
    let file = std::fs::File::open(path).map_err(|e| ParseError {
        line: 0,
        message: format!("cannot open {}: {e}", path.display()),
    })?;
    parse_reader(std::io::BufReader::new(file))
}

/// Render requests in the MSR CSV format (hostname/disk filled with
/// placeholders, response-time column zero). `parse_str(write_csv(reqs))`
/// round-trips exactly: timestamps are emitted as filetime ticks with the
/// same truncation the parser applies.
pub fn write_csv(requests: &[Request]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(requests.len() * 48);
    for r in requests {
        let op = match r.op {
            OpType::Read => "Read",
            OpType::Write => "Write",
        };
        let ticks = r.time_ns / NS_PER_TICK;
        let _ = writeln!(out, "{ticks},synth,0,{op},{},{},0", r.offset, r.len);
    }
    out
}

/// Write requests to an MSR-format CSV file.
pub fn write_file(path: &std::path::Path, requests: &[Request]) -> std::io::Result<()> {
    std::fs::write(path, write_csv(requests))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PAGE_SIZE;

    const SAMPLE: &str = "\
128166372003061629,hm,1,Read,383496192,32768,413
128166372016382155,hm,1,Write,2941606912,4096,4592
128166372026382245,hm,1,write,2941606912,8192,208
";

    #[test]
    fn parses_sample_records() {
        let reqs = parse_str(SAMPLE).unwrap();
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].op, OpType::Read);
        assert_eq!(reqs[0].offset, 383496192);
        assert_eq!(reqs[0].len, 32768);
        assert_eq!(reqs[0].page_count(), 32768 / PAGE_SIZE);
        assert_eq!(reqs[1].op, OpType::Write);
        // Case-insensitive op type.
        assert_eq!(reqs[2].op, OpType::Write);
    }

    #[test]
    fn timestamps_rebased_to_zero_ns() {
        let reqs = parse_str(SAMPLE).unwrap();
        assert_eq!(reqs[0].time_ns, 0);
        assert_eq!(reqs[1].time_ns, (128166372016382155u64 - 128166372003061629) * 100);
    }

    #[test]
    fn skips_comments_blank_and_zero_size() {
        let s = "# header\n\n128166372003061629,hm,1,Read,0,0,0\n128166372003061630,hm,1,Write,4096,4096,1\n";
        let reqs = parse_str(s).unwrap();
        assert_eq!(reqs.len(), 1);
        assert!(reqs[0].is_write());
    }

    #[test]
    fn reports_line_number_on_bad_type() {
        let s = "128166372003061629,hm,1,Trim,0,4096,0\n";
        let err = parse_str(s).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("Trim"));
    }

    #[test]
    fn reports_bad_numeric_fields() {
        let err = parse_str("notanumber,hm,1,Read,0,4096,0\n").unwrap_err();
        assert!(err.message.contains("timestamp"));
        let err = parse_str("1,hm,1,Read,xyz,4096,0\n").unwrap_err();
        assert!(err.message.contains("offset"));
        let err = parse_str("1,hm,1,Read,0,xyz,0\n").unwrap_err();
        assert!(err.message.contains("size"));
    }

    #[test]
    fn reports_missing_fields() {
        let err = parse_str("1,hm,1\n").unwrap_err();
        assert!(err.message.contains("missing op type"));
    }

    #[test]
    fn empty_input_is_empty_trace() {
        assert!(parse_str("").unwrap().is_empty());
    }

    #[test]
    fn error_display_includes_line() {
        let err = parse_str("x\n").unwrap_err();
        let shown = err.to_string();
        assert!(shown.contains("line 1"), "{shown}");
    }
}

#[cfg(test)]
mod writer_tests {
    use super::*;
    use crate::request::PAGE_SIZE;
    use crate::{profiles, SyntheticTrace};

    #[test]
    fn roundtrip_small_synthetic_trace() {
        // Timestamps must be tick-aligned to round-trip exactly; quantize
        // the way the writer does before comparing.
        let reqs: Vec<Request> = SyntheticTrace::new(profiles::ts_0().scaled(0.001))
            .map(|mut r| {
                r.time_ns = (r.time_ns / NS_PER_TICK) * NS_PER_TICK;
                r
            })
            .collect();
        let csv = write_csv(&reqs);
        let parsed = parse_str(&csv).unwrap();
        assert_eq!(parsed.len(), reqs.len());
        // The parser rebases timestamps to the earliest record.
        let base = reqs.iter().map(|r| r.time_ns).min().unwrap();
        for (orig, round) in reqs.iter().zip(&parsed) {
            assert_eq!(round.op, orig.op);
            assert_eq!(round.offset, orig.offset);
            assert_eq!(round.len, orig.len);
            assert_eq!(round.time_ns, orig.time_ns - base);
        }
    }

    #[test]
    fn writer_emits_parseable_fields() {
        let reqs = vec![
            Request::write_pages(100, 5, 2),
            Request::read_pages(1_000, 0, 1),
        ];
        let csv = write_csv(&reqs);
        assert!(csv.contains(&format!("Write,{},{}", 5 * PAGE_SIZE, 2 * PAGE_SIZE)));
        assert!(csv.contains("Read,0,4096"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn stream_file_matches_parse_file() {
        let path = std::env::temp_dir().join("reqblock_msr_stream_test.csv");
        let reqs: Vec<Request> = SyntheticTrace::new(profiles::ts_0().scaled(0.001))
            .map(|mut r| {
                r.time_ns = (r.time_ns / NS_PER_TICK) * NS_PER_TICK;
                r
            })
            .collect();
        write_file(&path, &reqs).unwrap();
        let materialized = parse_file(&path).unwrap();
        let mut streamed = Vec::new();
        let count = stream_file(&path, |r| streamed.push(r)).unwrap();
        assert_eq!(count as usize, materialized.len());
        assert_eq!(streamed, materialized);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stream_file_empty_trace_emits_nothing() {
        let path = std::env::temp_dir().join("reqblock_msr_stream_empty_test.csv");
        std::fs::write(&path, "# only a comment\n\n").unwrap();
        let count = stream_file(&path, |_| panic!("no records expected")).unwrap();
        assert_eq!(count, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_file_then_parse_file() {
        let path = std::env::temp_dir().join("reqblock_msr_roundtrip_test.csv");
        let reqs = vec![Request::write_pages(0, 1, 1), Request::read_pages(200, 1, 1)];
        write_file(&path, &reqs).unwrap();
        let parsed = parse_file(&path).unwrap();
        assert_eq!(parsed.len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
