//! Zipf-distributed sampling over a finite universe.
//!
//! The synthetic workload generators use a Zipf law to shape how often small
//! writes revisit hot addresses: rank-1 items are revisited very frequently
//! while the tail is touched once or twice, which is exactly the structure
//! the paper's Figure 2/3 analysis measures on the MSR traces.
//!
//! The sampler precomputes the cumulative distribution once (`O(n)` memory,
//! `O(n)` setup) and then draws samples with a binary search (`O(log n)`),
//! which is both simple and fast enough for the tens of millions of draws a
//! full trace generation performs.

use rand::Rng;

/// Sampler for `Zipf(n, s)`: item `k` (0-based rank) has probability
/// proportional to `1 / (k + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf universe must be non-empty");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against rounding leaving the last bucket slightly below 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks in the universe.
    #[inline]
    pub fn universe(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank in `0..universe()`; rank 0 is the hottest.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k < self.cdf.len());
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let z = Zipf::new(1000, 0.99);
        let mut prev = 0.0;
        for k in 0..z.universe() {
            let c = prev + z.pmf(k);
            assert!(c >= prev);
            prev = c;
        }
        assert!((prev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_hottest() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
    }

    #[test]
    fn samples_stay_in_universe() {
        let z = Zipf::new(17, 0.8);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 17);
        }
    }

    #[test]
    fn empirical_skew_matches_pmf() {
        let n = 50;
        let z = Zipf::new(n, 1.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = vec![0u64; n];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        let emp0 = counts[0] as f64 / draws as f64;
        assert!((emp0 - z.pmf(0)).abs() < 0.01, "emp {emp0} vs pmf {}", z.pmf(0));
        // Heavy head: top rank should dominate the 25th rank clearly.
        assert!(counts[0] > counts[24] * 5);
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let n = 10;
        let z = Zipf::new(n, 0.0);
        for k in 0..n {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_universe_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
