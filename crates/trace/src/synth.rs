//! Deterministic synthetic workload generator.
//!
//! Substitutes for the paper's six block traces (see `DESIGN.md` §2). The
//! generator reproduces the structure the paper's motivation section
//! extracts from the real traces:
//!
//! * **Small writes** (1..=8 pages) revisit a fixed set of hot 8-page extents
//!   with Zipf-skewed popularity — they are few pages each but carry most of
//!   the re-reference locality (Figure 2).
//! * **Large writes** extend sequential streams through a cold region and are
//!   rarely revisited; a small rewrite probability plus occasional reads give
//!   large-request pages the 22-37 % reuse Figure 3 reports.
//! * **Reads** target recently written extents and the hot set, producing
//!   read hits in the write buffer.
//!
//! The small/large mixture weight is solved from the profile's target mean
//! write size, so Table 2's "Wr Size" column is matched by construction.
//! Everything is driven by a seeded [`SmallRng`]; the same profile always
//! yields byte-identical traces.

use crate::profiles::WorkloadProfile;
use crate::request::{Lpn, OpType, Request, PAGE_SIZE};
use crate::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Pages per hot extent. Small writes land inside one extent, so repeated
/// draws of the same Zipf rank re-touch the same pages.
pub const EXTENT_PAGES: u64 = 8;

/// Minimum address distance between consecutive hot extents, in pages (the
/// actual stride is `streaming_pages / hot_extents`, validated to be at
/// least this). Hot extents are *embedded* in the streamed region: real
/// enterprise traces mix hot metadata updates among cold bulk data, so a
/// 64-page flash block holds both — the unevenness that costs
/// block-granularity schemes cache utilization (paper §4.2.3 on BPLRU/ts_0).
pub const MIN_HOT_STRIDE_PAGES: u64 = 2 * EXTENT_PAGES;

/// Capacity of the recent-small-writes ring that read locality draws from.
const RECENT_SMALL_CAP: usize = 4096;
/// Capacity of the recent-large-writes ring.
const RECENT_LARGE_CAP: usize = 1024;
/// Reads sample uniformly from this many newest ring entries.
const READ_RECENCY_WINDOW: usize = 512;

/// A recently issued write extent remembered for locality-driven reads.
#[derive(Debug, Clone, Copy)]
struct Extent {
    start: Lpn,
    pages: u64,
}

/// Fixed-capacity overwrite ring; `push` evicts the oldest entry.
#[derive(Debug)]
struct Ring {
    buf: Vec<Extent>,
    cap: usize,
    next: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap), cap, next: 0 }
    }

    fn push(&mut self, e: Extent) {
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.next] = e;
            self.next = (self.next + 1) % self.cap;
        }
    }

    fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pick uniformly among the newest `window` entries.
    fn pick_recent<R: Rng + ?Sized>(&self, rng: &mut R, window: usize) -> Option<Extent> {
        if self.buf.is_empty() {
            return None;
        }
        let n = self.buf.len();
        let w = window.min(n);
        // Entries are newest at positions (next-1, next-2, ...) once the ring
        // wrapped; before wrapping, newest are at the tail of `buf`.
        let back = rng.gen_range(0..w);
        let idx = if n < self.cap {
            n - 1 - back
        } else {
            (self.next + self.cap - 1 - back) % self.cap
        };
        Some(self.buf[idx])
    }
}

/// Streaming synthetic trace generator. Implements [`Iterator`] over
/// [`Request`]s; `requests` items are produced in total.
pub struct SyntheticTrace {
    profile: WorkloadProfile,
    rng: SmallRng,
    zipf: Zipf,
    /// Zipf rank -> hot extent index permutation (decorrelates popularity
    /// from address order).
    perm: Vec<u32>,
    /// Sequential write stream cursors (page offsets within the streaming
    /// region).
    streams: Vec<u64>,
    recent_small: Ring,
    recent_large: Ring,
    /// Probability a write is small (solved from the target mean size).
    p_small_write: f64,
    /// Truncated-geometric parameter for small sizes.
    small_q: f64,
    emitted: u64,
    now_ns: u64,
}

impl SyntheticTrace {
    /// Build a generator for `profile`.
    ///
    /// # Panics
    /// Panics if the profile fails [`WorkloadProfile::validate`].
    pub fn new(profile: WorkloadProfile) -> Self {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid profile {}: {e}", profile.name));
        let mut rng = SmallRng::seed_from_u64(profile.seed);
        let zipf = Zipf::new(profile.hot_extents, profile.zipf_s);
        let mut perm: Vec<u32> = (0..profile.hot_extents as u32).collect();
        // Fisher-Yates shuffle.
        for i in (1..perm.len()).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let stream_base = Self::streaming_base_for(&profile);
        let streams: Vec<u64> = (0..profile.streams)
            .map(|_| stream_base + rng.gen_range(0..profile.streaming_pages / 2))
            .collect();
        let small_q = 1.0 / profile.small_write_mean_pages;
        let mean_small = truncated_geometric_mean(small_q, profile.small_write_max_pages);
        let mean_large =
            (profile.large_write_min_pages + profile.large_write_max_pages) as f64 / 2.0;
        let p_small_write = ((mean_large - profile.target_mean_write_pages)
            / (mean_large - mean_small))
            .clamp(0.0, 1.0);
        Self {
            rng,
            zipf,
            perm,
            streams,
            recent_small: Ring::new(RECENT_SMALL_CAP),
            recent_large: Ring::new(RECENT_LARGE_CAP),
            p_small_write,
            small_q,
            emitted: 0,
            now_ns: 0,
            profile,
        }
    }

    /// First page of the streaming region. Hot extents live *inside* the
    /// streaming region (spaced every [`Self::hot_stride`] pages), so this
    /// is always 0 — kept as a named method for readability at call sites.
    fn streaming_base_for(_profile: &WorkloadProfile) -> Lpn {
        0
    }

    /// First page of this generator's streaming region.
    pub fn streaming_base(&self) -> Lpn {
        Self::streaming_base_for(&self.profile)
    }

    /// Address distance between consecutive hot extents. Hot extents are
    /// embedded in the streamed region so flash blocks mix hot small-write
    /// pages with cold streamed pages — the unevenness that makes
    /// block-granularity schemes lose cache utilization (paper §4.2.3 on
    /// BPLRU/ts_0).
    pub fn hot_stride(&self) -> u64 {
        Self::hot_stride_for(&self.profile)
    }

    fn hot_stride_for(profile: &WorkloadProfile) -> u64 {
        profile.streaming_pages / profile.hot_extents as u64
    }

    /// Total logical footprint in pages (streaming region, which embeds the
    /// hot extents, plus the cold-read-only region).
    pub fn footprint_pages(&self) -> u64 {
        self.profile.streaming_pages + self.profile.cold_read_extra_pages
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Probability that a write is drawn from the small-size distribution
    /// (solved from the profile's target mean write size).
    pub fn p_small_write(&self) -> f64 {
        self.p_small_write
    }

    /// Generate the whole trace into a vector.
    pub fn generate_all(self) -> Vec<Request> {
        let n = self.profile.requests as usize;
        let mut v = Vec::with_capacity(n);
        v.extend(self);
        v
    }

    fn sample_small_pages(&mut self) -> u64 {
        sample_truncated_geometric(&mut self.rng, self.small_q, self.profile.small_write_max_pages)
    }

    fn sample_large_pages(&mut self) -> u64 {
        self.rng
            .gen_range(self.profile.large_write_min_pages..=self.profile.large_write_max_pages)
    }

    /// Pick a small-write target: a slot inside a Zipf-ranked hot extent
    /// (extents are embedded in the streaming region, one per
    /// [`Self::hot_stride`] pages).
    fn small_target(&mut self, pages: u64) -> Lpn {
        let rank = self.zipf.sample(&mut self.rng);
        let extent = self.perm[rank] as u64;
        let max_off = EXTENT_PAGES.saturating_sub(pages);
        let off = if max_off == 0 { 0 } else { self.rng.gen_range(0..=max_off) };
        extent * Self::hot_stride_for(&self.profile) + off
    }

    fn next_write(&mut self) -> (Lpn, u64) {
        if self.rng.gen::<f64>() < self.p_small_write {
            let pages = self.sample_small_pages();
            let start = self.small_target(pages);
            self.recent_small.push(Extent { start, pages });
            (start, pages)
        } else {
            // Large write: occasionally rewrite a recent large extent (reuse),
            // otherwise extend a sequential stream.
            if self.rng.gen::<f64>() < self.profile.p_large_rewrite && !self.recent_large.is_empty()
            {
                let e = self
                    .recent_large
                    .pick_recent(&mut self.rng, READ_RECENCY_WINDOW)
                    .expect("ring checked non-empty");
                return (e.start, e.pages);
            }
            let pages = self.sample_large_pages();
            let base = self.streaming_base();
            let region = self.profile.streaming_pages;
            let s = self.rng.gen_range(0..self.streams.len());
            let jump = self.rng.gen::<f64>() < self.profile.p_stream_jump;
            let cursor = self.streams[s];
            let start = if jump || cursor + pages > base + region {
                base + self.rng.gen_range(0..region - pages)
            } else {
                cursor
            };
            // Streams are *mostly* sequential: real file layouts leave small
            // holes at 4 KB granularity, so consecutive large writes rarely
            // cover a 64-page flash block end to end. (Without this, BPLRU's
            // sequential-fill demotion fires on every stream block, which no
            // real trace produces.)
            let gap = self.rng.gen_range(0u64..=3);
            self.streams[s] = start + pages + gap;
            self.recent_large.push(Extent { start, pages });
            (start, pages)
        }
    }

    fn next_read(&mut self) -> (Lpn, u64) {
        let p = &self.profile;
        let u: f64 = self.rng.gen();
        let mut acc = p.read_recent_small;
        if u < acc {
            if let Some(e) = self.recent_small.pick_recent(&mut self.rng, READ_RECENCY_WINDOW) {
                return (e.start, e.pages);
            }
        }
        acc += p.read_hot;
        if u < acc {
            let pages = self.sample_small_pages();
            return (self.small_target(pages), pages);
        }
        acc += p.read_recent_large;
        if u < acc {
            if let Some(e) = self.recent_large.pick_recent(&mut self.rng, READ_RECENCY_WINDOW) {
                // Read a sub-range of the large extent.
                let pages = self.rng.gen_range(1..=e.pages);
                let off = self.rng.gen_range(0..=e.pages - pages);
                return (e.start + off, pages);
            }
        }
        // Cold read: uniform over the whole footprint (hot + streaming +
        // cold-read extra region), mixture-sized.
        let pages = if self.rng.gen::<f64>() < self.p_small_write {
            self.sample_small_pages()
        } else {
            self.sample_large_pages()
        };
        let span = self.footprint_pages();
        let start = self.rng.gen_range(0..span - pages);
        (start, pages)
    }

    fn advance_clock(&mut self) {
        // Exponential inter-arrival via inverse transform.
        let u: f64 = self.rng.gen();
        let dt = -(1.0 - u).ln() * self.profile.mean_interarrival_ns as f64;
        self.now_ns += (dt as u64).max(1);
    }
}

impl Iterator for SyntheticTrace {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.emitted >= self.profile.requests {
            return None;
        }
        self.emitted += 1;
        self.advance_clock();
        let is_write = self.rng.gen::<f64>() < self.profile.write_ratio;
        let (start, pages) = if is_write { self.next_write() } else { self.next_read() };
        let op = if is_write { OpType::Write } else { OpType::Read };
        Some(Request::new(self.now_ns, op, start * PAGE_SIZE, pages * PAGE_SIZE))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.profile.requests - self.emitted) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for SyntheticTrace {}

/// Mean of the geometric distribution truncated to `1..=max` with parameter
/// `q` (success probability).
pub fn truncated_geometric_mean(q: f64, max: u64) -> f64 {
    let mut norm = 0.0;
    let mut mean = 0.0;
    let mut pmf = q;
    for s in 1..=max {
        norm += pmf;
        mean += s as f64 * pmf;
        pmf *= 1.0 - q;
    }
    mean / norm
}

/// Sample the truncated geometric distribution on `1..=max`.
fn sample_truncated_geometric<R: Rng + ?Sized>(rng: &mut R, q: f64, max: u64) -> u64 {
    loop {
        let u: f64 = rng.gen();
        let s = 1 + ((1.0 - u).ln() / (1.0 - q).ln()).floor() as u64;
        if s <= max {
            return s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{hm_1, paper_profiles, proj_0, ts_0};

    fn small(profile: WorkloadProfile) -> WorkloadProfile {
        profile.scaled(0.01)
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<Request> = SyntheticTrace::new(small(hm_1())).generate_all();
        let b: Vec<Request> = SyntheticTrace::new(small(hm_1())).generate_all();
        assert_eq!(a, b);
    }

    #[test]
    fn emits_exact_request_count() {
        let t = SyntheticTrace::new(small(ts_0()));
        let expect = t.profile().requests as usize;
        assert_eq!(t.count(), expect);
    }

    #[test]
    fn size_hint_is_exact() {
        let mut t = SyntheticTrace::new(small(ts_0()));
        let n = t.profile().requests as usize;
        assert_eq!(t.size_hint(), (n, Some(n)));
        t.next();
        assert_eq!(t.size_hint(), (n - 1, Some(n - 1)));
    }

    #[test]
    fn timestamps_strictly_increase() {
        let reqs = SyntheticTrace::new(small(proj_0())).generate_all();
        for w in reqs.windows(2) {
            assert!(w[1].time_ns > w[0].time_ns);
        }
    }

    #[test]
    fn write_ratio_approximates_profile() {
        for p in paper_profiles() {
            let p = p.scaled(0.02);
            let target = p.write_ratio;
            let name = p.name.clone();
            let reqs = SyntheticTrace::new(p).generate_all();
            let wr = reqs.iter().filter(|r| r.is_write()).count() as f64 / reqs.len() as f64;
            assert!(
                (wr - target).abs() < 0.02,
                "{name}: write ratio {wr:.3} vs target {target:.3}"
            );
        }
    }

    #[test]
    fn mean_write_size_approximates_table2() {
        for p in paper_profiles() {
            let p = p.scaled(0.05);
            let target = p.target_mean_write_pages;
            let name = p.name.clone();
            let reqs = SyntheticTrace::new(p).generate_all();
            let (sum, n) = reqs
                .iter()
                .filter(|r| r.is_write())
                .fold((0u64, 0u64), |(s, n), r| (s + r.page_count(), n + 1));
            let mean = sum as f64 / n as f64;
            // 15 % tolerance: the mixture solves the mean exactly in
            // expectation; finite samples wander.
            assert!(
                (mean - target).abs() / target < 0.15,
                "{name}: mean write pages {mean:.2} vs target {target:.2}"
            );
        }
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let t = SyntheticTrace::new(small(proj_0()));
        let fp = t.footprint_pages();
        for r in t {
            let last = r.start_lpn() + r.page_count() - 1;
            assert!(last < fp, "request beyond footprint: {last} >= {fp}");
        }
    }

    #[test]
    fn small_writes_land_inside_hot_extents() {
        let t = SyntheticTrace::new(small(ts_0()));
        let stride = t.hot_stride();
        let small_max = t.profile().small_write_max_pages;
        let reqs: Vec<Request> = t.collect();
        // Writes of <= small_max pages are necessarily small writes (large
        // requests have more pages by construction) and must sit entirely
        // inside one 8-page hot extent at an extent-aligned stride slot.
        let mut checked = 0;
        for r in reqs.iter().filter(|r| r.is_write() && r.page_count() <= small_max) {
            let off = r.start_lpn() % stride;
            assert!(
                off + r.page_count() <= EXTENT_PAGES,
                "small write spills out of its extent: off {off}, pages {}",
                r.page_count()
            );
            checked += 1;
        }
        assert!(checked > 100, "expected plenty of small writes, saw {checked}");
    }

    #[test]
    fn hot_pages_are_reused() {
        // The defining property of the workload: some write addresses recur
        // many times.
        let reqs = SyntheticTrace::new(small(ts_0())).generate_all();
        let mut counts = std::collections::HashMap::new();
        for r in reqs.iter().filter(|r| r.is_write()) {
            for lpn in r.lpns() {
                *counts.entry(lpn).or_insert(0u32) += 1;
            }
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max >= 10, "hottest page written only {max} times");
    }

    #[test]
    fn truncated_geometric_mean_monotone_in_q() {
        let m_fast = truncated_geometric_mean(0.9, 8);
        let m_slow = truncated_geometric_mean(0.2, 8);
        assert!(m_fast < m_slow);
        assert!(m_fast >= 1.0 && m_slow <= 8.0);
    }

    #[test]
    fn truncated_geometric_samples_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..5_000 {
            let s = sample_truncated_geometric(&mut rng, 0.5, 8);
            assert!((1..=8).contains(&s));
        }
    }

    #[test]
    fn ring_wraps_and_picks_recent() {
        let mut ring = Ring::new(4);
        for i in 0..10u64 {
            ring.push(Extent { start: i, pages: 1 });
        }
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let e = ring.pick_recent(&mut rng, 4).unwrap();
            // Only the 4 newest survive.
            assert!(e.start >= 6);
        }
        // window=1 must return the newest entry.
        let e = ring.pick_recent(&mut rng, 1).unwrap();
        assert_eq!(e.start, 9);
    }

    #[test]
    fn p_small_write_matches_mixture_math() {
        let t = SyntheticTrace::new(hm_1().scaled(0.01));
        let p = t.profile();
        let mean_small = truncated_geometric_mean(
            1.0 / p.small_write_mean_pages,
            p.small_write_max_pages,
        );
        let mean_large = (p.large_write_min_pages + p.large_write_max_pages) as f64 / 2.0;
        let expect = (mean_large - p.target_mean_write_pages) / (mean_large - mean_small);
        assert!((t.p_small_write() - expect).abs() < 1e-12);
    }
}
