//! Block-level I/O request model.
//!
//! A [`Request`] mirrors one line of a block trace: an arrival timestamp, an
//! operation type, and a byte range on the logical address space of the
//! device. All higher layers (cache, FTL) work on 4 KB logical pages, so the
//! request also knows how to enumerate the logical page numbers it touches.

use serde::{Deserialize, Serialize};

/// Logical page number. One page is [`PAGE_SIZE`] bytes.
pub type Lpn = u64;

/// Size of one flash page in bytes (Table 1: "Page Size 4KB").
pub const PAGE_SIZE: u64 = 4096;

/// Operation type of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpType {
    /// Host read.
    Read,
    /// Host write.
    Write,
}

impl OpType {
    /// `true` for [`OpType::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, OpType::Write)
    }
}

/// One host I/O request.
///
/// `offset` and `len` are in bytes, exactly as they appear in block traces.
/// `len` must be non-zero for the request to touch any page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time in nanoseconds since trace start.
    pub time_ns: u64,
    /// Read or write.
    pub op: OpType,
    /// Starting byte offset on the logical device.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Request {
    /// Construct a request. Panics in debug builds if `len == 0`.
    #[inline]
    pub fn new(time_ns: u64, op: OpType, offset: u64, len: u64) -> Self {
        debug_assert!(len > 0, "zero-length request");
        Self { time_ns, op, offset, len }
    }

    /// Convenience constructor for a write covering whole pages.
    #[inline]
    pub fn write_pages(time_ns: u64, start_lpn: Lpn, pages: u64) -> Self {
        Self::new(time_ns, OpType::Write, start_lpn * PAGE_SIZE, pages * PAGE_SIZE)
    }

    /// Convenience constructor for a read covering whole pages.
    #[inline]
    pub fn read_pages(time_ns: u64, start_lpn: Lpn, pages: u64) -> Self {
        Self::new(time_ns, OpType::Read, start_lpn * PAGE_SIZE, pages * PAGE_SIZE)
    }

    /// First logical page touched by this request.
    #[inline]
    pub fn start_lpn(&self) -> Lpn {
        self.offset / PAGE_SIZE
    }

    /// Number of logical pages the byte range `[offset, offset+len)` touches.
    ///
    /// A request that straddles a page boundary touches both pages, so this
    /// is not simply `len / PAGE_SIZE`.
    #[inline]
    pub fn page_count(&self) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let first = self.offset / PAGE_SIZE;
        let last = (self.offset + self.len - 1) / PAGE_SIZE;
        last - first + 1
    }

    /// Iterator over every logical page number this request touches, in
    /// ascending order (the order Algorithm 1 of the paper walks them).
    #[inline]
    pub fn lpns(&self) -> impl Iterator<Item = Lpn> + '_ {
        let start = self.start_lpn();
        (0..self.page_count()).map(move |i| start + i)
    }

    /// `true` if this is a write request.
    #[inline]
    pub fn is_write(&self) -> bool {
        self.op.is_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_count_aligned() {
        let r = Request::new(0, OpType::Write, 0, PAGE_SIZE * 3);
        assert_eq!(r.page_count(), 3);
        assert_eq!(r.start_lpn(), 0);
    }

    #[test]
    fn page_count_sub_page() {
        let r = Request::new(0, OpType::Read, 512, 100);
        assert_eq!(r.page_count(), 1);
        assert_eq!(r.start_lpn(), 0);
    }

    #[test]
    fn page_count_straddles_boundary() {
        // 100 bytes starting 50 bytes before a page boundary -> 2 pages.
        let r = Request::new(0, OpType::Write, PAGE_SIZE - 50, 100);
        assert_eq!(r.page_count(), 2);
        assert_eq!(r.start_lpn(), 0);
        let pages: Vec<Lpn> = r.lpns().collect();
        assert_eq!(pages, vec![0, 1]);
    }

    #[test]
    fn page_count_exact_boundary_end() {
        // Ends exactly on a boundary: does not touch the next page.
        let r = Request::new(0, OpType::Write, PAGE_SIZE, PAGE_SIZE);
        assert_eq!(r.page_count(), 1);
        assert_eq!(r.start_lpn(), 1);
    }

    #[test]
    fn lpns_enumerates_ascending() {
        let r = Request::write_pages(0, 10, 4);
        let pages: Vec<Lpn> = r.lpns().collect();
        assert_eq!(pages, vec![10, 11, 12, 13]);
    }

    #[test]
    fn zero_len_touches_nothing() {
        let r = Request { time_ns: 0, op: OpType::Read, offset: 4096, len: 0 };
        assert_eq!(r.page_count(), 0);
        assert_eq!(r.lpns().count(), 0);
    }

    #[test]
    fn helpers_match_optype() {
        assert!(Request::write_pages(0, 0, 1).is_write());
        assert!(!Request::read_pages(0, 0, 1).is_write());
        assert!(OpType::Write.is_write());
        assert!(!OpType::Read.is_write());
    }
}
