//! Calibrated workload profiles standing in for the paper's six traces.
//!
//! Table 2 of the paper documents, for every trace: the request count, the
//! write ratio, the mean write size, and the fraction of frequently
//! re-accessed addresses (overall and among writes). The original traces are
//! not redistributable, so each profile below parameterizes the synthetic
//! generator in [`crate::synth`] to match those published statistics and the
//! structural property the paper's motivation section measures (Figures 2-3):
//! small writes revisit a hot set with Zipf skew, large writes are mostly
//! sequential streams that are rarely re-referenced.
//!
//! The calibration knobs:
//!
//! * `write_ratio` and `requests` are taken verbatim from Table 2.
//! * `target_mean_write_pages` is Table 2's "Wr Size" divided by 4 KB; the
//!   generator solves for the small/large mixture weight that achieves it.
//! * `hot_extents` + `zipf_s` control how concentrated small-write reuse is,
//!   which drives the "Frequent R (Wr)" column: fewer extents and a steeper
//!   exponent mean more addresses crossing the >= 3 accesses threshold.
//! * `read_*` probabilities shape read locality, which drives the overall
//!   "Frequent R" column for read-heavy traces.

use serde::{Deserialize, Serialize};

/// All knobs of one synthetic workload. See the module docs for the mapping
/// from Table 2 columns to fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Trace name as used in the paper (e.g. `"hm_1"`).
    pub name: String,
    /// Total number of requests (Table 2 "Req #").
    pub requests: u64,
    /// Fraction of requests that are writes (Table 2 "Wr Ratio").
    pub write_ratio: f64,
    /// Target mean write size in pages (Table 2 "Wr Size" / 4 KB).
    pub target_mean_write_pages: f64,
    /// Mean of the truncated-geometric small-write size distribution (pages).
    pub small_write_mean_pages: f64,
    /// Maximum small-write size in pages.
    pub small_write_max_pages: u64,
    /// Minimum large-write size in pages (uniform distribution).
    pub large_write_min_pages: u64,
    /// Maximum large-write size in pages (uniform distribution).
    pub large_write_max_pages: u64,
    /// Number of 8-page hot extents that small writes revisit.
    pub hot_extents: usize,
    /// Zipf exponent over hot extents (higher = more skew = more reuse).
    pub zipf_s: f64,
    /// Size of the cold sequential-streaming region in pages.
    pub streaming_pages: u64,
    /// Number of concurrent sequential write streams.
    pub streams: usize,
    /// Per-large-write probability that its stream jumps to a new location.
    pub p_stream_jump: f64,
    /// Probability that a large write rewrites a recently written large extent
    /// instead of extending a stream (drives Figure 3's 22-37 % large-request
    /// reuse).
    pub p_large_rewrite: f64,
    /// Probability a read targets a recently written small extent.
    pub read_recent_small: f64,
    /// Probability a read targets the hot extent set.
    pub read_hot: f64,
    /// Probability a read targets a recently written large extent.
    pub read_recent_large: f64,
    /// Extra pages beyond the write footprint that *cold reads* roam over.
    /// Separates the read spread (drives the overall "Frequent R") from the
    /// write footprint (drives "(Wr)"): enterprise traces write a compact
    /// hot set but read across a much wider range.
    pub cold_read_extra_pages: u64,
    /// Mean exponential inter-arrival time in nanoseconds.
    pub mean_interarrival_ns: u64,
    /// PRNG seed; every profile is fully deterministic.
    pub seed: u64,
}

impl WorkloadProfile {
    /// Scale the workload by `factor` (used to shrink runs for quick tests
    /// and criterion benches). Scales the request count **and** the
    /// footprint regions together, so access-frequency structure (reuse
    /// multiplicity, Table 2's "Frequent R") stays approximately
    /// scale-invariant. Floors keep degenerate scales valid: at least 1 000
    /// requests, 50 hot extents, and a streaming region of 8 maximal large
    /// writes.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "scale must be positive");
        self.requests = ((self.requests as f64 * factor) as u64).max(1_000);
        self.hot_extents = ((self.hot_extents as f64 * factor) as usize).max(50);
        self.streaming_pages = ((self.streaming_pages as f64 * factor) as u64)
            .max(self.large_write_max_pages * 8)
            .max(self.hot_extents as u64 * 16);
        self.cold_read_extra_pages = (self.cold_read_extra_pages as f64 * factor) as u64;
        self
    }

    /// Sanity-check parameter ranges. Called by the generator constructor.
    pub fn validate(&self) -> Result<(), String> {
        if self.requests == 0 {
            return Err("requests must be > 0".into());
        }
        if !(0.0..=1.0).contains(&self.write_ratio) {
            return Err("write_ratio out of [0,1]".into());
        }
        if self.small_write_max_pages == 0 || self.small_write_mean_pages < 1.0 {
            return Err("small write sizes must be >= 1 page".into());
        }
        if self.large_write_min_pages > self.large_write_max_pages {
            return Err("large_write_min_pages > large_write_max_pages".into());
        }
        if self.large_write_min_pages <= self.small_write_max_pages {
            return Err("large writes must be larger than small writes".into());
        }
        if self.hot_extents == 0 {
            return Err("hot_extents must be > 0".into());
        }
        if self.streaming_pages < self.large_write_max_pages * 4 {
            return Err("streaming region too small".into());
        }
        // Hot extents are embedded in the streaming region, one per
        // `streaming_pages / hot_extents` pages (see synth docs); they need
        // room not to overlap each other.
        if self.streaming_pages / (self.hot_extents as u64) < 16 {
            return Err("hot extents too dense: need streaming_pages >= 16 * hot_extents".into());
        }
        let footprint = self.streaming_pages + self.cold_read_extra_pages;
        if footprint > 32_000_000 {
            return Err("footprint exceeds the 128 GB drive's logical space".into());
        }
        if self.streams == 0 {
            return Err("streams must be > 0".into());
        }
        for (name, p) in [
            ("p_stream_jump", self.p_stream_jump),
            ("p_large_rewrite", self.p_large_rewrite),
            ("read_recent_small", self.read_recent_small),
            ("read_hot", self.read_hot),
            ("read_recent_large", self.read_recent_large),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} out of [0,1]"));
            }
        }
        if self.read_recent_small + self.read_hot + self.read_recent_large > 1.0 {
            return Err("read target probabilities exceed 1".into());
        }
        Ok(())
    }
}

/// Pages per 4 KB given a size in KB (Table 2 sizes are KB).
fn kb_to_pages(kb: f64) -> f64 {
    kb / 4.0
}

/// The six workload profiles of Table 2, in the paper's order (sorted by
/// write ratio ascending).
pub fn paper_profiles() -> Vec<WorkloadProfile> {
    vec![hm_1(), lun_1(), usr_0(), src1_2(), ts_0(), proj_0()]
}

/// Look up a paper profile by name (`hm_1`, `lun_1`, `usr_0`, `src1_2`,
/// `ts_0`, `proj_0`).
pub fn profile_by_name(name: &str) -> Option<WorkloadProfile> {
    paper_profiles().into_iter().find(|p| p.name == name)
}

/// `hm_1`: hardware-monitoring server, read-dominated (4.7 % writes),
/// 20 KB mean write, very high write-address reuse (83.9 %).
pub fn hm_1() -> WorkloadProfile {
    WorkloadProfile {
        name: "hm_1".into(),
        requests: 609_312,
        write_ratio: 0.047,
        target_mean_write_pages: kb_to_pages(20.0),
        small_write_mean_pages: 2.0,
        small_write_max_pages: 8,
        large_write_min_pages: 16,
        large_write_max_pages: 32,
        hot_extents: 800,
        zipf_s: 1.05,
        streaming_pages: 14_000,
        streams: 4,
        p_stream_jump: 0.05,
        p_large_rewrite: 0.20,
        read_recent_small: 0.25,
        read_hot: 0.35,
        read_recent_large: 0.08,
        cold_read_extra_pages: 400_000,
        mean_interarrival_ns: 992_000_000,
        seed: 0x686d_5f31,
    }
}

/// `lun_1` (2016021613-LUN0): enterprise VDI trace, 33.2 % writes, 18.6 KB
/// mean write, very low address reuse (12.4 % / 12.8 %) — a large, flat
/// working set.
pub fn lun_1() -> WorkloadProfile {
    WorkloadProfile {
        name: "lun_1".into(),
        requests: 1_894_391,
        write_ratio: 0.332,
        target_mean_write_pages: kb_to_pages(18.6),
        small_write_mean_pages: 2.0,
        small_write_max_pages: 8,
        large_write_min_pages: 16,
        large_write_max_pages: 48,
        hot_extents: 45_000,
        zipf_s: 0.60,
        streaming_pages: 6_000_000,
        streams: 8,
        p_stream_jump: 0.20,
        p_large_rewrite: 0.04,
        read_recent_small: 0.08,
        read_hot: 0.22,
        read_recent_large: 0.05,
        cold_read_extra_pages: 8_000_000,
        mean_interarrival_ns: 45_600_000,
        seed: 0x6c75_6e31,
    }
}

/// `usr_0`: user home directories, 59.6 % writes, small 10.3 KB mean write,
/// high overall reuse (52.9 %) with moderate write reuse (32.9 %).
pub fn usr_0() -> WorkloadProfile {
    WorkloadProfile {
        name: "usr_0".into(),
        requests: 2_237_889,
        write_ratio: 0.596,
        target_mean_write_pages: kb_to_pages(10.3),
        small_write_mean_pages: 1.8,
        small_write_max_pages: 8,
        large_write_min_pages: 16,
        large_write_max_pages: 40,
        hot_extents: 12_000,
        zipf_s: 1.00,
        streaming_pages: 700_000,
        streams: 6,
        p_stream_jump: 0.10,
        p_large_rewrite: 0.10,
        read_recent_small: 0.30,
        read_hot: 0.38,
        read_recent_large: 0.06,
        cold_read_extra_pages: 800_000,
        mean_interarrival_ns: 270_000_000,
        seed: 0x7573_7230,
    }
}

/// `src1_2`: source control, 74.6 % writes, largest small/large mix
/// (32.5 KB mean write), very high overall reuse (79.6 %).
pub fn src1_2() -> WorkloadProfile {
    WorkloadProfile {
        name: "src1_2".into(),
        requests: 1_907_773,
        write_ratio: 0.746,
        target_mean_write_pages: kb_to_pages(32.5),
        small_write_mean_pages: 3.0,
        small_write_max_pages: 8,
        large_write_min_pages: 24,
        large_write_max_pages: 64,
        hot_extents: 6_000,
        zipf_s: 0.95,
        streaming_pages: 3_500_000,
        streams: 6,
        p_stream_jump: 0.08,
        p_large_rewrite: 0.12,
        read_recent_small: 0.25,
        read_hot: 0.23,
        read_recent_large: 0.50,
        cold_read_extra_pages: 0,
        mean_interarrival_ns: 317_000_000,
        seed: 0x7372_6331,
    }
}

/// `ts_0`: terminal server, 82.4 % writes, tiny 8 KB mean write (nearly all
/// requests are 1-3 pages), strong write reuse (58.1 %).
pub fn ts_0() -> WorkloadProfile {
    WorkloadProfile {
        name: "ts_0".into(),
        requests: 1_801_734,
        write_ratio: 0.824,
        target_mean_write_pages: kb_to_pages(8.0),
        small_write_mean_pages: 1.7,
        small_write_max_pages: 8,
        large_write_min_pages: 16,
        large_write_max_pages: 32,
        hot_extents: 6_000,
        zipf_s: 0.80,
        streaming_pages: 250_000,
        streams: 4,
        p_stream_jump: 0.10,
        p_large_rewrite: 0.08,
        read_recent_small: 0.35,
        read_hot: 0.30,
        read_recent_large: 0.04,
        cold_read_extra_pages: 1_200_000,
        mean_interarrival_ns: 335_000_000,
        seed: 0x7473_5f30,
    }
}

/// `proj_0`: project directories, most write-intensive (87.5 %), largest
/// writes (40.9 KB mean) — considerable numbers of both small and large
/// requests, the case where the paper reports Req-block's biggest wins.
pub fn proj_0() -> WorkloadProfile {
    WorkloadProfile {
        name: "proj_0".into(),
        requests: 4_224_525,
        write_ratio: 0.875,
        target_mean_write_pages: kb_to_pages(40.9),
        small_write_mean_pages: 3.2,
        small_write_max_pages: 8,
        large_write_min_pages: 32,
        large_write_max_pages: 72,
        hot_extents: 8_000,
        zipf_s: 0.90,
        streaming_pages: 10_200_000,
        streams: 8,
        p_stream_jump: 0.06,
        p_large_rewrite: 0.20,
        read_recent_small: 0.40,
        read_hot: 0.30,
        read_recent_large: 0.25,
        cold_read_extra_pages: 1_000_000,
        mean_interarrival_ns: 143_000_000,
        seed: 0x7072_6a30,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_profiles_validate() {
        for p in paper_profiles() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn profiles_match_table2_request_counts() {
        let p = paper_profiles();
        assert_eq!(p[0].requests, 609_312);
        assert_eq!(p[1].requests, 1_894_391);
        assert_eq!(p[2].requests, 2_237_889);
        assert_eq!(p[3].requests, 1_907_773);
        assert_eq!(p[4].requests, 1_801_734);
        assert_eq!(p[5].requests, 4_224_525);
    }

    #[test]
    fn profiles_match_table2_write_ratios() {
        let ratios: Vec<f64> = paper_profiles().iter().map(|p| p.write_ratio).collect();
        assert_eq!(ratios, vec![0.047, 0.332, 0.596, 0.746, 0.824, 0.875]);
    }

    #[test]
    fn profiles_ordered_by_write_ratio() {
        let p = paper_profiles();
        for w in p.windows(2) {
            assert!(w[0].write_ratio <= w[1].write_ratio);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(profile_by_name("ts_0").unwrap().name, "ts_0");
        assert!(profile_by_name("nope").is_none());
    }

    #[test]
    fn scaled_shrinks_but_floors() {
        let p = hm_1().scaled(0.1);
        assert_eq!(p.requests, 60_931);
        let tiny = hm_1().scaled(1e-9);
        assert_eq!(tiny.requests, 1_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_zero() {
        let _ = hm_1().scaled(0.0);
    }

    #[test]
    fn validate_rejects_bad_params() {
        let mut p = hm_1();
        p.write_ratio = 1.5;
        assert!(p.validate().is_err());
        let mut p = hm_1();
        p.large_write_min_pages = 4; // overlaps small range
        assert!(p.validate().is_err());
        let mut p = hm_1();
        p.read_hot = 0.9;
        p.read_recent_small = 0.9;
        assert!(p.validate().is_err());
    }
}
