//! Property-based tests of the Req-block policy: the full internal
//! consistency check plus the universal write-buffer invariants under
//! arbitrary workloads and configurations.

use proptest::prelude::*;
use reqblock_cache::{Access, EvictionBatch, WriteBuffer};
use reqblock_core::{PriorityModel, ReqBlock, ReqBlockConfig};

type Step = (bool, u64, u64);

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec((any::<bool>(), 0u64..300, 1u64..20), 1..250)
}

fn configs() -> impl Strategy<Value = ReqBlockConfig> {
    (
        1u32..10,
        any::<bool>(),
        any::<bool>(),
        prop_oneof![
            Just(PriorityModel::Full),
            Just(PriorityModel::NoSize),
            Just(PriorityModel::NoAge)
        ],
    )
        .prop_map(|(delta, split, merge, priority)| ReqBlockConfig {
            delta,
            split_large_on_hit: split,
            merge_on_evict: merge,
            priority,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn reqblock_invariants_hold_for_all_configs(
        steps in steps(),
        cfg in configs(),
        capacity in 8usize..80,
    ) {
        let mut buf = ReqBlock::new(capacity, cfg);
        let mut resident = std::collections::HashSet::new();
        let mut ev: Vec<EvictionBatch> = Vec::new();
        let mut now = 0u64;
        let mut inserted = 0u64;
        let mut evicted = 0u64;
        for (req_id, &(is_write, start, pages)) in steps.iter().enumerate() {
            for i in 0..pages {
                now += 1;
                let lpn = start + i;
                let a = Access { lpn, req_id: req_id as u64, req_pages: pages as u32, now };
                ev.clear();
                let was_resident = resident.contains(&lpn);
                let hit = if is_write { buf.write(&a, &mut ev) } else { buf.read(&a, &mut ev) };
                prop_assert_eq!(hit, was_resident, "hit report wrong for lpn {}", lpn);
                for batch in &ev {
                    prop_assert!(!batch.lpns.is_empty(), "empty eviction batch");
                    for l in &batch.lpns {
                        prop_assert!(resident.remove(l), "evicted non-resident page {l}");
                        evicted += 1;
                    }
                }
                if is_write && !hit {
                    resident.insert(lpn);
                    inserted += 1;
                }
                prop_assert!(buf.len_pages() <= capacity);
                prop_assert_eq!(buf.len_pages(), resident.len());
                let occ = buf.list_occupancy().unwrap();
                prop_assert_eq!(occ.iter().sum::<usize>(), buf.len_pages());
            }
        }
        buf.check_consistency().map_err(TestCaseError::fail)?;
        prop_assert_eq!(inserted, evicted + buf.len_pages() as u64);
        // Drain empties and conserves.
        let drained = buf.drain();
        let total: usize = drained.iter().map(|b| b.lpns.len()).sum();
        prop_assert_eq!(total, resident.len());
        prop_assert_eq!(buf.len_pages(), 0);
        prop_assert_eq!(buf.block_count(), 0);
        buf.check_consistency().map_err(TestCaseError::fail)?;
    }
}
