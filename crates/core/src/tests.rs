//! Unit tests of the Req-block mechanics: grouping, the three-level list
//! adjustments of Figure 5, Eq. 1 victim selection, and the Figure 6
//! downgraded merge.

use super::*;
use reqblock_cache::Placement;

/// Write one multi-page request starting at `start`; returns page hits.
fn write_req(
    c: &mut ReqBlock,
    req_id: u64,
    start: Lpn,
    pages: u64,
    now: u64,
    ev: &mut Vec<EvictionBatch>,
) -> usize {
    let mut hits = 0;
    for i in 0..pages {
        let a = Access { lpn: start + i, req_id, req_pages: pages as u32, now: now + i };
        if c.write(&a, ev) {
            hits += 1;
        }
    }
    hits
}

/// Read one multi-page request; returns page hits.
fn read_req(
    c: &mut ReqBlock,
    req_id: u64,
    start: Lpn,
    pages: u64,
    now: u64,
    ev: &mut Vec<EvictionBatch>,
) -> usize {
    let mut hits = 0;
    for i in 0..pages {
        let a = Access { lpn: start + i, req_id, req_pages: pages as u32, now: now + i };
        if c.read(&a, ev) {
            hits += 1;
        }
    }
    hits
}

fn occupancy(c: &ReqBlock) -> [usize; 3] {
    c.list_occupancy().expect("Req-block reports occupancy")
}

fn evicted(batches: &[EvictionBatch]) -> Vec<Lpn> {
    batches.iter().flat_map(|b| b.lpns.iter().copied()).collect()
}

// ---------------------------------------------------------------------
// Insertion and grouping
// ---------------------------------------------------------------------

#[test]
fn request_pages_form_one_irl_block() {
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 10, 4, 0, &mut ev);
    assert_eq!(c.block_count(), 1);
    assert_eq!(occupancy(&c), [4, 0, 0]);
    assert_eq!(c.len_pages(), 4);
    c.check_consistency().unwrap();
}

#[test]
fn distinct_requests_form_distinct_blocks() {
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 2, 0, &mut ev);
    write_req(&mut c, 2, 10, 3, 10, &mut ev);
    assert_eq!(c.block_count(), 2);
    assert_eq!(occupancy(&c), [5, 0, 0]);
}

#[test]
fn read_miss_does_not_insert() {
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    assert_eq!(read_req(&mut c, 1, 0, 4, 0, &mut ev), 0);
    assert_eq!(c.len_pages(), 0);
    assert_eq!(c.block_count(), 0);
}

#[test]
fn write_hit_is_absorbed() {
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 3, 0, &mut ev);
    let hits = write_req(&mut c, 2, 0, 3, 10, &mut ev);
    assert_eq!(hits, 3);
    assert_eq!(c.len_pages(), 3);
    assert!(ev.is_empty());
}

// ---------------------------------------------------------------------
// Figure 5(b): hits on small blocks
// ---------------------------------------------------------------------

#[test]
fn small_block_hit_promotes_to_srl() {
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 3, 0, &mut ev); // 3 <= delta=5: small
    assert_eq!(occupancy(&c), [3, 0, 0]);
    read_req(&mut c, 2, 0, 1, 10, &mut ev);
    assert_eq!(occupancy(&c), [0, 3, 0], "whole small block moves to SRL");
    c.check_consistency().unwrap();
}

#[test]
fn delta_boundary_block_is_small() {
    let cfg = ReqBlockConfig::with_delta(5);
    let mut c = ReqBlock::new(64, cfg);
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 5, 0, &mut ev); // exactly delta
    read_req(&mut c, 2, 0, 1, 10, &mut ev);
    assert_eq!(occupancy(&c), [0, 5, 0]);
}

#[test]
fn srl_block_rehit_moves_to_srl_head() {
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 2, 0, &mut ev);
    write_req(&mut c, 2, 10, 2, 10, &mut ev);
    read_req(&mut c, 3, 0, 1, 20, &mut ev); // block A -> SRL
    read_req(&mut c, 4, 10, 1, 30, &mut ev); // block B -> SRL head
    read_req(&mut c, 5, 0, 1, 40, &mut ev); // block A back to head
    assert_eq!(occupancy(&c), [0, 4, 0]);
    assert_eq!(c.block_count(), 2);
    c.check_consistency().unwrap();
}

// ---------------------------------------------------------------------
// Figure 5(a): hits on large blocks split to DRL
// ---------------------------------------------------------------------

#[test]
fn large_block_hit_splits_page_to_drl() {
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 8, 0, &mut ev); // 8 > delta: large
    read_req(&mut c, 2, 3, 1, 10, &mut ev); // hit page 3
    assert_eq!(occupancy(&c), [7, 0, 1]);
    assert_eq!(c.block_count(), 2);
    assert!(c.contains(3));
    c.check_consistency().unwrap();
}

#[test]
fn consecutive_hit_pages_of_one_request_share_drl_block() {
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 10, 0, &mut ev);
    read_req(&mut c, 2, 2, 3, 10, &mut ev); // hits pages 2,3,4
    assert_eq!(occupancy(&c), [7, 0, 3]);
    assert_eq!(c.block_count(), 2, "one original + one shared DRL block");
}

#[test]
fn hits_from_different_requests_create_separate_drl_blocks() {
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 10, 0, &mut ev);
    read_req(&mut c, 2, 0, 1, 10, &mut ev);
    read_req(&mut c, 3, 5, 1, 20, &mut ev);
    assert_eq!(occupancy(&c), [8, 0, 2]);
    assert_eq!(c.block_count(), 3);
}

#[test]
fn split_block_grown_small_promotes_on_next_hit() {
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 10, 0, &mut ev);
    read_req(&mut c, 2, 4, 2, 10, &mut ev); // DRL block of 2 pages (small)
    assert_eq!(occupancy(&c), [8, 0, 2]);
    read_req(&mut c, 3, 4, 1, 20, &mut ev); // hit the small split block
    assert_eq!(occupancy(&c), [8, 2, 0], "split block upgraded to SRL");
    c.check_consistency().unwrap();
}

#[test]
fn shrunken_original_block_promotes_when_small() {
    // Splits shrink the original; once <= delta, the next hit sends the
    // remainder to SRL instead of splitting further.
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 7, 0, &mut ev); // large (7 > 5)
    read_req(&mut c, 2, 0, 2, 10, &mut ev); // split 2 -> original has 5
    assert_eq!(occupancy(&c), [5, 0, 2]);
    read_req(&mut c, 3, 4, 1, 20, &mut ev); // original now small: promote
    assert_eq!(occupancy(&c), [0, 5, 2]);
}

#[test]
fn full_rescan_splits_then_promotes_remainder() {
    // Reading a whole large block page by page splits pages into DRL only
    // until the remainder shrinks to delta; the very next hit promotes the
    // remainder to SRL and subsequent hits stay there. A block is therefore
    // never emptied by splitting.
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 6, 0, &mut ev);
    read_req(&mut c, 2, 0, 6, 10, &mut ev);
    // Page 0 split (6 -> 5 pages); page 1 hit a now-small block -> SRL;
    // pages 2..5 hit the SRL block in place.
    assert_eq!(occupancy(&c), [0, 5, 1]);
    assert_eq!(c.block_count(), 2);
    c.check_consistency().unwrap();
}

#[test]
fn drl_large_block_splits_again_on_hit() {
    // A DRL block can itself exceed delta; hits on it split further
    // (Figure 5(a) covers "large request blocks located in either IRL or
    // DRL").
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 12, 0, &mut ev);
    read_req(&mut c, 2, 0, 7, 10, &mut ev); // 7 splits: DRL block of 7 (> delta)
    assert_eq!(occupancy(&c), [5, 0, 7]);
    read_req(&mut c, 3, 2, 1, 20, &mut ev); // hit inside the large DRL block
    assert_eq!(occupancy(&c), [5, 0, 7], "page moved between DRL blocks");
    assert_eq!(c.block_count(), 3);
    c.check_consistency().unwrap();
}

// ---------------------------------------------------------------------
// Eviction: Eq. 1 and victim selection
// ---------------------------------------------------------------------

#[test]
fn eviction_picks_cold_large_block_over_hot_small() {
    let mut c = ReqBlock::new(8, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 6, 0, &mut ev); // large, cold
    write_req(&mut c, 2, 100, 2, 10, &mut ev); // small
    read_req(&mut c, 3, 100, 2, 20, &mut ev); // promote to SRL, hot
    // Cache at 8/8: next insert evicts.
    ev.clear();
    write_req(&mut c, 4, 200, 1, 100, &mut ev);
    assert_eq!(ev.len(), 1);
    assert_eq!(evicted(&ev), vec![0, 1, 2, 3, 4, 5], "cold large block goes first");
    assert!(c.contains(100) && c.contains(101));
    c.check_consistency().unwrap();
}

#[test]
fn eviction_batches_are_striped() {
    let mut c = ReqBlock::new(4, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 4, 0, &mut ev);
    write_req(&mut c, 2, 10, 1, 10, &mut ev);
    assert_eq!(ev.len(), 1);
    assert_eq!(ev[0].placement, Placement::Striped);
    assert!(ev[0].dirty);
}

#[test]
fn whole_cache_single_block_evicts_itself() {
    let mut c = ReqBlock::new(4, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 4, 0, &mut ev);
    write_req(&mut c, 2, 100, 1, 10, &mut ev);
    assert_eq!(evicted(&ev), vec![0, 1, 2, 3]);
    assert_eq!(c.len_pages(), 1);
}

#[test]
fn capacity_is_never_exceeded() {
    let mut c = ReqBlock::new(16, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    for r in 0..50u64 {
        write_req(&mut c, r, r * 7 % 97, 1 + r % 9, r * 10, &mut ev);
        assert!(c.len_pages() <= 16, "len {} at request {r}", c.len_pages());
    }
    c.check_consistency().unwrap();
}

#[test]
fn older_block_evicted_among_equals() {
    let mut c = ReqBlock::new(4, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 2, 0, &mut ev);
    write_req(&mut c, 2, 10, 2, 100, &mut ev);
    ev.clear();
    write_req(&mut c, 3, 20, 1, 200, &mut ev);
    // Same cnt=1, same size=2; the older block (age 200 vs 100) is colder.
    assert_eq!(evicted(&ev), vec![0, 1]);
}

// ---------------------------------------------------------------------
// Figure 6: downgraded merging
// ---------------------------------------------------------------------

/// Build the canonical merge scenario: a heavily split origin block whose
/// access count keeps rising (every split hit counts as an access to the
/// block request) while its 1-page fragments cool down in DRL. Under Eq. 1
/// the oldest fragment ends up colder than the origin, so `get_victim`
/// selects the DRL tail while the origin still sits in IRL — exactly the
/// Figure 6 state.
fn merge_scenario(cfg: ReqBlockConfig) -> (ReqBlock, Vec<EvictionBatch>) {
    let mut c = ReqBlock::new(13, cfg);
    let mut ev = Vec::new();
    // Large request: 12 pages at t=0.
    write_req(&mut c, 1, 0, 12, 0, &mut ev);
    // Six 1-page reads from distinct requests split pages 0..6 into six
    // separate DRL blocks; the origin keeps 6 pages (> delta, stays IRL)
    // with access_cnt 7.
    for (i, page) in (0..6u64).enumerate() {
        read_req(&mut c, 2 + i as u64, page, 1, 10 + i as u64, &mut ev);
    }
    assert_eq!(occupancy(&c), [6, 0, 6]);
    // Much later, new writes need space. At t=1000 the tails compare as
    //   IRL tail (origin): 7 / (6 * 1001) ~ 0.001165
    //   DRL tail (D1):     1 / (1 * 991)  ~ 0.001009  <- coldest
    write_req(&mut c, 100, 100, 1, 1000, &mut ev); // fills to 13/13
    assert!(ev.is_empty());
    write_req(&mut c, 101, 200, 1, 1001, &mut ev); // triggers eviction
    (c, ev)
}

#[test]
fn downgraded_merge_evicts_split_with_origin() {
    let (c, ev) = merge_scenario(ReqBlockConfig::paper());
    assert_eq!(ev.len(), 1);
    let mut pages = ev[0].lpns.clone();
    pages.sort_unstable();
    // D1 held page 0 (split first); the origin retained pages 6..12.
    assert_eq!(pages, vec![0, 6, 7, 8, 9, 10, 11], "split block + origin remainder");
    assert_eq!(occupancy(&c), [2, 0, 5]); // two 1-page writes + D2..D6
    c.check_consistency().unwrap();
}

#[test]
fn merge_disabled_evicts_split_alone() {
    let cfg = ReqBlockConfig { merge_on_evict: false, ..ReqBlockConfig::paper() };
    let (c, ev) = merge_scenario(cfg);
    assert_eq!(ev.len(), 1);
    assert_eq!(ev[0].lpns, vec![0], "origin must stay cached");
    for lpn in 6..12 {
        assert!(c.contains(lpn));
    }
}

#[test]
fn merge_skipped_when_origin_left_irl() {
    // If the origin block shrank to delta and was promoted to SRL, the
    // merge must not fire (Algorithm 1 checks "original block ... still in
    // IRL").
    let mut c = ReqBlock::new(9, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 7, 0, &mut ev); // large (7 > 5)
    read_req(&mut c, 2, 0, 1, 10, &mut ev); // split page 0 -> origin 6 pages
    read_req(&mut c, 3, 1, 1, 11, &mut ev); // split page 1 -> origin 5 pages
    read_req(&mut c, 4, 2, 1, 12, &mut ev); // origin small now -> SRL
    assert_eq!(occupancy(&c), [0, 5, 2]);
    // Heat the SRL origin so it outranks the DRL fragments.
    for t in 0..4 {
        read_req(&mut c, 5 + t, 3, 1, 20 + t, &mut ev);
    }
    write_req(&mut c, 50, 100, 2, 1000, &mut ev); // fills to 9/9
    ev.clear();
    write_req(&mut c, 51, 200, 1, 1001, &mut ev);
    assert_eq!(ev.len(), 1);
    assert_eq!(ev[0].lpns, vec![0], "no merge outside IRL");
    for lpn in 2..7 {
        assert!(c.contains(lpn), "origin page {lpn} must stay cached");
    }
    c.check_consistency().unwrap();
}

// ---------------------------------------------------------------------
// Ablation: split disabled
// ---------------------------------------------------------------------

#[test]
fn split_disabled_keeps_large_blocks_whole() {
    let cfg = ReqBlockConfig { split_large_on_hit: false, ..ReqBlockConfig::paper() };
    let mut c = ReqBlock::new(64, cfg);
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 8, 0, &mut ev);
    read_req(&mut c, 2, 3, 1, 10, &mut ev);
    assert_eq!(occupancy(&c), [8, 0, 0], "no DRL traffic");
    assert_eq!(c.block_count(), 1);
    c.check_consistency().unwrap();
}

// ---------------------------------------------------------------------
// Probes, metadata, drain
// ---------------------------------------------------------------------

#[test]
fn metadata_is_32_bytes_per_request_block() {
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 4, 0, &mut ev);
    write_req(&mut c, 2, 10, 4, 10, &mut ev);
    assert_eq!(c.node_count(), 2);
    assert_eq!(c.metadata_bytes(), 64);
}

#[test]
fn drain_empties_everything_in_batches() {
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 6, 0, &mut ev);
    write_req(&mut c, 2, 10, 3, 10, &mut ev);
    read_req(&mut c, 3, 10, 1, 20, &mut ev); // one block in SRL
    let d = c.drain();
    let mut pages = evicted(&d);
    pages.sort_unstable();
    assert_eq!(pages, vec![0, 1, 2, 3, 4, 5, 10, 11, 12]);
    assert_eq!(c.len_pages(), 0);
    assert_eq!(c.block_count(), 0);
    assert_eq!(occupancy(&c), [0, 0, 0]);
}

#[test]
fn list_occupancy_sums_to_len() {
    let mut c = ReqBlock::new(32, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    write_req(&mut c, 1, 0, 9, 0, &mut ev);
    write_req(&mut c, 2, 20, 2, 10, &mut ev);
    read_req(&mut c, 3, 20, 2, 20, &mut ev);
    read_req(&mut c, 4, 0, 2, 30, &mut ev);
    let occ = occupancy(&c);
    assert_eq!(occ.iter().sum::<usize>(), c.len_pages());
    assert!(occ[1] > 0 && occ[2] > 0);
}

// ---------------------------------------------------------------------
// strictly_colder: Eq. 1 arithmetic
// ---------------------------------------------------------------------

#[test]
fn colder_prefers_fewer_accesses() {
    let a = PriorityTerms { access_cnt: 1, pages: 4, age: 100 };
    let b = PriorityTerms { access_cnt: 5, pages: 4, age: 100 };
    assert!(strictly_colder(a, b, PriorityModel::Full));
    assert!(!strictly_colder(b, a, PriorityModel::Full));
}

#[test]
fn colder_prefers_larger_blocks() {
    let a = PriorityTerms { access_cnt: 2, pages: 16, age: 100 };
    let b = PriorityTerms { access_cnt: 2, pages: 2, age: 100 };
    assert!(strictly_colder(a, b, PriorityModel::Full));
    // NoSize drops the preference: equal.
    assert!(!strictly_colder(a, b, PriorityModel::NoSize));
    assert!(!strictly_colder(b, a, PriorityModel::NoSize));
}

#[test]
fn colder_prefers_older_blocks() {
    let a = PriorityTerms { access_cnt: 2, pages: 4, age: 1_000 };
    let b = PriorityTerms { access_cnt: 2, pages: 4, age: 10 };
    assert!(strictly_colder(a, b, PriorityModel::Full));
    assert!(!strictly_colder(a, b, PriorityModel::NoAge));
}

#[test]
fn colder_is_irreflexive_on_ties() {
    let a = PriorityTerms { access_cnt: 3, pages: 5, age: 7 };
    assert!(!strictly_colder(a, a, PriorityModel::Full));
}

#[test]
fn colder_handles_zero_age_and_extremes() {
    let newborn = PriorityTerms { access_cnt: 1, pages: 1, age: 0 };
    let ancient = PriorityTerms { access_cnt: 1, pages: 64, age: u64::MAX };
    assert!(strictly_colder(ancient, newborn, PriorityModel::Full));
    assert!(!strictly_colder(newborn, ancient, PriorityModel::Full));
}

// ---------------------------------------------------------------------
// Randomized invariant check
// ---------------------------------------------------------------------

#[test]
fn fuzz_mixed_workload_maintains_invariants() {
    let mut c = ReqBlock::new(64, ReqBlockConfig::paper());
    let mut ev = Vec::new();
    let mut x: u64 = 0x9e3779b97f4a7c15;
    let mut evicted_total = 0usize;
    let mut inserted_total = 0usize;
    for r in 0..2_000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let start = (x >> 8) % 256;
        let pages = 1 + (x >> 24) % 12;
        let now = r * 16;
        ev.clear();
        if x.is_multiple_of(3) {
            read_req(&mut c, r, start, pages, now, &mut ev);
        } else {
            let hits = write_req(&mut c, r, start, pages, now, &mut ev);
            inserted_total += pages as usize - hits;
        }
        evicted_total += ev.iter().map(|b| b.len()).sum::<usize>();
        if r % 97 == 0 {
            c.check_consistency().unwrap();
        }
    }
    c.check_consistency().unwrap();
    assert_eq!(inserted_total, evicted_total + c.len_pages(), "page conservation");
    // The workload has reuse, so all three lists should have seen traffic.
    let occ = occupancy(&c);
    assert_eq!(occ.iter().sum::<usize>(), c.len_pages());
}
