//! # Req-block: request-granularity DRAM cache management
//!
//! This crate implements the contribution of *"DRAM Cache Management with
//! Request Granularity for NAND-based SSDs"* (Lin et al., ICPP 2022): a
//! write-buffer policy that manages cached data at the granularity of
//! **request blocks** — the set of pages written by one host request —
//! instead of pages or flash blocks.
//!
//! ## The three-level lists (paper §3.1, Figure 4)
//!
//! * **IRL** (*Inserted Request List*) — every new write request's pages are
//!   grouped into a request block and inserted at the IRL head.
//! * **SRL** (*Small Request List*) — when a block with at most
//!   [`ReqBlockConfig::delta`] pages is hit (read or re-write), it is
//!   upgraded to the SRL head. Small blocks are the hot ones (the paper's
//!   Figure 2 observation), so SRL residency protects them.
//! * **DRL** (*Divided Request List*) — when a *large* block is hit, only
//!   the hit pages are **split off** into a new block at the DRL head
//!   (Figure 5(a)); the cold remainder stays behind in its original block.
//!   A split block that shrinks to `<= delta` pages is promoted to SRL the
//!   next time it is hit (Figure 5(b)).
//!
//! ## Eviction (paper §3.3, Algorithm 1)
//!
//! The victim is chosen among the **tails** of the three lists by the lowest
//! priority of Eq. 1:
//!
//! ```text
//! Freq = Access_cnt / (Page_num * (T_cur - T_insert))
//! ```
//!
//! computed here in exact integer arithmetic over logical time (page
//! accesses processed). If the victim is a split block whose original block
//! still sits in IRL, the two are **merged and evicted together** (the
//! downgraded merging of Figure 6), and the whole batch is flushed striped
//! across channels.
//!
//! ## Ablation switches
//!
//! [`ReqBlockConfig`] exposes the design choices as switches so the bench
//! suite can measure each one: `split_large_on_hit` (DRL splitting),
//! `merge_on_evict` (downgraded merging), and [`PriorityModel`] (dropping
//! the size or age term of Eq. 1).
//!
//! ## Example
//!
//! ```
//! use reqblock_cache::{Access, EvictionBatch, WriteBuffer};
//! use reqblock_core::{ReqBlock, ReqBlockConfig};
//!
//! // A 16-page buffer with the paper's configuration (delta = 5).
//! let mut buf = ReqBlock::new(16, ReqBlockConfig::paper());
//! let mut evictions: Vec<EvictionBatch> = Vec::new();
//!
//! // A 3-page write request enters the IRL as one request block.
//! for (i, lpn) in (100..103).enumerate() {
//!     let miss = !buf.write(
//!         &Access { lpn, req_id: 1, req_pages: 3, now: i as u64 },
//!         &mut evictions,
//!     );
//!     assert!(miss);
//! }
//! assert_eq!(buf.list_occupancy(), Some([3, 0, 0]));
//!
//! // Re-reading any of its pages upgrades the whole small block to SRL.
//! buf.read(&Access { lpn: 101, req_id: 2, req_pages: 1, now: 10 }, &mut evictions);
//! assert_eq!(buf.list_occupancy(), Some([0, 3, 0]));
//! ```

use reqblock_cache::overhead::REQ_BLOCK_NODE_BYTES;
use reqblock_cache::{
    fx_map_with_capacity, Access, Arena, ArenaId, CacheEvents, EvictionBatch, FxHashMap, Handle,
    SlabList, WriteBuffer,
};
use reqblock_trace::Lpn;
use serde::{Deserialize, Serialize};

/// Which of the three lists a block currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Inserted Request List — freshly written blocks.
    Irl = 0,
    /// Small Request List — hit blocks of `<= delta` pages.
    Srl = 1,
    /// Divided Request List — hit fragments split from large blocks.
    Drl = 2,
}

/// Eq. 1 variants for the A3 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PriorityModel {
    /// The paper's Eq. 1: `cnt / (pages * age)`.
    #[default]
    Full,
    /// Drop the size term: `cnt / age` (no small-block preference).
    NoSize,
    /// Drop the age term: `cnt / pages` (no recency decay).
    NoAge,
}

/// Req-block configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReqBlockConfig {
    /// Size limit delta of the Small Request List (paper default 5 after
    /// the §4.2.1 sensitivity study).
    pub delta: u32,
    /// Split hit pages of large blocks into DRL (Figure 5(a)). Disabling
    /// degrades hits on large blocks to a plain recency refresh (A1).
    pub split_large_on_hit: bool,
    /// Merge an evicted split block with its original IRL block and evict
    /// both in one batch (Figure 6). (A2)
    pub merge_on_evict: bool,
    /// Eq. 1 variant. (A3)
    pub priority: PriorityModel,
}

impl Default for ReqBlockConfig {
    fn default() -> Self {
        Self {
            delta: 5,
            split_large_on_hit: true,
            merge_on_evict: true,
            priority: PriorityModel::Full,
        }
    }
}

impl ReqBlockConfig {
    /// The paper's default (delta = 5, everything enabled).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Same defaults with a different delta (Figure 7 sweep).
    pub fn with_delta(delta: u32) -> Self {
        Self { delta, ..Self::default() }
    }
}

/// Inputs of the Eq. 1 priority of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorityTerms {
    /// `Access_cnt`.
    pub access_cnt: u64,
    /// `Page_num`.
    pub pages: usize,
    /// `T_cur - T_insert` in logical time (clamped to >= 1 internally).
    pub age: u64,
}

/// Is `a` strictly colder (lower `Freq`, Eq. 1) than `b` under `model`?
///
/// Exact integer arithmetic: `cnt_a/(p_a*t_a) < cnt_b/(p_b*t_b)` iff
/// `cnt_a*p_b*t_b < cnt_b*p_a*t_a` (denominators positive). A zero age or
/// page count is clamped to 1 (a block inserted at the current instant is
/// maximally hot, not undefined).
pub fn strictly_colder(a: PriorityTerms, b: PriorityTerms, model: PriorityModel) -> bool {
    let den = |t: PriorityTerms| -> u128 {
        let pages = t.pages.max(1) as u128;
        let age = t.age.max(1) as u128;
        match model {
            PriorityModel::Full => pages * age,
            PriorityModel::NoSize => age,
            PriorityModel::NoAge => pages,
        }
    };
    (a.access_cnt as u128) * den(b) < (b.access_cnt as u128) * den(a)
}

/// Stable identifier of a request block. Generational: the arena bumps the
/// slot generation on free, so a stale id (e.g. a split block's `origin`
/// whose original was evicted) resolves to "absent" exactly like the
/// never-reused `u64` ids this replaced.
type BlockId = ArenaId;

/// One request block: the cached pages of (part of) a write request.
#[derive(Debug, Clone)]
struct Block {
    /// Request that created this block (groups pages arriving page-by-page).
    req_id: u64,
    /// Pages currently belonging to the block.
    pages: Vec<Lpn>,
    /// `Access_cnt` of Eq. 1 — initialized to 1, incremented per page hit.
    access_cnt: u64,
    /// `T_insert` of Eq. 1 — logical time of block creation.
    insert_time: u64,
    /// Current list.
    level: Level,
    /// Handle within the current list.
    handle: Handle,
    /// For split (DRL-born) blocks: the block they were divided from.
    origin: Option<BlockId>,
}

/// The Req-block write buffer.
pub struct ReqBlock {
    cfg: ReqBlockConfig,
    capacity: usize,
    /// Slab arena of live blocks: every access is one array index, no
    /// hashing, with freed slots reused through a free list.
    blocks: Arena<Block>,
    /// The three lists hold block ids; front = most recently adjusted.
    lists: [SlabList<BlockId>; 3],
    /// Pages per list (Figure 13 probe).
    pages_per_level: [usize; 3],
    /// LPN -> (owning block, position within its page vector). Tracking the
    /// position makes page removal an O(1) swap-remove with slot fixup.
    page_index: FxHashMap<Lpn, (BlockId, u32)>,
    /// List-transition counters for the observability layer (plain
    /// increments on paths that already touch the block — free to keep on).
    events: CacheEvents,
    /// Recycled page vectors: flushed eviction batches hand their `lpns`
    /// buffer back (see [`WriteBuffer::recycle`]) and new request blocks
    /// take one instead of allocating.
    spare_pages: Vec<Vec<Lpn>>,
}

impl ReqBlock {
    /// Req-block buffer of `capacity_pages` pages.
    pub fn new(capacity_pages: usize, cfg: ReqBlockConfig) -> Self {
        assert!(capacity_pages > 0, "cache capacity must be positive");
        assert!(cfg.delta >= 1, "delta must be at least 1");
        Self {
            cfg,
            capacity: capacity_pages,
            blocks: Arena::new(),
            lists: [SlabList::new(), SlabList::new(), SlabList::new()],
            pages_per_level: [0; 3],
            page_index: fx_map_with_capacity(capacity_pages * 2),
            events: CacheEvents::default(),
            spare_pages: Vec::new(),
        }
    }

    /// Configuration in effect.
    pub fn config(&self) -> &ReqBlockConfig {
        &self.cfg
    }

    /// Number of live request blocks (across all lists).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    fn list(&mut self, level: Level) -> &mut SlabList<BlockId> {
        &mut self.lists[level as usize]
    }

    /// Eq. 1 comparison: is block `a` strictly colder (lower Freq) than `b`?
    fn colder(&self, a: &Block, b: &Block, now: u64) -> bool {
        let term = |blk: &Block| PriorityTerms {
            access_cnt: blk.access_cnt,
            pages: blk.pages.len(),
            age: now.saturating_sub(blk.insert_time),
        };
        strictly_colder(term(a), term(b), self.cfg.priority)
    }

    /// Create a block at the head of `level` for request `req_id`, or reuse
    /// the head block if it already belongs to that request (Algorithm 1,
    /// `create_req_blk`).
    fn head_block_for(
        &mut self,
        level: Level,
        req_id: u64,
        now: u64,
        origin: Option<BlockId>,
    ) -> BlockId {
        if let Some(h) = self.lists[level as usize].front() {
            let bid = *self.lists[level as usize].get(h);
            if self.blocks[bid].req_id == req_id {
                return bid;
            }
        }
        let bid = self.blocks.insert(Block {
            req_id,
            pages: self.spare_pages.pop().unwrap_or_default(),
            access_cnt: 1,
            insert_time: now,
            level,
            handle: Handle::default(),
            origin,
        });
        let handle = self.list(level).push_front(bid);
        self.blocks[bid].handle = handle;
        bid
    }

    /// Move a block to the head of `target`, updating level bookkeeping.
    fn move_block_to_head(&mut self, bid: BlockId, target: Level) {
        let block = &mut self.blocks[bid];
        let from = block.level;
        let handle = block.handle;
        let pages = block.pages.len();
        if from == target {
            self.lists[from as usize].move_to_front(handle);
            return;
        }
        block.level = target;
        self.lists[from as usize].remove(handle);
        let new_handle = self.lists[target as usize].push_front(bid);
        self.blocks[bid].handle = new_handle;
        self.pages_per_level[from as usize] -= pages;
        self.pages_per_level[target as usize] += pages;
    }

    /// Detach a block from its list and the arena, returning its pages.
    fn remove_block(&mut self, bid: BlockId) -> Vec<Lpn> {
        let block = self.blocks.remove(bid);
        self.lists[block.level as usize].remove(block.handle);
        self.pages_per_level[block.level as usize] -= block.pages.len();
        for lpn in &block.pages {
            let owner = self.page_index.remove(lpn);
            debug_assert_eq!(owner.map(|(b, _)| b), Some(bid));
        }
        block.pages
    }

    /// Append one page to `bid` and index it.
    fn add_page(&mut self, bid: BlockId, lpn: Lpn) {
        let block = &mut self.blocks[bid];
        debug_assert!(!block.pages.contains(&lpn));
        let pos = block.pages.len() as u32;
        block.pages.push(lpn);
        self.pages_per_level[block.level as usize] += 1;
        let prev = self.page_index.insert(lpn, (bid, pos));
        debug_assert!(prev.is_none(), "page already owned by another block");
    }

    /// Remove the page at position `pos` of `bid` (O(1) swap-remove with
    /// index fixup of the page that takes its place); drops the block if it
    /// becomes empty. Returns `true` if the block was dropped.
    fn remove_page_from_block(&mut self, bid: BlockId, pos: u32) -> bool {
        let block = &mut self.blocks[bid];
        let lpn = block.pages.swap_remove(pos as usize);
        self.pages_per_level[block.level as usize] -= 1;
        self.page_index.remove(&lpn);
        if let Some(&moved) = block.pages.get(pos as usize) {
            // The former last page now sits at `pos`; re-point its index.
            self.page_index
                .get_mut(&moved)
                .expect("moved page must be indexed")
                .1 = pos;
        }
        if block.pages.is_empty() {
            let block = self.blocks.remove(bid);
            self.lists[block.level as usize].remove(block.handle);
            true
        } else {
            false
        }
    }

    /// The hit path of Algorithm 1 (lines 19-28), shared by reads and
    /// writes. `bid`/`pos` come from the caller's page-index lookup.
    fn on_hit(&mut self, a: &Access, bid: BlockId, pos: u32) {
        let block = &mut self.blocks[bid];
        block.access_cnt += 1;
        let pages_len = block.pages.len() as u32;
        let level = block.level;
        if pages_len <= self.cfg.delta {
            // Small request block: upgrade to the SRL head.
            if level != Level::Srl {
                self.events.srl_upgrades += 1;
            }
            self.move_block_to_head(bid, Level::Srl);
            return;
        }
        if !self.cfg.split_large_on_hit {
            // Ablation A1: refresh recency within the current list only.
            self.move_block_to_head(bid, level);
            return;
        }
        // Large block: extract the hit page into a DRL block for this
        // request (Figure 5(a)). The new block is placed at the DRL head
        // regardless of where the original block sits. The hit still counts
        // as an access to the original block request (Eq. 1's Access_cnt is
        // "the access count of the block request since it was buffered"),
        // which is what makes the Figure 6 merge reachable: a repeatedly
        // split origin ages with a rising count while its fragments cool in
        // DRL.
        self.remove_page_from_block(bid, pos);
        self.events.drl_splits += 1;
        let dst = self.head_block_for(Level::Drl, a.req_id, a.now, Some(bid));
        if !self.blocks[dst].pages.is_empty() {
            // Reused head block: count this additional hit page.
            self.blocks[dst].access_cnt += 1;
        }
        self.add_page(dst, a.lpn);
    }

    /// `get_victim` of Algorithm 1 (lines 7-14): coldest tail of the three
    /// lists, with downgraded merging of split blocks (Figure 6).
    fn get_victim(&mut self, now: u64) -> Option<Vec<Lpn>> {
        let mut victim: Option<BlockId> = None;
        // Scan tails in IRL, SRL, DRL order; strict comparison makes the
        // lower list win ties (IRL blocks have the least standing).
        for level in [Level::Irl, Level::Srl, Level::Drl] {
            let Some(h) = self.lists[level as usize].back() else { continue };
            let bid = *self.lists[level as usize].get(h);
            victim = match victim {
                None => Some(bid),
                Some(cur) => {
                    if self.colder(&self.blocks[bid], &self.blocks[cur], now) {
                        Some(bid)
                    } else {
                        Some(cur)
                    }
                }
            };
        }
        let bid = victim?;
        self.events.victim_selections += 1;
        let origin = self.blocks[bid].origin;
        let mut pages = self.remove_block(bid);
        if self.cfg.merge_on_evict {
            if let Some(ob) = origin {
                // Merge with the original block if it still sits in IRL
                // (it may have been evicted, emptied, or promoted since —
                // a stale generational id resolves to None here).
                if self.blocks.get(ob).is_some_and(|b| b.level == Level::Irl) {
                    self.events.downgrade_merges += 1;
                    pages.extend(self.remove_block(ob));
                }
            }
        }
        Some(pages)
    }

    /// Total pages cached.
    fn total_pages(&self) -> usize {
        self.pages_per_level.iter().sum()
    }

    /// Verify internal invariants (O(cache size); tests only).
    #[doc(hidden)]
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut counted = [0usize; 3];
        let mut total_list_blocks = 0;
        for (li, list) in self.lists.iter().enumerate() {
            total_list_blocks += list.len();
            for h in list.iter_from_front() {
                let bid = *list.get(h);
                let b = self
                    .blocks
                    .get(bid)
                    .ok_or_else(|| format!("list {li} references dead block {bid}"))?;
                if b.level as usize != li {
                    return Err(format!("block {bid} level mismatch"));
                }
                if b.handle != h {
                    return Err(format!("block {bid} handle mismatch"));
                }
                if b.pages.is_empty() {
                    return Err(format!("empty block {bid} retained"));
                }
                counted[li] += b.pages.len();
                for (pos, lpn) in b.pages.iter().enumerate() {
                    match self.page_index.get(lpn) {
                        Some(&(owner, p)) if owner == bid && p as usize == pos => {}
                        other => {
                            return Err(format!(
                                "page {lpn} index mismatch: expected ({bid}, {pos}), got {other:?}"
                            ))
                        }
                    }
                }
            }
        }
        if total_list_blocks != self.blocks.len() {
            return Err("arena/list block count mismatch".into());
        }
        if counted != self.pages_per_level {
            return Err(format!(
                "page counters {:?} != recount {:?}",
                self.pages_per_level, counted
            ));
        }
        if self.page_index.len() != self.total_pages() {
            return Err("page index size mismatch".into());
        }
        if self.total_pages() > self.capacity {
            return Err("capacity exceeded".into());
        }
        Ok(())
    }
}

impl WriteBuffer for ReqBlock {
    fn name(&self) -> &str {
        "Req-block"
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn len_pages(&self) -> usize {
        self.total_pages()
    }

    fn contains(&self, lpn: Lpn) -> bool {
        self.page_index.contains_key(&lpn)
    }

    fn write(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool {
        // Single index probe serves both the hit check and the hit path.
        if let Some(&(bid, pos)) = self.page_index.get(&a.lpn) {
            self.on_hit(a, bid, pos);
            return true;
        }
        // Miss: make room (Algorithm 1 lines 32-35), then insert into the
        // IRL head block of this request (lines 36-37).
        while self.total_pages() >= self.capacity {
            let pages = self.get_victim(a.now).expect("cache full but no victim");
            debug_assert!(!pages.is_empty());
            evictions.push(EvictionBatch::striped(pages));
        }
        let bid = self.head_block_for(Level::Irl, a.req_id, a.now, None);
        self.add_page(bid, a.lpn);
        false
    }

    fn read(&mut self, a: &Access, _evictions: &mut Vec<EvictionBatch>) -> bool {
        if let Some(&(bid, pos)) = self.page_index.get(&a.lpn) {
            self.on_hit(a, bid, pos);
            true
        } else {
            false
        }
    }

    fn node_count(&self) -> usize {
        self.blocks.len()
    }

    fn metadata_bytes(&self) -> usize {
        self.node_count() * REQ_BLOCK_NODE_BYTES
    }

    fn list_occupancy(&self) -> Option<[usize; 3]> {
        Some(self.pages_per_level)
    }

    fn events(&self) -> Option<&CacheEvents> {
        Some(&self.events)
    }

    fn drain(&mut self) -> Vec<EvictionBatch> {
        let mut out = Vec::new();
        let now = u64::MAX; // every block is maximally aged
        while self.total_pages() > 0 {
            let pages = self.get_victim(now).expect("pages cached but no victim");
            out.push(EvictionBatch::striped(pages));
        }
        out
    }

    fn recycle(&mut self, batch: EvictionBatch) {
        // Cap matches the page-policy pool: enough for any eviction burst,
        // never meaningful memory.
        const SPARE_PAGE_BUFFERS: usize = 32;
        if self.spare_pages.len() < SPARE_PAGE_BUFFERS {
            let mut pages = batch.lpns;
            pages.clear();
            self.spare_pages.push(pages);
        }
    }
}

#[cfg(test)]
mod tests;
