//! Page-level flash translation layer with greedy garbage collection.
//!
//! Table 1 of the paper specifies a page-level FTL ("FTL Scheme: Page level")
//! with a 10 % GC threshold. This crate provides:
//!
//! * [`Ftl`] — logical-to-physical mapping, dynamic page allocation, and the
//!   write/read entry points the simulator calls. Two placement modes exist
//!   because the paper's §4.2.2 hinges on them:
//!   [`Placement::Striped`] spreads a flush batch round-robin across chips
//!   (what LRU/VBBMS/Req-block evictions get — the "multiple channels"
//!   parallelism), while [`Placement::SingleBlock`] appends the whole batch
//!   on one chip (BPLRU's whole-block flush, which serializes on a single
//!   channel and is why BPLRU loses on response time despite similar hit
//!   ratios).
//! * [`blocks`] — per-chip block state: free lists, append points, per-block
//!   valid bitmaps (`u64`, hence the 64 pages/block limit), erase counts.
//! * [`gc`] — greedy victim selection via a lazy max-heap keyed on invalid
//!   page count; GC migrates valid pages within the chip and erases the
//!   victim, charging all of it to the chip's timeline so later host
//!   operations observe the delay.
//!
//! Reliability (see DESIGN.md §9): built with [`Ftl::with_faults`], the FTL
//! consults a seeded `reqblock_flash::FaultModel` on host reads, host/flush
//! programs and GC erases. Failed reads retry (each retry a full timed
//! read), failed programs remap the page and retire the block, failed
//! erases retire the block; retired ([`BlockState::Bad`]) blocks leave the
//! rotation for good and shrink the GC floor proportionally. Once a chip's
//! free blocks fall below `FaultConfig::read_only_free_floor` the device
//! degrades per [`Health`]: writes rejected, reads still served. The
//! default fault config is inert and leaves behaviour bit-identical to a
//! fault-free build.

pub mod blocks;
pub mod ftl;
pub mod gc;

pub use blocks::{BlockState, ChipBlocks};
pub use ftl::{Ftl, FtlObs, FtlStats, Health, IoCompletion, Placement};
