//! The FTL proper: mapping, allocation, placement, GC orchestration.

use crate::blocks::{BlockState, ChipBlocks};
use crate::gc::GreedyPicker;
use reqblock_flash::timeline::Origin;
use reqblock_flash::{FlashTimeline, SsdConfig};
use reqblock_trace::Lpn;
use serde::{Deserialize, Serialize};

/// Where a flush batch lands physically. See the crate docs: this is the
/// mechanism behind the paper's §4.2.2 channel-parallelism argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Pages are distributed round-robin over all chips (page-level dynamic
    /// allocation): a batch of N <= channels pages completes in roughly one
    /// program latency.
    Striped,
    /// The whole batch is appended on a single chip (BPLRU flushing a cached
    /// logical block onto one physical SSD block): programs serialize on
    /// that chip's array.
    SingleBlock,
}

/// FTL-level statistics (GC activity; flash op counts live in
/// [`FlashTimeline::counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Number of GC victim collections performed.
    pub gc_runs: u64,
    /// Valid pages migrated by GC.
    pub gc_migrated_pages: u64,
    /// Blocks erased by GC.
    pub gc_erased_blocks: u64,
    /// Host reads of never-written LPNs (serviced with a timed flash read of
    /// arbitrary data, like a real drive returning unmapped sectors).
    pub unmapped_reads: u64,
}

/// GC timing observability, kept separate from [`FtlStats`] (whose exact
/// shape is pinned by golden tests). [`FtlStats`] says how much GC moved;
/// this says how long the device was tied up doing it — the "GC burst"
/// signal the observability layer surfaces over time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtlObs {
    /// Summed service time of every GC read/program/erase, ns.
    pub gc_busy_ns: u128,
    /// Longest single GC round (victim migration + erase), ns.
    pub gc_max_pause_ns: u64,
}

/// Sentinel for "unmapped" in the dense translation tables.
const UNMAPPED: u32 = u32::MAX;

/// Dense page-translation table. Entries are stored **biased by one** so the
/// empty state is all-zeroes: `vec![0; n]` is served by the allocator as
/// untouched zero pages, making construction O(1) instead of a 134 MB
/// sentinel memset per table on the paper's 128 GB drive, and pages the
/// workload never touches are never materialized at all.
#[derive(Debug, Clone)]
struct PageMap(Vec<u32>);

impl PageMap {
    fn new(entries: usize) -> Self {
        Self(vec![0; entries])
    }

    /// Entry count (mapped or not).
    fn len(&self) -> usize {
        self.0.len()
    }

    /// Read an entry; [`UNMAPPED`] when never set (0 - 1 wraps to the
    /// sentinel).
    #[inline]
    fn get(&self, idx: usize) -> u32 {
        self.0[idx].wrapping_sub(1)
    }

    /// Write an entry; storing [`UNMAPPED`] clears it (wraps back to 0).
    #[inline]
    fn set(&mut self, idx: usize, value: u32) {
        self.0[idx] = value.wrapping_add(1);
    }
}

/// Per-chip domain: block state plus GC picker.
#[derive(Debug, Clone)]
struct ChipDomain {
    blocks: ChipBlocks,
    picker: GreedyPicker,
}

/// Page-level FTL over a multi-chip flash array.
///
/// Translation tables are dense `Vec<u32>` (LPN -> PPN and PPN -> LPN),
/// sized by the drive's logical/physical page counts; `u32::MAX` means
/// unmapped. The paper's 128 GB drive has 2^25 pages, so indices fit u32
/// comfortably and lookups are branch-plus-load instead of hashing.
pub struct Ftl {
    cfg: SsdConfig,
    /// LPN -> PPN; `UNMAPPED` when the LPN has never been written.
    l2p: PageMap,
    /// PPN -> LPN for valid pages; `UNMAPPED` otherwise.
    p2l: PageMap,
    chips: Vec<ChipDomain>,
    /// Round-robin cursor for striped placement (and for spreading
    /// single-block batches across chips between evictions).
    cursor: usize,
    stats: FtlStats,
    obs: FtlObs,
}

impl Ftl {
    /// Build an FTL for `cfg` with an empty mapping.
    pub fn new(cfg: &SsdConfig) -> Self {
        cfg.validate().expect("invalid SSD config");
        let total_pages = cfg.total_pages() as usize;
        assert!(total_pages < UNMAPPED as usize, "drive too large for u32 page indices");
        Self {
            l2p: PageMap::new(total_pages),
            p2l: PageMap::new(total_pages),
            chips: (0..cfg.total_chips())
                .map(|_| ChipDomain { blocks: ChipBlocks::new(cfg), picker: GreedyPicker::new() })
                .collect(),
            cursor: 0,
            cfg: cfg.clone(),
            stats: FtlStats::default(),
            obs: FtlObs::default(),
        }
    }

    /// Drive configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// GC statistics so far.
    pub fn stats(&self) -> &FtlStats {
        &self.stats
    }

    /// GC timing observability so far.
    pub fn obs(&self) -> &FtlObs {
        &self.obs
    }

    /// Is `lpn` currently mapped to a physical page?
    #[inline]
    pub fn is_mapped(&self, lpn: Lpn) -> bool {
        self.l2p.get(lpn as usize) != UNMAPPED
    }

    /// Number of logical pages the drive exposes.
    #[inline]
    pub fn logical_pages(&self) -> u64 {
        self.cfg.total_pages()
    }

    /// Live (mapped) page count. O(chips * blocks); test/diagnostic use.
    pub fn live_pages(&self) -> u64 {
        self.chips.iter().map(|c| c.blocks.live_pages()).sum()
    }

    /// Free blocks on each chip (diagnostics).
    pub fn free_blocks_per_chip(&self) -> Vec<usize> {
        self.chips.iter().map(|c| c.blocks.free_count()).collect()
    }

    /// Free blocks across the drive (no allocation; sampled every
    /// observation interval, unlike [`Ftl::free_blocks_per_chip`]).
    pub fn free_blocks_total(&self) -> usize {
        self.chips.iter().map(|c| c.blocks.free_count()).sum()
    }

    /// Maximum per-block erase count across the drive (wear ceiling).
    pub fn max_erase_count(&self) -> u32 {
        self.chips.iter().map(|c| c.blocks.max_erase_count()).max().unwrap_or(0)
    }

    #[inline]
    fn ppn_of(&self, chip: usize, block: u32, page: u16) -> u32 {
        (chip as u64 * self.cfg.pages_per_chip()
            + block as u64 * self.cfg.pages_per_block as u64
            + page as u64) as u32
    }

    #[inline]
    fn chip_of_ppn(&self, ppn: u32) -> usize {
        (ppn as u64 / self.cfg.pages_per_chip()) as usize
    }

    #[inline]
    fn block_page_of_ppn(&self, ppn: u32) -> (u32, u16) {
        let within = ppn as u64 % self.cfg.pages_per_chip();
        (
            (within / self.cfg.pages_per_block as u64) as u32,
            (within % self.cfg.pages_per_block as u64) as u16,
        )
    }

    /// Invalidate the physical page currently backing `lpn`, if any.
    fn invalidate_lpn(&mut self, lpn: Lpn) {
        let old = self.l2p.get(lpn as usize);
        if old == UNMAPPED {
            return;
        }
        let chip = self.chip_of_ppn(old);
        let (block, page) = self.block_page_of_ppn(old);
        let domain = &mut self.chips[chip];
        let inv = domain.blocks.invalidate(block, page);
        if domain.blocks.meta(block).state == BlockState::Full {
            domain.picker.note(block, inv);
        }
        self.p2l.set(old as usize, UNMAPPED);
        self.l2p.set(lpn as usize, UNMAPPED);
    }

    /// Allocate a physical page on `chip` and record the `lpn` mapping.
    /// Panics if the chip is out of space even after GC had its chance —
    /// that means the live data set exceeds physical capacity.
    fn allocate_mapped(&mut self, chip: usize, lpn: Lpn) -> (u32, u16) {
        let domain = &mut self.chips[chip];
        let (block, page) = domain
            .blocks
            .allocate_page()
            .expect("flash chip out of space: live data exceeds physical capacity");
        // If the allocation sealed the block and earlier pages of it were
        // already invalidated, make sure the picker knows about it.
        let meta = domain.blocks.meta(block);
        if meta.state == BlockState::Full && meta.invalid_count() > 0 {
            domain.picker.note(block, meta.invalid_count());
        }
        let ppn = self.ppn_of(chip, block, page);
        self.l2p.set(lpn as usize, ppn);
        self.p2l.set(ppn as usize, lpn as u32);
        (block, page)
    }

    /// Run GC on `chip` until its free-block count is back above the
    /// threshold or no block can be reclaimed.
    fn maybe_gc(&mut self, chip: usize, at: u64, tl: &mut FlashTimeline) {
        let floor = self.cfg.gc_free_blocks_floor();
        while self.chips[chip].blocks.free_count() < floor {
            if !self.gc_once(chip, at, tl) {
                break;
            }
        }
    }

    /// One greedy GC round on `chip`: migrate the victim's valid pages
    /// within the chip, then erase it. Returns `false` if no victim exists.
    fn gc_once(&mut self, chip: usize, at: u64, tl: &mut FlashTimeline) -> bool {
        let victim = {
            let domain = &mut self.chips[chip];
            match domain.picker.pick(&domain.blocks) {
                Some(b) => b,
                None => return false,
            }
        };
        // Collect the victim's valid pages before mutating anything.
        let valid_bitmap = self.chips[chip].blocks.meta(victim).valid;
        let pages_per_block = self.cfg.pages_per_block as u16;
        let mut round_busy_ns = 0u128;
        for page in 0..pages_per_block {
            if valid_bitmap & (1u64 << page) == 0 {
                continue;
            }
            let src_ppn = self.ppn_of(chip, victim, page);
            let lpn = self.p2l.get(src_ppn as usize);
            debug_assert_ne!(lpn, UNMAPPED, "valid page without reverse mapping");
            let rd = tl.read(&self.cfg, chip, at, Origin::Gc);
            round_busy_ns += (rd.end_ns - rd.start_ns) as u128;
            // Invalidate the source, then rewrite within the chip.
            self.chips[chip].blocks.invalidate(victim, page);
            self.p2l.set(src_ppn as usize, UNMAPPED);
            self.l2p.set(lpn as usize, UNMAPPED);
            self.allocate_mapped(chip, lpn as Lpn);
            let pr = tl.program(&self.cfg, chip, at, Origin::Gc);
            round_busy_ns += (pr.end_ns - pr.start_ns) as u128;
        }
        let er = tl.erase(&self.cfg, chip, at);
        round_busy_ns += (er.end_ns - er.start_ns) as u128;
        self.stats.gc_migrated_pages += valid_bitmap.count_ones() as u64;
        self.obs.gc_busy_ns += round_busy_ns;
        self.obs.gc_max_pause_ns = self.obs.gc_max_pause_ns.max(round_busy_ns as u64);
        self.chips[chip].blocks.erase(victim);
        self.stats.gc_runs += 1;
        self.stats.gc_erased_blocks += 1;
        true
    }

    /// Program one host/flush page on `chip` at `at`. Returns completion ns.
    fn program_one(&mut self, chip: usize, lpn: Lpn, at: u64, tl: &mut FlashTimeline) -> u64 {
        assert!(lpn < self.logical_pages(), "LPN {lpn} beyond device");
        self.maybe_gc(chip, at, tl);
        self.invalidate_lpn(lpn);
        self.allocate_mapped(chip, lpn);
        tl.program(&self.cfg, chip, at, Origin::User).end_ns
    }

    /// Flush a batch of pages at `at` with the given placement policy.
    /// Returns the completion time of the slowest page (the batch finish).
    pub fn write_pages(
        &mut self,
        lpns: &[Lpn],
        at: u64,
        placement: Placement,
        tl: &mut FlashTimeline,
    ) -> u64 {
        if lpns.is_empty() {
            return at;
        }
        let chips = self.chips.len();
        let mut done = at;
        match placement {
            Placement::Striped => {
                for &lpn in lpns {
                    let chip = self.cursor;
                    self.cursor = (self.cursor + 1) % chips;
                    done = done.max(self.program_one(chip, lpn, at, tl));
                }
            }
            Placement::SingleBlock => {
                let chip = self.cursor;
                self.cursor = (self.cursor + 1) % chips;
                for &lpn in lpns {
                    done = done.max(self.program_one(chip, lpn, at, tl));
                }
            }
        }
        done
    }

    /// Service a host read of `lpn` at `at`. Returns completion ns. Reads of
    /// unmapped LPNs are timed like ordinary reads (chip chosen by address
    /// hash) and counted in [`FtlStats::unmapped_reads`].
    pub fn read_page(&mut self, lpn: Lpn, at: u64, tl: &mut FlashTimeline) -> u64 {
        assert!(lpn < self.logical_pages(), "LPN {lpn} beyond device");
        let ppn = self.l2p.get(lpn as usize);
        let chip = if ppn == UNMAPPED {
            self.stats.unmapped_reads += 1;
            (lpn % self.chips.len() as u64) as usize
        } else {
            self.chip_of_ppn(ppn)
        };
        tl.read(&self.cfg, chip, at, Origin::User).end_ns
    }

    /// Debug-grade consistency check: every l2p entry has a matching p2l
    /// entry and a valid bit set; live counts agree. O(total pages) — tests
    /// only.
    #[doc(hidden)]
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut mapped = 0u64;
        for lpn in 0..self.l2p.len() {
            let ppn = self.l2p.get(lpn);
            if ppn == UNMAPPED {
                continue;
            }
            mapped += 1;
            if self.p2l.get(ppn as usize) != lpn as u32 {
                return Err(format!("l2p/p2l mismatch at lpn {lpn}"));
            }
            let chip = self.chip_of_ppn(ppn);
            let (block, page) = self.block_page_of_ppn(ppn);
            let meta = self.chips[chip].blocks.meta(block);
            if meta.valid & (1u64 << page) == 0 {
                return Err(format!("mapped page not valid: lpn {lpn}"));
            }
        }
        let live = self.live_pages();
        if mapped != live {
            return Err(format!("mapped {mapped} != live {live}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Ftl, FlashTimeline, SsdConfig) {
        let cfg = SsdConfig::tiny();
        (Ftl::new(&cfg), FlashTimeline::new(&cfg), cfg)
    }

    #[test]
    fn write_then_read_maps_page() {
        let (mut ftl, mut tl, _cfg) = setup();
        assert!(!ftl.is_mapped(7));
        ftl.write_pages(&[7], 0, Placement::Striped, &mut tl);
        assert!(ftl.is_mapped(7));
        let done = ftl.read_page(7, 0, &mut tl);
        assert!(done > 0);
        assert_eq!(tl.counters().user_reads, 1);
        ftl.check_consistency().unwrap();
    }

    #[test]
    fn overwrite_invalidates_old_page() {
        let (mut ftl, mut tl, _cfg) = setup();
        ftl.write_pages(&[3], 0, Placement::Striped, &mut tl);
        assert_eq!(ftl.live_pages(), 1);
        ftl.write_pages(&[3], 0, Placement::Striped, &mut tl);
        // Still exactly one live page; the old copy is invalid.
        assert_eq!(ftl.live_pages(), 1);
        assert_eq!(tl.counters().user_programs, 2);
        ftl.check_consistency().unwrap();
    }

    #[test]
    fn striped_batch_faster_than_single_block() {
        let cfg = SsdConfig::paper();
        let mut ftl_s = Ftl::new(&cfg);
        let mut tl_s = FlashTimeline::new(&cfg);
        let lpns: Vec<Lpn> = (0..8).collect();
        let striped_done = ftl_s.write_pages(&lpns, 0, Placement::Striped, &mut tl_s);

        let mut ftl_b = Ftl::new(&cfg);
        let mut tl_b = FlashTimeline::new(&cfg);
        let block_done = ftl_b.write_pages(&lpns, 0, Placement::SingleBlock, &mut tl_b);

        // 8 pages over 8+ chips: ~1 program latency. Same chip: ~8x.
        assert!(block_done > striped_done * 4, "{block_done} vs {striped_done}");
    }

    #[test]
    fn single_block_batches_rotate_chips_between_evictions() {
        let (mut ftl, mut tl, _cfg) = setup();
        ftl.write_pages(&[0, 1], 0, Placement::SingleBlock, &mut tl);
        let c0 = ftl.chip_of_ppn(ftl.l2p.get(0));
        assert_eq!(c0, ftl.chip_of_ppn(ftl.l2p.get(1)), "batch stays on one chip");
        ftl.write_pages(&[2], 0, Placement::SingleBlock, &mut tl);
        let c1 = ftl.chip_of_ppn(ftl.l2p.get(2));
        assert_ne!(c0, c1, "next batch should move to the next chip");
    }

    #[test]
    fn gc_triggers_and_reclaims_space() {
        let (mut ftl, mut tl, cfg) = setup();
        // tiny: 2 chips x 32 blocks x 8 pages = 512 physical pages.
        // Hammer 64 LPNs with overwrites until GC must have run.
        let mut writes = 0u64;
        for round in 0..40 {
            for lpn in 0..64u64 {
                ftl.write_pages(&[lpn], round * 1_000_000, Placement::Striped, &mut tl);
                writes += 1;
            }
        }
        assert_eq!(tl.counters().user_programs, writes);
        assert!(ftl.stats().gc_runs > 0, "GC never ran");
        assert!(tl.counters().erases > 0);
        // Free-block floor is respected (or nothing reclaimable remained).
        let floor = cfg.gc_free_blocks_floor();
        for free in ftl.free_blocks_per_chip() {
            assert!(free >= floor.saturating_sub(1), "free {free} below floor {floor}");
        }
        assert_eq!(ftl.live_pages(), 64);
        ftl.check_consistency().unwrap();
    }

    #[test]
    fn gc_preserves_data_mappings() {
        let (mut ftl, mut tl, _cfg) = setup();
        // Write a stable set once, then churn a different set to force GC.
        let stable: Vec<Lpn> = (100..150).collect();
        ftl.write_pages(&stable, 0, Placement::Striped, &mut tl);
        for round in 0..60 {
            for lpn in 0..32u64 {
                ftl.write_pages(&[lpn], round, Placement::Striped, &mut tl);
            }
        }
        assert!(ftl.stats().gc_runs > 0);
        for &lpn in &stable {
            assert!(ftl.is_mapped(lpn), "GC lost mapping for {lpn}");
        }
        ftl.check_consistency().unwrap();
    }

    #[test]
    fn gc_migration_counted_separately() {
        let (mut ftl, mut tl, _cfg) = setup();
        ftl.write_pages(&(200..232).collect::<Vec<_>>(), 0, Placement::Striped, &mut tl);
        let user_before = tl.counters().user_programs;
        for round in 0..60 {
            for lpn in 0..32u64 {
                ftl.write_pages(&[lpn], round, Placement::Striped, &mut tl);
            }
        }
        let c = tl.counters();
        assert_eq!(c.user_programs, user_before + 60 * 32);
        assert_eq!(c.gc_programs, ftl.stats().gc_migrated_pages);
        assert!(c.write_amplification() >= 1.0);
    }

    #[test]
    fn gc_obs_accumulates_busy_time() {
        let (mut ftl, mut tl, _cfg) = setup();
        assert_eq!(ftl.obs().gc_busy_ns, 0);
        for round in 0..40 {
            for lpn in 0..64u64 {
                ftl.write_pages(&[lpn], round * 1_000_000, Placement::Striped, &mut tl);
            }
        }
        assert!(ftl.stats().gc_runs > 0);
        let obs = ftl.obs();
        assert!(obs.gc_busy_ns > 0, "GC ran but no busy time recorded");
        assert!(obs.gc_max_pause_ns > 0);
        assert!(obs.gc_busy_ns >= obs.gc_max_pause_ns as u128);
        // Every GC round includes at least its erase.
        assert!(
            obs.gc_busy_ns
                >= ftl.stats().gc_runs as u128 * ftl.config().erase_latency_ns as u128
        );
    }

    #[test]
    fn free_blocks_total_matches_per_chip_sum() {
        let (mut ftl, mut tl, _cfg) = setup();
        let before = ftl.free_blocks_total();
        assert_eq!(before, ftl.free_blocks_per_chip().iter().sum::<usize>());
        ftl.write_pages(&(0..64).collect::<Vec<_>>(), 0, Placement::Striped, &mut tl);
        let after = ftl.free_blocks_total();
        assert!(after < before, "allocations must consume free blocks");
        assert_eq!(after, ftl.free_blocks_per_chip().iter().sum::<usize>());
    }

    #[test]
    fn unmapped_read_is_timed_and_counted() {
        let (mut ftl, mut tl, cfg) = setup();
        let done = ftl.read_page(99, 0, &mut tl);
        assert_eq!(done, cfg.read_latency_ns + cfg.page_transfer_ns());
        assert_eq!(ftl.stats().unmapped_reads, 1);
    }

    #[test]
    fn empty_batch_is_noop() {
        let (mut ftl, mut tl, _cfg) = setup();
        assert_eq!(ftl.write_pages(&[], 42, Placement::Striped, &mut tl), 42);
        assert_eq!(tl.counters().user_programs, 0);
    }

    #[test]
    #[should_panic(expected = "beyond device")]
    fn lpn_out_of_range_panics() {
        let (mut ftl, mut tl, cfg) = setup();
        let bad = cfg.total_pages();
        ftl.write_pages(&[bad], 0, Placement::Striped, &mut tl);
    }

    #[test]
    fn wear_increases_under_churn() {
        let (mut ftl, mut tl, _cfg) = setup();
        for round in 0..100 {
            for lpn in 0..32u64 {
                ftl.write_pages(&[lpn], round, Placement::Striped, &mut tl);
            }
        }
        assert!(ftl.max_erase_count() >= 1);
    }
}
