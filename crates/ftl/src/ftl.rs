//! The FTL proper: mapping, allocation, placement, GC orchestration.

use crate::blocks::{BlockState, ChipBlocks};
use crate::gc::GreedyPicker;
use reqblock_flash::timeline::Origin;
use reqblock_flash::{DegradedMode, FaultConfig, FaultModel, FaultStats, FlashTimeline, SsdConfig};
use reqblock_trace::Lpn;
use serde::{Deserialize, Serialize};

/// Where a flush batch lands physically. See the crate docs: this is the
/// mechanism behind the paper's §4.2.2 channel-parallelism argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Pages are distributed round-robin over all chips (page-level dynamic
    /// allocation): a batch of N <= channels pages completes in roughly one
    /// program latency.
    Striped,
    /// The whole batch is appended on a single chip (BPLRU flushing a cached
    /// logical block onto one physical SSD block): programs serialize on
    /// that chip's array.
    SingleBlock,
}

/// FTL-level statistics (GC activity; flash op counts live in
/// [`FlashTimeline::counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Number of GC victim collections performed.
    pub gc_runs: u64,
    /// Valid pages migrated by GC.
    pub gc_migrated_pages: u64,
    /// Blocks erased by GC.
    pub gc_erased_blocks: u64,
    /// Host reads of never-written LPNs (serviced with a timed flash read of
    /// arbitrary data, like a real drive returning unmapped sectors).
    pub unmapped_reads: u64,
}

/// GC timing observability, kept separate from [`FtlStats`] (whose exact
/// shape is pinned by golden tests). [`FtlStats`] says how much GC moved;
/// this says how long the device was tied up doing it — the "GC burst"
/// signal the observability layer surfaces over time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtlObs {
    /// Summed service time of every GC read/program/erase, ns.
    pub gc_busy_ns: u128,
    /// Longest single GC round (victim migration + erase), ns.
    pub gc_max_pause_ns: u64,
    /// Extra completion delay added by read-retry rounds (raw-bit-error
    /// recovery), ns: final completion minus first-attempt completion,
    /// summed over all faulting reads. Zero on the zero-fault path.
    pub retry_busy_ns: u128,
}

/// Device-level health under fault injection. The FTL degrades (rather
/// than corrupting data or looping) when block retirements or capacity
/// pressure leave a chip unable to honour new writes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Health {
    /// Normal operation.
    #[default]
    Healthy,
    /// A chip's free blocks fell below [`FaultConfig::read_only_free_floor`]
    /// (or a chip physically ran out of space while faults were active):
    /// new host writes are rejected, reads are still served.
    ReadOnly,
}

/// Structured completion of one FTL call — what the simulator's device
/// layer consumes instead of bare `u64` finish times (the host/engine/device
/// seam, DESIGN.md §7.2). Purely descriptive: constructing one performs no
/// extra timeline work beyond the wrapped call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoCompletion {
    /// Completion time of the slowest page in the call, ns.
    pub done_ns: u64,
    /// How far past the issue time the call ran (`done_ns - at`), ns.
    pub service_ns: u64,
    /// Flash operations actually issued on behalf of this call: programs
    /// for writes (0 when a degraded device rejected the batch), reads
    /// including fault retries for reads.
    pub flash_ops: u64,
}

/// Sentinel for "unmapped" in the dense translation tables.
const UNMAPPED: u32 = u32::MAX;

/// Dense page-translation table. Entries are stored **biased by one** so the
/// empty state is all-zeroes: `vec![0; n]` is served by the allocator as
/// untouched zero pages, making construction O(1) instead of a 134 MB
/// sentinel memset per table on the paper's 128 GB drive, and pages the
/// workload never touches are never materialized at all.
#[derive(Debug, Clone)]
struct PageMap(Vec<u32>);

impl PageMap {
    fn new(entries: usize) -> Self {
        Self(vec![0; entries])
    }

    /// Entry count (mapped or not).
    fn len(&self) -> usize {
        self.0.len()
    }

    /// Read an entry; [`UNMAPPED`] when never set (0 - 1 wraps to the
    /// sentinel).
    #[inline]
    fn get(&self, idx: usize) -> u32 {
        self.0[idx].wrapping_sub(1)
    }

    /// Write an entry; storing [`UNMAPPED`] clears it (wraps back to 0).
    #[inline]
    fn set(&mut self, idx: usize, value: u32) {
        self.0[idx] = value.wrapping_add(1);
    }

    /// Hint the cache hierarchy that `idx` is about to be accessed. The
    /// mapping tables span hundreds of megabytes at paper geometry, so the
    /// per-page walk is DRAM-latency-bound; issuing the loads for a whole
    /// batch up front overlaps the misses instead of serializing them.
    #[inline]
    fn prefetch(&self, idx: usize) {
        #[cfg(target_arch = "x86_64")]
        if idx < self.0.len() {
            // SAFETY: prefetch has no architectural effect; the pointer is
            // in-bounds and never dereferenced.
            unsafe {
                core::arch::x86_64::_mm_prefetch(
                    self.0.as_ptr().add(idx) as *const i8,
                    core::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = idx;
    }
}

/// Per-chip domain: block state plus GC picker.
#[derive(Debug, Clone)]
struct ChipDomain {
    blocks: ChipBlocks,
    picker: GreedyPicker,
}

/// Page-level FTL over a multi-chip flash array.
///
/// Translation tables are dense `Vec<u32>` (LPN -> PPN and PPN -> LPN),
/// sized by the drive's logical/physical page counts; `u32::MAX` means
/// unmapped. The paper's 128 GB drive has 2^25 pages, so indices fit u32
/// comfortably and lookups are branch-plus-load instead of hashing.
pub struct Ftl {
    cfg: SsdConfig,
    /// LPN -> PPN; `UNMAPPED` when the LPN has never been written.
    l2p: PageMap,
    /// PPN -> LPN, written at program time only. Entries for *invalidated*
    /// pages go stale rather than being cleared: the block valid bitmap is
    /// the source of truth for liveness, and every reader (GC migration,
    /// retirement, the consistency check) consults it first. Skipping the
    /// clear removes a random store into a ~134 MB table from the per-page
    /// overwrite path, which is DRAM-miss-bound at paper geometry.
    p2l: PageMap,
    chips: Vec<ChipDomain>,
    /// Round-robin cursor for striped placement (and for spreading
    /// single-block batches across chips between evictions).
    cursor: usize,
    stats: FtlStats,
    obs: FtlObs,
    /// Seeded fault decision engine (inert by default).
    faults: FaultModel,
    /// Reliability counters (retries, retirements, rejections).
    fstats: FaultStats,
    /// Degradation state; once `ReadOnly`, writes are rejected for good.
    health: Health,
    /// Cached [`SsdConfig::gc_free_blocks_floor`]: the GC floor while no
    /// block has retired, hoisted off the per-page write path so batched
    /// flushes don't redo the float math for every page.
    gc_floor_healthy: usize,
    /// Cached [`SsdConfig::pages_per_chip`] — the accessor divides by the
    /// chip count on every call, far too hot for the per-page mapping path.
    pages_per_chip: u64,
    /// Cached `pages_per_block` as u64.
    pages_per_block: u64,
    /// `true` when both `pages_per_chip` and `pages_per_block` are powers
    /// of two (every shipped geometry): PPN decomposition is then pure
    /// shift/mask instead of two u64 divisions per page.
    geom_pow2: bool,
    /// `log2(pages_per_chip)` when `geom_pow2`.
    chip_shift: u32,
    /// `pages_per_chip - 1` when `geom_pow2`.
    chip_mask: u64,
    /// `log2(pages_per_block)` when `geom_pow2`.
    block_shift: u32,
    /// `pages_per_block - 1` when `geom_pow2`.
    block_mask: u64,
    /// Per-chip scratch for [`Ftl::write_pages`]: `true` while the chip's
    /// free-block count is known to sit at/above the GC floor within the
    /// current batch, letting later pages of the batch skip the GC re-check
    /// until an allocation opens a fresh block.
    gc_checked: Vec<bool>,
}

impl Ftl {
    /// Build an FTL for `cfg` with an empty mapping and no fault injection.
    pub fn new(cfg: &SsdConfig) -> Self {
        Self::with_faults(cfg, FaultConfig::default())
    }

    /// Build an FTL for `cfg` with the given fault-injection configuration.
    /// [`FaultConfig::default`] is zero-fault and behaves exactly like
    /// [`Ftl::new`].
    pub fn with_faults(cfg: &SsdConfig, faults: FaultConfig) -> Self {
        cfg.validate().expect("invalid SSD config");
        let total_pages = cfg.total_pages() as usize;
        assert!(total_pages < UNMAPPED as usize, "drive too large for u32 page indices");
        let pages_per_chip = cfg.pages_per_chip();
        let pages_per_block = cfg.pages_per_block as u64;
        let geom_pow2 = pages_per_chip.is_power_of_two() && pages_per_block.is_power_of_two();
        Self {
            pages_per_chip,
            pages_per_block,
            geom_pow2,
            chip_shift: pages_per_chip.trailing_zeros(),
            chip_mask: pages_per_chip.wrapping_sub(1),
            block_shift: pages_per_block.trailing_zeros(),
            block_mask: pages_per_block.wrapping_sub(1),
            l2p: PageMap::new(total_pages),
            p2l: PageMap::new(total_pages),
            chips: (0..cfg.total_chips())
                .map(|_| ChipDomain {
                    blocks: ChipBlocks::new(cfg),
                    picker: GreedyPicker::with_capacity(cfg.blocks_per_chip()),
                })
                .collect(),
            cursor: 0,
            stats: FtlStats::default(),
            obs: FtlObs::default(),
            faults: FaultModel::new(faults),
            fstats: FaultStats::default(),
            health: Health::default(),
            gc_floor_healthy: cfg.gc_free_blocks_floor(),
            gc_checked: vec![false; cfg.total_chips()],
            cfg: cfg.clone(),
        }
    }

    /// Drive configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// GC statistics so far.
    pub fn stats(&self) -> &FtlStats {
        &self.stats
    }

    /// GC timing observability so far.
    pub fn obs(&self) -> &FtlObs {
        &self.obs
    }

    /// Reliability counters so far (all zero with the default fault config).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fstats
    }

    /// The fault-injection configuration this FTL runs with.
    pub fn fault_config(&self) -> &FaultConfig {
        self.faults.config()
    }

    /// Current device health.
    pub fn health(&self) -> Health {
        self.health
    }

    /// Has the device entered read-only degraded mode?
    pub fn is_read_only(&self) -> bool {
        self.health == Health::ReadOnly
    }

    /// Blocks retired as bad across all chips.
    pub fn bad_blocks_total(&self) -> usize {
        self.chips.iter().map(|c| c.blocks.bad_count()).sum()
    }

    /// Is `lpn` currently mapped to a physical page?
    #[inline]
    pub fn is_mapped(&self, lpn: Lpn) -> bool {
        self.l2p.get(lpn as usize) != UNMAPPED
    }

    /// Number of logical pages the drive exposes.
    #[inline]
    pub fn logical_pages(&self) -> u64 {
        self.cfg.total_pages()
    }

    /// Live (mapped) page count. O(chips * blocks); test/diagnostic use.
    pub fn live_pages(&self) -> u64 {
        self.chips.iter().map(|c| c.blocks.live_pages()).sum()
    }

    /// Free blocks on each chip (diagnostics).
    pub fn free_blocks_per_chip(&self) -> Vec<usize> {
        self.chips.iter().map(|c| c.blocks.free_count()).collect()
    }

    /// Free blocks across the drive (no allocation; sampled every
    /// observation interval, unlike [`Ftl::free_blocks_per_chip`]).
    pub fn free_blocks_total(&self) -> usize {
        self.chips.iter().map(|c| c.blocks.free_count()).sum()
    }

    /// Maximum per-block erase count across the drive (wear ceiling).
    pub fn max_erase_count(&self) -> u32 {
        self.chips.iter().map(|c| c.blocks.max_erase_count()).max().unwrap_or(0)
    }

    #[inline]
    fn ppn_of(&self, chip: usize, block: u32, page: u16) -> u32 {
        if self.geom_pow2 {
            (((chip as u64) << self.chip_shift)
                | ((block as u64) << self.block_shift)
                | page as u64) as u32
        } else {
            (chip as u64 * self.pages_per_chip
                + block as u64 * self.pages_per_block
                + page as u64) as u32
        }
    }

    #[inline]
    fn chip_of_ppn(&self, ppn: u32) -> usize {
        if self.geom_pow2 {
            (ppn as u64 >> self.chip_shift) as usize
        } else {
            (ppn as u64 / self.pages_per_chip) as usize
        }
    }

    #[inline]
    fn block_page_of_ppn(&self, ppn: u32) -> (u32, u16) {
        if self.geom_pow2 {
            let within = ppn as u64 & self.chip_mask;
            ((within >> self.block_shift) as u32, (within & self.block_mask) as u16)
        } else {
            let within = ppn as u64 % self.pages_per_chip;
            (
                (within / self.pages_per_block) as u32,
                (within % self.pages_per_block) as u16,
            )
        }
    }

    /// Invalidate the physical page `ppn` (which must be valid) and clear
    /// its reverse mapping. Leaves `l2p` untouched — callers own the
    /// forward mapping.
    fn invalidate_ppn(&mut self, ppn: u32) {
        let chip = self.chip_of_ppn(ppn);
        let (block, page) = self.block_page_of_ppn(ppn);
        let domain = &mut self.chips[chip];
        let (inv, state) = domain.blocks.invalidate_with_state(block, page);
        if state == BlockState::Full {
            domain.picker.note(block, inv);
        }
        // The stale p2l entry is left in place; the valid bitmap already
        // records the page as dead, and p2l is only read for valid pages.
    }

    /// Invalidate the physical page currently backing `lpn`, if any.
    fn invalidate_lpn(&mut self, lpn: Lpn) {
        let old = self.l2p.get(lpn as usize);
        if old == UNMAPPED {
            return;
        }
        self.invalidate_ppn(old);
        self.l2p.set(lpn as usize, UNMAPPED);
    }

    /// Allocate the next physical page on `chip` without mapping it, or
    /// `None` if the chip is out of space even after GC had its chance.
    fn try_allocate_raw(&mut self, chip: usize) -> Option<(u32, u16)> {
        let domain = &mut self.chips[chip];
        let (block, page) = domain.blocks.allocate_page()?;
        // If the allocation sealed the block and earlier pages of it were
        // already invalidated, make sure the picker knows about it.
        let meta = domain.blocks.meta(block);
        if meta.state == BlockState::Full && meta.invalid_count() > 0 {
            domain.picker.note(block, meta.invalid_count());
        }
        Some((block, page))
    }

    /// Allocate a physical page on `chip` and record the `lpn` mapping, or
    /// `None` if the chip is out of space even after GC had its chance.
    fn try_allocate_mapped(&mut self, chip: usize, lpn: Lpn) -> Option<(u32, u16)> {
        let (block, page) = self.try_allocate_raw(chip)?;
        let ppn = self.ppn_of(chip, block, page);
        self.l2p.set(lpn as usize, ppn);
        self.p2l.set(ppn as usize, lpn as u32);
        Some((block, page))
    }

    /// Allocate a physical page on `chip` and record the `lpn` mapping.
    /// Panics if the chip is out of space even after GC had its chance —
    /// that means the live data set exceeds physical capacity.
    fn allocate_mapped(&mut self, chip: usize, lpn: Lpn) -> (u32, u16) {
        self.try_allocate_mapped(chip, lpn)
            .expect("flash chip out of space: live data exceeds physical capacity")
    }

    /// The free-block count GC defends on `chip`. Identical to
    /// [`SsdConfig::gc_free_blocks_floor`] until blocks retire; afterwards
    /// the threshold applies to the *usable* (non-bad) block count, so a
    /// shrinking pool keeps the same proportional overprovisioning instead
    /// of GC-ing ever harder against an unreachable absolute target.
    fn gc_floor(&self, chip: usize) -> usize {
        let blocks = &self.chips[chip].blocks;
        if blocks.bad_count() == 0 {
            return self.gc_floor_healthy;
        }
        ((blocks.usable_count() as f64) * self.cfg.gc_threshold).ceil() as usize
    }

    /// Run GC on `chip` until its free-block count is back above the
    /// threshold or no block can be reclaimed.
    fn maybe_gc(&mut self, chip: usize, at: u64, tl: &mut FlashTimeline) {
        let floor = self.gc_floor(chip);
        while self.chips[chip].blocks.free_count() < floor {
            if !self.gc_once(chip, at, tl) {
                break;
            }
        }
    }

    /// One greedy GC round on `chip`: migrate the victim's valid pages
    /// within the chip, then erase it. Returns `false` if no victim exists.
    fn gc_once(&mut self, chip: usize, at: u64, tl: &mut FlashTimeline) -> bool {
        let victim = {
            let domain = &mut self.chips[chip];
            match domain.picker.pick(&domain.blocks) {
                Some(b) => b,
                None => return false,
            }
        };
        // Collect the victim's valid pages before mutating anything.
        let valid_bitmap = self.chips[chip].blocks.meta(victim).valid;
        let pages_per_block = self.cfg.pages_per_block as u16;
        let mut round_busy_ns = 0u128;
        for page in 0..pages_per_block {
            if valid_bitmap & (1u64 << page) == 0 {
                continue;
            }
            let src_ppn = self.ppn_of(chip, victim, page);
            let lpn = self.p2l.get(src_ppn as usize);
            debug_assert_ne!(lpn, UNMAPPED, "valid page without reverse mapping");
            // Allocate the destination before dropping the source, so an
            // exhausted chip degrades without losing the page.
            let Some((nb, np)) = self.try_allocate_raw(chip) else {
                if self.faults.is_inert() {
                    panic!("flash chip out of space: live data exceeds physical capacity");
                }
                self.degrade("no space left to migrate a GC victim");
                return false;
            };
            let rd = tl.read(&self.cfg, chip, at, Origin::Gc);
            round_busy_ns += (rd.end_ns - rd.start_ns) as u128;
            let dst_ppn = self.ppn_of(chip, nb, np);
            self.chips[chip].blocks.invalidate(victim, page);
            self.p2l.set(dst_ppn as usize, lpn);
            self.l2p.set(lpn as usize, dst_ppn);
            let pr = tl.program(&self.cfg, chip, at, Origin::Gc);
            round_busy_ns += (pr.end_ns - pr.start_ns) as u128;
            self.stats.gc_migrated_pages += 1;
        }
        let er = tl.erase(&self.cfg, chip, at);
        round_busy_ns += (er.end_ns - er.start_ns) as u128;
        self.obs.gc_busy_ns += round_busy_ns;
        self.obs.gc_max_pause_ns = self.obs.gc_max_pause_ns.max(round_busy_ns as u64);
        let wear = self.chips[chip].blocks.meta(victim).erase_count;
        if self.faults.erase_fails(wear) {
            // The erase was attempted (and charged to the timeline) but the
            // block failed to clear: retire it instead of recycling it. Its
            // valid pages were already migrated, so no data is at risk —
            // but the free list does not grow.
            self.fstats.erase_failures += 1;
            self.chips[chip].blocks.retire(victim);
            self.fstats.retired_blocks += 1;
            self.refresh_health();
        } else {
            self.chips[chip].blocks.erase(victim);
            self.stats.gc_erased_blocks += 1;
        }
        self.stats.gc_runs += 1;
        true
    }

    /// Migrate every remaining valid page off `block` (within the chip),
    /// then mark the block bad. Migration traffic is charged to the
    /// timelines as GC-origin reads/programs; it is exempt from further
    /// fault checks so failure handling cannot recurse. If the chip runs
    /// out of space mid-migration the block is *not* retired: its
    /// unmigrated pages stay where they are (still readable) and the
    /// device degrades instead of losing data.
    fn retire_block(&mut self, chip: usize, block: u32, at: u64, tl: &mut FlashTimeline) {
        // Stop allocating from the failing block before rewriting onto it.
        self.chips[chip].blocks.close_active(block);
        let valid_bitmap = self.chips[chip].blocks.meta(block).valid;
        for page in 0..self.cfg.pages_per_block as u16 {
            if valid_bitmap & (1u64 << page) == 0 {
                continue;
            }
            let src_ppn = self.ppn_of(chip, block, page);
            let lpn = self.p2l.get(src_ppn as usize);
            debug_assert_ne!(lpn, UNMAPPED, "valid page without reverse mapping");
            let Some((nb, np)) = self.try_allocate_raw(chip) else {
                self.degrade("no space left to migrate off a failing block");
                return;
            };
            tl.read(&self.cfg, chip, at, Origin::Gc);
            // New copy is safe; move the mapping and drop the old page.
            let dst_ppn = self.ppn_of(chip, nb, np);
            self.chips[chip].blocks.invalidate(block, page);
            self.p2l.set(dst_ppn as usize, lpn);
            self.l2p.set(lpn as usize, dst_ppn);
            tl.program(&self.cfg, chip, at, Origin::Gc);
            self.fstats.remapped_pages += 1;
        }
        self.chips[chip].blocks.retire(block);
        self.fstats.retired_blocks += 1;
        self.refresh_health();
    }

    /// Enter degraded mode (or escalate, per configuration) when any chip's
    /// free blocks fall below the reliability floor. No-op with the default
    /// floor of 0.
    fn refresh_health(&mut self) {
        if self.health == Health::ReadOnly {
            return;
        }
        let floor = self.faults.config().read_only_free_floor;
        if floor == 0 {
            return;
        }
        if self.chips.iter().any(|c| c.blocks.free_count() < floor) {
            self.degrade("free blocks fell below the reliability floor");
        }
    }

    /// Transition to read-only, or panic under [`DegradedMode::Escalate`].
    fn degrade(&mut self, why: &str) {
        match self.faults.config().on_exhaustion {
            DegradedMode::ReadOnly => self.health = Health::ReadOnly,
            DegradedMode::Escalate => panic!("flash device degraded: {why}"),
        }
    }

    /// Program one host/flush page on `chip` at `at`. Returns completion ns.
    fn program_one(&mut self, chip: usize, lpn: Lpn, at: u64, tl: &mut FlashTimeline) -> u64 {
        assert!(lpn < self.logical_pages(), "LPN {lpn} beyond device");
        self.maybe_gc(chip, at, tl);
        if self.faults.is_inert() {
            self.invalidate_lpn(lpn);
            self.allocate_mapped(chip, lpn);
            return tl.program(&self.cfg, chip, at, Origin::User).end_ns;
        }
        // Fault path: keep the old copy mapped until the new program has
        // succeeded (write-then-invalidate, like a real FTL) so a failed
        // or rejected write never loses the previous version.
        loop {
            let Some((block, page)) = self.try_allocate_raw(chip) else {
                // Out of space while faults are live: retirements may have
                // eaten the overprovisioning GC needs, so this is a device
                // failure, not a configuration error.
                self.degrade("chip out of space after block retirements");
                self.fstats.rejected_write_pages += 1;
                return at;
            };
            let done = tl.program(&self.cfg, chip, at, Origin::User).end_ns;
            let wear = self.chips[chip].blocks.meta(block).erase_count;
            if !self.faults.program_fails(wear) {
                // Commit: map the new page, then invalidate the old copy.
                let old = self.l2p.get(lpn as usize);
                let ppn = self.ppn_of(chip, block, page);
                self.l2p.set(lpn as usize, ppn);
                self.p2l.set(ppn as usize, lpn as u32);
                if old != UNMAPPED {
                    self.invalidate_ppn(old);
                }
                return done;
            }
            // Program failure: the attempt was charged to the timeline but
            // the data never landed. Drop the dead (never-mapped) page,
            // retire the block — migrating its valid pages, possibly
            // including the old copy of this very LPN — and try elsewhere.
            self.fstats.program_failures += 1;
            self.chips[chip].blocks.invalidate(block, page);
            self.retire_block(chip, block, at, tl);
            self.maybe_gc(chip, at, tl);
        }
    }

    /// [`Ftl::program_one`] for the zero-fault path of a batch: identical
    /// timeline ops in identical order, but the GC re-check is skipped while
    /// this batch has already established that the chip's free-block count
    /// sits at/above the floor and nothing has moved it since.
    ///
    /// Exactness: between two programs on a chip, `free_count` only changes
    /// when an allocation opens a fresh block (GC runs to completion inside
    /// `maybe_gc`; invalidations never free blocks), and the floor itself
    /// only changes when a block retires (impossible on the inert path). So
    /// when the post-check state was `free >= floor` and `free_count` is
    /// unchanged, `maybe_gc` is provably a no-op and skipping it cannot
    /// alter which GC runs happen or when — the pinned golden counters and
    /// response times stay bit-identical.
    #[inline]
    fn program_one_batched(&mut self, chip: usize, lpn: Lpn, at: u64, tl: &mut FlashTimeline) -> u64 {
        assert!(lpn < self.logical_pages(), "LPN {lpn} beyond device");
        if !self.gc_checked[chip] {
            self.maybe_gc(chip, at, tl);
            // Only mark the chip safe when it ended above the floor; under
            // space pressure (free below floor with no reclaimable victim)
            // the unbatched path re-checks before every program — later
            // invalidations of this very batch can mint a victim — so the
            // batched path must re-check too.
            self.gc_checked[chip] = self.chips[chip].blocks.free_count() >= self.gc_floor(chip);
        }
        self.invalidate_lpn(lpn);
        let free_before = self.chips[chip].blocks.free_count();
        self.allocate_mapped(chip, lpn);
        if self.chips[chip].blocks.free_count() != free_before {
            // The allocation opened a fresh block: GC gets its usual look
            // before the next program on this chip.
            self.gc_checked[chip] = false;
        }
        tl.program(&self.cfg, chip, at, Origin::User).end_ns
    }

    /// Flush a batch of pages at `at` with the given placement policy.
    /// Returns the completion time of the slowest page (the batch finish).
    ///
    /// On the zero-fault path the batch is walked with per-chip GC state
    /// hoisted out of the page loop (`program_one_batched`); the
    /// timeline operations themselves stay strictly in per-page order —
    /// reordering them per chip would change channel-bus interleaving and
    /// with it every completion time (see DESIGN.md).
    pub fn write_pages(
        &mut self,
        lpns: &[Lpn],
        at: u64,
        placement: Placement,
        tl: &mut FlashTimeline,
    ) -> u64 {
        if lpns.is_empty() {
            return at;
        }
        self.refresh_health();
        if self.health == Health::ReadOnly {
            // Degraded: reject the whole batch, serve no flash traffic.
            self.fstats.rejected_write_pages += lpns.len() as u64;
            return at;
        }
        // Overlap the mapping-table misses of the whole batch: every page
        // walk starts with an `l2p` load whose line is almost never
        // resident (the table spans ~134 MB at paper geometry), then
        // invalidates the old physical page's block metadata. Two passes
        // warm both levels — the second pass re-reads `l2p` (now
        // L1-resident) to issue the dependent block-meta prefetches early.
        for &lpn in lpns {
            self.l2p.prefetch(lpn as usize);
        }
        for &lpn in lpns {
            // Out-of-range LPNs still hit the per-page assert below; the
            // warm-up pass must not touch (or panic on) them first.
            if (lpn as usize) < self.l2p.len() {
                let old = self.l2p.get(lpn as usize);
                if old != UNMAPPED {
                    let chip = self.chip_of_ppn(old);
                    let (block, _) = self.block_page_of_ppn(old);
                    self.chips[chip].blocks.prefetch_meta(block);
                }
            }
        }
        let chips = self.chips.len();
        let mut done = at;
        match placement {
            Placement::Striped if self.faults.is_inert() => {
                self.gc_checked.iter_mut().for_each(|c| *c = false);
                let mut cursor = self.cursor;
                for &lpn in lpns {
                    let chip = cursor;
                    cursor += 1;
                    if cursor == chips {
                        cursor = 0;
                    }
                    done = done.max(self.program_one_batched(chip, lpn, at, tl));
                }
                self.cursor = cursor;
            }
            Placement::Striped => {
                for &lpn in lpns {
                    let chip = self.cursor;
                    self.cursor = (self.cursor + 1) % chips;
                    done = done.max(self.program_one(chip, lpn, at, tl));
                }
            }
            Placement::SingleBlock => {
                let chip = self.cursor;
                self.cursor = (self.cursor + 1) % chips;
                if self.faults.is_inert() {
                    self.gc_checked[chip] = false;
                    for &lpn in lpns {
                        done = done.max(self.program_one_batched(chip, lpn, at, tl));
                    }
                } else {
                    for &lpn in lpns {
                        done = done.max(self.program_one(chip, lpn, at, tl));
                    }
                }
            }
        }
        done
    }

    /// Service a host read of `lpn` at `at`. Returns completion ns. Reads of
    /// unmapped LPNs are timed like ordinary reads (chip chosen by address
    /// hash) and counted in [`FtlStats::unmapped_reads`].
    pub fn read_page(&mut self, lpn: Lpn, at: u64, tl: &mut FlashTimeline) -> u64 {
        assert!(lpn < self.logical_pages(), "LPN {lpn} beyond device");
        let ppn = self.l2p.get(lpn as usize);
        let (chip, wear) = if ppn == UNMAPPED {
            self.stats.unmapped_reads += 1;
            ((lpn % self.chips.len() as u64) as usize, 0)
        } else {
            let chip = self.chip_of_ppn(ppn);
            let wear = if self.faults.is_inert() {
                0 // skip the block-metadata lookup on the zero-fault path
            } else {
                let (block, _) = self.block_page_of_ppn(ppn);
                self.chips[chip].blocks.meta(block).erase_count
            };
            (chip, wear)
        };
        let done = tl.read(&self.cfg, chip, at, Origin::User).end_ns;
        if !self.faults.read_fails(wear) {
            return done;
        }
        // Raw-bit-error path: each retry is a full flash read issued after
        // the failed attempt, re-occupying the chip and bus timelines — this
        // is how fault injection degrades tail latency realistically.
        self.fstats.read_faults += 1;
        let first_attempt = done;
        let mut done = done;
        let mut corrected = false;
        for _ in 0..self.faults.config().max_read_retries {
            self.fstats.read_retries += 1;
            done = tl.read(&self.cfg, chip, at, Origin::User).end_ns;
            if !self.faults.read_fails(wear) {
                corrected = true;
                break;
            }
        }
        if !corrected {
            // ECC gave up; a real drive returns a media error. The
            // simulator serves the request (there is no data payload to
            // corrupt) and counts it.
            self.fstats.read_uncorrectable += 1;
        }
        self.obs.retry_busy_ns += done.saturating_sub(first_attempt) as u128;
        done
    }

    /// [`Ftl::write_pages`] with a structured completion: the finish time
    /// plus how many pages actually reached flash. A [`Health::ReadOnly`]
    /// device rejects the whole batch and reports `flash_ops == 0`.
    pub fn write_pages_completion(
        &mut self,
        lpns: &[Lpn],
        at: u64,
        placement: Placement,
        tl: &mut FlashTimeline,
    ) -> IoCompletion {
        let before = tl.counters().user_programs;
        let done_ns = self.write_pages(lpns, at, placement, tl);
        IoCompletion {
            done_ns,
            service_ns: done_ns.saturating_sub(at),
            flash_ops: tl.counters().user_programs - before,
        }
    }

    /// Hint that `lpn`'s forward mapping is about to be consulted. Lets a
    /// host overlap the mapping-table miss with its own per-page work
    /// before calling [`Ftl::read_page`]; purely a cache hint, no effect
    /// on behaviour.
    #[inline]
    pub fn prefetch_lpn(&self, lpn: Lpn) {
        self.l2p.prefetch(lpn as usize);
    }

    /// Chip currently backing `lpn`, or `None` when the LPN is unmapped
    /// (an unmapped read is served without touching any chip). This is the
    /// chip attribution the host's outstanding-read ledger keys on.
    #[inline]
    pub fn chip_of_lpn(&self, lpn: Lpn) -> Option<usize> {
        if lpn as usize >= self.l2p.len() {
            return None;
        }
        let ppn = self.l2p.get(lpn as usize);
        if ppn == UNMAPPED {
            None
        } else {
            Some(self.chip_of_ppn(ppn))
        }
    }

    /// [`Ftl::read_page`] with a structured completion; `flash_ops` counts
    /// the flash reads actually issued, including fault-injection retries.
    pub fn read_page_completion(&mut self, lpn: Lpn, at: u64, tl: &mut FlashTimeline) -> IoCompletion {
        let before = tl.counters().user_reads;
        let done_ns = self.read_page(lpn, at, tl);
        IoCompletion {
            done_ns,
            service_ns: done_ns.saturating_sub(at),
            flash_ops: tl.counters().user_reads - before,
        }
    }

    /// Debug-grade consistency check: every l2p entry has a matching p2l
    /// entry and a valid bit set; live counts agree. O(total pages) — tests
    /// only.
    #[doc(hidden)]
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut mapped = 0u64;
        for lpn in 0..self.l2p.len() {
            let ppn = self.l2p.get(lpn);
            if ppn == UNMAPPED {
                continue;
            }
            mapped += 1;
            if self.p2l.get(ppn as usize) != lpn as u32 {
                return Err(format!("l2p/p2l mismatch at lpn {lpn}"));
            }
            let chip = self.chip_of_ppn(ppn);
            let (block, page) = self.block_page_of_ppn(ppn);
            let meta = self.chips[chip].blocks.meta(block);
            if meta.valid & (1u64 << page) == 0 {
                return Err(format!("mapped page not valid: lpn {lpn}"));
            }
        }
        let live = self.live_pages();
        if mapped != live {
            return Err(format!("mapped {mapped} != live {live}"));
        }
        for (c, domain) in self.chips.iter().enumerate() {
            for b in 0..domain.blocks.block_count() as u32 {
                let meta = domain.blocks.meta(b);
                if meta.state == BlockState::Bad && meta.valid != 0 {
                    return Err(format!("bad block {b} on chip {c} still holds live pages"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Ftl, FlashTimeline, SsdConfig) {
        let cfg = SsdConfig::tiny();
        (Ftl::new(&cfg), FlashTimeline::new(&cfg), cfg)
    }

    #[test]
    fn write_then_read_maps_page() {
        let (mut ftl, mut tl, _cfg) = setup();
        assert!(!ftl.is_mapped(7));
        ftl.write_pages(&[7], 0, Placement::Striped, &mut tl);
        assert!(ftl.is_mapped(7));
        let done = ftl.read_page(7, 0, &mut tl);
        assert!(done > 0);
        assert_eq!(tl.counters().user_reads, 1);
        ftl.check_consistency().unwrap();
    }

    #[test]
    fn overwrite_invalidates_old_page() {
        let (mut ftl, mut tl, _cfg) = setup();
        ftl.write_pages(&[3], 0, Placement::Striped, &mut tl);
        assert_eq!(ftl.live_pages(), 1);
        ftl.write_pages(&[3], 0, Placement::Striped, &mut tl);
        // Still exactly one live page; the old copy is invalid.
        assert_eq!(ftl.live_pages(), 1);
        assert_eq!(tl.counters().user_programs, 2);
        ftl.check_consistency().unwrap();
    }

    #[test]
    fn striped_batch_faster_than_single_block() {
        let cfg = SsdConfig::paper();
        let mut ftl_s = Ftl::new(&cfg);
        let mut tl_s = FlashTimeline::new(&cfg);
        let lpns: Vec<Lpn> = (0..8).collect();
        let striped_done = ftl_s.write_pages(&lpns, 0, Placement::Striped, &mut tl_s);

        let mut ftl_b = Ftl::new(&cfg);
        let mut tl_b = FlashTimeline::new(&cfg);
        let block_done = ftl_b.write_pages(&lpns, 0, Placement::SingleBlock, &mut tl_b);

        // 8 pages over 8+ chips: ~1 program latency. Same chip: ~8x.
        assert!(block_done > striped_done * 4, "{block_done} vs {striped_done}");
    }

    #[test]
    fn single_block_batches_rotate_chips_between_evictions() {
        let (mut ftl, mut tl, _cfg) = setup();
        ftl.write_pages(&[0, 1], 0, Placement::SingleBlock, &mut tl);
        let c0 = ftl.chip_of_ppn(ftl.l2p.get(0));
        assert_eq!(c0, ftl.chip_of_ppn(ftl.l2p.get(1)), "batch stays on one chip");
        ftl.write_pages(&[2], 0, Placement::SingleBlock, &mut tl);
        let c1 = ftl.chip_of_ppn(ftl.l2p.get(2));
        assert_ne!(c0, c1, "next batch should move to the next chip");
    }

    #[test]
    fn gc_triggers_and_reclaims_space() {
        let (mut ftl, mut tl, cfg) = setup();
        // tiny: 2 chips x 32 blocks x 8 pages = 512 physical pages.
        // Hammer 64 LPNs with overwrites until GC must have run.
        let mut writes = 0u64;
        for round in 0..40 {
            for lpn in 0..64u64 {
                ftl.write_pages(&[lpn], round * 1_000_000, Placement::Striped, &mut tl);
                writes += 1;
            }
        }
        assert_eq!(tl.counters().user_programs, writes);
        assert!(ftl.stats().gc_runs > 0, "GC never ran");
        assert!(tl.counters().erases > 0);
        // Free-block floor is respected (or nothing reclaimable remained).
        let floor = cfg.gc_free_blocks_floor();
        for free in ftl.free_blocks_per_chip() {
            assert!(free >= floor.saturating_sub(1), "free {free} below floor {floor}");
        }
        assert_eq!(ftl.live_pages(), 64);
        ftl.check_consistency().unwrap();
    }

    #[test]
    fn gc_preserves_data_mappings() {
        let (mut ftl, mut tl, _cfg) = setup();
        // Write a stable set once, then churn a different set to force GC.
        let stable: Vec<Lpn> = (100..150).collect();
        ftl.write_pages(&stable, 0, Placement::Striped, &mut tl);
        for round in 0..60 {
            for lpn in 0..32u64 {
                ftl.write_pages(&[lpn], round, Placement::Striped, &mut tl);
            }
        }
        assert!(ftl.stats().gc_runs > 0);
        for &lpn in &stable {
            assert!(ftl.is_mapped(lpn), "GC lost mapping for {lpn}");
        }
        ftl.check_consistency().unwrap();
    }

    #[test]
    fn gc_migration_counted_separately() {
        let (mut ftl, mut tl, _cfg) = setup();
        ftl.write_pages(&(200..232).collect::<Vec<_>>(), 0, Placement::Striped, &mut tl);
        let user_before = tl.counters().user_programs;
        for round in 0..60 {
            for lpn in 0..32u64 {
                ftl.write_pages(&[lpn], round, Placement::Striped, &mut tl);
            }
        }
        let c = tl.counters();
        assert_eq!(c.user_programs, user_before + 60 * 32);
        assert_eq!(c.gc_programs, ftl.stats().gc_migrated_pages);
        assert!(c.write_amplification() >= 1.0);
    }

    #[test]
    fn gc_obs_accumulates_busy_time() {
        let (mut ftl, mut tl, _cfg) = setup();
        assert_eq!(ftl.obs().gc_busy_ns, 0);
        for round in 0..40 {
            for lpn in 0..64u64 {
                ftl.write_pages(&[lpn], round * 1_000_000, Placement::Striped, &mut tl);
            }
        }
        assert!(ftl.stats().gc_runs > 0);
        let obs = ftl.obs();
        assert!(obs.gc_busy_ns > 0, "GC ran but no busy time recorded");
        assert!(obs.gc_max_pause_ns > 0);
        assert!(obs.gc_busy_ns >= obs.gc_max_pause_ns as u128);
        // Every GC round includes at least its erase.
        assert!(
            obs.gc_busy_ns
                >= ftl.stats().gc_runs as u128 * ftl.config().erase_latency_ns as u128
        );
    }

    #[test]
    fn free_blocks_total_matches_per_chip_sum() {
        let (mut ftl, mut tl, _cfg) = setup();
        let before = ftl.free_blocks_total();
        assert_eq!(before, ftl.free_blocks_per_chip().iter().sum::<usize>());
        ftl.write_pages(&(0..64).collect::<Vec<_>>(), 0, Placement::Striped, &mut tl);
        let after = ftl.free_blocks_total();
        assert!(after < before, "allocations must consume free blocks");
        assert_eq!(after, ftl.free_blocks_per_chip().iter().sum::<usize>());
    }

    #[test]
    fn unmapped_read_is_timed_and_counted() {
        let (mut ftl, mut tl, cfg) = setup();
        let done = ftl.read_page(99, 0, &mut tl);
        assert_eq!(done, cfg.read_latency_ns + cfg.page_transfer_ns());
        assert_eq!(ftl.stats().unmapped_reads, 1);
    }

    #[test]
    fn empty_batch_is_noop() {
        let (mut ftl, mut tl, _cfg) = setup();
        assert_eq!(ftl.write_pages(&[], 42, Placement::Striped, &mut tl), 42);
        assert_eq!(tl.counters().user_programs, 0);
    }

    #[test]
    #[should_panic(expected = "beyond device")]
    fn lpn_out_of_range_panics() {
        let (mut ftl, mut tl, cfg) = setup();
        let bad = cfg.total_pages();
        ftl.write_pages(&[bad], 0, Placement::Striped, &mut tl);
    }

    #[test]
    fn wear_increases_under_churn() {
        let (mut ftl, mut tl, _cfg) = setup();
        for round in 0..100 {
            for lpn in 0..32u64 {
                ftl.write_pages(&[lpn], round, Placement::Striped, &mut tl);
            }
        }
        assert!(ftl.max_erase_count() >= 1);
    }

    // ------------------------------------------------------------------
    // Fault injection / reliability
    // ------------------------------------------------------------------

    use reqblock_flash::PPM_SCALE;

    fn setup_faulty(fc: FaultConfig) -> (Ftl, FlashTimeline, SsdConfig) {
        let cfg = SsdConfig::tiny();
        (Ftl::with_faults(&cfg, fc), FlashTimeline::new(&cfg), cfg)
    }

    #[test]
    fn zero_fault_config_matches_plain_ftl() {
        let cfg = SsdConfig::tiny();
        let mut plain = Ftl::new(&cfg);
        let mut tl_a = FlashTimeline::new(&cfg);
        let mut faulty = Ftl::with_faults(&cfg, FaultConfig::default());
        let mut tl_b = FlashTimeline::new(&cfg);
        for round in 0..40u64 {
            for lpn in 0..64u64 {
                let a = plain.write_pages(&[lpn], round * 1_000, Placement::Striped, &mut tl_a);
                let b = faulty.write_pages(&[lpn], round * 1_000, Placement::Striped, &mut tl_b);
                assert_eq!(a, b);
            }
        }
        assert_eq!(plain.stats(), faulty.stats());
        assert_eq!(tl_a.counters(), tl_b.counters());
        assert_eq!(*faulty.fault_stats(), FaultStats::default());
        assert_eq!(faulty.health(), Health::Healthy);
    }

    #[test]
    fn program_failures_retire_blocks_and_remap_pages() {
        // 2% program-fail rate: a handful of failures over 640 programs,
        // without retiring so many blocks the tiny drive dies.
        let fc = FaultConfig::with_rates(1234, 0, 20_000, 0);
        let (mut ftl, mut tl, _cfg) = setup_faulty(fc);
        for round in 0..10u64 {
            for lpn in 0..64u64 {
                ftl.write_pages(&[lpn], round * 1_000, Placement::Striped, &mut tl);
            }
        }
        let fs = *ftl.fault_stats();
        assert!(fs.program_failures > 0, "no program failure in 640 writes at 2%");
        assert_eq!(fs.retired_blocks as usize, ftl.bad_blocks_total());
        assert!(fs.retired_blocks > 0);
        // Every write ultimately landed: all 64 LPNs mapped, nothing lost.
        for lpn in 0..64u64 {
            assert!(ftl.is_mapped(lpn), "LPN {lpn} lost after program failures");
        }
        assert_eq!(ftl.live_pages(), 64);
        ftl.check_consistency().unwrap();
    }

    #[test]
    fn erase_failures_retire_blocks_without_losing_data() {
        // Erases fail 5% of the time; force heavy GC churn.
        let fc = FaultConfig::with_rates(77, 0, 0, 50_000);
        let (mut ftl, mut tl, _cfg) = setup_faulty(fc);
        for round in 0..40u64 {
            for lpn in 0..64u64 {
                ftl.write_pages(&[lpn], round * 1_000, Placement::Striped, &mut tl);
            }
        }
        let fs = *ftl.fault_stats();
        assert!(fs.erase_failures > 0, "no erase failure despite GC churn");
        assert_eq!(fs.retired_blocks, fs.erase_failures);
        assert_eq!(fs.retired_blocks as usize, ftl.bad_blocks_total());
        // GC kept running around the bad blocks and data survived.
        assert_eq!(ftl.live_pages(), 64);
        ftl.check_consistency().unwrap();
    }

    #[test]
    fn read_retries_cost_extra_flash_reads() {
        let fc = FaultConfig::with_rates(9, 300_000, 0, 0);
        let (mut ftl, mut tl, _cfg) = setup_faulty(fc);
        ftl.write_pages(&(0..32).collect::<Vec<_>>(), 0, Placement::Striped, &mut tl);
        let mut slow_reads = 0u64;
        let baseline = {
            let cfg = ftl.config();
            cfg.read_latency_ns + cfg.page_transfer_ns()
        };
        for lpn in 0..32u64 {
            // Arrivals a second apart: the chips are idle at each read, so
            // any extra latency is retry serialization, not queueing.
            let at = (lpn + 1) * 1_000_000_000;
            let done = ftl.read_page(lpn, at, &mut tl);
            if done > at + baseline {
                slow_reads += 1;
            }
        }
        let fs = *ftl.fault_stats();
        assert!(fs.read_faults > 0, "no read fault in 32 reads at 30%");
        assert!(fs.read_retries >= fs.read_faults);
        // Every faulted read re-occupied the timeline: observable latency.
        assert_eq!(slow_reads, fs.read_faults);
        assert_eq!(tl.counters().user_reads, 32 + fs.read_retries);
        // Retry delay is observable for attribution: at least one full
        // read latency per faulted read, none on a fault-free run.
        assert!(
            ftl.obs().retry_busy_ns >= fs.read_faults as u128 * baseline as u128,
            "retry_busy_ns {} below {} faults x {baseline} ns",
            ftl.obs().retry_busy_ns,
            fs.read_faults
        );
    }

    #[test]
    fn uncorrectable_reads_counted_after_retry_budget() {
        // Reads always fail: 1 fault + max_read_retries retries each, all
        // uncorrectable.
        let fc = FaultConfig::with_rates(5, PPM_SCALE, 0, 0);
        let (mut ftl, mut tl, _cfg) = setup_faulty(fc);
        ftl.write_pages(&[1, 2, 3], 0, Placement::Striped, &mut tl);
        for lpn in [1u64, 2, 3] {
            ftl.read_page(lpn, 0, &mut tl);
        }
        let fs = *ftl.fault_stats();
        assert_eq!(fs.read_faults, 3);
        assert_eq!(fs.read_uncorrectable, 3);
        assert_eq!(fs.read_retries, 3 * ftl.fault_config().max_read_retries as u64);
    }

    #[test]
    fn free_floor_degrades_to_read_only_but_serves_reads() {
        // Zero fault rates; degradation comes purely from the free-block
        // floor. tiny chip = 32 blocks; floor 30 trips after a few blocks
        // open for writing.
        let fc = FaultConfig { read_only_free_floor: 30, ..FaultConfig::default() };
        let (mut ftl, mut tl, _cfg) = setup_faulty(fc);
        let mut lpn = 0u64;
        while !ftl.is_read_only() {
            ftl.write_pages(&[lpn], 0, Placement::Striped, &mut tl);
            lpn += 1;
            assert!(lpn < 400, "device never degraded");
        }
        assert_eq!(ftl.health(), Health::ReadOnly);
        let mapped_before = ftl.live_pages();
        let programs_before = tl.counters().user_programs;
        let rejected_before = ftl.fault_stats().rejected_write_pages;
        // Writes are rejected: no time charged, no flash traffic, counted.
        let done = ftl.write_pages(&[500, 501], 5_000, Placement::Striped, &mut tl);
        assert_eq!(done, 5_000);
        assert_eq!(tl.counters().user_programs, programs_before);
        assert_eq!(ftl.fault_stats().rejected_write_pages, rejected_before + 2);
        assert_eq!(ftl.live_pages(), mapped_before);
        assert!(!ftl.is_mapped(500));
        // Reads of existing data are still served, with normal timing.
        let r = ftl.read_page(0, 10_000, &mut tl);
        assert!(r > 10_000);
        assert!(ftl.is_mapped(0));
        ftl.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "flash device degraded")]
    fn escalate_mode_panics_at_the_floor() {
        let fc = FaultConfig {
            read_only_free_floor: 30,
            on_exhaustion: DegradedMode::Escalate,
            ..FaultConfig::default()
        };
        let (mut ftl, mut tl, _cfg) = setup_faulty(fc);
        for lpn in 0..512u64 {
            ftl.write_pages(&[lpn], 0, Placement::Striped, &mut tl);
        }
    }

    #[test]
    fn gc_floor_shrinks_with_retired_blocks() {
        // Retire blocks via certain program failure on one chip, then check
        // the floor math follows the usable count.
        let fc = FaultConfig::with_rates(3, 0, 0, 0);
        let (ftl, _tl, cfg) = setup_faulty(fc);
        assert_eq!(ftl.gc_floor(0), cfg.gc_free_blocks_floor());
        let mut ftl = ftl;
        // Manually retire two blocks on chip 0 through the public surface:
        // fill them, invalidate them, and retire via erase-failure path is
        // indirect — use ChipBlocks directly instead.
        let dom = &mut ftl.chips[0];
        for _ in 0..2 {
            let mut filled = None;
            for _ in 0..cfg.pages_per_block {
                let (b, p) = dom.blocks.allocate_page().unwrap();
                dom.blocks.invalidate(b, p);
                filled = Some(b);
            }
            dom.blocks.retire(filled.unwrap());
        }
        assert_eq!(dom.blocks.bad_count(), 2);
        // usable 30 * 0.10 -> ceil(3.0) = 3 vs the healthy floor of 4.
        assert_eq!(ftl.gc_floor(0), 3);
        assert_eq!(cfg.gc_free_blocks_floor(), 4);
    }

    #[test]
    fn deterministic_fault_stream_under_same_seed() {
        let fc = FaultConfig::with_rates(2024, 20_000, 10_000, 10_000);
        let run = || {
            let (mut ftl, mut tl, _cfg) = setup_faulty(fc.clone());
            let mut last = 0;
            for round in 0..20u64 {
                for lpn in 0..64u64 {
                    last = ftl.write_pages(&[lpn], round * 1_000, Placement::Striped, &mut tl);
                    last = last.max(ftl.read_page(lpn / 2, round * 1_000, &mut tl));
                }
            }
            (*ftl.fault_stats(), *tl.counters(), last)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed+config must reproduce faults exactly");
        assert!(a.0.read_faults > 0 || a.0.program_failures > 0);
    }
}
