//! Per-chip physical block state.
//!
//! Each chip owns `blocks_per_chip` blocks. A block is either **free**
//! (erased, on the free list), **active** (the chip's current append point),
//! **full** (append pointer exhausted; candidate for GC once pages turn
//! invalid), or **bad** (retired after a program/erase failure; permanently
//! out of rotation). Valid pages are tracked in a per-block `u64` bitmap,
//! which is why the simulator caps `pages_per_block` at 64 (the paper's
//! value).

use reqblock_flash::SsdConfig;

/// Lifecycle state of a block (derived, stored for cheap assertions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// Erased and on the free list.
    Free,
    /// Current append point of its chip.
    Active,
    /// All pages programmed at least once since the last erase.
    Full,
    /// Retired after a program or erase failure; never allocated, GC'd or
    /// erased again. Bad blocks permanently shrink the chip's
    /// overprovisioning.
    Bad,
}

/// Metadata of one physical block.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    /// Bitmap of valid pages (bit `i` = page `i` holds live data).
    pub valid: u64,
    /// Next page index to program (append pointer).
    pub next_page: u16,
    /// Number of erases this block has seen (wear).
    pub erase_count: u32,
    /// Lifecycle state.
    pub state: BlockState,
}

impl BlockMeta {
    fn fresh() -> Self {
        Self { valid: 0, next_page: 0, erase_count: 0, state: BlockState::Free }
    }

    /// Number of valid pages.
    #[inline]
    pub fn valid_count(&self) -> u32 {
        self.valid.count_ones()
    }

    /// Number of invalid pages (programmed but superseded).
    #[inline]
    pub fn invalid_count(&self) -> u32 {
        self.next_page as u32 - self.valid_count()
    }
}

/// Block manager for a single chip.
#[derive(Debug, Clone)]
pub struct ChipBlocks {
    blocks: Vec<BlockMeta>,
    free: Vec<u32>,
    /// Current append block, if one is open.
    active: Option<u32>,
    /// Blocks retired as bad (cached count; the states are authoritative).
    bad: usize,
    pages_per_block: u16,
}

impl ChipBlocks {
    /// All blocks free, no active block.
    pub fn new(cfg: &SsdConfig) -> Self {
        let n = cfg.blocks_per_chip();
        Self {
            blocks: vec![BlockMeta::fresh(); n],
            // Pop from the back; seed in reverse so block 0 is used first.
            free: (0..n as u32).rev().collect(),
            active: None,
            bad: 0,
            pages_per_block: cfg.pages_per_block as u16,
        }
    }

    /// Number of blocks currently free.
    #[inline]
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// The active block index, if any.
    #[inline]
    pub fn active_block(&self) -> Option<u32> {
        self.active
    }

    /// Immutable access to a block's metadata.
    #[inline]
    pub fn meta(&self, block: u32) -> &BlockMeta {
        &self.blocks[block as usize]
    }

    /// Hint that `block`'s metadata is about to be accessed. The per-chip
    /// metadata arrays total ~12 MB at paper geometry, so invalidations of
    /// random old blocks are DRAM-latency-bound without a warm-up; purely a
    /// cache hint, no architectural effect.
    #[inline]
    pub fn prefetch_meta(&self, block: u32) {
        #[cfg(target_arch = "x86_64")]
        if (block as usize) < self.blocks.len() {
            // SAFETY: in-bounds pointer, never dereferenced.
            unsafe {
                core::arch::x86_64::_mm_prefetch(
                    self.blocks.as_ptr().add(block as usize) as *const i8,
                    core::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
    }

    /// Total number of blocks on the chip.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Allocate the next free page on the chip, opening a new active block
    /// from the free list when needed.
    ///
    /// Returns `(block, page)` or `None` if no free block is available and
    /// the active block is exhausted (the caller must GC first).
    pub fn allocate_page(&mut self) -> Option<(u32, u16)> {
        loop {
            match self.active {
                Some(b) => {
                    let meta = &mut self.blocks[b as usize];
                    if meta.next_page < self.pages_per_block {
                        let page = meta.next_page;
                        meta.next_page += 1;
                        meta.valid |= 1u64 << page;
                        if meta.next_page == self.pages_per_block {
                            meta.state = BlockState::Full;
                            self.active = None;
                        }
                        return Some((b, page));
                    }
                    // Defensive: an active block should have been closed when
                    // its last page was taken.
                    meta.state = BlockState::Full;
                    self.active = None;
                }
                None => {
                    let b = self.free.pop()?;
                    debug_assert_eq!(self.blocks[b as usize].state, BlockState::Free);
                    self.blocks[b as usize].state = BlockState::Active;
                    self.active = Some(b);
                }
            }
        }
    }

    /// Mark `(block, page)` invalid (its LPN was overwritten or migrated).
    /// Returns the block's new invalid count.
    pub fn invalidate(&mut self, block: u32, page: u16) -> u32 {
        self.invalidate_with_state(block, page).0
    }

    /// [`ChipBlocks::invalidate`], also returning the block's lifecycle
    /// state from the same metadata access — the per-overwrite FTL path
    /// needs both, and the block array is too large to stay cache-resident
    /// at paper geometry, so one access instead of two matters.
    #[inline]
    pub fn invalidate_with_state(&mut self, block: u32, page: u16) -> (u32, BlockState) {
        let meta = &mut self.blocks[block as usize];
        debug_assert!(page < meta.next_page, "invalidating unwritten page");
        debug_assert!(meta.valid & (1u64 << page) != 0, "double invalidate");
        meta.valid &= !(1u64 << page);
        (meta.invalid_count(), meta.state)
    }

    /// Blocks retired as bad so far.
    #[inline]
    pub fn bad_count(&self) -> usize {
        self.bad
    }

    /// Blocks still in rotation (total minus bad) — the denominator for
    /// overprovisioning/GC-floor math once retirements shrink the pool.
    #[inline]
    pub fn usable_count(&self) -> usize {
        self.blocks.len() - self.bad
    }

    /// Close `block` if it is the chip's current append point, so no
    /// further pages are allocated from it (pre-retirement: the caller is
    /// about to migrate data off a failing block and must not land new
    /// writes on it).
    pub fn close_active(&mut self, block: u32) {
        if self.active == Some(block) {
            self.blocks[block as usize].state = BlockState::Full;
            self.active = None;
        }
    }

    /// Retire `block` as bad after a program or erase failure: it leaves
    /// the allocation rotation permanently (never returned to the free
    /// list, skipped by GC victim validation via its state). The caller
    /// must have migrated or invalidated all its valid pages first.
    pub fn retire(&mut self, block: u32) {
        if self.active == Some(block) {
            self.active = None;
        }
        let meta = &mut self.blocks[block as usize];
        debug_assert_ne!(meta.state, BlockState::Free, "retiring a free block");
        debug_assert_ne!(meta.state, BlockState::Bad, "double retire");
        debug_assert_eq!(meta.valid, 0, "retiring a block with live pages");
        meta.state = BlockState::Bad;
        self.bad += 1;
    }

    /// Erase `block`: clears its bitmap and append pointer, bumps wear, and
    /// returns it to the free list. The block must not be active.
    pub fn erase(&mut self, block: u32) {
        let meta = &mut self.blocks[block as usize];
        debug_assert_ne!(meta.state, BlockState::Free, "erasing a free block");
        debug_assert_ne!(meta.state, BlockState::Bad, "erasing a retired block");
        debug_assert_ne!(Some(block), self.active, "erasing the active block");
        meta.valid = 0;
        meta.next_page = 0;
        meta.erase_count += 1;
        meta.state = BlockState::Free;
        self.free.push(block);
    }

    /// Live (valid) pages across the whole chip. O(blocks); used by tests
    /// and occasional consistency checks only.
    pub fn live_pages(&self) -> u64 {
        self.blocks.iter().map(|b| b.valid_count() as u64).sum()
    }

    /// Maximum erase count across blocks (wear ceiling).
    pub fn max_erase_count(&self) -> u32 {
        self.blocks.iter().map(|b| b.erase_count).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SsdConfig {
        SsdConfig::tiny() // 8 pages/block, 32 blocks/chip
    }

    #[test]
    fn allocation_fills_block_then_moves_on() {
        let cfg = cfg();
        let mut cb = ChipBlocks::new(&cfg);
        let mut seen = Vec::new();
        for _ in 0..cfg.pages_per_block + 1 {
            seen.push(cb.allocate_page().unwrap());
        }
        let first_block = seen[0].0;
        // First 8 allocations come from one block with ascending pages.
        for (i, &(b, p)) in seen.iter().take(8).enumerate() {
            assert_eq!(b, first_block);
            assert_eq!(p as usize, i);
        }
        // Ninth allocation opens a new block at page 0.
        assert_ne!(seen[8].0, first_block);
        assert_eq!(seen[8].1, 0);
        assert_eq!(cb.meta(first_block).state, BlockState::Full);
    }

    #[test]
    fn free_count_decreases_as_blocks_open() {
        let cfg = cfg();
        let mut cb = ChipBlocks::new(&cfg);
        assert_eq!(cb.free_count(), 32);
        cb.allocate_page().unwrap();
        assert_eq!(cb.free_count(), 31);
        // Filling the active block doesn't consume another until needed.
        for _ in 1..8 {
            cb.allocate_page().unwrap();
        }
        assert_eq!(cb.free_count(), 31);
        cb.allocate_page().unwrap();
        assert_eq!(cb.free_count(), 30);
    }

    #[test]
    fn exhaustion_returns_none() {
        let cfg = cfg();
        let mut cb = ChipBlocks::new(&cfg);
        let total_pages = cfg.blocks_per_chip() * cfg.pages_per_block;
        for _ in 0..total_pages {
            assert!(cb.allocate_page().is_some());
        }
        assert!(cb.allocate_page().is_none());
    }

    #[test]
    fn invalidate_and_counts() {
        let cfg = cfg();
        let mut cb = ChipBlocks::new(&cfg);
        let (b, p) = cb.allocate_page().unwrap();
        assert_eq!(cb.meta(b).valid_count(), 1);
        assert_eq!(cb.meta(b).invalid_count(), 0);
        let inv = cb.invalidate(b, p);
        assert_eq!(inv, 1);
        assert_eq!(cb.meta(b).valid_count(), 0);
    }

    #[test]
    fn erase_recycles_block() {
        let cfg = cfg();
        let mut cb = ChipBlocks::new(&cfg);
        // Fill one block completely and invalidate all its pages.
        let mut block = None;
        for _ in 0..8 {
            let (b, p) = cb.allocate_page().unwrap();
            block = Some(b);
            cb.invalidate(b, p);
        }
        let b = block.unwrap();
        let free_before = cb.free_count();
        cb.erase(b);
        assert_eq!(cb.free_count(), free_before + 1);
        assert_eq!(cb.meta(b).erase_count, 1);
        assert_eq!(cb.meta(b).state, BlockState::Free);
        assert_eq!(cb.meta(b).next_page, 0);
    }

    #[test]
    fn live_pages_tracks_valid_bits() {
        let cfg = cfg();
        let mut cb = ChipBlocks::new(&cfg);
        let (b0, p0) = cb.allocate_page().unwrap();
        cb.allocate_page().unwrap();
        assert_eq!(cb.live_pages(), 2);
        cb.invalidate(b0, p0);
        assert_eq!(cb.live_pages(), 1);
    }

    #[test]
    fn retire_removes_block_from_rotation() {
        let cfg = cfg();
        let mut cb = ChipBlocks::new(&cfg);
        // Fill one block and invalidate everything on it.
        let mut block = None;
        for _ in 0..8 {
            let (b, p) = cb.allocate_page().unwrap();
            block = Some(b);
            cb.invalidate(b, p);
        }
        let b = block.unwrap();
        let free_before = cb.free_count();
        cb.retire(b);
        assert_eq!(cb.meta(b).state, BlockState::Bad);
        assert_eq!(cb.bad_count(), 1);
        assert_eq!(cb.usable_count(), 31);
        // Unlike erase, retirement does not replenish the free list.
        assert_eq!(cb.free_count(), free_before);
        // Wear is preserved (the block failed; it was not erased).
        assert_eq!(cb.meta(b).erase_count, 0);
    }

    #[test]
    fn retire_active_block_clears_append_point() {
        let cfg = cfg();
        let mut cb = ChipBlocks::new(&cfg);
        let (b, p) = cb.allocate_page().unwrap();
        assert_eq!(cb.active_block(), Some(b));
        cb.invalidate(b, p);
        cb.retire(b);
        assert_eq!(cb.active_block(), None);
        // The next allocation opens a different block.
        let (b2, _) = cb.allocate_page().unwrap();
        assert_ne!(b2, b);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn erase_of_retired_block_panics_in_debug() {
        let cfg = cfg();
        let mut cb = ChipBlocks::new(&cfg);
        let (b, p) = cb.allocate_page().unwrap();
        cb.invalidate(b, p);
        cb.retire(b);
        cb.erase(b);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)] // the guard is a debug_assert
    fn double_invalidate_panics_in_debug() {
        let cfg = cfg();
        let mut cb = ChipBlocks::new(&cfg);
        let (b, p) = cb.allocate_page().unwrap();
        cb.invalidate(b, p);
        cb.invalidate(b, p);
    }
}
