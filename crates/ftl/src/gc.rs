//! Greedy GC victim selection.
//!
//! The paper's substrate (SSDsim) uses greedy garbage collection: the victim
//! is the full block with the most invalid pages. A linear scan per GC would
//! be O(blocks_per_chip) on every invocation — far too slow at the 32 768
//! blocks/chip of the paper's geometry — so we keep **lazy count buckets**
//! per chip: `buckets[c]` holds the blocks last noted with `c` invalid
//! pages, and a bitmask tracks which buckets are non-empty. Entries are
//! pushed whenever a *full* block's invalid count grows (and when a block
//! fills up with invalid pages already); on `pick` the topmost bucket is
//! scanned, stale entries (erased, active again, or count since grown) are
//! pruned in place, and the largest live block wins.
//!
//! The bucket layout exists for the hot path: `note` runs once per page
//! invalidation — the single hottest call in a write-heavy replay — and a
//! bucket append touches one cache line, where the former binary-heap
//! sift-up walked O(log n) random lines of a millions-entry arena. Victim
//! choice is unchanged: both structures return the maximum `(invalid
//! count, block)` over live full blocks, because every live full block's
//! current count always has a matching entry and stale entries never
//! validate.

use crate::blocks::{BlockState, ChipBlocks};

/// Lazy bucket-indexed picker of the greediest GC victim on one chip.
///
/// Counts are bounded by the per-block page count, which the valid-page
/// bitmap in [`crate::blocks`] already caps at 64 — so the occupancy mask
/// is a single `u128` and the bucket table stays tiny.
#[derive(Debug, Clone, Default)]
pub struct GreedyPicker {
    /// `buckets[c]`: blocks noted while holding `c` invalid pages. May
    /// contain stale entries; `pick` prunes them lazily.
    buckets: Vec<Vec<u32>>,
    /// Bit `c` set ⇔ `buckets[c]` is non-empty.
    occupied: u128,
}

impl GreedyPicker {
    /// Empty picker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty picker; `_capacity` is accepted for API stability but unused —
    /// the per-count buckets grow on demand and individually stay small.
    pub fn with_capacity(_capacity: usize) -> Self {
        Self::default()
    }

    /// Record that full `block` now has `invalid_count` invalid pages.
    /// Call when a full block gains an invalid page, and when a block
    /// transitions to full while already holding invalid pages.
    #[inline]
    pub fn note(&mut self, block: u32, invalid_count: u32) {
        debug_assert!(invalid_count > 0);
        debug_assert!(invalid_count < 128, "count exceeds u128 occupancy mask");
        let c = invalid_count as usize;
        if c >= self.buckets.len() {
            self.buckets.resize_with(c + 1, Vec::new);
        }
        self.buckets[c].push(block);
        self.occupied |= 1u128 << c;
    }

    /// Pop the full block with the most invalid pages (ties to the highest
    /// block number, matching lexicographic `(count, block)` order),
    /// discarding stale entries. Returns `None` when no full block has any
    /// invalid page — i.e. GC cannot reclaim anything.
    pub fn pick(&mut self, blocks: &ChipBlocks) -> Option<u32> {
        while self.occupied != 0 {
            let c = 127 - self.occupied.leading_zeros() as usize;
            let count = c as u32;
            let bucket = &mut self.buckets[c];
            // One pass: prune stale entries, track the largest live block.
            let mut best: Option<usize> = None;
            let mut i = 0;
            while i < bucket.len() {
                let block = bucket[i];
                let meta = blocks.meta(block);
                let live = meta.state == BlockState::Full
                    && meta.invalid_count() == count
                    && count > 0;
                if live {
                    if best.is_none_or(|j| bucket[j] < block) {
                        best = Some(i);
                    }
                    i += 1;
                } else {
                    // swap_remove pulls from the tail, so indices below `i`
                    // (including any recorded `best`) stay valid.
                    bucket.swap_remove(i);
                }
            }
            if let Some(j) = best {
                let block = bucket[j];
                bucket.swap_remove(j);
                if bucket.is_empty() {
                    self.occupied &= !(1u128 << c);
                }
                return Some(block);
            }
            debug_assert!(bucket.is_empty());
            self.occupied &= !(1u128 << c);
        }
        None
    }

    /// Entries currently buffered (including stale ones); for tests.
    pub fn pending_entries(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use reqblock_flash::SsdConfig;

    /// Fill one block completely and return its id.
    fn fill_one_block(cb: &mut ChipBlocks, cfg: &SsdConfig) -> u32 {
        let mut last = 0;
        for _ in 0..cfg.pages_per_block {
            last = cb.allocate_page().unwrap().0;
        }
        last
    }

    #[test]
    fn empty_picker_returns_none() {
        let cfg = SsdConfig::tiny();
        let cb = ChipBlocks::new(&cfg);
        let mut p = GreedyPicker::new();
        assert_eq!(p.pick(&cb), None);
    }

    #[test]
    fn picks_block_with_most_invalid() {
        let cfg = SsdConfig::tiny();
        let mut cb = ChipBlocks::new(&cfg);
        let mut p = GreedyPicker::new();
        let b0 = fill_one_block(&mut cb, &cfg);
        let b1 = fill_one_block(&mut cb, &cfg);
        // b0: 2 invalid pages; b1: 5 invalid pages.
        for page in 0..2 {
            let inv = cb.invalidate(b0, page);
            p.note(b0, inv);
        }
        for page in 0..5 {
            let inv = cb.invalidate(b1, page);
            p.note(b1, inv);
        }
        assert_eq!(p.pick(&cb), Some(b1));
    }

    #[test]
    fn stale_entries_skipped_after_erase() {
        let cfg = SsdConfig::tiny();
        let mut cb = ChipBlocks::new(&cfg);
        let mut p = GreedyPicker::new();
        let b = fill_one_block(&mut cb, &cfg);
        for page in 0..cfg.pages_per_block as u16 {
            let inv = cb.invalidate(b, page);
            p.note(b, inv);
        }
        assert_eq!(p.pick(&cb), Some(b));
        cb.erase(b);
        // All remaining entries for b are stale now.
        assert_eq!(p.pick(&cb), None);
    }

    #[test]
    fn outdated_counts_are_discarded() {
        let cfg = SsdConfig::tiny();
        let mut cb = ChipBlocks::new(&cfg);
        let mut p = GreedyPicker::new();
        let b = fill_one_block(&mut cb, &cfg);
        let inv = cb.invalidate(b, 0);
        p.note(b, inv); // entry (1, b)
        let inv = cb.invalidate(b, 1);
        p.note(b, inv); // entry (2, b)
        // First pick consumes the (2, b) entry.
        assert_eq!(p.pick(&cb), Some(b));
        // The (1, b) entry is now stale (count mismatch) and must be skipped.
        assert_eq!(p.pick(&cb), None);
        assert_eq!(p.pending_entries(), 0);
    }

    #[test]
    fn retired_blocks_never_picked() {
        let cfg = SsdConfig::tiny();
        let mut cb = ChipBlocks::new(&cfg);
        let mut p = GreedyPicker::new();
        let b = fill_one_block(&mut cb, &cfg);
        for page in 0..cfg.pages_per_block as u16 {
            let inv = cb.invalidate(b, page);
            p.note(b, inv);
        }
        cb.retire(b);
        // Entries for the now-bad block are stale: GC must skip it.
        assert_eq!(p.pick(&cb), None);
    }

    #[test]
    fn active_blocks_never_picked() {
        let cfg = SsdConfig::tiny();
        let mut cb = ChipBlocks::new(&cfg);
        let mut p = GreedyPicker::new();
        // Allocate one page -> block is Active.
        let (b, page) = cb.allocate_page().unwrap();
        let inv = cb.invalidate(b, page);
        // A (buggy) caller notes an active block; pick must still skip it.
        p.note(b, inv);
        assert_eq!(p.pick(&cb), None);
    }

    /// The greedy contract, spelled out: at any point, `pick` must return
    /// exactly the lexicographic max `(invalid_count, block)` over full
    /// blocks with at least one invalid page — what an O(n) scan computes.
    fn reference_victim(cb: &ChipBlocks, blocks: u32) -> Option<u32> {
        (0..blocks)
            .filter_map(|b| {
                let meta = cb.meta(b);
                (meta.state == BlockState::Full && meta.invalid_count() > 0)
                    .then(|| (meta.invalid_count(), b))
            })
            .max()
            .map(|(_, b)| b)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Drive the picker exactly as the FTL does — note on each full-
        /// block invalidation, erase the victim right after a successful
        /// pick — with an interleaved random schedule of invalidations and
        /// GC rounds, and check every pick against the O(n) reference scan.
        #[test]
        fn pick_matches_reference_scan(
            ops in proptest::collection::vec((0u8..8, any::<u16>()), 1..400),
        ) {
            let cfg = SsdConfig::tiny();
            let mut cb = ChipBlocks::new(&cfg);
            let mut p = GreedyPicker::new();
            let nblocks = cfg.blocks_per_chip() as u32;
            // Seed: fill half the chip so there are Full blocks to chew on.
            let filled = nblocks / 2;
            for _ in 0..filled {
                fill_one_block(&mut cb, &cfg);
            }
            let ppb = cfg.pages_per_block as u16;
            for (kind, arg) in ops {
                if kind < 6 {
                    // Invalidate a random still-valid page of a random block.
                    let b = u32::from(arg) % filled;
                    let meta = cb.meta(b);
                    if meta.state != BlockState::Full {
                        continue;
                    }
                    let Some(page) = (0..ppb).find(|&pg| meta.valid & (1 << pg) != 0)
                    else {
                        continue;
                    };
                    let inv = cb.invalidate(b, page);
                    p.note(b, inv);
                } else {
                    // GC round: pick, verify against the scan, then erase
                    // the victim like the FTL's reclaim loop does.
                    let expect = reference_victim(&cb, nblocks);
                    let got = p.pick(&cb);
                    prop_assert_eq!(got, expect);
                    if let Some(b) = got {
                        cb.erase(b);
                    }
                }
            }
            // Drain: repeated pick+erase must consume every reclaimable
            // block in exact greedy order, then report empty.
            loop {
                let expect = reference_victim(&cb, nblocks);
                let got = p.pick(&cb);
                prop_assert_eq!(got, expect);
                match got {
                    Some(b) => cb.erase(b),
                    None => break,
                }
            }
        }
    }
}
