//! Greedy GC victim selection.
//!
//! The paper's substrate (SSDsim) uses greedy garbage collection: the victim
//! is the full block with the most invalid pages. A linear scan per GC would
//! be O(blocks_per_chip) on every invocation — far too slow at the 32 768
//! blocks/chip of the paper's geometry — so we keep a **lazy max-heap** per
//! chip keyed on invalid count. Entries are pushed whenever a *full* block's
//! invalid count grows (and when a block fills up with invalid pages
//! already); popped entries are validated against the block's current state
//! and silently discarded when stale. Each invalidation pushes at most one
//! entry, so total heap traffic is bounded by total page invalidations.

use crate::blocks::{BlockState, ChipBlocks};
use std::collections::BinaryHeap;

/// Lazy max-heap picker of the greediest GC victim on one chip.
#[derive(Debug, Clone, Default)]
pub struct GreedyPicker {
    heap: BinaryHeap<(u32, u32)>, // (invalid_count, block)
}

impl GreedyPicker {
    /// Empty picker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that full `block` now has `invalid_count` invalid pages.
    /// Call when a full block gains an invalid page, and when a block
    /// transitions to full while already holding invalid pages.
    #[inline]
    pub fn note(&mut self, block: u32, invalid_count: u32) {
        debug_assert!(invalid_count > 0);
        self.heap.push((invalid_count, block));
    }

    /// Pop the full block with the most invalid pages, discarding stale
    /// entries. Returns `None` when no full block has any invalid page —
    /// i.e. GC cannot reclaim anything.
    pub fn pick(&mut self, blocks: &ChipBlocks) -> Option<u32> {
        while let Some(&(count, block)) = self.heap.peek() {
            let meta = blocks.meta(block);
            let live_entry = meta.state == BlockState::Full
                && meta.invalid_count() == count
                && count > 0;
            if live_entry {
                self.heap.pop();
                return Some(block);
            }
            // Stale: the block was erased, is active again, or its count grew
            // (in which case a fresher entry exists deeper in the heap order).
            self.heap.pop();
        }
        None
    }

    /// Entries currently buffered (including stale ones); for tests.
    pub fn pending_entries(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqblock_flash::SsdConfig;

    /// Fill one block completely and return its id.
    fn fill_one_block(cb: &mut ChipBlocks, cfg: &SsdConfig) -> u32 {
        let mut last = 0;
        for _ in 0..cfg.pages_per_block {
            last = cb.allocate_page().unwrap().0;
        }
        last
    }

    #[test]
    fn empty_picker_returns_none() {
        let cfg = SsdConfig::tiny();
        let cb = ChipBlocks::new(&cfg);
        let mut p = GreedyPicker::new();
        assert_eq!(p.pick(&cb), None);
    }

    #[test]
    fn picks_block_with_most_invalid() {
        let cfg = SsdConfig::tiny();
        let mut cb = ChipBlocks::new(&cfg);
        let mut p = GreedyPicker::new();
        let b0 = fill_one_block(&mut cb, &cfg);
        let b1 = fill_one_block(&mut cb, &cfg);
        // b0: 2 invalid pages; b1: 5 invalid pages.
        for page in 0..2 {
            let inv = cb.invalidate(b0, page);
            p.note(b0, inv);
        }
        for page in 0..5 {
            let inv = cb.invalidate(b1, page);
            p.note(b1, inv);
        }
        assert_eq!(p.pick(&cb), Some(b1));
    }

    #[test]
    fn stale_entries_skipped_after_erase() {
        let cfg = SsdConfig::tiny();
        let mut cb = ChipBlocks::new(&cfg);
        let mut p = GreedyPicker::new();
        let b = fill_one_block(&mut cb, &cfg);
        for page in 0..cfg.pages_per_block as u16 {
            let inv = cb.invalidate(b, page);
            p.note(b, inv);
        }
        assert_eq!(p.pick(&cb), Some(b));
        cb.erase(b);
        // All remaining entries for b are stale now.
        assert_eq!(p.pick(&cb), None);
    }

    #[test]
    fn outdated_counts_are_discarded() {
        let cfg = SsdConfig::tiny();
        let mut cb = ChipBlocks::new(&cfg);
        let mut p = GreedyPicker::new();
        let b = fill_one_block(&mut cb, &cfg);
        let inv = cb.invalidate(b, 0);
        p.note(b, inv); // entry (1, b)
        let inv = cb.invalidate(b, 1);
        p.note(b, inv); // entry (2, b)
        // First pick consumes the (2, b) entry.
        assert_eq!(p.pick(&cb), Some(b));
        // The (1, b) entry is now stale (count mismatch) and must be skipped.
        assert_eq!(p.pick(&cb), None);
        assert_eq!(p.pending_entries(), 0);
    }

    #[test]
    fn retired_blocks_never_picked() {
        let cfg = SsdConfig::tiny();
        let mut cb = ChipBlocks::new(&cfg);
        let mut p = GreedyPicker::new();
        let b = fill_one_block(&mut cb, &cfg);
        for page in 0..cfg.pages_per_block as u16 {
            let inv = cb.invalidate(b, page);
            p.note(b, inv);
        }
        cb.retire(b);
        // Entries for the now-bad block are stale: GC must skip it.
        assert_eq!(p.pick(&cb), None);
    }

    #[test]
    fn active_blocks_never_picked() {
        let cfg = SsdConfig::tiny();
        let mut cb = ChipBlocks::new(&cfg);
        let mut p = GreedyPicker::new();
        // Allocate one page -> block is Active.
        let (b, page) = cb.allocate_page().unwrap();
        let inv = cb.invalidate(b, page);
        // A (buggy) caller notes an active block; pick must still skip it.
        p.note(b, inv);
        assert_eq!(p.pick(&cb), None);
    }
}
