//! Property-based tests of the FTL: arbitrary write/read sequences on the
//! tiny SSD must keep the mapping tables consistent, conserve live data
//! through GC, and respect the free-block floor.

use proptest::prelude::*;
use reqblock_flash::{FlashTimeline, SsdConfig};
use reqblock_ftl::{Ftl, Placement};

/// (placement, start lpn, batch pages) over a small logical window so
/// overwrites (and thus GC) happen often.
fn ops() -> impl Strategy<Value = Vec<(bool, u64, u64)>> {
    proptest::collection::vec((any::<bool>(), 0u64..200, 1u64..12), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mapping_stays_consistent_under_churn(ops in ops()) {
        let cfg = SsdConfig::tiny();
        let mut ftl = Ftl::new(&cfg);
        let mut tl = FlashTimeline::new(&cfg);
        let mut written = std::collections::HashSet::new();
        let mut at = 0u64;
        for (striped, start, pages) in ops {
            at += 1_000_000;
            let lpns: Vec<u64> = (start..start + pages).collect();
            let placement = if striped { Placement::Striped } else { Placement::SingleBlock };
            let done = ftl.write_pages(&lpns, at, placement, &mut tl);
            prop_assert!(done >= at);
            for l in lpns {
                written.insert(l);
            }
        }
        // Every written LPN is mapped; every mapping checks out.
        for &l in &written {
            prop_assert!(ftl.is_mapped(l), "lost mapping for {l}");
        }
        ftl.check_consistency().map_err(TestCaseError::fail)?;
        prop_assert_eq!(ftl.live_pages(), written.len() as u64);
        // GC (if it ran) never breached physics: erases only of reclaimable
        // blocks, write amplification >= 1.
        prop_assert!(tl.counters().write_amplification() >= 1.0);
        // Free floor holds unless nothing was reclaimable.
        let floor = cfg.gc_free_blocks_floor();
        for free in ftl.free_blocks_per_chip() {
            prop_assert!(free >= floor.saturating_sub(1) || ftl.stats().gc_runs == 0);
        }
    }

    #[test]
    fn reads_never_disturb_state(ops in ops(), reads in proptest::collection::vec(0u64..200, 1..50)) {
        let cfg = SsdConfig::tiny();
        let mut ftl = Ftl::new(&cfg);
        let mut tl = FlashTimeline::new(&cfg);
        let mut at = 0u64;
        for (_, start, pages) in ops {
            at += 1_000_000;
            let lpns: Vec<u64> = (start..start + pages).collect();
            ftl.write_pages(&lpns, at, Placement::Striped, &mut tl);
        }
        let live_before = ftl.live_pages();
        let programs_before = tl.counters().total_programs();
        for lpn in reads {
            at += 1_000_000;
            let done = ftl.read_page(lpn, at, &mut tl);
            prop_assert!(done > at);
        }
        prop_assert_eq!(ftl.live_pages(), live_before);
        prop_assert_eq!(tl.counters().total_programs(), programs_before);
        ftl.check_consistency().map_err(TestCaseError::fail)?;
    }
}
