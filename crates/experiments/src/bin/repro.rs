//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale F] [--full] [--threads N] [--out DIR] [--trace-dir DIR] \
//!       [--depths D1,D2,...] [--rates R1,R2,...] [--devices N1,N2,...] <command>
//!
//! commands:
//!   table1      Table 1  (SSD configuration)
//!   table2      Table 2  (trace specifications, paper vs measured)
//!   fig2        Figure 2 (insert/hit CDFs vs request size)
//!   fig3        Figure 3 (large-request hit statistics)
//!   fig7        Figure 7 (delta sensitivity)
//!   fig8..fig12 Figures 8-12 (policy comparison grid; run together as `comparison`)
//!   comparison  Figures 8-12 in one pass (the grid is shared)
//!   fig13       Figure 13 (list occupancy over time)
//!   tails       extension: response-time percentiles per policy
//!   wear        extension: GC activity and write amplification
//!   ablations   extension: Req-block design-choice ablations (A1-A4)
//!   faults      extension: seeded fault-rate sweep (retries, bad blocks,
//!               remapped pages, device health)
//!   qdepth      extension: X5 response time vs host queue depth per
//!               policy, queued submit mode (default depths 1-32;
//!               `--depths 1,2,4,...` picks the grid)
//!   load        extension: X6 latency vs offered throughput — the ts_0
//!               request mix re-timed by open-loop Poisson/bursty arrival
//!               processes, p50/p99/p99.9 per policy and offered rate
//!               (default multipliers 0.25x-8x; `--rates 0.5,2,...` picks
//!               the grid)
//!   why         tail forensics: per-component latency attribution across
//!               policy x depth x offered load, plus Perfetto-loadable
//!               trace JSON and size-rotated telemetry shards per point
//!   fleet       extension: X8 fleet-scale multi-tenant QoS — N independent
//!               devices under a blended three-tenant mix, per-tenant and
//!               fleet-wide p50/p99/p999 plus a noisy-neighbor delta per
//!               placement x device-count point, with per-device telemetry
//!               shards (default fleets 4 and 16 devices;
//!               `--devices 4,16,...` picks the grid)
//!   telemetry   instrumented example run: JSONL time series + summary
//!               (optionally `telemetry <trace>`; default ts_0)
//!   export      export a synthetic trace as MSR CSV: export <trace> <path>
//!   all         everything above (paper artifacts + extensions), scheduled
//!               as one barrier-free job pool across all figures
//! ```
//!
//! `--scale` shrinks each trace's request count (default 0.05). `--full`
//! is shorthand for `--scale 1.0` — the paper's exact request counts
//! (several minutes of wall time on one core). `--threads N` sets the
//! worker count; it defaults to the host's available parallelism, and
//! `--threads 1` is the explicit serial mode. Tables and telemetry are
//! byte-identical at every thread count.

use reqblock_experiments::{extensions, figures, figures::Opts, sweep};
use reqblock_experiments::report::{bar_chart, save, Table};
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale F] [--full] [--threads N] [--out DIR] [--trace-dir DIR] \
         [--depths D1,D2,...] [--rates R1,R2,...] [--devices N1,N2,...] \
         <table1|table2|fig2|fig3|fig7|comparison|fig8|fig9|fig10|fig11|fig12|fig13|\
          tails|wear|ablations|faults|qdepth|load|why|fleet|telemetry|export|all>\n\
         --threads defaults to the host's available parallelism; \
         --threads 1 is the explicit serial mode (identical output)\n\
         --depths picks the qdepth sweep's queue-depth grid (default 1,2,4,8,16,32)\n\
         --rates picks the load sweep's offered-rate multipliers \
         (default 0.25,0.5,1,2,4,8)\n\
         --devices picks the fleet sweep's device counts (default 4,16)"
    );
    std::process::exit(2);
}

/// Extra CLI state that does not belong in the library-level [`Opts`].
#[derive(Default)]
struct CliExtras {
    /// Queue-depth grid for `qdepth` (`--depths`); `None` = the default
    /// [`extensions::QDEPTH_SWEEP`].
    depths: Option<Vec<u32>>,
    /// Offered-rate multipliers for `load` (`--rates`); `None` = the
    /// default [`extensions::LOAD_SWEEP`].
    rates: Option<Vec<f64>>,
    /// Device counts for `fleet` (`--devices`); `None` = the default
    /// [`extensions::FLEET_DEVICES`].
    devices: Option<Vec<usize>>,
}

fn parse_args() -> (Opts, CliExtras, String) {
    let mut opts = Opts::default();
    let mut extras = CliExtras::default();
    let mut cmd = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--depths" => {
                let v = args.next().unwrap_or_else(|| usage());
                let depths: Vec<u32> = v
                    .split(',')
                    .map(|d| d.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if depths.is_empty() || depths.contains(&0) {
                    usage();
                }
                extras.depths = Some(depths);
            }
            "--rates" => {
                let v = args.next().unwrap_or_else(|| usage());
                let rates: Vec<f64> = v
                    .split(',')
                    .map(|r| r.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if rates.is_empty() || rates.iter().any(|&r| !r.is_finite() || r <= 0.0) {
                    usage();
                }
                extras.rates = Some(rates);
            }
            "--devices" => {
                let v = args.next().unwrap_or_else(|| usage());
                let devices: Vec<usize> = v
                    .split(',')
                    .map(|d| d.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if devices.is_empty() || devices.contains(&0) {
                    usage();
                }
                extras.devices = Some(devices);
            }
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.scale = v.parse().unwrap_or_else(|_| usage());
                if opts.scale <= 0.0 {
                    usage();
                }
            }
            "--full" => opts.scale = 1.0,
            "--threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.threads = v.parse().unwrap_or_else(|_| usage());
                if opts.threads == 0 {
                    usage();
                }
            }
            "--out" => {
                opts.out_dir = args.next().unwrap_or_else(|| usage()).into();
            }
            "--trace-dir" => {
                opts.trace_dir = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            c if !c.starts_with('-') && cmd.is_none() => {
                cmd = Some(c.to_string());
                if c == "export" {
                    let trace = args.next().unwrap_or_else(|| usage());
                    let path = args.next().unwrap_or_else(|| usage());
                    return (opts, extras, format!("export {trace} {path}"));
                }
            }
            c if !c.starts_with('-') && cmd.as_deref() == Some("telemetry") => {
                // Optional trace operand: `telemetry <trace>`.
                cmd = Some(format!("telemetry {c}"));
            }
            _ => usage(),
        }
    }
    (opts, extras, cmd.unwrap_or_else(|| usage()))
}

fn emit(opts: &Opts, name: &str, tables: &[Table]) {
    for t in tables {
        println!("{}", t.to_markdown());
    }
    if let Err(e) = save(&opts.out_dir, name, tables) {
        eprintln!("warning: could not write {}/{}: {e}", opts.out_dir.display(), name);
    } else {
        println!("[saved {}/{name}.md and .csv]\n", opts.out_dir.display());
    }
}

fn run_comparison_figs(opts: &Opts, which: &str) {
    let t0 = Instant::now();
    eprintln!(
        "running comparison grid (4 policies x 3 sizes x 6 traces, scale {}) ...",
        opts.scale
    );
    let cmp = figures::comparison(opts);
    eprintln!("grid done in {:.1?}", t0.elapsed());
    let all = [
        ("fig8", vec![figures::fig8(&cmp)]),
        ("fig9", vec![figures::fig9(&cmp)]),
        ("fig10", vec![figures::fig10(&cmp)]),
        ("fig11", vec![figures::fig11(&cmp)]),
        ("fig12", vec![figures::fig12(&cmp)]),
        ("summary", vec![figures::summary(&cmp)]),
    ];
    for (name, tables) in all {
        if which == "comparison" || which == "all" || which == name {
            emit(opts, name, &tables);
        }
    }
    if which == "comparison" || which == "all" {
        let means = figures::policy_means(&cmp);
        let resp: Vec<(String, f64)> = means.iter().map(|(n, r, _)| (n.clone(), *r)).collect();
        let hits: Vec<(String, f64)> = means.iter().map(|(n, _, h)| (n.clone(), *h)).collect();
        println!("{}", bar_chart("mean response time (normalized to LRU, lower is better)", &resp, 40));
        println!("{}", bar_chart("mean hit ratio (normalized to Req-block, higher is better)", &hits, 40));
        emit(opts, "perf", &[figures::perf_table(&cmp)]);
    }
}

fn run_telemetry(opts: &Opts, trace: &str) {
    let (jsonl, summary) = figures::telemetry(opts, trace);
    let path = opts.out_dir.join(format!("telemetry_{trace}.jsonl"));
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir)
        .and_then(|_| std::fs::write(&path, &jsonl))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[saved {} ({} lines)]\n", path.display(), jsonl.lines().count());
    }
    emit(opts, &format!("telemetry_{trace}"), &[summary]);
}

/// `repro why`: per-component tail attribution table, one Perfetto-loadable
/// trace JSON per grid point, and size-rotated telemetry shards.
fn run_why(opts: &Opts) {
    let t0 = Instant::now();
    eprintln!(
        "running tail-attribution grid (2 policies x {} depths x {} loads, scale {}) ...",
        extensions::WHY_DEPTHS.len(),
        extensions::WHY_LOADS.len(),
        opts.scale
    );
    let report = extensions::why(opts);
    eprintln!("grid done in {:.1?}", t0.elapsed());
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("warning: could not create {}: {e}", opts.out_dir.display());
    }
    for (stem, json) in &report.traces {
        let path = opts.out_dir.join(format!("{stem}.trace.json"));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("[saved {} (open in Perfetto / chrome://tracing)]", path.display());
        }
    }
    let mut writer =
        reqblock_obs::TelemetryWriter::new(&opts.out_dir, "why_telemetry", 64 * 1024);
    for doc in &report.telemetry {
        writer.push_document(doc);
    }
    match writer.finish() {
        Ok(paths) => {
            for p in &paths {
                println!("[saved {}]", p.display());
            }
            println!("[{} telemetry shard(s), rotated at 64 KiB]\n", paths.len());
        }
        Err(e) => eprintln!("warning: could not write telemetry shards: {e}"),
    }
    emit(opts, "why", &[report.table]);
}

/// `repro fleet`: the X8 noisy-neighbor table plus per-device telemetry
/// shards from the headline grid point and an informational fleet-
/// throughput line (parsed by scripts/bench.sh).
fn run_fleet(opts: &Opts, devices: &[usize]) {
    let t0 = Instant::now();
    eprintln!(
        "running fleet grid (2 placements x {} device counts, 3 tenants, scale {}) ...",
        devices.len(),
        opts.scale
    );
    let report = extensions::fleet_with_devices(opts, devices);
    eprintln!("grid done in {:.1?}", t0.elapsed());
    let mut writer =
        reqblock_obs::TelemetryWriter::new(&opts.out_dir, "fleet_telemetry", 64 * 1024);
    for doc in &report.telemetry {
        writer.push_document(doc);
    }
    match writer.finish() {
        Ok(paths) => {
            for p in &paths {
                println!("[saved {}]", p.display());
            }
            println!("[{} telemetry shard(s), rotated at 64 KiB]\n", paths.len());
        }
        Err(e) => eprintln!("warning: could not write telemetry shards: {e}"),
    }
    println!(
        "[fleet throughput: {} devices in {:.2}s - {:.1} devices/s]\n",
        report.devices_simulated,
        report.elapsed_s,
        report.devices_simulated as f64 / report.elapsed_s.max(1e-9)
    );
    emit(opts, "fleet", &[report.table]);
}

fn main() -> ExitCode {
    let (opts, extras, cmd) = parse_args();
    let t0 = Instant::now();
    match cmd.as_str() {
        "table1" => emit(&opts, "table1", &[figures::table1()]),
        "table2" => emit(&opts, "table2", &[figures::table2(&opts)]),
        "fig2" | "fig3" => {
            let (f2, f3) = figures::fig2_fig3(&opts);
            if cmd == "fig2" {
                emit(&opts, "fig2", &[f2]);
            } else {
                emit(&opts, "fig3", &[f3]);
            }
        }
        "fig7" => {
            let (hits, resp) = figures::fig7(&opts);
            emit(&opts, "fig7", &[hits, resp]);
        }
        "comparison" | "fig8" | "fig9" | "fig10" | "fig11" | "fig12" => {
            run_comparison_figs(&opts, &cmd);
        }
        "fig13" => {
            let (samples, shares) = figures::fig13(&opts);
            emit(&opts, "fig13", &[shares, samples]);
        }
        "tails" => emit(&opts, "tails", &[extensions::tails(&opts)]),
        "wear" => emit(&opts, "wear", &[extensions::wear(&opts)]),
        "ablations" => emit(&opts, "ablations", &[extensions::ablations(&opts)]),
        "faults" => emit(&opts, "faults", &[extensions::fault_sweep(&opts)]),
        "qdepth" => {
            let depths = extras.depths.as_deref().unwrap_or(&extensions::QDEPTH_SWEEP);
            emit(&opts, "qdepth", &[extensions::qdepth_sweep_depths(&opts, depths)]);
        }
        "load" => {
            let rates = extras.rates.as_deref().unwrap_or(&extensions::LOAD_SWEEP);
            emit(&opts, "load", &[extensions::load_sweep_rates(&opts, rates)]);
        }
        "why" => run_why(&opts),
        "fleet" => {
            let devices = extras.devices.as_deref().unwrap_or(&extensions::FLEET_DEVICES);
            run_fleet(&opts, devices);
        }
        cmd if cmd == "telemetry" || cmd.starts_with("telemetry ") => {
            let trace = cmd.strip_prefix("telemetry").unwrap().trim();
            let trace = if trace.is_empty() { "ts_0" } else { trace };
            run_telemetry(&opts, trace);
        }
        cmd if cmd.starts_with("export ") => {
            let mut parts = cmd.split_whitespace().skip(1);
            let trace = parts.next().unwrap_or_else(|| usage());
            let path = parts.next().unwrap_or_else(|| usage());
            let profile = reqblock_trace::profiles::profile_by_name(trace)
                .unwrap_or_else(|| {
                    eprintln!("unknown trace {trace:?}");
                    std::process::exit(2);
                })
                .scaled(opts.scale);
            let reqs: Vec<reqblock_trace::Request> =
                reqblock_trace::SyntheticTrace::new(profile).generate_all();
            reqblock_trace::msr::write_file(std::path::Path::new(path), &reqs)
                .unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
            println!("wrote {} requests to {path} (MSR CSV format)", reqs.len());
        }
        "all" => {
            let t0 = Instant::now();
            eprintln!(
                "running all figures on one pool ({} threads, scale {}) ...",
                opts.threads, opts.scale
            );
            let art = sweep::run_all(&opts);
            eprintln!("sweep done in {:.1?}", t0.elapsed());
            for (name, tables) in &art.sections {
                if name == "perf" {
                    println!(
                        "{}",
                        bar_chart(
                            "mean response time (normalized to LRU, lower is better)",
                            &art.resp_chart,
                            40
                        )
                    );
                    println!(
                        "{}",
                        bar_chart(
                            "mean hit ratio (normalized to Req-block, higher is better)",
                            &art.hit_chart,
                            40
                        )
                    );
                }
                if name == "telemetry_ts_0" {
                    let path = opts.out_dir.join("telemetry_ts_0.jsonl");
                    if let Err(e) = std::fs::create_dir_all(&opts.out_dir)
                        .and_then(|_| std::fs::write(&path, &art.telemetry_jsonl))
                    {
                        eprintln!("warning: could not write {}: {e}", path.display());
                    } else {
                        println!(
                            "[saved {} ({} lines)]\n",
                            path.display(),
                            art.telemetry_jsonl.lines().count()
                        );
                    }
                }
                emit(&opts, name, tables);
            }
        }
        _ => usage(),
    }
    eprintln!("total {:.1?}", t0.elapsed());
    ExitCode::SUCCESS
}
