//! Minimal table rendering: markdown for humans, CSV for plotting.
//!
//! Kept dependency-free on purpose (see DESIGN.md §3): the harness writes
//! its own CSV/markdown instead of pulling in a serialization stack.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A titled table of string cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Human-readable title (becomes the markdown heading).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows; each must have `columns.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Empty table with a title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the cell count does not match the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width {} != header width {}",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Render as a GitHub-flavoured markdown table with a heading.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(out, "|{}|", self.columns.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Render as CSV (header + rows). Cells containing commas or quotes are
    /// quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Write a set of tables to `<dir>/<name>.md` and `<dir>/<name>.csv`
/// (tables concatenated; CSV sections separated by a blank line).
pub fn save(dir: &Path, name: &str, tables: &[Table]) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let md: String = tables.iter().map(|t| t.to_markdown() + "\n").collect();
    std::fs::write(dir.join(format!("{name}.md")), md)?;
    let csv: String = tables
        .iter()
        .map(|t| format!("# {}\n{}\n", t.title, t.to_csv()))
        .collect();
    std::fs::write(dir.join(format!("{name}.csv")), csv)?;
    Ok(())
}

/// Format a float with 3 decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with 2 decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "x,y".into()]);
        t
    }

    #[test]
    fn markdown_has_heading_and_separator() {
        let md = sample().to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | x,y |"));
    }

    #[test]
    fn csv_quotes_commas() {
        let csv = sample().to_csv();
        assert!(csv.contains("a,b"));
        assert!(csv.contains("1,\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("t", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn save_writes_both_files() {
        let dir = std::env::temp_dir().join("reqblock_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        save(&dir, "demo", &[sample()]).unwrap();
        assert!(dir.join("demo.md").exists());
        assert!(dir.join("demo.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(0.425), "42.5%");
    }
}

/// Render a horizontal ASCII bar chart for labelled values — used by the
/// `repro` binary to make normalized figure series readable in a terminal
/// without plotting tools. Bars scale to `width` characters at the maximum
/// value.
pub fn bar_chart(title: &str, entries: &[(String, f64)], width: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if entries.is_empty() {
        let _ = writeln!(out, "  (no data)");
        return out;
    }
    let max = entries.iter().map(|(_, v)| *v).fold(f64::MIN_POSITIVE, f64::max);
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in entries {
        let n = ((value / max) * width as f64).round().max(0.0) as usize;
        let _ = writeln!(out, "  {label:<label_w$} {:<width$} {value:.3}", "#".repeat(n));
    }
    out
}

#[cfg(test)]
mod bar_tests {
    use super::bar_chart;

    #[test]
    fn bars_scale_to_max() {
        let chart = bar_chart(
            "demo",
            &[("a".into(), 1.0), ("bb".into(), 0.5), ("c".into(), 0.0)],
            10,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0], "demo");
        assert!(lines[1].contains("##########"), "{chart}");
        assert!(lines[2].contains("#####"), "{chart}");
        assert!(!lines[3].contains('#'), "{chart}");
        // Labels aligned to the widest.
        assert!(lines[1].starts_with("  a  "), "{chart}");
        assert!(lines[2].starts_with("  bb "), "{chart}");
    }

    #[test]
    fn empty_chart_is_graceful() {
        let chart = bar_chart("t", &[], 10);
        assert!(chart.contains("no data"));
    }
}
