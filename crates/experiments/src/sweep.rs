//! The barrier-free full sweep behind `repro all`.
//!
//! The per-figure entry points each run their own job pool, which puts a
//! barrier between figures: the last straggler of figure N gates every job
//! of figure N+1, and on a multi-core host the tail of each pool leaves
//! workers idle. [`run_all`] removes those barriers by planning every
//! figure up front (the `*_jobs` / `*_probe` halves of the plan/build
//! splits in [`figures`](crate::figures) and
//! [`extensions`](crate::extensions)), submitting all tasks into one
//! [`run_task_pool`], and running the pure `*_build` halves afterwards.
//! Result routing is order-preserving — each task writes into its own
//! pre-allocated slot — so the emitted tables are byte-identical to the
//! sequential per-figure path at any thread count.
//!
//! The task list leads with the Table 2 statistics probes: they touch every
//! workload first, so the shared trace cache (`reqblock_trace::shared`) is
//! warmed once per (source, scale) and every later job replays the same
//! `Arc<[Request]>` slice zero-copy.

use crate::extensions::{
    ablations_build, ablations_jobs, fault_build, fault_jobs, load_build, load_jobs,
    qdepth_build, qdepth_jobs, tails_build, tails_jobs, wear_build, wear_jobs,
};
use crate::figures::{
    comparison_build, comparison_jobs, fig13_build, fig13_probe, fig23_build, fig23_probe,
    fig7_build, fig7_jobs, per_trace_tasks, perf_table, policy_means, summary, table1,
    table2_build, table2_stats, take_slots, telemetry, fig10, fig11, fig12, fig8, fig9, JobPool,
    Opts,
};
use crate::report::Table;
use reqblock_sim::{run_task_pool, Task};
use std::sync::OnceLock;

/// The trace instrumented by the sweep's telemetry run.
pub const TELEMETRY_TRACE: &str = "ts_0";

/// Everything `repro all` emits, in emission order.
pub struct AllArtifacts {
    /// `(section name, tables)` pairs matching the per-figure output files
    /// (`table1`, `table2`, `fig2` ... `faults`, `telemetry_ts_0`).
    pub sections: Vec<(String, Vec<Table>)>,
    /// Mean normalized response time per policy (terminal bar chart).
    pub resp_chart: Vec<(String, f64)>,
    /// Mean normalized hit ratio per policy (terminal bar chart).
    pub hit_chart: Vec<(String, f64)>,
    /// JSONL telemetry document of the instrumented [`TELEMETRY_TRACE`] run.
    pub telemetry_jsonl: String,
}

/// Run every figure, table, and extension of `repro all` on one shared,
/// barrier-free work pool with `opts.threads` workers.
pub fn run_all(opts: &Opts) -> AllArtifacts {
    let profiles = opts.profiles();
    // Result slots for the probed figures and the telemetry run. Declared
    // before the task list so the tasks' borrows stay valid until the pool
    // has drained.
    let table2_slots: Vec<OnceLock<_>> = profiles.iter().map(|_| OnceLock::new()).collect();
    let fig23_slots: Vec<OnceLock<_>> = profiles.iter().map(|_| OnceLock::new()).collect();
    let fig13_slots: Vec<OnceLock<_>> = profiles.iter().map(|_| OnceLock::new()).collect();
    let telemetry_slot: OnceLock<(String, Table)> = OnceLock::new();
    let probe_table2 = table2_stats;
    let probe_fig23 = fig23_probe;
    let probe_fig13 = fig13_probe;
    let fig7_pool = JobPool::new(fig7_jobs(opts));
    let cmp_pool = JobPool::new(comparison_jobs(opts));
    let tails_pool = JobPool::new(tails_jobs(opts));
    let wear_pool = JobPool::new(wear_jobs(opts));
    let ablations_pool = JobPool::new(ablations_jobs(opts));
    let fault_pool = JobPool::new(fault_jobs(opts));
    let qdepth_pool = JobPool::new(qdepth_jobs(opts));
    let load_pool = JobPool::new(load_jobs(opts));

    // One flat task list. Tasks are claimed in order, so the cheap Table 2
    // statistics probes run first and warm the shared trace cache for the
    // simulation grids behind them.
    let mut tasks = Vec::new();
    tasks.extend(per_trace_tasks("table2", opts, &profiles, &table2_slots, &probe_table2));
    tasks.extend(per_trace_tasks("fig2_fig3", opts, &profiles, &fig23_slots, &probe_fig23));
    tasks.extend(fig7_pool.tasks());
    tasks.extend(cmp_pool.tasks());
    tasks.extend(per_trace_tasks("fig13", opts, &profiles, &fig13_slots, &probe_fig13));
    tasks.extend(tails_pool.tasks());
    tasks.extend(wear_pool.tasks());
    tasks.extend(ablations_pool.tasks());
    tasks.extend(fault_pool.tasks());
    tasks.extend(qdepth_pool.tasks());
    tasks.extend(load_pool.tasks());
    tasks.push(Task::new(format!("telemetry/{TELEMETRY_TRACE}"), || {
        let ok = telemetry_slot.set(telemetry(opts, TELEMETRY_TRACE)).is_ok();
        debug_assert!(ok, "telemetry slot filled twice");
    }));
    run_task_pool(tasks, opts.threads);

    // Pure builds, in the emission order of `repro all`.
    let (fig2_t, fig3_t) = fig23_build(take_slots(fig23_slots));
    let (fig7_hits, fig7_resp) = fig7_build(opts, fig7_pool.take_results());
    let cmp = comparison_build(opts, cmp_pool.take_results());
    let (fig13_samples, fig13_shares) = fig13_build(opts, take_slots(fig13_slots));
    let means = policy_means(&cmp);
    let (telemetry_jsonl, telemetry_table) =
        telemetry_slot.into_inner().expect("pool task must have filled the telemetry slot");
    let sections = vec![
        ("table1".to_string(), vec![table1()]),
        ("table2".to_string(), vec![table2_build(opts, take_slots(table2_slots))]),
        ("fig2".to_string(), vec![fig2_t]),
        ("fig3".to_string(), vec![fig3_t]),
        ("fig7".to_string(), vec![fig7_hits, fig7_resp]),
        ("fig8".to_string(), vec![fig8(&cmp)]),
        ("fig9".to_string(), vec![fig9(&cmp)]),
        ("fig10".to_string(), vec![fig10(&cmp)]),
        ("fig11".to_string(), vec![fig11(&cmp)]),
        ("fig12".to_string(), vec![fig12(&cmp)]),
        ("summary".to_string(), vec![summary(&cmp)]),
        ("perf".to_string(), vec![perf_table(&cmp)]),
        ("fig13".to_string(), vec![fig13_shares, fig13_samples]),
        ("tails".to_string(), vec![tails_build(tails_pool.take_results())]),
        ("wear".to_string(), vec![wear_build(wear_pool.take_results())]),
        ("ablations".to_string(), vec![ablations_build(ablations_pool.take_results())]),
        ("faults".to_string(), vec![fault_build(fault_pool.take_results())]),
        ("qdepth".to_string(), vec![qdepth_build(qdepth_pool.take_results())]),
        ("load".to_string(), vec![load_build(load_pool.take_results())]),
        (format!("telemetry_{TELEMETRY_TRACE}"), vec![telemetry_table]),
    ];
    AllArtifacts {
        sections,
        resp_chart: means.iter().map(|(n, r, _)| (n.clone(), *r)).collect(),
        hit_chart: means.iter().map(|(n, _, h)| (n.clone(), *h)).collect(),
        telemetry_jsonl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn run_all_covers_every_section_once() {
        let opts =
            Opts { scale: 0.001, threads: 2, out_dir: PathBuf::from("/tmp"), trace_dir: None };
        let art = run_all(&opts);
        let names: Vec<&str> = art.sections.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "table1", "table2", "fig2", "fig3", "fig7", "fig8", "fig9", "fig10", "fig11",
                "fig12", "summary", "perf", "fig13", "tails", "wear", "ablations", "faults",
                "qdepth", "load", "telemetry_ts_0"
            ]
        );
        for (name, tables) in &art.sections {
            assert!(!tables.is_empty(), "{name} has no tables");
            for t in tables {
                assert!(!t.rows.is_empty(), "{name} has an empty table");
            }
        }
        assert_eq!(art.resp_chart.len(), 4);
        assert_eq!(art.hit_chart.len(), 4);
        assert!(art.telemetry_jsonl.starts_with("{\"type\":\"run_meta\""));
    }
}
