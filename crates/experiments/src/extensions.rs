//! Extension experiments beyond the paper's figures.
//!
//! * [`tails`] — response-time percentiles per policy (the paper reports
//!   means only; the policies differ most in their tails).
//! * [`wear`] — GC activity, write amplification and wear ceiling per
//!   policy over a cache-pressure workload.
//! * [`ablations`] — what each Req-block design choice buys (DESIGN.md
//!   A1-A4), measured head-to-head.
//! * [`fault_sweep`] — reliability: the same run replayed under rising
//!   seeded fault rates (read/program/erase), reporting retries, retired
//!   bad blocks, remapped pages and the device health outcome.

use crate::figures::{run_pool, Opts};
use crate::report::{f2, f3, Table};
use reqblock_cache::policies::BplruConfig;
use reqblock_core::{PriorityModel, ReqBlockConfig};
use reqblock_sim::{
    CacheSizeMb, FaultConfig, Job, PolicyKind, RunResult, SampleInterval, SimConfig, SubmitMode,
    TraceSource,
};

/// Percentile columns reported by [`tails`].
pub const TAIL_QUANTILES: [(f64, &str); 4] =
    [(0.50, "p50 (ms)"), (0.95, "p95 (ms)"), (0.99, "p99 (ms)"), (1.0, "max (ms)")];

/// The tails grid: one job per (trace, policy) at 32 MB.
pub(crate) fn tails_jobs(opts: &Opts) -> Vec<Job> {
    opts.profiles()
        .into_iter()
        .flat_map(|profile| {
            PolicyKind::paper_comparison().into_iter().map(move |policy| Job {
                label: format!("{}/{}", profile.name, policy.name()),
                cfg: SimConfig::paper(CacheSizeMb::Mb32, policy),
                source: TraceSource::Synthetic(profile.clone()),
            })
        })
        .collect()
}

/// Render the tails table from grid results (job order of [`tails_jobs`]).
pub(crate) fn tails_build(results: Vec<(String, RunResult)>) -> Table {
    let mut cols = vec!["Trace", "Policy", "mean (ms)"];
    for (_, label) in TAIL_QUANTILES {
        cols.push(label);
    }
    let mut t = Table::new("Extension - Response time percentiles (32MB)", &cols);
    for (label, r) in results {
        let (trace, policy) = label.split_once('/').expect("label format");
        let mut row = vec![trace.to_string(), policy.to_string(), f3(r.metrics.avg_response_ms())];
        for (q, _) in TAIL_QUANTILES {
            row.push(f3(r.metrics.response_percentile_ms(q)));
        }
        t.push_row(row);
    }
    t
}

/// Response-time tail percentiles for the four compared policies, 32 MB.
pub fn tails(opts: &Opts) -> Table {
    tails_build(run_pool(tails_jobs(opts), opts.threads))
}

/// The wear grid: the four compared policies over a proj_0 slice.
pub(crate) fn wear_jobs(opts: &Opts) -> Vec<Job> {
    let profile = reqblock_trace::profiles::proj_0().scaled(opts.scale);
    PolicyKind::paper_comparison()
        .into_iter()
        .map(|policy| Job {
            label: policy.name().to_string(),
            cfg: SimConfig::paper(CacheSizeMb::Mb32, policy),
            source: TraceSource::Synthetic(profile.clone()),
        })
        .collect()
}

/// Render the wear table from grid results (job order of [`wear_jobs`]).
pub(crate) fn wear_build(results: Vec<(String, RunResult)>) -> Table {
    let mut t = Table::new(
        "Extension - GC activity and write amplification (proj_0-like, 32MB)",
        &["Policy", "User programs", "GC programs", "GC runs", "Erases", "WA"],
    );
    for (label, r) in results {
        t.push_row(vec![
            label,
            r.flash.user_programs.to_string(),
            r.flash.gc_programs.to_string(),
            r.ftl.gc_runs.to_string(),
            r.flash.erases.to_string(),
            f2(r.flash.write_amplification()),
        ]);
    }
    t
}

/// GC / wear statistics per policy on the most write-intensive workload.
pub fn wear(opts: &Opts) -> Table {
    wear_build(run_pool(wear_jobs(opts), opts.threads))
}

/// The Req-block/BPLRU ablation variants (DESIGN.md A1-A4).
pub fn ablation_variants() -> Vec<(&'static str, PolicyKind)> {
    vec![
        ("Req-block (paper)", PolicyKind::ReqBlock(ReqBlockConfig::paper())),
        (
            "A1: no DRL split",
            PolicyKind::ReqBlock(ReqBlockConfig {
                split_large_on_hit: false,
                ..ReqBlockConfig::paper()
            }),
        ),
        (
            "A2: no downgraded merge",
            PolicyKind::ReqBlock(ReqBlockConfig {
                merge_on_evict: false,
                ..ReqBlockConfig::paper()
            }),
        ),
        (
            "A3: Eq.1 without size term",
            PolicyKind::ReqBlock(ReqBlockConfig {
                priority: PriorityModel::NoSize,
                ..ReqBlockConfig::paper()
            }),
        ),
        (
            "A3: Eq.1 without age term",
            PolicyKind::ReqBlock(ReqBlockConfig {
                priority: PriorityModel::NoAge,
                ..ReqBlockConfig::paper()
            }),
        ),
        ("BPLRU without padding", PolicyKind::Bplru(BplruConfig { page_padding: false })),
        ("A4: BPLRU with padding", PolicyKind::Bplru(BplruConfig { page_padding: true })),
    ]
}

/// The ablation grid: every variant over the two most revealing workloads.
pub(crate) fn ablations_jobs(opts: &Opts) -> Vec<Job> {
    let mut jobs = Vec::new();
    for profile in ["src1_2", "proj_0"]
        .iter()
        .map(|n| reqblock_trace::profiles::profile_by_name(n).expect("known trace"))
    {
        let profile = profile.scaled(opts.scale);
        for (name, policy) in ablation_variants() {
            jobs.push(Job {
                label: format!("{name}|{}", profile.name),
                cfg: SimConfig::paper(CacheSizeMb::Mb32, policy),
                source: TraceSource::Synthetic(profile.clone()),
            });
        }
    }
    jobs
}

/// Render the ablation table from grid results (order of [`ablations_jobs`]).
pub(crate) fn ablations_build(results: Vec<(String, RunResult)>) -> Table {
    let mut t = Table::new(
        "Extension - Ablations (32MB)",
        &["Variant", "Trace", "Hit ratio", "Avg resp (ms)", "Flash writes", "Pages/eviction"],
    );
    for (label, r) in results {
        let (name, trace) = label.split_once('|').expect("label format");
        t.push_row(vec![
            name.to_string(),
            trace.to_string(),
            f3(r.metrics.hit_ratio()),
            f3(r.metrics.avg_response_ms()),
            r.flash.user_programs.to_string(),
            f2(r.metrics.avg_pages_per_eviction()),
        ]);
    }
    t
}

/// Ablation comparison on the two most revealing workloads.
pub fn ablations(opts: &Opts) -> Table {
    ablations_build(run_pool(ablations_jobs(opts), opts.threads))
}

/// Per-op fault rates (parts per million) swept by [`fault_sweep`]. The
/// same rate is applied to reads, programs, and erases at each step.
pub const FAULT_SWEEP_PPM: [u32; 4] = [0, 500, 2_000, 10_000];

/// The fault-sweep grid: a pressured Req-block device at each fault rate.
///
/// Replays a `ts_0` slice through the Req-block policy on a deliberately
/// tight flash array (~115% of the write footprint, like the pressured
/// golden run) so garbage collection — and therefore erase faults and
/// block retirement — actually fire. Every run uses the same
/// [`FaultConfig`] seed, so the table is reproducible bit-for-bit; the
/// zero-ppm row doubles as a control that matches a fault-free device.
pub(crate) fn fault_jobs(opts: &Opts) -> Vec<Job> {
    let profile = reqblock_trace::profiles::ts_0().scaled(opts.scale);
    // Two-chip device sized to ~115% of the logical footprint (write
    // streams plus the cold-read region): small enough that the append
    // stream cycles the free-block pool and GC erases fire, so erase
    // faults and block retirement are exercised alongside program faults.
    let mut ssd = reqblock_flash::SsdConfig::paper();
    ssd.channels = 2;
    ssd.chips_per_channel = 1;
    let block_pages = ssd.total_chips() as u64 * ssd.pages_per_block as u64;
    let footprint = profile.streaming_pages + profile.cold_read_extra_pages;
    let want_pages = (footprint as f64 * 1.15) as u64;
    ssd.capacity_bytes = want_pages.div_ceil(block_pages).max(8) * block_pages * ssd.page_size;
    FAULT_SWEEP_PPM
        .into_iter()
        .map(|ppm| Job {
            label: ppm.to_string(),
            cfg: SimConfig {
                ssd: ssd.clone(),
                cache_pages: 64,
                policy: PolicyKind::ReqBlock(ReqBlockConfig::paper()),
                overhead_sample_every: 1_000,
                sampling: SampleInterval::Off,
                fault: FaultConfig {
                    read_fail_ppm: ppm,
                    program_fail_ppm: ppm,
                    erase_fail_ppm: ppm,
                    ..FaultConfig::default()
                },
                submit: SubmitMode::Synchronous,
            },
            source: TraceSource::Synthetic(profile.clone()),
        })
        .collect()
}

/// Render the fault table from grid results (order of [`fault_jobs`]).
pub(crate) fn fault_build(results: Vec<(String, RunResult)>) -> Table {
    let mut t = Table::new(
        "Extension - Fault-rate sweep (Req-block, pressured device, fixed seed)",
        &[
            "Fault ppm",
            "Read retries",
            "Uncorrectable",
            "Program fails",
            "Erase fails",
            "Bad blocks",
            "Remapped pages",
            "Rejected pages",
            "Health",
            "Avg resp (ms)",
        ],
    );
    for (label, r) in results {
        let f = &r.faults;
        t.push_row(vec![
            label,
            f.read_retries.to_string(),
            f.read_uncorrectable.to_string(),
            f.program_failures.to_string(),
            f.erase_failures.to_string(),
            f.retired_blocks.to_string(),
            f.remapped_pages.to_string(),
            f.rejected_write_pages.to_string(),
            format!("{:?}", r.health),
            f3(r.metrics.avg_response_ms()),
        ]);
    }
    t
}

/// Reliability extension: one workload replayed under rising fault rates.
pub fn fault_sweep(opts: &Opts) -> Table {
    fault_build(run_pool(fault_jobs(opts), opts.threads))
}

/// Host queue depths swept by [`qdepth_sweep`] (X5).
pub const QDEPTH_SWEEP: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// The X5 grid: the paper's four headline policies x [`QDEPTH_SWEEP`] host
/// queue depths, replaying `ts_0` on the paper device with a 32 MB cache.
///
/// Depth 1 is definitionally the synchronous paper model (the property and
/// golden tests pin the equality); deeper windows let eviction flushes
/// retire in the background, so the sweep isolates how much of each
/// policy's response time is buffer-induced stall that a queueing host
/// could hide. Flash traffic is depth-invariant by construction.
pub(crate) fn qdepth_jobs(opts: &Opts) -> Vec<Job> {
    let profile = reqblock_trace::profiles::ts_0().scaled(opts.scale);
    let mut jobs = Vec::new();
    for policy in PolicyKind::paper_comparison() {
        for depth in QDEPTH_SWEEP {
            jobs.push(Job {
                label: format!("{}/qd{depth}", policy.name()),
                cfg: SimConfig::paper(CacheSizeMb::Mb32, policy)
                    .with_submit(SubmitMode::Queued { depth }),
                source: TraceSource::Synthetic(profile.clone()),
            });
        }
    }
    jobs
}

/// Render the X5 table from grid results (order of [`qdepth_jobs`]).
pub(crate) fn qdepth_build(results: Vec<(String, RunResult)>) -> Table {
    let mut t = Table::new(
        "Extension - X5: response time vs host queue depth (ts_0, 32MB)",
        &["Policy", "Depth", "Mean resp (ms)", "p99 (ms)", "Flush stalls", "Stall time (ms)"],
    );
    for (label, r) in results {
        let (policy, depth) = label.rsplit_once("/qd").expect("qdepth label is policy/qdN");
        t.push_row(vec![
            policy.to_string(),
            depth.to_string(),
            f3(r.metrics.avg_response_ms()),
            f3(r.metrics.response_percentile_ms(0.99)),
            r.metrics.flush_stalls.to_string(),
            f2(r.metrics.flush_stall_ns as f64 / 1e6),
        ]);
    }
    t
}

/// X5 extension: mean and p99 response time vs host queue depth 1-32.
pub fn qdepth_sweep(opts: &Opts) -> Table {
    qdepth_build(run_pool(qdepth_jobs(opts), opts.threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tiny_opts() -> Opts {
        Opts { scale: 0.001, threads: 2, out_dir: PathBuf::from("/tmp"), trace_dir: None }
    }

    #[test]
    fn tails_has_row_per_trace_policy() {
        let t = tails(&tiny_opts());
        assert_eq!(t.rows.len(), 24); // 6 traces x 4 policies
        // p50 <= p99 <= max per row.
        for row in &t.rows {
            let p50: f64 = row[3].parse().unwrap();
            let p99: f64 = row[5].parse().unwrap();
            let max: f64 = row[6].parse().unwrap();
            assert!(p50 <= p99 + 1e-9 && p99 <= max + 1e-9, "{row:?}");
        }
    }

    #[test]
    fn wear_reports_four_policies() {
        let t = wear(&tiny_opts());
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let wa: f64 = row[5].parse().unwrap();
            assert!(wa >= 1.0);
        }
    }

    #[test]
    fn ablations_cover_all_variants() {
        let t = ablations(&tiny_opts());
        assert_eq!(t.rows.len(), ablation_variants().len() * 2);
    }

    #[test]
    fn fault_sweep_zero_row_is_clean_and_faulty_rows_fault() {
        let t = fault_sweep(&tiny_opts());
        assert_eq!(t.rows.len(), FAULT_SWEEP_PPM.len());
        let zero = &t.rows[0];
        assert_eq!(zero[0], "0");
        for cell in &zero[1..8] {
            assert_eq!(cell, "0", "zero-ppm control must report no faults: {zero:?}");
        }
        assert_eq!(zero[8], "Healthy");
        // The highest rate (1%) over thousands of flash ops must observe
        // at least one fault; the run is seeded, so this is deterministic.
        let hot = t.rows.last().unwrap();
        let total: u64 = hot[1..8].iter().map(|c| c.parse::<u64>().unwrap()).sum();
        assert!(total > 0, "1% fault rate never fired: {hot:?}");
    }

    #[test]
    fn fault_sweep_is_reproducible() {
        let a = fault_sweep(&tiny_opts());
        let b = fault_sweep(&tiny_opts());
        assert_eq!(a.rows, b.rows, "same seed + config must give identical tables");
    }

    #[test]
    fn qdepth_sweep_covers_grid_and_depth_one_is_synchronous() {
        let opts = tiny_opts();
        let t = qdepth_sweep(&opts);
        assert_eq!(t.rows.len(), 4 * QDEPTH_SWEEP.len());
        let profile = reqblock_trace::profiles::ts_0().scaled(opts.scale);
        for policy in PolicyKind::paper_comparison() {
            // The depth-1 row reports exactly what a synchronous run of the
            // same job reports.
            let cfg = SimConfig::paper(CacheSizeMb::Mb32, policy);
            let sync = reqblock_sim::run_source(&cfg, &TraceSource::Synthetic(profile.clone()));
            let row = t
                .rows
                .iter()
                .find(|row| row[0] == policy.name() && row[1] == "1")
                .expect("depth-1 row");
            assert_eq!(row[2], f3(sync.metrics.avg_response_ms()), "{}", policy.name());
            assert_eq!(row[3], f3(sync.metrics.response_percentile_ms(0.99)), "{}", policy.name());
            assert_eq!(row[4], sync.metrics.flush_stalls.to_string(), "{}", policy.name());
            // The deepest window can only hide stall time, never add it.
            let stall_qd1: f64 = row[5].parse().unwrap();
            let deepest = t
                .rows
                .iter()
                .find(|row| row[0] == policy.name() && row[1] == "32")
                .expect("depth-32 row");
            let stall_qd32: f64 = deepest[5].parse().unwrap();
            assert!(
                stall_qd32 <= stall_qd1 + 1e-9,
                "{}: qd32 stall {stall_qd32} > qd1 stall {stall_qd1}",
                policy.name()
            );
        }
    }
}
