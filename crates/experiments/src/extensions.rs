//! Extension experiments beyond the paper's figures.
//!
//! * [`tails`] — response-time percentiles per policy (the paper reports
//!   means only; the policies differ most in their tails).
//! * [`wear`] — GC activity, write amplification and wear ceiling per
//!   policy over a cache-pressure workload.
//! * [`ablations`] — what each Req-block design choice buys (DESIGN.md
//!   A1-A4), measured head-to-head.
//! * [`fault_sweep`] — reliability: the same run replayed under rising
//!   seeded fault rates (read/program/erase), reporting retries, retired
//!   bad blocks, remapped pages and the device health outcome.
//! * [`fleet`] — X8: a multi-device fleet under a blended three-tenant
//!   mix, per-tenant p50/p99/p999 and a noisy-neighbor delta per
//!   placement x device-count grid point (see `reqblock_sim::fleet`).

use crate::figures::{run_pool, Opts};
use crate::report::{f2, f3, pct, Table};
use reqblock_cache::policies::BplruConfig;
use reqblock_core::{PriorityModel, ReqBlockConfig};
use reqblock_obs::telemetry::to_jsonl;
use reqblock_obs::{MemoryRecorder, TraceBuilder};
use reqblock_sim::{
    run_task_pool, ArrivalProcess, AttrAcc, AttrConfig, CacheSizeMb, Component, FaultConfig,
    FleetConfig, FleetControl, IntervalLog, Job, Metrics, NoisyNeighbor, Placement, PolicyKind,
    RunResult, SampleInterval, SimConfig, Ssd, SubmitMode, Task, TenantMix, TenantSpec,
    TraceSource,
};

/// Percentile columns reported by [`tails`].
pub const TAIL_QUANTILES: [(f64, &str); 4] =
    [(0.50, "p50 (ms)"), (0.95, "p95 (ms)"), (0.99, "p99 (ms)"), (1.0, "max (ms)")];

/// The tails grid: one job per (trace, policy) at 32 MB.
pub(crate) fn tails_jobs(opts: &Opts) -> Vec<Job> {
    opts.profiles()
        .into_iter()
        .flat_map(|profile| {
            PolicyKind::paper_comparison().into_iter().map(move |policy| Job {
                label: format!("{}/{}", profile.name, policy.name()),
                cfg: SimConfig::paper(CacheSizeMb::Mb32, policy),
                source: TraceSource::Synthetic(profile.clone()),
            })
        })
        .collect()
}

/// Render the tails table from grid results (job order of [`tails_jobs`]).
pub(crate) fn tails_build(results: Vec<(String, RunResult)>) -> Table {
    let mut cols = vec!["Trace", "Policy", "mean (ms)"];
    for (_, label) in TAIL_QUANTILES {
        cols.push(label);
    }
    let mut t = Table::new("Extension - Response time percentiles (32MB)", &cols);
    for (label, r) in results {
        let (trace, policy) = label.split_once('/').expect("label format");
        let mut row = vec![trace.to_string(), policy.to_string(), f3(r.metrics.avg_response_ms())];
        for (q, _) in TAIL_QUANTILES {
            row.push(f3(r.metrics.response_percentile_ms(q)));
        }
        t.push_row(row);
    }
    t
}

/// Response-time tail percentiles for the four compared policies, 32 MB.
pub fn tails(opts: &Opts) -> Table {
    tails_build(run_pool(tails_jobs(opts), opts.threads))
}

/// The wear grid: the four compared policies over a proj_0 slice.
pub(crate) fn wear_jobs(opts: &Opts) -> Vec<Job> {
    let profile = reqblock_trace::profiles::proj_0().scaled(opts.scale);
    PolicyKind::paper_comparison()
        .into_iter()
        .map(|policy| Job {
            label: policy.name().to_string(),
            cfg: SimConfig::paper(CacheSizeMb::Mb32, policy),
            source: TraceSource::Synthetic(profile.clone()),
        })
        .collect()
}

/// Render the wear table from grid results (job order of [`wear_jobs`]).
pub(crate) fn wear_build(results: Vec<(String, RunResult)>) -> Table {
    let mut t = Table::new(
        "Extension - GC activity and write amplification (proj_0-like, 32MB)",
        &["Policy", "User programs", "GC programs", "GC runs", "Erases", "WA"],
    );
    for (label, r) in results {
        t.push_row(vec![
            label,
            r.flash.user_programs.to_string(),
            r.flash.gc_programs.to_string(),
            r.ftl.gc_runs.to_string(),
            r.flash.erases.to_string(),
            f2(r.flash.write_amplification()),
        ]);
    }
    t
}

/// GC / wear statistics per policy on the most write-intensive workload.
pub fn wear(opts: &Opts) -> Table {
    wear_build(run_pool(wear_jobs(opts), opts.threads))
}

/// The Req-block/BPLRU ablation variants (DESIGN.md A1-A4).
pub fn ablation_variants() -> Vec<(&'static str, PolicyKind)> {
    vec![
        ("Req-block (paper)", PolicyKind::ReqBlock(ReqBlockConfig::paper())),
        (
            "A1: no DRL split",
            PolicyKind::ReqBlock(ReqBlockConfig {
                split_large_on_hit: false,
                ..ReqBlockConfig::paper()
            }),
        ),
        (
            "A2: no downgraded merge",
            PolicyKind::ReqBlock(ReqBlockConfig {
                merge_on_evict: false,
                ..ReqBlockConfig::paper()
            }),
        ),
        (
            "A3: Eq.1 without size term",
            PolicyKind::ReqBlock(ReqBlockConfig {
                priority: PriorityModel::NoSize,
                ..ReqBlockConfig::paper()
            }),
        ),
        (
            "A3: Eq.1 without age term",
            PolicyKind::ReqBlock(ReqBlockConfig {
                priority: PriorityModel::NoAge,
                ..ReqBlockConfig::paper()
            }),
        ),
        ("BPLRU without padding", PolicyKind::Bplru(BplruConfig { page_padding: false })),
        ("A4: BPLRU with padding", PolicyKind::Bplru(BplruConfig { page_padding: true })),
    ]
}

/// The ablation grid: every variant over the two most revealing workloads.
pub(crate) fn ablations_jobs(opts: &Opts) -> Vec<Job> {
    let mut jobs = Vec::new();
    for profile in ["src1_2", "proj_0"]
        .iter()
        .map(|n| reqblock_trace::profiles::profile_by_name(n).expect("known trace"))
    {
        let profile = profile.scaled(opts.scale);
        for (name, policy) in ablation_variants() {
            jobs.push(Job {
                label: format!("{name}|{}", profile.name),
                cfg: SimConfig::paper(CacheSizeMb::Mb32, policy),
                source: TraceSource::Synthetic(profile.clone()),
            });
        }
    }
    jobs
}

/// Render the ablation table from grid results (order of [`ablations_jobs`]).
pub(crate) fn ablations_build(results: Vec<(String, RunResult)>) -> Table {
    let mut t = Table::new(
        "Extension - Ablations (32MB)",
        &["Variant", "Trace", "Hit ratio", "Avg resp (ms)", "Flash writes", "Pages/eviction"],
    );
    for (label, r) in results {
        let (name, trace) = label.split_once('|').expect("label format");
        t.push_row(vec![
            name.to_string(),
            trace.to_string(),
            f3(r.metrics.hit_ratio()),
            f3(r.metrics.avg_response_ms()),
            r.flash.user_programs.to_string(),
            f2(r.metrics.avg_pages_per_eviction()),
        ]);
    }
    t
}

/// Ablation comparison on the two most revealing workloads.
pub fn ablations(opts: &Opts) -> Table {
    ablations_build(run_pool(ablations_jobs(opts), opts.threads))
}

/// Per-op fault rates (parts per million) swept by [`fault_sweep`]. The
/// same rate is applied to reads, programs, and erases at each step.
pub const FAULT_SWEEP_PPM: [u32; 4] = [0, 500, 2_000, 10_000];

/// The fault-sweep grid: a pressured Req-block device at each fault rate.
///
/// Replays a `ts_0` slice through the Req-block policy on a deliberately
/// tight flash array (~115% of the write footprint, like the pressured
/// golden run) so garbage collection — and therefore erase faults and
/// block retirement — actually fire. Every run uses the same
/// [`FaultConfig`] seed, so the table is reproducible bit-for-bit; the
/// zero-ppm row doubles as a control that matches a fault-free device.
pub(crate) fn fault_jobs(opts: &Opts) -> Vec<Job> {
    let profile = reqblock_trace::profiles::ts_0().scaled(opts.scale);
    // Two-chip device sized to ~115% of the logical footprint (write
    // streams plus the cold-read region): small enough that the append
    // stream cycles the free-block pool and GC erases fire, so erase
    // faults and block retirement are exercised alongside program faults.
    let mut ssd = reqblock_flash::SsdConfig::paper();
    ssd.channels = 2;
    ssd.chips_per_channel = 1;
    let block_pages = ssd.total_chips() as u64 * ssd.pages_per_block as u64;
    let footprint = profile.streaming_pages + profile.cold_read_extra_pages;
    let want_pages = (footprint as f64 * 1.15) as u64;
    ssd.capacity_bytes = want_pages.div_ceil(block_pages).max(8) * block_pages * ssd.page_size;
    FAULT_SWEEP_PPM
        .into_iter()
        .map(|ppm| Job {
            label: ppm.to_string(),
            cfg: SimConfig {
                ssd: ssd.clone(),
                cache_pages: 64,
                policy: PolicyKind::ReqBlock(ReqBlockConfig::paper()),
                overhead_sample_every: 1_000,
                sampling: SampleInterval::Off,
                fault: FaultConfig {
                    read_fail_ppm: ppm,
                    program_fail_ppm: ppm,
                    erase_fail_ppm: ppm,
                    ..FaultConfig::default()
                },
                submit: SubmitMode::Synchronous,
                attr: None,
            },
            source: TraceSource::Synthetic(profile.clone()),
        })
        .collect()
}

/// Render the fault table from grid results (order of [`fault_jobs`]).
pub(crate) fn fault_build(results: Vec<(String, RunResult)>) -> Table {
    let mut t = Table::new(
        "Extension - Fault-rate sweep (Req-block, pressured device, fixed seed)",
        &[
            "Fault ppm",
            "Read retries",
            "Uncorrectable",
            "Program fails",
            "Erase fails",
            "Bad blocks",
            "Remapped pages",
            "Rejected pages",
            "Health",
            "Avg resp (ms)",
        ],
    );
    for (label, r) in results {
        let f = &r.faults;
        t.push_row(vec![
            label,
            f.read_retries.to_string(),
            f.read_uncorrectable.to_string(),
            f.program_failures.to_string(),
            f.erase_failures.to_string(),
            f.retired_blocks.to_string(),
            f.remapped_pages.to_string(),
            f.rejected_write_pages.to_string(),
            format!("{:?}", r.health),
            f3(r.metrics.avg_response_ms()),
        ]);
    }
    t
}

/// Reliability extension: one workload replayed under rising fault rates.
pub fn fault_sweep(opts: &Opts) -> Table {
    fault_build(run_pool(fault_jobs(opts), opts.threads))
}

/// Host queue depths swept by [`qdepth_sweep`] (X5).
pub const QDEPTH_SWEEP: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// The X5 grid: the paper's four headline policies x the given host queue
/// depths, replaying `ts_0` on the paper device with a 32 MB cache.
///
/// Depth 1 is definitionally the synchronous paper model (the property and
/// golden tests pin the equality); deeper windows let eviction flushes
/// retire in the background, so the sweep isolates how much of each
/// policy's response time is buffer-induced stall that a queueing host
/// could hide. Flash traffic is depth-invariant by construction.
pub(crate) fn qdepth_jobs_for(opts: &Opts, depths: &[u32]) -> Vec<Job> {
    let profile = reqblock_trace::profiles::ts_0().scaled(opts.scale);
    let mut jobs = Vec::new();
    for policy in PolicyKind::paper_comparison() {
        for &depth in depths {
            jobs.push(Job {
                label: format!("{}/qd{depth}", policy.name()),
                cfg: SimConfig::paper(CacheSizeMb::Mb32, policy)
                    .with_submit(SubmitMode::Queued { depth }),
                source: TraceSource::Synthetic(profile.clone()),
            });
        }
    }
    jobs
}

/// [`qdepth_jobs_for`] over the default [`QDEPTH_SWEEP`] grid.
pub(crate) fn qdepth_jobs(opts: &Opts) -> Vec<Job> {
    qdepth_jobs_for(opts, &QDEPTH_SWEEP)
}

/// Render the X5 table from grid results (order of [`qdepth_jobs`]).
pub(crate) fn qdepth_build(results: Vec<(String, RunResult)>) -> Table {
    let mut t = Table::new(
        "Extension - X5: response time vs host queue depth (ts_0, 32MB)",
        &["Policy", "Depth", "Mean resp (ms)", "p99 (ms)", "Flush stalls", "Stall time (ms)"],
    );
    for (label, r) in results {
        let (policy, depth) = label.rsplit_once("/qd").expect("qdepth label is policy/qdN");
        t.push_row(vec![
            policy.to_string(),
            depth.to_string(),
            f3(r.metrics.avg_response_ms()),
            f3(r.metrics.response_percentile_ms(0.99)),
            r.metrics.flush_stalls.to_string(),
            f2(r.metrics.flush_stall_ns as f64 / 1e6),
        ]);
    }
    t
}

/// X5 extension: mean and p99 response time vs host queue depth 1-32.
pub fn qdepth_sweep(opts: &Opts) -> Table {
    qdepth_sweep_depths(opts, &QDEPTH_SWEEP)
}

/// [`qdepth_sweep`] over a caller-chosen depth list (`repro qdepth
/// --depths 1,2,4,...`). Depths may repeat or be unordered; rows follow the
/// given order per policy.
pub fn qdepth_sweep_depths(opts: &Opts, depths: &[u32]) -> Table {
    assert!(!depths.is_empty(), "qdepth sweep needs at least one depth");
    qdepth_build(run_pool(qdepth_jobs_for(opts, depths), opts.threads))
}

/// Offered-load multipliers swept by [`load_sweep`] (X6), relative to the
/// device's *calibrated back-to-back service rate* for the same request
/// mix. The span brackets the knee by construction: below 1x the device
/// keeps up (response ~= service time), above 1x arrivals outrun service
/// and the open-loop response diverges.
pub const LOAD_SWEEP: [f64; 6] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// Burst shape of the X6 bursty rows: bursts of 64 requests arriving 8x
/// faster than the long-run rate, idle gaps in between (same offered rate).
pub const LOAD_BURST: (u32, u32) = (64, 8);

/// The X6 grid: the four headline policies x open-loop arrival processes,
/// replaying the `ts_0` request mix at a swept offered rate (queue depth 8,
/// 32 MB cache).
///
/// Every job rewrites the same base trace's arrival times
/// ([`TraceSource::OpenLoop`]): Poisson at each [`LOAD_SWEEP`] multiple of
/// the calibrated service rate, plus one bursty row ([`LOAD_BURST`]) at 1x
/// to show what burst clustering alone costs. Arrival seeds depend only on
/// the rate step — every policy sees byte-identical arrivals, so the rows
/// compare policies, not RNG draws. Responses are measured
/// arrival->completion against an open loop that never self-throttles,
/// which is what makes the saturation knee visible (see EXPERIMENTS.md).
///
/// Calibration: the trace's own timestamps are far too sparse to stress the
/// device (hours of idle between bursts), so anchoring on them would leave
/// every sweep point idle. Instead one serial probe replays the mix with
/// every arrival at t=0 — pure service demand, no idle gaps — and the
/// slowest request's completion divided by the request count gives the
/// device's back-to-back per-request service gap. The probe runs at plan
/// time on one thread, so the grid stays thread-count invariant.
pub(crate) fn load_jobs(opts: &Opts) -> Vec<Job> {
    load_jobs_for(opts, &LOAD_SWEEP)
}

/// [`load_jobs`] over a caller-chosen multiplier list (`repro load
/// --rates 0.5,2,8`). Multipliers are relative to the calibrated
/// back-to-back service rate, like [`LOAD_SWEEP`]; arrival seeds depend
/// only on the position in the list, so the default grid's jobs are
/// unchanged byte for byte.
pub(crate) fn load_jobs_for(opts: &Opts, mults: &[f64]) -> Vec<Job> {
    let profile = reqblock_trace::profiles::ts_0().scaled(opts.scale);
    let base = TraceSource::Synthetic(profile);
    let requests = base.shared_requests();
    let probe: Vec<reqblock_trace::Request> =
        requests.iter().map(|r| reqblock_trace::Request { time_ns: 0, ..*r }).collect();
    let cal = reqblock_sim::run_trace(&SimConfig::paper(CacheSizeMb::Mb32, PolicyKind::Lru), probe);
    let service_gap_ns = (cal.metrics.max_response_ns / requests.len() as u64).max(1);
    let mut jobs = Vec::new();
    for policy in PolicyKind::paper_comparison() {
        for (i, mult) in mults.iter().copied().enumerate() {
            let process = ArrivalProcess::Poisson {
                mean_interarrival_ns: ((service_gap_ns as f64 / mult) as u64).max(1),
            };
            jobs.push(Job {
                label: format!("{}|poisson|{mult}|{:.0}", policy.name(), process.offered_rate_per_s()),
                cfg: SimConfig::paper(CacheSizeMb::Mb32, policy)
                    .with_submit(SubmitMode::Queued { depth: 8 }),
                source: TraceSource::open_loop(base.clone(), process, 0x10AD_5EED + i as u64),
            });
        }
        let (burst_len, peak_to_mean) = LOAD_BURST;
        let process = ArrivalProcess::Bursty {
            mean_interarrival_ns: service_gap_ns,
            burst_len,
            peak_to_mean,
        };
        jobs.push(Job {
            label: format!("{}|bursty|1|{:.0}", policy.name(), process.offered_rate_per_s()),
            cfg: SimConfig::paper(CacheSizeMb::Mb32, policy)
                .with_submit(SubmitMode::Queued { depth: 8 }),
            source: TraceSource::open_loop(base.clone(), process, 0x10AD_B025),
        });
    }
    jobs
}

/// Render the X6 table from grid results (order of [`load_jobs`]).
pub(crate) fn load_build(results: Vec<(String, RunResult)>) -> Table {
    let mut t = Table::new(
        "Extension - X6: response time vs offered throughput (ts_0 mix, open loop, qd8, 32MB)",
        &[
            "Policy",
            "Process",
            "Load",
            "Offered (kreq/s)",
            "p50 (ms)",
            "p99 (ms)",
            "p99.9 (ms)",
            "Mean (ms)",
        ],
    );
    for (label, r) in results {
        let mut parts = label.split('|');
        let policy = parts.next().expect("load label has policy");
        let process = parts.next().expect("load label has process");
        let mult = parts.next().expect("load label has multiplier");
        let rate: f64 = parts.next().expect("load label has rate").parse().expect("rate");
        t.push_row(vec![
            policy.to_string(),
            process.to_string(),
            format!("{mult}x"),
            f2(rate / 1e3),
            f3(r.metrics.response_percentile_ms(0.50)),
            f3(r.metrics.response_percentile_ms(0.99)),
            f3(r.metrics.response_percentile_ms(0.999)),
            f3(r.metrics.avg_response_ms()),
        ]);
    }
    t
}

/// X6 extension: latency vs offered throughput per policy (open loop).
pub fn load_sweep(opts: &Opts) -> Table {
    load_sweep_rates(opts, &LOAD_SWEEP)
}

/// [`load_sweep`] over a caller-chosen rate-multiplier list (`repro load
/// --rates 0.5,2,8`). Multipliers may repeat or be unordered; rows follow
/// the given order per policy, with the fixed bursty 1x row appended like
/// the default grid.
pub fn load_sweep_rates(opts: &Opts, mults: &[f64]) -> Table {
    assert!(!mults.is_empty(), "load sweep needs at least one rate multiplier");
    load_build(run_pool(load_jobs_for(opts, mults), opts.threads))
}

/// Host queue depths probed by [`why`] (X7).
pub const WHY_DEPTHS: [u32; 2] = [1, 8];

/// Offered-load multipliers probed by [`why`], relative to the calibrated
/// back-to-back service rate (same calibration as [`LOAD_SWEEP`]): one
/// point comfortably below the knee, one past it, one deep in overload.
pub const WHY_LOADS: [f64; 3] = [0.5, 2.0, 8.0];

/// The two policies [`why`] contrasts: the baseline and the paper's
/// contribution.
pub fn why_policies() -> [PolicyKind; 2] {
    [PolicyKind::Lru, PolicyKind::ReqBlock(ReqBlockConfig::paper())]
}

/// One fully analysed tail-forensics grid point.
pub struct WhyPoint {
    /// `policy|depth|mult` label.
    pub label: String,
    /// Plain run metrics (response percentiles).
    pub metrics: Metrics,
    /// Attribution accumulator: component totals, histograms, sampled
    /// spans.
    pub attr: AttrAcc,
    /// Chip/channel busy intervals captured for the trace export.
    pub intervals: Option<IntervalLog>,
    /// Telemetry JSONL document of the recorded run (one shard for the
    /// rotating writer).
    pub telemetry: String,
}

/// Everything `repro why` produces: the per-point tail-attribution table
/// plus the Perfetto trace documents and telemetry shards to write out.
pub struct WhyReport {
    /// The X7 attribution table.
    pub table: Table,
    /// `(file stem, Chrome trace_event JSON)` per grid point, grid order.
    pub traces: Vec<(String, String)>,
    /// Telemetry JSONL documents, one per grid point, grid order.
    pub telemetry: Vec<String>,
}

/// Run the X7 grid: [`why_policies`] x [`WHY_DEPTHS`] x [`WHY_LOADS`],
/// replaying the `ts_0` mix open-loop with attribution enabled. Unlike the
/// [`Job`] grids this keeps the whole device around per point — the
/// attribution accumulator and captured busy intervals live on the `Ssd`,
/// not in the [`RunResult`] — so it drives [`run_task_pool`] directly.
/// Sampling is deterministic in the run alone, so the grid is
/// thread-count invariant.
pub(crate) fn why_points(opts: &Opts) -> Vec<WhyPoint> {
    let profile = reqblock_trace::profiles::ts_0().scaled(opts.scale);
    let base = TraceSource::Synthetic(profile);
    let requests = base.shared_requests();
    let probe: Vec<reqblock_trace::Request> =
        requests.iter().map(|r| reqblock_trace::Request { time_ns: 0, ..*r }).collect();
    let cal = reqblock_sim::run_trace(&SimConfig::paper(CacheSizeMb::Mb32, PolicyKind::Lru), probe);
    let service_gap_ns = (cal.metrics.max_response_ns / requests.len() as u64).max(1);
    let mut specs: Vec<(String, SimConfig, TraceSource)> = Vec::new();
    for policy in why_policies() {
        for &depth in &WHY_DEPTHS {
            for (i, mult) in WHY_LOADS.into_iter().enumerate() {
                let process = ArrivalProcess::Poisson {
                    mean_interarrival_ns: ((service_gap_ns as f64 / mult) as u64).max(1),
                };
                // Seeded per rate step like the X6 sweep: every policy and
                // depth sees byte-identical arrivals at the same load.
                let source = TraceSource::open_loop(base.clone(), process, 0x7A11_CA05 + i as u64);
                let cfg = SimConfig::paper(CacheSizeMb::Mb32, policy)
                    .with_submit(SubmitMode::Queued { depth })
                    .with_attribution(AttrConfig::default());
                specs.push((format!("{}|{depth}|{mult}", policy.name()), cfg, source));
            }
        }
    }
    let slots: Vec<std::sync::OnceLock<WhyPoint>> =
        (0..specs.len()).map(|_| std::sync::OnceLock::new()).collect();
    let tasks: Vec<Task<'_>> = specs
        .iter()
        .zip(&slots)
        .map(|((label, cfg, source), slot)| {
            Task::new(label.clone(), move || {
                let mut rec = MemoryRecorder::default();
                let mut ssd = Ssd::new(cfg.clone());
                source.for_each_request(|req| {
                    ssd.submit_recorded(&req, &mut rec);
                });
                ssd.finish_recording(&mut rec);
                let telemetry =
                    to_jsonl(&rec, &[("experiment", "why".into()), ("point", label.clone())]);
                let point = WhyPoint {
                    label: label.clone(),
                    metrics: ssd.metrics().clone(),
                    attr: ssd.attribution().expect("attr configured").clone(),
                    intervals: ssd.device().busy_intervals().cloned(),
                    telemetry,
                };
                let ok = slot.set(point).is_ok();
                debug_assert!(ok, "why slot filled twice");
            })
        })
        .collect();
    run_task_pool(tasks, opts.threads);
    slots.into_iter().map(|s| s.into_inner().expect("every point must finish")).collect()
}

/// Component columns of the X7 table, in display order.
/// [`Component::DispatchWait`] is omitted: the engine dispatches at
/// arrival under every submit mode, so it is structurally zero (see the
/// variant's docs).
const WHY_COLUMNS: [Component; 6] = [
    Component::CacheService,
    Component::FlushStall,
    Component::ReadQueueWait,
    Component::ReadService,
    Component::GcInterference,
    Component::ReadRetry,
];

/// Render the X7 table from analysed points (order of [`why_points`]).
pub(crate) fn why_build(points: &[WhyPoint]) -> Table {
    let mut cols = vec!["Policy", "Depth", "Load", "p50 (ms)", "p99 (ms)", "p99.9 (ms)"];
    let names: Vec<String> = WHY_COLUMNS.iter().map(|c| format!("{} %", c.name())).collect();
    cols.extend(names.iter().map(String::as_str));
    cols.push("Tail cause");
    let mut t = Table::new(
        "Extension - X7: tail forensics - response attribution by component (ts_0 mix, open loop, 32MB)",
        &cols,
    );
    for p in points {
        let mut parts = p.label.split('|');
        let policy = parts.next().expect("why label has policy");
        let depth = parts.next().expect("why label has depth");
        let mult = parts.next().expect("why label has multiplier");
        let total = p.attr.total_response_ns().max(1) as f64;
        let mut row = vec![
            policy.to_string(),
            depth.to_string(),
            format!("{mult}x"),
            f3(p.metrics.response_percentile_ms(0.50)),
            f3(p.metrics.response_percentile_ms(0.99)),
            f3(p.metrics.response_percentile_ms(0.999)),
        ];
        for c in WHY_COLUMNS {
            row.push(pct(p.attr.total_ns(c) as f64 / total));
        }
        row.push(p.attr.dominant_tail_component().name().to_string());
        t.push_row(row);
    }
    t
}

/// Render one point's sampled request lifecycles and chip/channel busy
/// intervals as a Chrome `trace_event` JSON document (open it in Perfetto
/// or `about:tracing`). Track layout: pid 1 one track per sampled request
/// with its components laid out back-to-back from arrival; pid 2 chips;
/// pid 3 channel buses (GC-issued operations categorised `"gc"`).
pub fn why_trace_json(point: &WhyPoint) -> String {
    let mut b = TraceBuilder::new();
    b.process_name(1, "sampled requests");
    for (i, span) in point.attr.sampled_spans().iter().enumerate() {
        let tid = i as u32;
        b.thread_name(1, tid, &format!("req {}", span.req_id));
        let mut at = span.start_ns;
        for c in Component::ALL {
            let d = span.parts[c.index()];
            if d > 0 {
                b.slice(1, tid, c.name(), "attr", at, d);
                at += d;
            }
        }
    }
    if let Some(log) = &point.intervals {
        b.process_name(2, "chips");
        for (chip, track) in log.chip.iter().enumerate() {
            if track.is_empty() {
                continue;
            }
            b.thread_name(2, chip as u32, &format!("chip {chip}"));
            for iv in track {
                let cat = if iv.gc { "gc" } else { "flash" };
                b.slice(2, chip as u32, iv.kind.name(), cat, iv.start_ns, iv.end_ns - iv.start_ns);
            }
        }
        b.process_name(3, "channels");
        for (ch, track) in log.channel.iter().enumerate() {
            if track.is_empty() {
                continue;
            }
            b.thread_name(3, ch as u32, &format!("channel {ch}"));
            for iv in track {
                let cat = if iv.gc { "gc" } else { "flash" };
                b.slice(3, ch as u32, iv.kind.name(), cat, iv.start_ns, iv.end_ns - iv.start_ns);
            }
        }
    }
    b.finish()
}

/// File stem for one point's trace document (`why_req_block_qd8_2x`).
fn why_stem(label: &str) -> String {
    let mut parts = label.split('|');
    let policy = parts.next().unwrap_or("unknown").to_lowercase().replace('-', "_");
    let depth = parts.next().unwrap_or("0");
    let mult = parts.next().unwrap_or("0");
    format!("why_{policy}_qd{depth}_{mult}x")
}

/// X7 extension: per-request tail forensics. For each policy x depth x
/// offered-load point, attribute p50/p99/p99.9 response time to named
/// components and name the dominant tail cause; also produce the Perfetto
/// trace documents and telemetry shards `repro why` writes to disk.
pub fn why(opts: &Opts) -> WhyReport {
    let points = why_points(opts);
    let table = why_build(&points);
    let traces =
        points.iter().map(|p| (why_stem(&p.label), why_trace_json(p))).collect();
    let telemetry = points.into_iter().map(|p| p.telemetry).collect();
    WhyReport { table, traces, telemetry }
}

/// Device counts swept by [`fleet`] (X8); `repro fleet --devices N1,N2,...`
/// overrides them.
pub const FLEET_DEVICES: [usize; 2] = [4, 16];

/// The two placement maps the X8 grid contrasts: full striping (every
/// tenant touches every device) vs packing into two-device groups (tenants
/// collide only when the groups wrap — with three tenants that pits the
/// antagonist against the first victim on a 4-device fleet and isolates
/// everyone on 16).
pub fn fleet_placements() -> [Placement; 2] {
    [Placement::Striped, Placement::Packed { devices_per_tenant: 2 }]
}

/// Index of the antagonist tenant in [`fleet_mix`]: the write-heavy
/// bursty `batch` tenant whose flush bursts interfere with the victims'
/// read tails.
pub const FLEET_ANTAGONIST: usize = 2;

/// Per-tenant offered-rate multipliers, as fractions of the *fleet's*
/// aggregate calibrated service rate (`devices / service_gap`): two
/// read-leaning victims at 0.2x each plus the bursty antagonist at 0.4x.
/// Total offered load is 0.8x of fleet capacity at every grid point, so
/// tables are comparable across device counts — per-device load stays
/// constant as the fleet grows.
pub const FLEET_TENANT_LOADS: [f64; 3] = [0.2, 0.2, 0.4];

/// Burst shape of the antagonist's arrivals: bursts of 64 requests at 8x
/// the long-run rate (same shape as [`LOAD_BURST`]).
pub const FLEET_BURST: (u32, u32) = (64, 8);

/// The X8 tenant mix for a fleet of `devices` drives: `web` (hm_1-like,
/// read-heavy victim), `usr` (usr_0-like victim), and `batch` (proj_0-like
/// write-heavy antagonist, bursty arrivals). Arrival rates are the
/// [`FLEET_TENANT_LOADS`] fractions of the fleet's aggregate service rate,
/// so the mix depends on the device count but every tenant's seed is
/// fixed — the same tenant replays byte-identical request mixes at every
/// grid point with the same device count.
pub fn fleet_mix(opts: &Opts, service_gap_ns: u64, devices: usize) -> TenantMix {
    let rate = |mult: f64| {
        ((service_gap_ns as f64 / (mult * devices as f64)) as u64).max(1)
    };
    let (burst_len, peak_to_mean) = FLEET_BURST;
    TenantMix::new(vec![
        TenantSpec {
            name: "web".into(),
            profile: reqblock_trace::profiles::hm_1().scaled(opts.scale),
            process: ArrivalProcess::Poisson {
                mean_interarrival_ns: rate(FLEET_TENANT_LOADS[0]),
            },
            seed: 0xF1EE_7E01,
        },
        TenantSpec {
            name: "usr".into(),
            profile: reqblock_trace::profiles::usr_0().scaled(opts.scale),
            process: ArrivalProcess::Poisson {
                mean_interarrival_ns: rate(FLEET_TENANT_LOADS[1]),
            },
            seed: 0xF1EE_7E02,
        },
        TenantSpec {
            name: "batch".into(),
            profile: reqblock_trace::profiles::proj_0().scaled(opts.scale),
            process: ArrivalProcess::Bursty {
                mean_interarrival_ns: rate(FLEET_TENANT_LOADS[2]),
                burst_len,
                peak_to_mean,
            },
            seed: 0xF1EE_7E03,
        },
    ])
}

/// One analysed X8 grid point: the with/without-antagonist run pair.
pub struct FleetPoint {
    /// Placement map of this point.
    pub placement: Placement,
    /// Devices in the fleet.
    pub devices: usize,
    /// The noisy-neighbor run pair (loaded + solo aggregates).
    pub nn: NoisyNeighbor,
    /// Offered rate per tenant (requests/s), mix order.
    pub offered_per_s: Vec<f64>,
    /// Per-device telemetry JSONL documents (headline point only).
    pub telemetry: Vec<String>,
}

/// Everything `repro fleet` produces.
pub struct FleetReport {
    /// The X8 table: per-tenant and fleet-wide rows per grid point.
    pub table: Table,
    /// Per-device telemetry documents from the headline grid point, for
    /// the rotating shard writer.
    pub telemetry: Vec<String>,
    /// Devices simulated across the whole grid (both runs of every pair).
    pub devices_simulated: usize,
    /// Host wall-clock seconds for the whole grid (throughput reporting).
    pub elapsed_s: f64,
}

/// Run the X8 grid: [`fleet_placements`] x `devices_list`, each point a
/// noisy-neighbor pair over [`fleet_mix`] on uniform paper devices
/// (Req-block, 32 MB, queue depth 8 — eviction flushes retire in the
/// background like the X6/X7 runs, which is what lets one tenant's flush
/// bursts queue behind another tenant's reads).
///
/// Calibration follows the X6 pattern: one serial plan-time probe replays
/// the ts_0 mix back-to-back to find the device's service gap; tenant
/// rates are [`FLEET_TENANT_LOADS`] fractions of the fleet's aggregate
/// service rate. Each fleet run parallelizes over devices on the shared
/// pool; grid points run in sequence. Every stage is deterministic, so
/// the table is byte-identical at any `--threads` value.
///
/// Per-device telemetry is captured for the headline point only — the
/// first placement at the smallest device count — to bound output size;
/// each document carries `device`/`devices`/`placement` meta tags.
pub(crate) fn fleet_points(opts: &Opts, devices_list: &[usize]) -> Vec<FleetPoint> {
    assert!(!devices_list.is_empty(), "fleet sweep needs at least one device count");
    let probe_src = TraceSource::Synthetic(reqblock_trace::profiles::ts_0().scaled(opts.scale));
    let requests = probe_src.shared_requests();
    let probe: Vec<reqblock_trace::Request> =
        requests.iter().map(|r| reqblock_trace::Request { time_ns: 0, ..*r }).collect();
    let cal = reqblock_sim::run_trace(&SimConfig::paper(CacheSizeMb::Mb32, PolicyKind::Lru), probe);
    let service_gap_ns = (cal.metrics.max_response_ns / requests.len() as u64).max(1);
    let device = SimConfig::paper(CacheSizeMb::Mb32, PolicyKind::ReqBlock(ReqBlockConfig::paper()))
        .with_submit(SubmitMode::Queued { depth: 8 });
    let ctl = FleetControl::threads(opts.threads);
    let headline = (fleet_placements()[0], devices_list[0]);
    let mut points = Vec::new();
    for placement in fleet_placements() {
        for &devices in devices_list {
            let mix = fleet_mix(opts, service_gap_ns, devices);
            let offered_per_s =
                mix.tenants.iter().map(|t| t.process.offered_rate_per_s()).collect();
            let mut cfg = FleetConfig::uniform(devices, device.clone());
            cfg.placement = placement;
            cfg.telemetry = (placement, devices) == headline;
            let loaded = reqblock_sim::run_fleet(&cfg, &mix, &ctl);
            let mut solo_cfg = cfg.clone();
            solo_cfg.telemetry = false;
            let solo =
                reqblock_sim::run_fleet_excluding(&solo_cfg, &mix, Some(FLEET_ANTAGONIST), &ctl);
            let nn = NoisyNeighbor {
                loaded: loaded.metrics,
                solo: solo.metrics,
                antagonist: FLEET_ANTAGONIST,
            };
            points.push(FleetPoint {
                placement,
                devices,
                nn,
                offered_per_s,
                telemetry: loaded.telemetry,
            });
        }
    }
    points
}

/// Render the X8 table from analysed points (order of [`fleet_points`]):
/// one row per tenant plus a `(fleet)` row per grid point. The `p99 solo`
/// and `NN delta` columns compare against the same-seed run without the
/// antagonist ("-" for the antagonist itself); `Worst-dev p99` is reported
/// on the fleet row.
pub(crate) fn fleet_build(points: &[FleetPoint]) -> Table {
    let mut t = Table::new(
        "Extension - X8: fleet-scale multi-tenant QoS (web+usr vs bursty batch antagonist, qd8, 32MB)",
        &[
            "Placement",
            "Devices",
            "Tenant",
            "Offered (kreq/s)",
            "p50 (ms)",
            "p99 (ms)",
            "p99.9 (ms)",
            "p99 solo (ms)",
            "NN delta (ms)",
            "Worst-dev p99 (ms)",
        ],
    );
    let fmt_opt = |v: Option<f64>| v.map(f3).unwrap_or_else(|| "-".into());
    for p in points {
        let loaded = &p.nn.loaded;
        for (tenant, stats) in loaded.per_tenant.iter().enumerate() {
            let solo = if tenant == p.nn.antagonist {
                None
            } else {
                p.nn.solo.per_tenant[tenant].percentile_ms(0.99)
            };
            t.push_row(vec![
                p.placement.name().to_string(),
                p.devices.to_string(),
                stats.name.clone(),
                f2(p.offered_per_s[tenant] / 1e3),
                fmt_opt(stats.percentile_ms(0.50)),
                fmt_opt(stats.percentile_ms(0.99)),
                fmt_opt(stats.percentile_ms(0.999)),
                fmt_opt(solo),
                fmt_opt(p.nn.p99_delta_ms(tenant)),
                "-".into(),
            ]);
        }
        t.push_row(vec![
            p.placement.name().to_string(),
            p.devices.to_string(),
            "(fleet)".into(),
            f2(p.offered_per_s.iter().sum::<f64>() / 1e3),
            f3(loaded.fleet_percentile_ms(0.50)),
            f3(loaded.fleet_percentile_ms(0.99)),
            f3(loaded.fleet_percentile_ms(0.999)),
            "-".into(),
            "-".into(),
            f3(loaded.worst_device_p99_ms()),
        ]);
    }
    t
}

/// X8 extension over the default [`FLEET_DEVICES`] grid.
pub fn fleet(opts: &Opts) -> FleetReport {
    fleet_with_devices(opts, &FLEET_DEVICES)
}

/// [`fleet`] over a caller-chosen device-count list (`repro fleet
/// --devices 4,16,64`). The headline telemetry point follows the first
/// entry.
pub fn fleet_with_devices(opts: &Opts, devices_list: &[usize]) -> FleetReport {
    let started = std::time::Instant::now();
    let points = fleet_points(opts, devices_list);
    let table = fleet_build(&points);
    // Each point runs the loaded and the antagonist-withheld fleet.
    let devices_simulated = points.iter().map(|p| p.devices * 2).sum();
    let telemetry = points.into_iter().flat_map(|p| p.telemetry).collect();
    FleetReport { table, telemetry, devices_simulated, elapsed_s: started.elapsed().as_secs_f64() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tiny_opts() -> Opts {
        Opts { scale: 0.001, threads: 2, out_dir: PathBuf::from("/tmp"), trace_dir: None }
    }

    #[test]
    fn tails_has_row_per_trace_policy() {
        let t = tails(&tiny_opts());
        assert_eq!(t.rows.len(), 24); // 6 traces x 4 policies
        // p50 <= p99 <= max per row.
        for row in &t.rows {
            let p50: f64 = row[3].parse().unwrap();
            let p99: f64 = row[5].parse().unwrap();
            let max: f64 = row[6].parse().unwrap();
            assert!(p50 <= p99 + 1e-9 && p99 <= max + 1e-9, "{row:?}");
        }
    }

    #[test]
    fn wear_reports_four_policies() {
        let t = wear(&tiny_opts());
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let wa: f64 = row[5].parse().unwrap();
            assert!(wa >= 1.0);
        }
    }

    #[test]
    fn ablations_cover_all_variants() {
        let t = ablations(&tiny_opts());
        assert_eq!(t.rows.len(), ablation_variants().len() * 2);
    }

    #[test]
    fn fault_sweep_zero_row_is_clean_and_faulty_rows_fault() {
        let t = fault_sweep(&tiny_opts());
        assert_eq!(t.rows.len(), FAULT_SWEEP_PPM.len());
        let zero = &t.rows[0];
        assert_eq!(zero[0], "0");
        for cell in &zero[1..8] {
            assert_eq!(cell, "0", "zero-ppm control must report no faults: {zero:?}");
        }
        assert_eq!(zero[8], "Healthy");
        // The highest rate (1%) over thousands of flash ops must observe
        // at least one fault; the run is seeded, so this is deterministic.
        let hot = t.rows.last().unwrap();
        let total: u64 = hot[1..8].iter().map(|c| c.parse::<u64>().unwrap()).sum();
        assert!(total > 0, "1% fault rate never fired: {hot:?}");
    }

    #[test]
    fn fault_sweep_is_reproducible() {
        let a = fault_sweep(&tiny_opts());
        let b = fault_sweep(&tiny_opts());
        assert_eq!(a.rows, b.rows, "same seed + config must give identical tables");
    }

    #[test]
    fn qdepth_sweep_accepts_custom_depth_list() {
        let t = qdepth_sweep_depths(&tiny_opts(), &[1, 3]);
        assert_eq!(t.rows.len(), 4 * 2);
        for policy in PolicyKind::paper_comparison() {
            for depth in ["1", "3"] {
                assert!(
                    t.rows.iter().any(|row| row[0] == policy.name() && row[1] == depth),
                    "missing row {}/qd{depth}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn load_sweep_covers_grid_and_latency_rises_with_load() {
        let t = load_sweep(&tiny_opts());
        // Per policy: every Poisson step plus one bursty row.
        assert_eq!(t.rows.len(), 4 * (LOAD_SWEEP.len() + 1));
        for policy in PolicyKind::paper_comparison() {
            let rows: Vec<_> = t.rows.iter().filter(|r| r[0] == policy.name()).collect();
            assert_eq!(rows.len(), LOAD_SWEEP.len() + 1, "{}", policy.name());
            // Open loop: driving the same mix 32x harder (0.5x -> 16x) must
            // not *improve* the mean response; past the knee it explodes.
            let lightest: f64 = rows.first().unwrap()[7].parse().unwrap();
            let heaviest: f64 = rows[LOAD_SWEEP.len() - 1][7].parse().unwrap();
            assert!(
                heaviest >= lightest,
                "{}: mean at 16x load {heaviest} < mean at 0.5x {lightest}",
                policy.name()
            );
        }
    }

    #[test]
    fn load_sweep_accepts_custom_rate_list() {
        let t = load_sweep_rates(&tiny_opts(), &[0.5, 4.0]);
        // Per policy: both Poisson steps plus the fixed bursty row.
        assert_eq!(t.rows.len(), 4 * 3);
        for policy in PolicyKind::paper_comparison() {
            for load in ["0.5x", "4x"] {
                assert!(
                    t.rows.iter().any(|row| row[0] == policy.name() && row[2] == load),
                    "missing row {}/{load}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn why_covers_grid_and_attributes_the_tail() {
        let report = why(&tiny_opts());
        let t = &report.table;
        let grid = why_policies().len() * WHY_DEPTHS.len() * WHY_LOADS.len();
        assert_eq!(t.rows.len(), grid);
        assert_eq!(report.traces.len(), grid);
        assert_eq!(report.telemetry.len(), grid);
        let component_names: Vec<&str> = Component::ALL.iter().map(|c| c.name()).collect();
        for row in &t.rows {
            // Component shares are percentages that sum to ~100.
            let total: f64 =
                row[6..12].iter().map(|c| c.trim_end_matches('%').parse::<f64>().unwrap()).sum();
            assert!((total - 100.0).abs() < 0.7, "shares must sum to ~100%: {row:?}");
            let cause = row.last().unwrap().as_str();
            assert!(component_names.contains(&cause), "unknown tail cause {cause}");
        }
        // Overload rows exist and their p99 dominates the light-load p99.
        let p99 = |policy: &str, depth: &str, load: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == policy && r[1] == depth && r[2] == load)
                .unwrap_or_else(|| panic!("missing row {policy}/{depth}/{load}"))[4]
                .parse()
                .unwrap()
        };
        assert!(p99("LRU", "1", "8x") >= p99("LRU", "1", "0.5x"));
        // Every trace document is a loadable trace_event JSON with slices.
        for (stem, json) in &report.traces {
            assert!(stem.starts_with("why_"), "stem {stem}");
            assert!(json.starts_with("{\"traceEvents\":["), "{stem} not a trace doc");
            assert!(json.contains("\"ph\":\"X\""), "{stem} has no slices");
            assert!(json.contains("\"ph\":\"M\""), "{stem} has no track names");
        }
        // Telemetry shards carry the attribution rollup keys.
        for doc in &report.telemetry {
            assert!(doc.contains("attr_sampled_spans"), "shard missing attr rollup");
        }
    }

    #[test]
    fn fleet_covers_grid_with_tenant_and_fleet_rows() {
        let report = fleet(&tiny_opts());
        let points = fleet_placements().len() * FLEET_DEVICES.len();
        // One row per tenant plus the fleet row, per grid point.
        assert_eq!(report.table.rows.len(), points * 4);
        // Telemetry comes from the headline point only: one document per
        // device of the smallest fleet.
        assert_eq!(report.telemetry.len(), FLEET_DEVICES[0]);
        for doc in &report.telemetry {
            assert!(doc.contains("\"experiment\":\"fleet\""), "doc missing meta tag");
        }
        assert_eq!(report.devices_simulated, 2 * (4 + 16) * 2);
        for row in &report.table.rows {
            match row[2].as_str() {
                // Victims always have a solo p99 and a delta.
                "web" | "usr" => {
                    assert_ne!(row[7], "-", "victim must have solo p99: {row:?}");
                    assert_ne!(row[8], "-", "victim must have NN delta: {row:?}");
                    assert_eq!(row[9], "-");
                }
                // The antagonist has no solo run; the fleet row carries the
                // worst-device tail.
                "batch" => {
                    assert_eq!(row[7], "-");
                    assert_eq!(row[8], "-");
                }
                "(fleet)" => {
                    let worst: f64 = row[9].parse().unwrap();
                    let p99: f64 = row[5].parse().unwrap();
                    assert!(worst >= p99 - 1e-9, "worst device cannot beat the blend: {row:?}");
                }
                other => panic!("unexpected tenant {other}"),
            }
        }
    }

    #[test]
    fn fleet_is_thread_invariant() {
        let serial = fleet(&Opts { threads: 1, ..tiny_opts() });
        let parallel = fleet(&Opts { threads: 3, ..tiny_opts() });
        assert_eq!(serial.table.rows, parallel.table.rows);
        assert_eq!(serial.telemetry, parallel.telemetry, "device telemetry must be deterministic");
    }

    #[test]
    fn why_is_thread_invariant() {
        let serial = why(&Opts { threads: 1, ..tiny_opts() });
        let parallel = why(&Opts { threads: 3, ..tiny_opts() });
        assert_eq!(serial.table.rows, parallel.table.rows);
        assert_eq!(serial.traces, parallel.traces, "trace export must be deterministic");
    }

    #[test]
    fn load_sweep_is_thread_invariant() {
        let serial = load_sweep(&Opts { threads: 1, ..tiny_opts() });
        let parallel = load_sweep(&Opts { threads: 3, ..tiny_opts() });
        assert_eq!(serial.rows, parallel.rows, "X6 must be byte-identical at any thread count");
    }

    #[test]
    fn qdepth_sweep_covers_grid_and_depth_one_is_synchronous() {
        let opts = tiny_opts();
        let t = qdepth_sweep(&opts);
        assert_eq!(t.rows.len(), 4 * QDEPTH_SWEEP.len());
        let profile = reqblock_trace::profiles::ts_0().scaled(opts.scale);
        for policy in PolicyKind::paper_comparison() {
            // The depth-1 row reports exactly what a synchronous run of the
            // same job reports.
            let cfg = SimConfig::paper(CacheSizeMb::Mb32, policy);
            let sync = reqblock_sim::run_source(&cfg, &TraceSource::Synthetic(profile.clone()));
            let row = t
                .rows
                .iter()
                .find(|row| row[0] == policy.name() && row[1] == "1")
                .expect("depth-1 row");
            assert_eq!(row[2], f3(sync.metrics.avg_response_ms()), "{}", policy.name());
            assert_eq!(row[3], f3(sync.metrics.response_percentile_ms(0.99)), "{}", policy.name());
            assert_eq!(row[4], sync.metrics.flush_stalls.to_string(), "{}", policy.name());
            // The deepest window can only hide stall time, never add it.
            let stall_qd1: f64 = row[5].parse().unwrap();
            let deepest = t
                .rows
                .iter()
                .find(|row| row[0] == policy.name() && row[1] == "32")
                .expect("depth-32 row");
            let stall_qd32: f64 = deepest[5].parse().unwrap();
            assert!(
                stall_qd32 <= stall_qd1 + 1e-9,
                "{}: qd32 stall {stall_qd32} > qd1 stall {stall_qd1}",
                policy.name()
            );
        }
    }
}
