//! Per-figure experiment runners. See the crate docs for the index.

use crate::report::{f2, f3, pct, Table};
use reqblock_core::ReqBlockConfig;
use reqblock_obs::{Fanout, MemoryRecorder};
use reqblock_sim::probes::{LargeReqHitProbe, SizeCdfProbe};
use reqblock_obs::telemetry::{summary_rows, to_jsonl};
use reqblock_sim::{
    run_source_recorded, run_task_pool, run_trace_recorded, CacheSizeMb, Job, PolicyKind,
    RunResult, SampleInterval, SimConfig, Task, TraceSource,
};
use reqblock_trace::stats::StatsBuilder;
use reqblock_trace::{paper_profiles, Request, TraceStats, WorkloadProfile};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

/// Harness options shared by all experiments.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Trace scale factor (1.0 = the paper's full request counts). Applies
    /// to synthetic workloads only; real trace files replay in full.
    pub scale: f64,
    /// Worker threads for independent runs; defaults to
    /// [`std::thread::available_parallelism`]. `1` is the explicit serial
    /// mode (results are byte-identical either way).
    pub threads: usize,
    /// Output directory for `results/*.md` and `*.csv`.
    pub out_dir: PathBuf,
    /// Directory holding the paper's original traces as `<name>.csv` in
    /// MSR format (e.g. `hm_1.csv`). When a file exists for a workload, it
    /// replaces the synthetic stand-in for every experiment.
    pub trace_dir: Option<PathBuf>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            scale: 0.05,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            out_dir: PathBuf::from("results"),
            trace_dir: None,
        }
    }
}

impl Opts {
    /// The six paper workloads at this scale.
    pub fn profiles(&self) -> Vec<WorkloadProfile> {
        paper_profiles().into_iter().map(|p| p.scaled(self.scale)).collect()
    }

    /// The trace source for one workload: the real trace file when
    /// `trace_dir/<name>.csv` exists, the calibrated synthetic otherwise.
    pub fn source_for(&self, profile: &WorkloadProfile) -> TraceSource {
        if let Some(dir) = &self.trace_dir {
            let path = dir.join(format!("{}.csv", profile.name));
            if path.exists() {
                return TraceSource::MsrFile(path);
            }
        }
        TraceSource::Synthetic(profile.clone())
    }

    /// Materialized requests for one workload (probed experiments).
    pub fn requests_for(&self, profile: &WorkloadProfile) -> Vec<reqblock_trace::Request> {
        self.source_for(profile).requests()
    }

    /// Shared materialized requests for one workload: the process-wide
    /// cached slice when the trace cache is on (the default), so probed
    /// experiments and the sweep's simulation jobs all read the same
    /// memory; a fresh uncached materialization otherwise.
    pub fn shared_for(&self, profile: &WorkloadProfile) -> Arc<[Request]> {
        self.source_for(profile).shared_requests()
    }
}

// ---------------------------------------------------------------------
// Pooled execution plumbing (plan/build split)
//
// Every figure below is split into a *plan* (jobs or per-trace probe
// tasks) and a *build* (results -> Table). The public per-figure entry
// points wire the two through their own pool; `sweep::run_all` instead
// collects every figure's tasks into one barrier-free pool and runs the
// builds afterwards.
// ---------------------------------------------------------------------

/// Unwrap a vector of filled one-shot slots (panics if a task never ran —
/// the pool propagates task panics first, so this only fires on misuse).
pub(crate) fn take_slots<T>(slots: Vec<OnceLock<T>>) -> Vec<T> {
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("pool task must have filled its slot"))
        .collect()
}

/// A planned simulation grid: jobs plus one result slot per job. `tasks`
/// borrows the pool, so create it before assembling the task list and call
/// [`JobPool::take_results`] after the pool has drained.
pub(crate) struct JobPool {
    jobs: Vec<Job>,
    slots: Vec<OnceLock<RunResult>>,
}

impl JobPool {
    pub(crate) fn new(jobs: Vec<Job>) -> Self {
        let slots = jobs.iter().map(|_| OnceLock::new()).collect();
        Self { jobs, slots }
    }

    /// One task per job, routing each result into its slot.
    pub(crate) fn tasks(&self) -> Vec<Task<'_>> {
        self.jobs
            .iter()
            .zip(&self.slots)
            .map(|(job, slot)| {
                Task::new(job.label.clone(), move || {
                    let result = reqblock_sim::run_source(&job.cfg, &job.source);
                    let ok = slot.set(result).is_ok();
                    debug_assert!(ok, "job slot filled twice");
                })
            })
            .collect()
    }

    /// Labelled results in job order (call after the pool has drained).
    pub(crate) fn take_results(self) -> Vec<(String, RunResult)> {
        self.jobs
            .into_iter()
            .zip(take_slots(self.slots))
            .map(|(job, result)| (job.label, result))
            .collect()
    }
}

/// One task per profile, routing `f(opts, profile)` into the matching slot.
pub(crate) fn per_trace_tasks<'s, T: Send + Sync>(
    prefix: &str,
    opts: &'s Opts,
    profiles: &'s [WorkloadProfile],
    slots: &'s [OnceLock<T>],
    f: &'s (dyn Fn(&Opts, &WorkloadProfile) -> T + Sync),
) -> Vec<Task<'s>> {
    profiles
        .iter()
        .zip(slots)
        .map(|(profile, slot)| {
            Task::new(format!("{prefix}/{}", profile.name), move || {
                let ok = slot.set(f(opts, profile)).is_ok();
                debug_assert!(ok, "probe slot filled twice");
            })
        })
        .collect()
}

/// Run `f` once per paper profile on a pool and return results in profile
/// order (the standalone path for probed figures; `repro all` submits the
/// same tasks into the shared pool instead).
fn per_trace<T: Send + Sync>(
    prefix: &str,
    opts: &Opts,
    f: impl Fn(&Opts, &WorkloadProfile) -> T + Sync,
) -> Vec<T> {
    let profiles = opts.profiles();
    let slots: Vec<OnceLock<T>> = profiles.iter().map(|_| OnceLock::new()).collect();
    run_task_pool(per_trace_tasks(prefix, opts, &profiles, &slots, &f), opts.threads);
    take_slots(slots)
}

/// [`reqblock_sim::run_jobs`] via a [`JobPool`] (same semantics; kept as a
/// helper so the per-figure entry points stay one-liners).
pub(crate) fn run_pool(jobs: Vec<Job>, threads: usize) -> Vec<(String, RunResult)> {
    let pool = JobPool::new(jobs);
    run_task_pool(pool.tasks(), threads);
    pool.take_results()
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// Table 1: the SSD configuration in effect (paper values by construction).
pub fn table1() -> Table {
    let c = reqblock_flash::SsdConfig::paper();
    let mut t = Table::new("Table 1 - Experimental settings of the SSD model", &["Parameter", "Value"]);
    let rows: Vec<(&str, String)> = vec![
        ("Capacity", format!("{} GB", c.capacity_bytes >> 30)),
        ("Channel Size", c.channels.to_string()),
        ("Chip Size", c.chips_per_channel.to_string()),
        ("Page per block", c.pages_per_block.to_string()),
        ("Page Size", format!("{} KB", c.page_size / 1024)),
        ("FTL Scheme", "Page level".into()),
        ("Read latency", format!("{} ms", c.read_latency_ns as f64 / 1e6)),
        ("Write latency", format!("{} ms", c.program_latency_ns as f64 / 1e6)),
        ("Erase latency", format!("{} ms", c.erase_latency_ns as f64 / 1e6)),
        ("Transfer (Byte)", format!("{} ns", c.transfer_ns_per_byte)),
        ("GC Threshold", pct(c.gc_threshold)),
        ("DRAM Cache", "16/32/64 MB".into()),
    ];
    for (k, v) in rows {
        t.push_row(vec![k.to_string(), v]);
    }
    t
}

// ---------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------

/// Paper values of Table 2 per trace:
/// `(requests, write_ratio, write_kb, freq_r, freq_r_wr)`.
pub const TABLE2_PAPER: [(&str, u64, f64, f64, f64, f64); 6] = [
    ("hm_1", 609_312, 0.047, 20.0, 0.461, 0.839),
    ("lun_1", 1_894_391, 0.332, 18.6, 0.124, 0.128),
    ("usr_0", 2_237_889, 0.596, 10.3, 0.529, 0.329),
    ("src1_2", 1_907_773, 0.746, 32.5, 0.796, 0.391),
    ("ts_0", 1_801_734, 0.824, 8.0, 0.430, 0.581),
    ("proj_0", 4_224_525, 0.875, 40.9, 0.625, 0.599),
];

/// Table 2 probe for one trace: measured statistics over the shared slice.
pub(crate) fn table2_stats(opts: &Opts, profile: &WorkloadProfile) -> TraceStats {
    let requests = opts.shared_for(profile);
    let mut b = StatsBuilder::new();
    for req in requests.iter() {
        b.add(req);
    }
    b.finish()
}

/// Render Table 2 from the per-trace statistics (profile order).
pub(crate) fn table2_build(opts: &Opts, stats: Vec<TraceStats>) -> Table {
    let mut t = Table::new(
        format!("Table 2 - Trace specifications (synthetic, scale {})", opts.scale),
        &[
            "Trace",
            "Req # (paper)",
            "Req # (ours)",
            "Wr ratio (paper)",
            "Wr ratio (ours)",
            "Wr size KB (paper)",
            "Wr size KB (ours)",
            "Frequent R (paper)",
            "Frequent R (ours)",
            "Frequent Wr (paper)",
            "Frequent Wr (ours)",
        ],
    );
    for ((profile, paper), s) in opts.profiles().into_iter().zip(TABLE2_PAPER).zip(stats) {
        t.push_row(vec![
            profile.name.clone(),
            paper.1.to_string(),
            s.requests.to_string(),
            pct(paper.2),
            pct(s.write_ratio),
            f2(paper.3),
            f2(s.mean_write_kb),
            pct(paper.4),
            pct(s.frequent_ratio),
            pct(paper.5),
            pct(s.frequent_write_ratio),
        ]);
    }
    t
}

/// Table 2: paper trace specifications vs the synthetic traces' measured
/// statistics (at the harness scale). Probes run in parallel per trace.
pub fn table2(opts: &Opts) -> Table {
    table2_build(opts, per_trace("table2", opts, table2_stats))
}

// ---------------------------------------------------------------------
// Figures 2 and 3 (shared runs: LRU, 16 MB, probed)
// ---------------------------------------------------------------------

/// Request-size thresholds (pages) at which the Figure 2 CDFs are reported.
pub const FIG2_SIZES: [u32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Per-trace result of the probed Figure 2/3 run.
pub(crate) struct Fig23Row {
    name: String,
    threshold: u32,
    insert_cdf: Vec<f64>,
    hit_cdf: Vec<f64>,
    episodes: u64,
    episodes_hit: u64,
    hit_fraction: f64,
}

/// Figure 2/3 probe for one trace: one LRU/16MB run feeding both figure
/// consumers through a fanout recorder.
pub(crate) fn fig23_probe(opts: &Opts, profile: &WorkloadProfile) -> Fig23Row {
    let requests = opts.shared_for(profile);
    // The paper's "small" cut-off: the trace's mean request size.
    let mut b = StatsBuilder::new();
    for req in requests.iter() {
        b.add(req);
    }
    let s = b.finish();
    let total_reqs = s.requests;
    let mean_req_pages = if total_reqs == 0 {
        1.0
    } else {
        s.total_page_accesses as f64 / total_reqs as f64
    };
    let threshold = mean_req_pages.round().max(1.0) as u32;

    let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru);
    let mut cdf = SizeCdfProbe::new();
    let mut large = LargeReqHitProbe::new(threshold);
    {
        let mut fan = Fanout::new();
        fan.push(&mut cdf);
        fan.push(&mut large);
        run_trace_recorded(&cfg, requests.iter().copied(), &mut fan);
    }
    large.finish();
    Fig23Row {
        name: profile.name.clone(),
        threshold,
        insert_cdf: FIG2_SIZES.iter().map(|&s| cdf.insert_fraction_upto(s)).collect(),
        hit_cdf: FIG2_SIZES.iter().map(|&s| cdf.hit_fraction_upto(s)).collect(),
        episodes: large.episodes,
        episodes_hit: large.episodes_hit,
        hit_fraction: large.hit_fraction(),
    }
}

/// Render Figures 2 and 3 from the per-trace probe rows (profile order).
pub(crate) fn fig23_build(rows: Vec<Fig23Row>) -> (Table, Table) {
    let mut fig2 = Table::new(
        "Figure 2 - CDF of page inserts and hits vs write request size (16MB cache, LRU)",
        &{
            let mut cols = vec!["Trace", "Series"];
            cols.extend(FIG2_SIZES.iter().map(|s| {
                // leak: tiny, once-per-run label strings
                Box::leak(format!("<= {s}p").into_boxed_str()) as &str
            }));
            cols
        },
    );
    let mut fig3 = Table::new(
        "Figure 3 - Hit statistics of large-request pages (16MB cache, LRU)",
        &["Trace", "Large threshold (pages)", "Pages hit", "Pages not hit", "Hit fraction"],
    );
    for row in rows {
        let mut r1 = vec![row.name.clone(), "Page Insert".into()];
        r1.extend(row.insert_cdf.iter().map(|&v| f3(v)));
        fig2.push_row(r1);
        let mut r2 = vec![row.name.clone(), "Page Hit".into()];
        r2.extend(row.hit_cdf.iter().map(|&v| f3(v)));
        fig2.push_row(r2);
        fig3.push_row(vec![
            row.name,
            row.threshold.to_string(),
            row.episodes_hit.to_string(),
            (row.episodes - row.episodes_hit).to_string(),
            pct(row.hit_fraction),
        ]);
    }
    (fig2, fig3)
}

/// Figures 2 and 3 from one probed LRU/16MB run per trace (probes run in
/// parallel per trace).
pub fn fig2_fig3(opts: &Opts) -> (Table, Table) {
    fig23_build(per_trace("fig2_fig3", opts, fig23_probe))
}

// ---------------------------------------------------------------------
// Figure 7: delta sensitivity
// ---------------------------------------------------------------------

/// Delta values swept by the Figure 7 reproduction.
pub const FIG7_DELTAS: [u32; 8] = [1, 2, 3, 4, 5, 6, 7, 9];

/// The Figure 7 grid: one Req-block/32MB job per (trace, delta).
pub(crate) fn fig7_jobs(opts: &Opts) -> Vec<Job> {
    opts.profiles()
        .into_iter()
        .flat_map(|profile| {
            FIG7_DELTAS.into_iter().map(move |delta| Job {
                label: format!("{}/d{}", profile.name, delta),
                cfg: SimConfig::paper(
                    CacheSizeMb::Mb32,
                    PolicyKind::ReqBlock(ReqBlockConfig::with_delta(delta)),
                ),
                source: opts.source_for(&profile),
            })
        })
        .collect()
}

/// Render Figure 7 from the grid results (job order of [`fig7_jobs`]).
pub(crate) fn fig7_build(opts: &Opts, results: Vec<(String, RunResult)>) -> (Table, Table) {
    let delta_cols: Vec<String> = FIG7_DELTAS.iter().map(|d| format!("d={d}")).collect();
    let mut cols: Vec<&str> = vec!["Trace"];
    cols.extend(delta_cols.iter().map(|s| s.as_str()));
    let mut hits = Table::new(
        "Figure 7a - Hit ratio vs delta (32MB, normalized to delta=1)",
        &cols,
    );
    let mut resp = Table::new(
        "Figure 7b - I/O response time vs delta (32MB, normalized to delta=1)",
        &cols,
    );

    let by_label: HashMap<&str, &RunResult> =
        results.iter().map(|(l, r)| (l.as_str(), r)).collect();
    for profile in opts.profiles() {
        let base = &by_label[format!("{}/d1", profile.name).as_str()];
        let base_hit = base.metrics.hit_ratio();
        let base_resp = base.metrics.avg_response_ms();
        let mut hrow = vec![profile.name.clone()];
        let mut rrow = vec![profile.name.clone()];
        for d in FIG7_DELTAS {
            let r = &by_label[format!("{}/d{}", profile.name, d).as_str()];
            hrow.push(f3(r.metrics.hit_ratio() / base_hit.max(f64::MIN_POSITIVE)));
            rrow.push(f3(r.metrics.avg_response_ms() / base_resp.max(f64::MIN_POSITIVE)));
        }
        hits.push_row(hrow);
        resp.push_row(rrow);
    }
    (hits, resp)
}

/// Figure 7: hit ratio and response time of Req-block at 32 MB for a range
/// of delta values, normalized to delta = 1.
pub fn fig7(opts: &Opts) -> (Table, Table) {
    fig7_build(opts, run_pool(fig7_jobs(opts), opts.threads))
}

// ---------------------------------------------------------------------
// Figures 8-12: the policy comparison grid
// ---------------------------------------------------------------------

/// Results of the (policy x cache size x trace) grid behind Figures 8-12.
pub struct Comparison {
    /// `(trace, cache, policy_name) -> result`.
    results: HashMap<(String, CacheSizeMb, &'static str), RunResult>,
    traces: Vec<String>,
    /// `(label, host_elapsed_s, requests)` per job, in grid order.
    perf: Vec<(String, f64, u64)>,
}

impl Comparison {
    /// Look up one run.
    pub fn get(&self, trace: &str, cache: CacheSizeMb, policy: &'static str) -> &RunResult {
        &self.results[&(trace.to_string(), cache, policy)]
    }

    /// Trace names in paper order.
    pub fn traces(&self) -> &[String] {
        &self.traces
    }

    /// Per-job host wall-clock data: `(label, host_elapsed_s, requests)`.
    pub fn perf(&self) -> &[(String, f64, u64)] {
        &self.perf
    }
}

/// Policy display names in the paper's comparison order.
pub const COMPARISON_POLICIES: [&str; 4] = ["LRU", "BPLRU", "VBBMS", "Req-block"];

/// The comparison grid's jobs, in (trace, cache, policy) nesting order.
pub(crate) fn comparison_jobs(opts: &Opts) -> Vec<Job> {
    let mut jobs = Vec::new();
    for profile in opts.profiles() {
        for cache in CacheSizeMb::ALL {
            for policy in PolicyKind::paper_comparison() {
                jobs.push(Job {
                    label: format!("{}/{}/{}", profile.name, cache, policy.name()),
                    cfg: SimConfig::paper(cache, policy),
                    source: opts.source_for(&profile),
                });
            }
        }
    }
    jobs
}

/// Assemble the [`Comparison`] from grid results (job order of
/// [`comparison_jobs`] — the key rebuild walks the same nesting).
pub(crate) fn comparison_build(opts: &Opts, results: Vec<(String, RunResult)>) -> Comparison {
    let mut keys = Vec::new();
    for profile in opts.profiles() {
        for cache in CacheSizeMb::ALL {
            for policy in PolicyKind::paper_comparison() {
                keys.push((profile.name.clone(), cache, policy.name()));
            }
        }
    }
    debug_assert_eq!(keys.len(), results.len());
    let perf = results
        .iter()
        .map(|(label, r)| (label.clone(), r.host_elapsed_s, r.metrics.requests))
        .collect();
    let map = keys
        .into_iter()
        .zip(results)
        .map(|(key, (_label, result))| (key, result))
        .collect();
    Comparison {
        results: map,
        traces: opts.profiles().iter().map(|p| p.name.clone()).collect(),
        perf,
    }
}

/// Run the full comparison grid (4 policies x 3 cache sizes x 6 traces).
pub fn comparison(opts: &Opts) -> Comparison {
    comparison_build(opts, run_pool(comparison_jobs(opts), opts.threads))
}

/// Replay-throughput summary of the comparison grid: host wall-clock and
/// requests/s per job (the per-job timing `run_jobs` workers now keep).
pub fn perf_table(cmp: &Comparison) -> Table {
    let mut t = Table::new(
        "Run performance - host wall-clock per comparison job",
        &["Job", "Requests", "Host time (s)", "Req/s"],
    );
    for (label, elapsed, requests) in cmp.perf() {
        let rps = if *elapsed > 0.0 { *requests as f64 / elapsed } else { 0.0 };
        t.push_row(vec![
            label.clone(),
            requests.to_string(),
            format!("{elapsed:.3}"),
            format!("{rps:.0}"),
        ]);
    }
    t
}

/// Figure 8: mean I/O response time normalized to LRU, plus LRU absolute ms.
pub fn fig8(cmp: &Comparison) -> Table {
    let mut cols = vec!["Trace", "Cache"];
    cols.extend(COMPARISON_POLICIES);
    cols.push("LRU abs (ms)");
    let mut t = Table::new("Figure 8 - I/O response time (normalized to LRU)", &cols);
    for trace in cmp.traces() {
        for cache in CacheSizeMb::ALL {
            let lru = cmp.get(trace, cache, "LRU").metrics.avg_response_ms();
            let mut row = vec![trace.clone(), cache.to_string()];
            for p in COMPARISON_POLICIES {
                let v = cmp.get(trace, cache, p).metrics.avg_response_ms();
                row.push(f3(v / lru.max(f64::MIN_POSITIVE)));
            }
            row.push(f3(lru));
            t.push_row(row);
        }
    }
    t
}

/// Figure 9: hit ratio normalized to Req-block, plus Req-block absolute.
pub fn fig9(cmp: &Comparison) -> Table {
    let mut cols = vec!["Trace", "Cache"];
    cols.extend(COMPARISON_POLICIES);
    cols.push("Req-block abs");
    let mut t = Table::new("Figure 9 - Cache hit ratio (normalized to Req-block)", &cols);
    for trace in cmp.traces() {
        for cache in CacheSizeMb::ALL {
            let rb = cmp.get(trace, cache, "Req-block").metrics.hit_ratio();
            let mut row = vec![trace.clone(), cache.to_string()];
            for p in COMPARISON_POLICIES {
                let v = cmp.get(trace, cache, p).metrics.hit_ratio();
                row.push(f3(v / rb.max(f64::MIN_POSITIVE)));
            }
            row.push(f3(rb));
            t.push_row(row);
        }
    }
    t
}

/// Figure 10: mean pages per eviction at 32 MB (block-granularity schemes).
pub fn fig10(cmp: &Comparison) -> Table {
    let mut cols = vec!["Trace"];
    cols.extend(["BPLRU", "VBBMS", "Req-block"]);
    let mut t = Table::new("Figure 10 - Average pages per eviction (32MB)", &cols);
    for trace in cmp.traces() {
        let mut row = vec![trace.clone()];
        for p in ["BPLRU", "VBBMS", "Req-block"] {
            row.push(f2(cmp.get(trace, CacheSizeMb::Mb32, p).metrics.avg_pages_per_eviction()));
        }
        t.push_row(row);
    }
    t
}

/// Figure 11: flash write count (user flush programs, 10^6) at 32 MB.
pub fn fig11(cmp: &Comparison) -> Table {
    let mut cols = vec!["Trace"];
    cols.extend(COMPARISON_POLICIES);
    let mut t = Table::new("Figure 11 - Write count to flash (x10^6, 32MB)", &cols);
    for trace in cmp.traces() {
        let mut row = vec![trace.clone()];
        for p in COMPARISON_POLICIES {
            row.push(f3(cmp.get(trace, CacheSizeMb::Mb32, p).flash_user_writes() as f64 / 1e6));
        }
        t.push_row(row);
    }
    t
}

/// Figure 12: mean metadata size (KB) per scheme and cache size, averaged
/// over traces, with the overhead as a fraction of cache capacity.
pub fn fig12(cmp: &Comparison) -> Table {
    let mut cols = vec!["Cache"];
    for p in COMPARISON_POLICIES {
        cols.push(p);
    }
    let mut t = Table::new("Figure 12 - Space overhead (KB, mean over traces)", &cols);
    for cache in CacheSizeMb::ALL {
        let mut row = vec![cache.to_string()];
        for p in COMPARISON_POLICIES {
            let mean_bytes: f64 = cmp
                .traces()
                .iter()
                .map(|tr| cmp.get(tr, cache, p).metrics.avg_metadata_bytes())
                .sum::<f64>()
                / cmp.traces().len() as f64;
            let frac = mean_bytes / (cache.pages() as f64 * 4096.0);
            row.push(format!("{:.1} ({:.2}%)", mean_bytes / 1024.0, frac * 100.0));
        }
        t.push_row(row);
    }
    t
}

/// Mean normalized response time and hit ratio per policy (bar-chart data
/// for the `repro` terminal output).
pub fn policy_means(cmp: &Comparison) -> Vec<(String, f64, f64)> {
    COMPARISON_POLICIES
        .iter()
        .map(|&p| {
            let mut resp = 0.0;
            let mut hits = 0.0;
            let mut n = 0.0;
            for trace in cmp.traces() {
                for cache in CacheSizeMb::ALL {
                    let lru = cmp.get(trace, cache, "LRU").metrics.avg_response_ms();
                    let rb = cmp.get(trace, cache, "Req-block").metrics.hit_ratio();
                    let r = cmp.get(trace, cache, p);
                    resp += r.metrics.avg_response_ms() / lru.max(f64::MIN_POSITIVE);
                    hits += r.metrics.hit_ratio() / rb.max(f64::MIN_POSITIVE);
                    n += 1.0;
                }
            }
            (p.to_string(), resp / n, hits / n)
        })
        .collect()
}

/// Headline summary: mean improvement of Req-block over each baseline, in
/// the same terms the paper quotes (§4.2.2, §4.2.3, §4.2.4).
pub fn summary(cmp: &Comparison) -> Table {
    let mut t = Table::new(
        "Summary - Req-block vs baselines (mean over traces and cache sizes)",
        &["Baseline", "Response time reduction", "Hit ratio improvement", "Flash write reduction"],
    );
    for base in ["LRU", "BPLRU", "VBBMS"] {
        let mut resp_gain = 0.0;
        let mut hit_gain = 0.0;
        let mut write_gain = 0.0;
        let mut n_rh = 0.0;
        let mut n_w = 0.0;
        for trace in cmp.traces() {
            for cache in CacheSizeMb::ALL {
                let rb = cmp.get(trace, cache, "Req-block");
                let bl = cmp.get(trace, cache, base);
                resp_gain += 1.0
                    - rb.metrics.avg_response_ms()
                        / bl.metrics.avg_response_ms().max(f64::MIN_POSITIVE);
                hit_gain += rb.metrics.hit_ratio() / bl.metrics.hit_ratio().max(f64::MIN_POSITIVE)
                    - 1.0;
                n_rh += 1.0;
            }
            // The paper's write-count comparison is at 32 MB.
            let rb = cmp.get(trace, CacheSizeMb::Mb32, "Req-block");
            let bl = cmp.get(trace, CacheSizeMb::Mb32, base);
            write_gain +=
                1.0 - rb.flash_user_writes() as f64 / (bl.flash_user_writes() as f64).max(1.0);
            n_w += 1.0;
        }
        t.push_row(vec![
            base.to_string(),
            pct(resp_gain / n_rh),
            pct(hit_gain / n_rh),
            pct(write_gain / n_w),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 13: list occupancy over time
// ---------------------------------------------------------------------

/// Per-trace result of the probed Figure 13 run.
pub(crate) struct Fig13Row {
    name: String,
    /// `(request index, [IRL, SRL, DRL] pages)` per sample.
    samples: Vec<(u64, [u64; 3])>,
    /// Mean share of cached pages per list over the samples.
    shares: [f64; 3],
}

/// Figure 13 probe for one trace: a recorded Req-block/32MB run whose
/// periodic sampler captures the `irl_pages`/`srl_pages`/`drl_pages` series.
pub(crate) fn fig13_probe(opts: &Opts, profile: &WorkloadProfile) -> Fig13Row {
    let sample_every = ((10_000.0 * opts.scale) as u64).max(100);
    let cfg = SimConfig::paper(CacheSizeMb::Mb32, PolicyKind::ReqBlock(ReqBlockConfig::paper()))
        .with_sampling(SampleInterval::Requests(sample_every));
    let mut rec = MemoryRecorder::default();
    let requests = opts.shared_for(profile);
    run_trace_recorded(&cfg, requests.iter().copied(), &mut rec);
    let irl = rec.series_points("irl_pages");
    let srl = rec.series_points("srl_pages");
    let drl = rec.series_points("drl_pages");
    let mut samples = Vec::new();
    let mut sums = [0f64; 3];
    let mut n = 0f64;
    for ((&(idx, irl_v), &(_, srl_v)), &(_, drl_v)) in irl.iter().zip(srl).zip(drl) {
        let occ = [irl_v, srl_v, drl_v];
        samples.push((idx, [occ[0] as u64, occ[1] as u64, occ[2] as u64]));
        let total: f64 = occ.iter().sum();
        if total > 0.0 {
            for i in 0..3 {
                sums[i] += occ[i] / total;
            }
            n += 1.0;
        }
    }
    let n = n.max(1.0);
    Fig13Row { name: profile.name.clone(), samples, shares: [sums[0] / n, sums[1] / n, sums[2] / n] }
}

/// Render Figure 13 from the per-trace probe rows (profile order).
pub(crate) fn fig13_build(opts: &Opts, rows: Vec<Fig13Row>) -> (Table, Table) {
    let sample_every = ((10_000.0 * opts.scale) as u64).max(100);
    let mut samples_table = Table::new(
        format!("Figure 13 - Req-block list occupancy (32MB, sampled every {sample_every} requests)"),
        &["Trace", "Request #", "IRL pages", "SRL pages", "DRL pages"],
    );
    let mut shares = Table::new(
        "Figure 13 (summary) - Mean share of cached pages per list",
        &["Trace", "IRL", "SRL", "DRL"],
    );
    for row in rows {
        for (idx, occ) in &row.samples {
            samples_table.push_row(vec![
                row.name.clone(),
                idx.to_string(),
                occ[0].to_string(),
                occ[1].to_string(),
                occ[2].to_string(),
            ]);
        }
        shares.push_row(vec![
            row.name,
            pct(row.shares[0]),
            pct(row.shares[1]),
            pct(row.shares[2]),
        ]);
    }
    (samples_table, shares)
}

/// Figure 13: Req-block per-list page counts sampled every `10_000 * scale`
/// requests at 32 MB (the paper samples every 10 000 at full scale). The
/// samples come from the observability layer's periodic sampler: a
/// [`MemoryRecorder`] attached to each run captures the
/// `irl_pages`/`srl_pages`/`drl_pages` time series; traces run in parallel.
pub fn fig13(opts: &Opts) -> (Table, Table) {
    fig13_build(opts, per_trace("fig13", opts, fig13_probe))
}

// ---------------------------------------------------------------------
// Telemetry: an instrumented example run
// ---------------------------------------------------------------------

/// One fully instrumented, seeded run: Req-block at 16 MB over `trace` with
/// the periodic sampler on. Returns the JSONL telemetry document
/// (`reqblock-obs/1` schema) and a human-readable end-of-run summary table.
/// Deterministic: the same trace and scale produce byte-identical JSONL.
pub fn telemetry(opts: &Opts, trace: &str) -> (String, Table) {
    let profile = opts
        .profiles()
        .into_iter()
        .find(|p| p.name == trace)
        .unwrap_or_else(|| panic!("unknown trace {trace:?}"));
    let sample_every = ((10_000.0 * opts.scale) as u64).max(100);
    let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper()))
        .with_sampling(SampleInterval::Requests(sample_every));
    let mut rec = MemoryRecorder::default();
    run_source_recorded(&cfg, &opts.source_for(&profile), &mut rec);
    let meta = [
        ("trace", profile.name.clone()),
        ("policy", cfg.policy.name().to_string()),
        ("cache", "16MB".to_string()),
        ("scale", format!("{}", opts.scale)),
        ("sample_every", sample_every.to_string()),
    ];
    let jsonl = to_jsonl(&rec, &meta);
    let mut t = Table::new(
        format!("Telemetry summary - {} / {} / 16MB", profile.name, cfg.policy.name()),
        &["Kind", "Name", "Value"],
    );
    for (kind, name, value) in summary_rows(&rec) {
        t.push_row(vec![kind, name, value]);
    }
    (jsonl, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Opts {
        Opts { scale: 0.001, threads: 2, out_dir: std::env::temp_dir(), trace_dir: None }
    }

    #[test]
    fn table1_lists_all_parameters() {
        let t = table1();
        assert_eq!(t.rows.len(), 12);
        assert!(t.to_markdown().contains("128 GB"));
        assert!(t.to_markdown().contains("Page level"));
    }

    #[test]
    fn table2_compares_paper_and_measured() {
        let t = table2(&tiny_opts());
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.rows[0][0], "hm_1");
        assert_eq!(t.rows[5][0], "proj_0");
    }

    #[test]
    fn fig2_fig3_produce_rows_per_trace() {
        let (f2t, f3t) = fig2_fig3(&tiny_opts());
        assert_eq!(f2t.rows.len(), 12); // 6 traces x 2 series
        assert_eq!(f3t.rows.len(), 6);
        // CDFs must be monotone across size columns.
        for row in &f2t.rows {
            let vals: Vec<f64> = row[2..].iter().map(|c| c.parse().unwrap()).collect();
            for w in vals.windows(2) {
                assert!(w[0] <= w[1] + 1e-9, "CDF not monotone: {row:?}");
            }
        }
    }

    #[test]
    fn comparison_grid_is_complete() {
        let mut opts = tiny_opts();
        opts.scale = 0.0005;
        let cmp = comparison(&opts);
        for trace in cmp.traces() {
            for cache in CacheSizeMb::ALL {
                for p in COMPARISON_POLICIES {
                    let r = cmp.get(trace, cache, p);
                    assert!(r.metrics.requests > 0);
                }
            }
        }
        let t8 = fig8(&cmp);
        assert_eq!(t8.rows.len(), 18); // 6 traces x 3 sizes
        let t9 = fig9(&cmp);
        assert_eq!(t9.rows.len(), 18);
        let t10 = fig10(&cmp);
        assert_eq!(t10.rows.len(), 6);
        let t11 = fig11(&cmp);
        assert_eq!(t11.rows.len(), 6);
        let t12 = fig12(&cmp);
        assert_eq!(t12.rows.len(), 3);
        let s = summary(&cmp);
        assert_eq!(s.rows.len(), 3);
        // Satellite: every grid job keeps its own host wall-clock.
        assert_eq!(cmp.perf().len(), 6 * 3 * 4);
        assert!(cmp.perf().iter().all(|(_, elapsed, reqs)| *elapsed > 0.0 && *reqs > 0));
        let tp = perf_table(&cmp);
        assert_eq!(tp.rows.len(), 72);
    }

    #[test]
    fn fig13_reports_samples_and_shares() {
        let (samples, shares) = fig13(&tiny_opts());
        assert!(!samples.rows.is_empty());
        assert_eq!(shares.rows.len(), 6);
    }

    #[test]
    fn telemetry_run_is_deterministic_and_sampled() {
        let opts = tiny_opts();
        let (jsonl_a, summary) = telemetry(&opts, "ts_0");
        let (jsonl_b, _) = telemetry(&opts, "ts_0");
        assert_eq!(jsonl_a, jsonl_b, "seeded telemetry must be byte-identical");
        assert!(jsonl_a.starts_with("{\"type\":\"run_meta\""));
        for series in ["hit_ratio", "write_amp", "chan_util"] {
            assert!(
                jsonl_a.contains(&format!("\"series\":\"{series}\"")),
                "missing series {series}"
            );
        }
        assert!(!summary.rows.is_empty());
    }
}

#[cfg(test)]
mod trace_dir_tests {
    use super::*;
    use reqblock_sim::TraceSource;

    #[test]
    fn source_for_prefers_existing_trace_files() {
        let dir = std::env::temp_dir().join("reqblock_trace_dir_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Export a tiny ts_0 as the "real" trace file.
        let profile = reqblock_trace::profiles::ts_0().scaled(0.001);
        let reqs = reqblock_trace::SyntheticTrace::new(profile).generate_all();
        reqblock_trace::msr::write_file(&dir.join("ts_0.csv"), &reqs).unwrap();

        let opts = Opts { trace_dir: Some(dir.clone()), ..Opts::default() };
        let profiles = opts.profiles();
        let ts0 = profiles.iter().find(|p| p.name == "ts_0").unwrap();
        let hm1 = profiles.iter().find(|p| p.name == "hm_1").unwrap();
        // ts_0.csv exists -> file source; hm_1.csv does not -> synthetic.
        match opts.source_for(ts0) {
            TraceSource::MsrFile(path) => assert!(path.ends_with("ts_0.csv")),
            other => panic!("expected file source, got {other:?}"),
        }
        assert!(matches!(opts.source_for(hm1), TraceSource::Synthetic(_)));
        // The file source loads the exported requests.
        assert_eq!(opts.requests_for(ts0).len(), reqs.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
