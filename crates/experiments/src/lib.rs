//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `figures::*` function runs the simulations behind one artifact of
//! the paper's evaluation section and renders a [`report::Table`]:
//!
//! | function | paper artifact |
//! |----------|----------------|
//! | `figures::table1` | Table 1 — SSDsim settings |
//! | `figures::table2` | Table 2 — trace specifications (paper vs measured) |
//! | `figures::fig2` | Figure 2 — insert/hit CDFs vs request size |
//! | `figures::fig3` | Figure 3 — large-request hit statistics |
//! | `figures::fig7` | Figure 7 — delta sensitivity |
//! | `figures::comparison` + `fig8`..`fig12` | Figures 8-12 — policy comparison grid |
//! | `figures::fig13` | Figure 13 — Req-block list occupancy over time |
//!
//! The `repro` binary exposes them as subcommands; results are printed and
//! written into `results/`. `repro all` goes through [`sweep::run_all`],
//! which submits every figure's jobs into one barrier-free work pool and
//! renders identical tables from the pooled results.

pub mod extensions;
pub mod figures;
pub mod report;
pub mod sweep;

pub use figures::Opts;
pub use report::Table;
