//! The simulated SSD: DRAM write buffer + FTL + flash timeline.

use crate::config::{SampleInterval, SimConfig};
use crate::metrics::Metrics;
use reqblock_cache::{Access, EvictionBatch, Placement as CachePlacement, WriteBuffer};
use reqblock_flash::{FaultStats, FlashTimeline, OpCounters};
use reqblock_ftl::{Ftl, FtlStats, Health, Placement as FtlPlacement};
use reqblock_obs::{NoopRecorder, PageEvent, Recorder};
use reqblock_trace::{OpType, Request};

/// One simulated SSD instance. Feed it requests in trace order via
/// [`Ssd::submit`] (or [`Ssd::submit_recorded`] to stream events into a
/// [`Recorder`]); collect results with the accessors afterwards.
pub struct Ssd {
    cfg: SimConfig,
    cache: Box<dyn WriteBuffer>,
    ftl: Ftl,
    timeline: FlashTimeline,
    metrics: Metrics,
    /// Logical time: pages processed so far (the time base of Eq. 1).
    logical_now: u64,
    /// Monotone request counter (request-block identity).
    req_counter: u64,
    /// Arrival time (ns) of the most recent request — the utilization window.
    last_arrival_ns: u64,
    /// Next `t` (request index or arrival ns, per the sampling mode) at
    /// which the time-series sampler fires. Starts at 0 so the first
    /// request is always sampled.
    next_sample: u64,
    /// Reused eviction-batch collection vector: taken at the top of each
    /// request, drained batch by batch (each batch handed back to the
    /// policy via [`WriteBuffer::recycle`] after its flush), and restored
    /// at the end — no per-request or per-eviction allocation.
    evict_scratch: Vec<EvictionBatch>,
}

impl Ssd {
    /// Build a fresh device per `cfg`.
    pub fn new(cfg: SimConfig) -> Self {
        cfg.ssd.validate().expect("invalid SSD config");
        assert!(cfg.cache_pages > 0, "cache must hold at least one page");
        let cache = cfg.policy.build(cfg.cache_pages, cfg.ssd.pages_per_block);
        let ftl = Ftl::with_faults(&cfg.ssd, cfg.fault.clone());
        let timeline = FlashTimeline::new(&cfg.ssd);
        Self {
            cache,
            ftl,
            timeline,
            metrics: Metrics::default(),
            logical_now: 0,
            req_counter: 0,
            last_arrival_ns: 0,
            next_sample: 0,
            evict_scratch: Vec::new(),
            cfg,
        }
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Flash operation counters (user/GC programs, reads, erases).
    pub fn flash_counters(&self) -> &OpCounters {
        self.timeline.counters()
    }

    /// FTL/GC statistics.
    pub fn ftl_stats(&self) -> &FtlStats {
        self.ftl.stats()
    }

    /// Reliability counters (all zero with the default zero-fault config).
    pub fn fault_stats(&self) -> &FaultStats {
        self.ftl.fault_stats()
    }

    /// Current device health (degrades under fault injection).
    pub fn health(&self) -> Health {
        self.ftl.health()
    }

    /// The cache policy (for occupancy queries and event counters).
    pub fn cache(&self) -> &dyn WriteBuffer {
        self.cache.as_ref()
    }

    /// Run configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    fn flush_batch(&mut self, batch: &EvictionBatch, at: u64) -> u64 {
        if !batch.dirty {
            self.metrics.clean_dropped_pages += batch.lpns.len() as u64;
            return at;
        }
        self.metrics.evictions += 1;
        self.metrics.evicted_pages += batch.lpns.len() as u64;
        let mut done = at;
        // BPLRU padding: fetch the block's missing pages before programming.
        for &lpn in &batch.pad_reads {
            self.metrics.pad_read_pages += 1;
            done = done.max(self.ftl.read_page(lpn, at, &mut self.timeline));
        }
        let placement = match batch.placement {
            CachePlacement::Striped => FtlPlacement::Striped,
            CachePlacement::SingleBlock => FtlPlacement::SingleBlock,
        };
        done.max(self.ftl.write_pages(&batch.lpns, done, placement, &mut self.timeline))
    }

    /// Flush one eviction batch and attribute the time the triggering
    /// request spends waiting for it to the dedicated flush-wait span, so
    /// buffer-induced stalls stay distinguishable from the device service
    /// time of the request's own pages.
    fn flush_and_account<R: Recorder + ?Sized>(
        &mut self,
        batch: &EvictionBatch,
        at: u64,
        on: bool,
        rec: &mut R,
    ) -> u64 {
        let flushed = self.flush_batch(batch, at);
        let stall = flushed.saturating_sub(at);
        if stall > 0 {
            self.metrics.flush_stalls += 1;
            self.metrics.flush_stall_ns += stall as u128;
            if on {
                rec.span("flush_wait", stall);
            }
        }
        flushed
    }

    /// Submit one request; returns its response time in ns.
    pub fn submit(&mut self, req: &Request) -> u64 {
        self.submit_recorded(req, &mut NoopRecorder)
    }

    /// Submit one request, streaming page events, flush-wait spans and
    /// periodic samples into `rec`. With a disabled recorder every
    /// per-event hook is skipped — `rec.enabled()` is consulted once per
    /// request. The recorder is a generic parameter (not `dyn`) so the
    /// plain [`Ssd::submit`] path monomorphizes with [`NoopRecorder`]:
    /// `enabled()` inlines to `false` and the optimizer removes every
    /// recording branch, leaving the uninstrumented hot path bit-identical
    /// in cost to one with no recorder argument at all.
    pub fn submit_recorded<R: Recorder + ?Sized>(&mut self, req: &Request, rec: &mut R) -> u64 {
        let on = rec.enabled();
        let at = req.time_ns;
        let pages = req.page_count();
        let req_id = self.req_counter;
        self.req_counter += 1;
        self.metrics.requests += 1;
        self.last_arrival_ns = self.last_arrival_ns.max(at);
        let mut done = at;
        let mut evictions = std::mem::take(&mut self.evict_scratch);
        match req.op {
            OpType::Write => {
                self.metrics.write_reqs += 1;
                for lpn in req.lpns() {
                    self.logical_now += 1;
                    let a = Access { lpn, req_id, req_pages: pages as u32, now: self.logical_now };
                    let hit = self.cache.write(&a, &mut evictions);
                    self.metrics.write_pages += 1;
                    if hit {
                        self.metrics.write_hits += 1;
                    }
                    if on {
                        rec.page(&PageEvent {
                            lpn,
                            req_id,
                            req_pages: pages as u32,
                            now: self.logical_now,
                            is_write: true,
                            hit,
                        });
                    }
                    // Buffered write: one DRAM access, plus — when this page
                    // forced an eviction — the victim flush it must wait
                    // for: the buffered data cannot be overwritten before it
                    // is safe on flash. Batch evictions amortize this stall
                    // over every page they free (§4.2.2: "each eviction
                    // operation can make more available cache space"), and
                    // striped placement bounds it to about one program
                    // latency, while BPLRU's single-block flushes serialize.
                    done = done.max(at + self.cfg.ssd.dram_access_ns);
                    for batch in evictions.drain(..) {
                        done = done.max(self.flush_and_account(&batch, at, on, rec));
                        self.cache.recycle(batch);
                    }
                }
            }
            OpType::Read => {
                self.metrics.read_reqs += 1;
                for lpn in req.lpns() {
                    self.logical_now += 1;
                    let a = Access { lpn, req_id, req_pages: pages as u32, now: self.logical_now };
                    let hit = self.cache.read(&a, &mut evictions);
                    self.metrics.read_pages += 1;
                    if hit {
                        self.metrics.read_hits += 1;
                        done = done.max(at + self.cfg.ssd.dram_access_ns);
                    } else {
                        done = done.max(self.ftl.read_page(lpn, at, &mut self.timeline));
                    }
                    if on {
                        rec.page(&PageEvent {
                            lpn,
                            req_id,
                            req_pages: pages as u32,
                            now: self.logical_now,
                            is_write: false,
                            hit,
                        });
                    }
                    // Read-caching policies (CFLRU ablation) may evict here;
                    // same synchronous stall as the write path.
                    for batch in evictions.drain(..) {
                        done = done.max(self.flush_and_account(&batch, at, on, rec));
                        self.cache.recycle(batch);
                    }
                }
            }
        }
        self.evict_scratch = evictions;
        let response = done.saturating_sub(at);
        self.metrics.record_response(response);
        if self.cfg.overhead_sample_every > 0 && req_id.is_multiple_of(self.cfg.overhead_sample_every) {
            self.metrics.overhead_samples += 1;
            self.metrics.metadata_bytes_sum += self.cache.metadata_bytes() as u128;
            self.metrics.node_count_sum += self.cache.node_count() as u128;
        }
        if on {
            rec.request_end(req_id);
            self.maybe_sample(req_id, at, rec);
        }
        response
    }

    /// Fire the periodic sampler if the configured interval has elapsed.
    fn maybe_sample<R: Recorder + ?Sized>(&mut self, req_id: u64, arrival_ns: u64, rec: &mut R) {
        let t = match self.cfg.sampling {
            SampleInterval::Off => return,
            SampleInterval::Requests(n) => {
                if req_id < self.next_sample {
                    return;
                }
                self.next_sample = req_id + n.max(1);
                req_id
            }
            SampleInterval::SimTimeNs(dt) => {
                if arrival_ns < self.next_sample {
                    return;
                }
                self.next_sample = arrival_ns + dt.max(1);
                arrival_ns
            }
        };
        self.emit_sample(t, rec);
    }

    /// Snapshot the device state as one point per time series.
    fn emit_sample<R: Recorder + ?Sized>(&self, t: u64, rec: &mut R) {
        rec.sample("hit_ratio", t, self.metrics.hit_ratio());
        rec.sample("write_amp", t, self.timeline.counters().write_amplification());
        rec.sample("chan_util", t, self.timeline.busy().channel_utilization(self.last_arrival_ns));
        let occ = self.cache.len_pages() as f64 / self.cache.capacity_pages() as f64;
        rec.sample("buf_occupancy", t, occ);
        rec.sample("free_blocks", t, self.ftl.free_blocks_total() as f64);
        if !self.cfg.fault.is_inert() {
            rec.sample("bad_blocks", t, self.ftl.bad_blocks_total() as f64);
        }
        if let Some([irl, srl, drl]) = self.cache.list_occupancy() {
            rec.sample("irl_pages", t, irl as f64);
            rec.sample("srl_pages", t, srl as f64);
            rec.sample("drl_pages", t, drl as f64);
        }
    }

    /// Emit the end-of-run rollup into `rec`: flash/FTL/cache/metric
    /// counters, final gauges, and per-channel busy time. No-op when the
    /// recorder is disabled. Runners call this automatically.
    pub fn finish_recording<R: Recorder + ?Sized>(&mut self, rec: &mut R) {
        if !rec.enabled() {
            return;
        }
        let m = &self.metrics;
        rec.counter("requests", m.requests);
        rec.counter("read_reqs", m.read_reqs);
        rec.counter("write_reqs", m.write_reqs);
        rec.counter("read_pages", m.read_pages);
        rec.counter("write_pages", m.write_pages);
        rec.counter("read_hits", m.read_hits);
        rec.counter("write_hits", m.write_hits);
        rec.counter("evictions", m.evictions);
        rec.counter("evicted_pages", m.evicted_pages);
        rec.counter("clean_dropped_pages", m.clean_dropped_pages);
        rec.counter("pad_read_pages", m.pad_read_pages);
        rec.counter("flush_stalls", m.flush_stalls);
        rec.counter("flush_stall_ns", saturate_u64(m.flush_stall_ns));

        let c = *self.timeline.counters();
        rec.counter("flash_user_reads", c.user_reads);
        rec.counter("flash_user_programs", c.user_programs);
        rec.counter("flash_gc_reads", c.gc_reads);
        rec.counter("flash_gc_programs", c.gc_programs);
        rec.counter("flash_erases", c.erases);

        let f = *self.ftl.stats();
        rec.counter("gc_runs", f.gc_runs);
        rec.counter("gc_migrated_pages", f.gc_migrated_pages);
        rec.counter("gc_erased_blocks", f.gc_erased_blocks);
        rec.counter("unmapped_reads", f.unmapped_reads);
        let o = *self.ftl.obs();
        rec.counter("gc_busy_ns", saturate_u64(o.gc_busy_ns));
        rec.gauge("gc_max_pause_ms", o.gc_max_pause_ns as f64 / 1e6);

        // Reliability rollup: emitted only when fault injection is
        // configured, so zero-fault telemetry stays byte-identical to
        // pre-reliability-layer runs.
        if !self.cfg.fault.is_inert() || self.cfg.fault.read_only_free_floor > 0 {
            let fs = *self.ftl.fault_stats();
            rec.counter("fault_read_faults", fs.read_faults);
            rec.counter("fault_read_retries", fs.read_retries);
            rec.counter("fault_read_uncorrectable", fs.read_uncorrectable);
            rec.counter("fault_program_failures", fs.program_failures);
            rec.counter("fault_erase_failures", fs.erase_failures);
            rec.counter("bad_blocks_retired", fs.retired_blocks);
            rec.counter("remapped_pages", fs.remapped_pages);
            rec.counter("rejected_write_pages", fs.rejected_write_pages);
            rec.gauge("bad_blocks", self.ftl.bad_blocks_total() as f64);
            rec.gauge(
                "device_read_only",
                if self.ftl.is_read_only() { 1.0 } else { 0.0 },
            );
        }

        if let Some(ev) = self.cache.events() {
            rec.counter("cache_srl_upgrades", ev.srl_upgrades);
            rec.counter("cache_drl_splits", ev.drl_splits);
            rec.counter("cache_downgrade_merges", ev.downgrade_merges);
            rec.counter("cache_victim_selections", ev.victim_selections);
        }

        let busy = self.timeline.busy().clone();
        rec.counter("flash_waits", busy.waited_ops);
        rec.counter("flash_wait_ns", saturate_u64(busy.wait_ns));
        for (ch, &ns) in busy.channel_busy_ns.iter().enumerate() {
            rec.gauge(&format!("chan{ch}_busy_ms"), ns as f64 / 1e6);
        }
        let chips = &busy.chip_busy_ns;
        if !chips.is_empty() {
            let max = chips.iter().copied().max().unwrap_or(0);
            let mean = chips.iter().map(|&n| n as u128).sum::<u128>() as f64 / chips.len() as f64;
            rec.gauge("chip_busy_ms_max", max as f64 / 1e6);
            rec.gauge("chip_busy_ms_mean", mean / 1e6);
        }

        rec.gauge("hit_ratio", m.hit_ratio());
        rec.gauge("write_amp", c.write_amplification());
        rec.gauge("chan_util", busy.channel_utilization(self.last_arrival_ns));
        rec.gauge(
            "buf_occupancy",
            self.cache.len_pages() as f64 / self.cache.capacity_pages() as f64,
        );
        rec.gauge("free_blocks", self.ftl.free_blocks_total() as f64);
        rec.gauge("avg_response_ms", m.avg_response_ms());
        rec.gauge("p99_response_ms", m.response_percentile_ms(0.99));
        rec.gauge("avg_flush_stall_ms", m.avg_flush_stall_ms());
    }

    /// Flush everything still buffered (end-of-trace). The flush traffic is
    /// counted in the flash counters but not in request response times.
    pub fn drain_cache(&mut self) {
        let at = self.logical_now; // any time after the last request
        for batch in self.cache.drain() {
            if batch.dirty {
                self.metrics.evictions += 1;
                self.metrics.evicted_pages += batch.lpns.len() as u64;
                let placement = match batch.placement {
                    CachePlacement::Striped => FtlPlacement::Striped,
                    CachePlacement::SingleBlock => FtlPlacement::SingleBlock,
                };
                self.ftl.write_pages(&batch.lpns, at, placement, &mut self.timeline);
            }
        }
    }
}

/// Clamp a u128 nanosecond total into the u64 counter domain.
fn saturate_u64(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

impl Ssd {
    /// Nanoseconds the given chip's busy horizon extends past `now`
    /// (diagnostics; 0 when the chip is idle at `now`).
    pub fn chip_lag_ns(&self, chip: usize, now: u64) -> i64 {
        self.timeline.chip_free_at(chip) as i64 - now as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use reqblock_core::ReqBlockConfig;
    use reqblock_obs::MemoryRecorder;

    fn tiny(policy: PolicyKind, cache_pages: usize) -> Ssd {
        Ssd::new(SimConfig::tiny(cache_pages, policy))
    }

    #[test]
    fn buffered_write_is_fast() {
        let mut ssd = tiny(PolicyKind::Lru, 16);
        let r = ssd.submit(&Request::write_pages(0, 0, 2));
        // Two pages, no eviction: response = DRAM access time.
        assert_eq!(r, ssd.config().ssd.dram_access_ns);
        assert_eq!(ssd.metrics().write_pages, 2);
        assert_eq!(ssd.flash_counters().user_programs, 0, "no flash traffic yet");
    }

    #[test]
    fn read_hit_from_buffer_read_miss_from_flash() {
        let mut ssd = tiny(PolicyKind::Lru, 16);
        ssd.submit(&Request::write_pages(0, 0, 1));
        let hit = ssd.submit(&Request::read_pages(1000, 0, 1));
        assert_eq!(hit, ssd.config().ssd.dram_access_ns);
        let miss = ssd.submit(&Request::read_pages(2000, 50, 1));
        assert!(miss > hit, "flash read must be slower than DRAM");
        assert_eq!(ssd.metrics().read_hits, 1);
        assert_eq!(ssd.metrics().read_pages, 2);
    }

    #[test]
    fn eviction_stalls_the_triggering_write() {
        let mut ssd = tiny(PolicyKind::Lru, 4);
        for i in 0..4 {
            ssd.submit(&Request::write_pages(i, i, 1));
        }
        // The 5th write waits for the victim flush: >= transfer + program.
        let r = ssd.submit(&Request::write_pages(100, 100, 1));
        let cfg = &ssd.config().ssd;
        assert!(r >= cfg.page_transfer_ns() + cfg.program_latency_ns);
        assert_eq!(ssd.metrics().evictions, 1);
        assert_eq!(ssd.flash_counters().user_programs, 1);
    }

    #[test]
    fn flush_stall_attributed_to_dedicated_span() {
        let mut ssd = tiny(PolicyKind::Lru, 4);
        let mut rec = MemoryRecorder::default();
        for i in 0..4 {
            ssd.submit_recorded(&Request::write_pages(i, i, 1), &mut rec);
        }
        assert!(rec.span_stats("flush_wait").is_none(), "no eviction yet");
        let r = ssd.submit_recorded(&Request::write_pages(100, 100, 1), &mut rec);
        let span = rec.span_stats("flush_wait").expect("eviction must record a stall");
        assert_eq!(span.count, 1);
        assert_eq!(span.max_ns, r, "whole response is the flush wait here");
        assert_eq!(ssd.metrics().flush_stalls, 1);
        assert_eq!(ssd.metrics().flush_stall_ns, r as u128);
        // Stall accounting is recorder-independent: a fresh device replaying
        // the same requests without a recorder sees the same metrics.
        let mut plain = tiny(PolicyKind::Lru, 4);
        for i in 0..4 {
            plain.submit(&Request::write_pages(i, i, 1));
        }
        plain.submit(&Request::write_pages(100, 100, 1));
        assert_eq!(plain.metrics(), ssd.metrics());
    }

    #[test]
    fn write_hit_absorbs_without_flash_traffic() {
        let mut ssd = tiny(PolicyKind::Lru, 4);
        ssd.submit(&Request::write_pages(0, 7, 1));
        ssd.submit(&Request::write_pages(10, 7, 1));
        assert_eq!(ssd.metrics().write_hits, 1);
        assert_eq!(ssd.flash_counters().user_programs, 0);
    }

    #[test]
    fn reqblock_policy_runs_end_to_end() {
        let mut ssd = tiny(PolicyKind::ReqBlock(ReqBlockConfig::paper()), 32);
        for i in 0..20u64 {
            ssd.submit(&Request::write_pages(i * 10, (i * 3) % 64, 1 + i % 6));
        }
        for i in 0..10u64 {
            ssd.submit(&Request::read_pages(1000 + i, (i * 3) % 64, 1));
        }
        let m = ssd.metrics();
        assert_eq!(m.requests, 30);
        assert!(m.hit_ratio() > 0.0);
        assert!(ssd.cache().list_occupancy().is_some());
    }

    #[test]
    fn drain_flushes_residual_pages() {
        let mut ssd = tiny(PolicyKind::Lru, 16);
        ssd.submit(&Request::write_pages(0, 0, 5));
        assert_eq!(ssd.flash_counters().user_programs, 0);
        ssd.drain_cache();
        assert_eq!(ssd.flash_counters().user_programs, 5);
        assert_eq!(ssd.cache().len_pages(), 0);
    }

    #[test]
    fn response_time_counts_from_arrival() {
        let mut ssd = tiny(PolicyKind::Lru, 16);
        // Arrival far in the future: response is still just the DRAM time.
        let r = ssd.submit(&Request::write_pages(1_000_000_000, 0, 1));
        assert_eq!(r, ssd.config().ssd.dram_access_ns);
    }

    #[test]
    fn overhead_sampling_accumulates() {
        let mut ssd = tiny(PolicyKind::Lru, 16);
        for i in 0..25u64 {
            ssd.submit(&Request::write_pages(i, i % 8, 1));
        }
        // sample_every = 10 in tiny config -> samples at req 0, 10, 20.
        assert_eq!(ssd.metrics().overhead_samples, 3);
        assert!(ssd.metrics().avg_metadata_bytes() > 0.0);
    }

    #[test]
    fn request_sampler_emits_series_on_schedule() {
        let cfg = SimConfig::tiny(16, PolicyKind::ReqBlock(ReqBlockConfig::paper()))
            .with_sampling(SampleInterval::Requests(2));
        let mut ssd = Ssd::new(cfg);
        let mut rec = MemoryRecorder::default();
        for i in 0..5u64 {
            ssd.submit_recorded(&Request::write_pages(i, i, 1), &mut rec);
        }
        // Samples at requests 0, 2, 4.
        let hits = rec.series_points("hit_ratio");
        assert_eq!(hits.iter().map(|&(t, _)| t).collect::<Vec<_>>(), vec![0, 2, 4]);
        // Req-block reports its per-list series too.
        for series in ["write_amp", "chan_util", "buf_occupancy", "free_blocks", "irl_pages"] {
            assert_eq!(rec.series_points(series).len(), 3, "{series}");
        }
    }

    #[test]
    fn sim_time_sampler_respects_interval() {
        let cfg = SimConfig::tiny(16, PolicyKind::Lru)
            .with_sampling(SampleInterval::SimTimeNs(1_000));
        let mut ssd = Ssd::new(cfg);
        let mut rec = MemoryRecorder::default();
        for t in [0u64, 100, 999, 1_500, 1_600, 3_000] {
            ssd.submit_recorded(&Request::write_pages(t, t / 100, 1), &mut rec);
        }
        let pts = rec.series_points("buf_occupancy");
        assert_eq!(pts.iter().map(|&(t, _)| t).collect::<Vec<_>>(), vec![0, 1_500, 3_000]);
        // LRU has no per-list occupancy series.
        assert!(rec.series_points("irl_pages").is_empty());
    }

    #[test]
    fn disabled_recorder_skips_sampling_but_not_metrics() {
        let cfg = SimConfig::tiny(16, PolicyKind::Lru)
            .with_sampling(SampleInterval::Requests(1));
        let mut ssd = Ssd::new(cfg);
        for i in 0..5u64 {
            ssd.submit(&Request::write_pages(i, i, 1));
        }
        assert_eq!(ssd.metrics().requests, 5);
    }

    #[test]
    fn fault_rollup_recorded_only_when_faults_configured() {
        use reqblock_flash::FaultConfig;
        // Zero-fault run: no reliability keys in the rollup at all, so
        // pre-reliability telemetry is byte-identical.
        let mut plain = tiny(PolicyKind::Lru, 4);
        let mut rec = MemoryRecorder::default();
        for i in 0..20u64 {
            plain.submit_recorded(&Request::write_pages(i, i, 1), &mut rec);
        }
        plain.finish_recording(&mut rec);
        assert_eq!(rec.counter_value("fault_read_retries"), 0);
        assert!(rec.gauge_value("device_read_only").is_none());

        // Faulty run: counters and health gauge appear.
        let cfg = SimConfig::tiny(4, PolicyKind::Lru)
            .with_faults(FaultConfig::with_rates(42, 300_000, 0, 0));
        let mut ssd = Ssd::new(cfg);
        let mut rec = MemoryRecorder::default();
        for i in 0..40u64 {
            ssd.submit_recorded(&Request::write_pages(i * 1_000, i, 1), &mut rec);
        }
        for i in 0..40u64 {
            ssd.submit_recorded(&Request::read_pages(100_000 + i * 1_000, i, 1), &mut rec);
        }
        ssd.finish_recording(&mut rec);
        assert!(ssd.fault_stats().read_faults > 0, "30% read faults never fired");
        assert_eq!(rec.counter_value("fault_read_faults"), ssd.fault_stats().read_faults);
        assert_eq!(rec.counter_value("fault_read_retries"), ssd.fault_stats().read_retries);
        assert_eq!(rec.gauge_value("device_read_only"), Some(0.0));
    }

    #[test]
    fn finish_recording_rolls_up_counters_and_gauges() {
        let mut ssd = tiny(PolicyKind::ReqBlock(ReqBlockConfig::paper()), 8);
        let mut rec = MemoryRecorder::default();
        for i in 0..30u64 {
            ssd.submit_recorded(&Request::write_pages(i * 50, i * 2, 2), &mut rec);
        }
        ssd.finish_recording(&mut rec);
        assert_eq!(rec.counter_value("requests"), 30);
        assert_eq!(rec.counter_value("write_pages"), 60);
        assert_eq!(rec.counter_value("flash_user_programs"), ssd.flash_counters().user_programs);
        assert_eq!(
            rec.counter_value("cache_victim_selections"),
            ssd.cache().events().unwrap().victim_selections
        );
        assert!(rec.gauge_value("hit_ratio").is_some());
        assert!(rec.gauge_value("chan0_busy_ms").is_some());
        assert!(rec.gauge_value("avg_response_ms").unwrap() > 0.0);
    }
}
