//! The simulated SSD: DRAM write buffer + FTL + flash timeline.

use crate::config::SimConfig;
use crate::metrics::Metrics;
use crate::probes::Probe;
use reqblock_cache::{Access, EvictionBatch, Placement as CachePlacement, WriteBuffer};
use reqblock_flash::{FlashTimeline, OpCounters};
use reqblock_ftl::{Ftl, FtlStats, Placement as FtlPlacement};
use reqblock_trace::{OpType, Request};

/// One simulated SSD instance. Feed it requests in trace order via
/// [`Ssd::submit`]; collect results with the accessors afterwards.
pub struct Ssd {
    cfg: SimConfig,
    cache: Box<dyn WriteBuffer>,
    ftl: Ftl,
    timeline: FlashTimeline,
    metrics: Metrics,
    /// Logical time: pages processed so far (the time base of Eq. 1).
    logical_now: u64,
    /// Monotone request counter (request-block identity).
    req_counter: u64,
}

impl Ssd {
    /// Build a fresh device per `cfg`.
    pub fn new(cfg: SimConfig) -> Self {
        cfg.ssd.validate().expect("invalid SSD config");
        assert!(cfg.cache_pages > 0, "cache must hold at least one page");
        let cache = cfg.policy.build(cfg.cache_pages, cfg.ssd.pages_per_block);
        let ftl = Ftl::new(&cfg.ssd);
        let timeline = FlashTimeline::new(&cfg.ssd);
        Self { cache, ftl, timeline, metrics: Metrics::default(), logical_now: 0, req_counter: 0, cfg }
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Flash operation counters (user/GC programs, reads, erases).
    pub fn flash_counters(&self) -> &OpCounters {
        self.timeline.counters()
    }

    /// FTL/GC statistics.
    pub fn ftl_stats(&self) -> &FtlStats {
        self.ftl.stats()
    }

    /// The cache policy (for probes and occupancy queries).
    pub fn cache(&self) -> &dyn WriteBuffer {
        self.cache.as_ref()
    }

    /// Run configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    fn flush_batch(&mut self, batch: &EvictionBatch, at: u64) -> u64 {
        if !batch.dirty {
            self.metrics.clean_dropped_pages += batch.lpns.len() as u64;
            return at;
        }
        self.metrics.evictions += 1;
        self.metrics.evicted_pages += batch.lpns.len() as u64;
        let mut done = at;
        // BPLRU padding: fetch the block's missing pages before programming.
        for &lpn in &batch.pad_reads {
            self.metrics.pad_read_pages += 1;
            done = done.max(self.ftl.read_page(lpn, at, &mut self.timeline));
        }
        let placement = match batch.placement {
            CachePlacement::Striped => FtlPlacement::Striped,
            CachePlacement::SingleBlock => FtlPlacement::SingleBlock,
        };
        done.max(self.ftl.write_pages(&batch.lpns, done, placement, &mut self.timeline))
    }

    /// Submit one request; returns its response time in ns.
    pub fn submit(&mut self, req: &Request) -> u64 {
        self.submit_probed(req, &mut [])
    }

    /// Submit one request, invoking `probes` on every page access.
    pub fn submit_probed(&mut self, req: &Request, probes: &mut [&mut dyn Probe]) -> u64 {
        let at = req.time_ns;
        let pages = req.page_count();
        let req_id = self.req_counter;
        self.req_counter += 1;
        self.metrics.requests += 1;
        let mut done = at;
        let mut evictions: Vec<EvictionBatch> = Vec::new();
        match req.op {
            OpType::Write => {
                self.metrics.write_reqs += 1;
                for lpn in req.lpns() {
                    self.logical_now += 1;
                    let a = Access { lpn, req_id, req_pages: pages as u32, now: self.logical_now };
                    evictions.clear();
                    let hit = self.cache.write(&a, &mut evictions);
                    self.metrics.write_pages += 1;
                    if hit {
                        self.metrics.write_hits += 1;
                    }
                    for p in probes.iter_mut() {
                        p.on_page(&a, true, hit);
                    }
                    // Buffered write: one DRAM access, plus — when this page
                    // forced an eviction — the victim flush it must wait
                    // for: the buffered data cannot be overwritten before it
                    // is safe on flash. Batch evictions amortize this stall
                    // over every page they free (§4.2.2: "each eviction
                    // operation can make more available cache space"), and
                    // striped placement bounds it to about one program
                    // latency, while BPLRU's single-block flushes serialize.
                    done = done.max(at + self.cfg.ssd.dram_access_ns);
                    for batch in &evictions {
                        done = done.max(self.flush_batch(batch, at));
                    }
                }
            }
            OpType::Read => {
                self.metrics.read_reqs += 1;
                for lpn in req.lpns() {
                    self.logical_now += 1;
                    let a = Access { lpn, req_id, req_pages: pages as u32, now: self.logical_now };
                    evictions.clear();
                    let hit = self.cache.read(&a, &mut evictions);
                    self.metrics.read_pages += 1;
                    if hit {
                        self.metrics.read_hits += 1;
                        done = done.max(at + self.cfg.ssd.dram_access_ns);
                    } else {
                        done = done.max(self.ftl.read_page(lpn, at, &mut self.timeline));
                    }
                    for p in probes.iter_mut() {
                        p.on_page(&a, false, hit);
                    }
                    // Read-caching policies (CFLRU ablation) may evict here;
                    // same synchronous stall as the write path.
                    for batch in &evictions {
                        done = done.max(self.flush_batch(batch, at));
                    }
                }
            }
        }
        let response = done.saturating_sub(at);
        self.metrics.record_response(response);
        if self.cfg.overhead_sample_every > 0 && req_id.is_multiple_of(self.cfg.overhead_sample_every) {
            self.metrics.overhead_samples += 1;
            self.metrics.metadata_bytes_sum += self.cache.metadata_bytes() as u128;
            self.metrics.node_count_sum += self.cache.node_count() as u128;
        }
        for p in probes.iter_mut() {
            p.on_request_end(req_id, self.cache.as_ref());
        }
        response
    }

    /// Flush everything still buffered (end-of-trace). The flush traffic is
    /// counted in the flash counters but not in request response times.
    pub fn drain_cache(&mut self) {
        let at = self.logical_now; // any time after the last request
        for batch in self.cache.drain() {
            if batch.dirty {
                self.metrics.evictions += 1;
                self.metrics.evicted_pages += batch.lpns.len() as u64;
                let placement = match batch.placement {
                    CachePlacement::Striped => FtlPlacement::Striped,
                    CachePlacement::SingleBlock => FtlPlacement::SingleBlock,
                };
                self.ftl.write_pages(&batch.lpns, at, placement, &mut self.timeline);
            }
        }
    }
}

impl Ssd {
    /// Nanoseconds the given chip's busy horizon extends past `now`
    /// (diagnostics; 0 when the chip is idle at `now`).
    pub fn chip_lag_ns(&self, chip: usize, now: u64) -> i64 {
        self.timeline.chip_free_at(chip) as i64 - now as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use reqblock_core::ReqBlockConfig;

    fn tiny(policy: PolicyKind, cache_pages: usize) -> Ssd {
        Ssd::new(SimConfig::tiny(cache_pages, policy))
    }

    #[test]
    fn buffered_write_is_fast() {
        let mut ssd = tiny(PolicyKind::Lru, 16);
        let r = ssd.submit(&Request::write_pages(0, 0, 2));
        // Two pages, no eviction: response = DRAM access time.
        assert_eq!(r, ssd.config().ssd.dram_access_ns);
        assert_eq!(ssd.metrics().write_pages, 2);
        assert_eq!(ssd.flash_counters().user_programs, 0, "no flash traffic yet");
    }

    #[test]
    fn read_hit_from_buffer_read_miss_from_flash() {
        let mut ssd = tiny(PolicyKind::Lru, 16);
        ssd.submit(&Request::write_pages(0, 0, 1));
        let hit = ssd.submit(&Request::read_pages(1000, 0, 1));
        assert_eq!(hit, ssd.config().ssd.dram_access_ns);
        let miss = ssd.submit(&Request::read_pages(2000, 50, 1));
        assert!(miss > hit, "flash read must be slower than DRAM");
        assert_eq!(ssd.metrics().read_hits, 1);
        assert_eq!(ssd.metrics().read_pages, 2);
    }

    #[test]
    fn eviction_stalls_the_triggering_write() {
        let mut ssd = tiny(PolicyKind::Lru, 4);
        for i in 0..4 {
            ssd.submit(&Request::write_pages(i, i, 1));
        }
        // The 5th write waits for the victim flush: >= transfer + program.
        let r = ssd.submit(&Request::write_pages(100, 100, 1));
        let cfg = &ssd.config().ssd;
        assert!(r >= cfg.page_transfer_ns() + cfg.program_latency_ns);
        assert_eq!(ssd.metrics().evictions, 1);
        assert_eq!(ssd.flash_counters().user_programs, 1);
    }

    #[test]
    fn write_hit_absorbs_without_flash_traffic() {
        let mut ssd = tiny(PolicyKind::Lru, 4);
        ssd.submit(&Request::write_pages(0, 7, 1));
        ssd.submit(&Request::write_pages(10, 7, 1));
        assert_eq!(ssd.metrics().write_hits, 1);
        assert_eq!(ssd.flash_counters().user_programs, 0);
    }

    #[test]
    fn reqblock_policy_runs_end_to_end() {
        let mut ssd = tiny(PolicyKind::ReqBlock(ReqBlockConfig::paper()), 32);
        for i in 0..20u64 {
            ssd.submit(&Request::write_pages(i * 10, (i * 3) % 64, 1 + i % 6));
        }
        for i in 0..10u64 {
            ssd.submit(&Request::read_pages(1000 + i, (i * 3) % 64, 1));
        }
        let m = ssd.metrics();
        assert_eq!(m.requests, 30);
        assert!(m.hit_ratio() > 0.0);
        assert!(ssd.cache().list_occupancy().is_some());
    }

    #[test]
    fn drain_flushes_residual_pages() {
        let mut ssd = tiny(PolicyKind::Lru, 16);
        ssd.submit(&Request::write_pages(0, 0, 5));
        assert_eq!(ssd.flash_counters().user_programs, 0);
        ssd.drain_cache();
        assert_eq!(ssd.flash_counters().user_programs, 5);
        assert_eq!(ssd.cache().len_pages(), 0);
    }

    #[test]
    fn response_time_counts_from_arrival() {
        let mut ssd = tiny(PolicyKind::Lru, 16);
        // Arrival far in the future: response is still just the DRAM time.
        let r = ssd.submit(&Request::write_pages(1_000_000_000, 0, 1));
        assert_eq!(r, ssd.config().ssd.dram_access_ns);
    }

    #[test]
    fn overhead_sampling_accumulates() {
        let mut ssd = tiny(PolicyKind::Lru, 16);
        for i in 0..25u64 {
            ssd.submit(&Request::write_pages(i, i % 8, 1));
        }
        // sample_every = 10 in tiny config -> samples at req 0, 10, 20.
        assert_eq!(ssd.metrics().overhead_samples, 3);
        assert!(ssd.metrics().avg_metadata_bytes() > 0.0);
    }
}
