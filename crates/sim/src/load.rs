//! Open-loop arrival processes for latency-vs-throughput curves.
//!
//! The paper's traces carry their own timestamps, so every figure replays a
//! *fixed* arrival pattern. To measure where a policy's service capacity
//! saturates — the knee of the latency-vs-offered-throughput curve — we
//! need the opposite: hold the request *mix* (ops, addresses, sizes) fixed
//! and sweep the *offered rate*. [`ArrivalProcess::rewrite`] does exactly
//! that: it keeps every request's op/offset/len and replaces the arrival
//! times with a synthetic open-loop process.
//!
//! Open loop matters: the simulator issues each request at its trace
//! arrival time under **every** [`crate::host::SubmitMode`] (arrivals never
//! wait for earlier completions), and the engine measures response as
//! arrival→completion. Rewritten arrivals therefore model clients that keep
//! submitting at the offered rate regardless of how far behind the device
//! falls — past saturation the measured response grows without bound
//! instead of self-throttling, which is what makes the knee visible.
//!
//! Determinism: the generator is a seeded xorshift64* with an inverse-CDF
//! exponential sampler — no global state, no platform-varying RNG — so a
//! `(trace, process, seed)` triple always yields byte-identical arrivals.
//! Experiment grids exploit this: rewrites happen inside each job from
//! shared inputs, so results are independent of worker-thread count.

use reqblock_trace::Request;

/// Nanoseconds per second, for offered-rate conversions.
const NS_PER_S: f64 = 1e9;

/// An open-loop arrival process: how interarrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential interarrival gaps with the given
    /// mean. Offered rate is `1e9 / mean_interarrival_ns` requests/s.
    Poisson {
        /// Mean gap between consecutive arrivals, ns.
        mean_interarrival_ns: u64,
    },
    /// ON/OFF-modulated Poisson (an interrupted Poisson process): bursts of
    /// `burst_len` requests arrive `peak_to_mean`× faster than the long-run
    /// rate, separated by idle gaps sized so the *long-run* offered rate
    /// still equals `1e9 / mean_interarrival_ns`. Same mean load as
    /// [`ArrivalProcess::Poisson`], much burstier queueing.
    Bursty {
        /// Long-run mean gap between consecutive arrivals, ns.
        mean_interarrival_ns: u64,
        /// Requests per ON burst (clamped to at least 1).
        burst_len: u32,
        /// Rate compression inside a burst (clamped to at least 1): the
        /// within-burst arrival rate is `peak_to_mean`× the long-run rate.
        peak_to_mean: u32,
    },
}

impl ArrivalProcess {
    /// Poisson arrivals at `rate` requests per second.
    pub fn poisson_rate(rate_per_s: f64) -> Self {
        assert!(rate_per_s > 0.0, "offered rate must be positive");
        ArrivalProcess::Poisson { mean_interarrival_ns: (NS_PER_S / rate_per_s).max(1.0) as u64 }
    }

    /// The long-run offered rate in requests per second.
    pub fn offered_rate_per_s(&self) -> f64 {
        let mean = match *self {
            ArrivalProcess::Poisson { mean_interarrival_ns } => mean_interarrival_ns,
            ArrivalProcess::Bursty { mean_interarrival_ns, .. } => mean_interarrival_ns,
        };
        NS_PER_S / mean.max(1) as f64
    }

    /// Rewrite `trace`'s arrival times with this process, keeping every
    /// request's op/offset/len. Arrivals are cumulative sums of sampled
    /// gaps starting at the first sampled gap, so rewritten times are
    /// nondecreasing and strictly positive.
    pub fn rewrite(&self, trace: &[Request], seed: u64) -> Vec<Request> {
        let mut rng = XorShift64Star::new(seed);
        let mut now = 0u64;
        let mut out = Vec::with_capacity(trace.len());
        match *self {
            ArrivalProcess::Poisson { mean_interarrival_ns } => {
                let mean = mean_interarrival_ns.max(1) as f64;
                for r in trace {
                    now += exp_gap(&mut rng, mean);
                    out.push(Request { time_ns: now, ..*r });
                }
            }
            ArrivalProcess::Bursty { mean_interarrival_ns, burst_len, peak_to_mean } => {
                let mean = mean_interarrival_ns.max(1) as f64;
                let burst_len = burst_len.max(1) as u64;
                let accel = peak_to_mean.max(1) as f64;
                let on_mean = mean / accel;
                // Each burst compresses `burst_len` gaps from `mean` to
                // `on_mean`; the OFF gap between bursts gives the removed
                // time back, preserving the long-run offered rate.
                let off_mean = burst_len as f64 * (mean - on_mean);
                for (i, r) in trace.iter().enumerate() {
                    if off_mean > 0.0 && (i as u64).is_multiple_of(burst_len) && i > 0 {
                        now += exp_gap(&mut rng, off_mean);
                    }
                    now += exp_gap(&mut rng, on_mean);
                    out.push(Request { time_ns: now, ..*r });
                }
            }
        }
        out
    }
}

/// One exponential interarrival gap with the given mean, inverse-CDF
/// sampled, rounded to whole nanoseconds and floored at 1 ns so arrivals
/// strictly advance.
fn exp_gap(rng: &mut XorShift64Star, mean_ns: f64) -> u64 {
    let gap = -mean_ns * rng.next_unit_open().ln();
    (gap as u64).max(1)
}

/// Minimal xorshift64* PRNG: seeded, allocation-free, no dependencies, and
/// identical on every platform — exactly what deterministic arrival
/// rewrites need. Constants per Vigna, "An experimental exploration of
/// Marsaglia's xorshift generators, scrambled".
#[derive(Debug, Clone)]
struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Seed the generator; a zero seed (the one fixed point of the xorshift
    /// step) is remapped to a nonzero constant.
    fn new(seed: u64) -> Self {
        Self { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in the *open* interval (0, 1]: the top 53 bits plus one,
    /// scaled by 2^-53 — never returns 0.0, so `ln()` is always finite.
    fn next_unit_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqblock_trace::{OpType, SyntheticTrace};
    use reqblock_trace::profiles::ts_0;

    fn base_trace() -> Vec<Request> {
        SyntheticTrace::new(ts_0().scaled(0.002)).collect()
    }

    #[test]
    fn rewrite_preserves_everything_but_time() {
        let base = base_trace();
        let p = ArrivalProcess::poisson_rate(50_000.0);
        let rewritten = p.rewrite(&base, 7);
        assert_eq!(rewritten.len(), base.len());
        for (a, b) in base.iter().zip(&rewritten) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.offset, b.offset);
            assert_eq!(a.len, b.len);
        }
    }

    #[test]
    fn rewrite_is_deterministic_and_seed_sensitive() {
        let base = base_trace();
        let p = ArrivalProcess::poisson_rate(50_000.0);
        assert_eq!(p.rewrite(&base, 7), p.rewrite(&base, 7));
        assert_ne!(p.rewrite(&base, 7), p.rewrite(&base, 8));
    }

    #[test]
    fn arrivals_strictly_advance() {
        let base = base_trace();
        let p = ArrivalProcess::poisson_rate(1_000_000.0);
        let rewritten = p.rewrite(&base, 3);
        let mut prev = 0;
        for r in &rewritten {
            assert!(r.time_ns > prev, "arrivals must strictly advance");
            prev = r.time_ns;
        }
    }

    #[test]
    fn poisson_mean_matches_offered_rate() {
        let base: Vec<Request> =
            (0..20_000).map(|i| Request::write_pages(i, i, 1)).collect();
        let p = ArrivalProcess::Poisson { mean_interarrival_ns: 10_000 };
        let rewritten = p.rewrite(&base, 42);
        let span = rewritten.last().unwrap().time_ns as f64;
        let mean = span / rewritten.len() as f64;
        assert!(
            (mean - 10_000.0).abs() < 300.0,
            "empirical mean gap {mean:.0} ns should be near 10 000 ns"
        );
    }

    #[test]
    fn bursty_preserves_long_run_rate_but_raises_variance() {
        let base: Vec<Request> =
            (0..20_000).map(|i| Request::read_pages(i, i, 1)).collect();
        let mean_ns = 10_000u64;
        let poisson = ArrivalProcess::Poisson { mean_interarrival_ns: mean_ns };
        let bursty = ArrivalProcess::Bursty {
            mean_interarrival_ns: mean_ns,
            burst_len: 32,
            peak_to_mean: 8,
        };
        assert_eq!(poisson.offered_rate_per_s(), bursty.offered_rate_per_s());
        let pr = poisson.rewrite(&base, 9);
        let br = bursty.rewrite(&base, 9);
        let p_mean = pr.last().unwrap().time_ns as f64 / pr.len() as f64;
        let b_mean = br.last().unwrap().time_ns as f64 / br.len() as f64;
        assert!(
            (b_mean - p_mean).abs() / p_mean < 0.1,
            "bursty long-run mean {b_mean:.0} should track poisson {p_mean:.0}"
        );
        // Within a burst the gaps are ~8x tighter than the long-run mean.
        let burst_gaps: Vec<u64> =
            br.windows(2).take(31).map(|w| w[1].time_ns - w[0].time_ns).collect();
        let burst_mean = burst_gaps.iter().sum::<u64>() as f64 / burst_gaps.len() as f64;
        assert!(
            burst_mean < mean_ns as f64 * 0.5,
            "within-burst mean gap {burst_mean:.0} must be far below {mean_ns}"
        );
    }

    #[test]
    fn ops_survive_rewrites() {
        let base = vec![
            Request::write_pages(5, 0, 2),
            Request::read_pages(9, 0, 2),
        ];
        let p = ArrivalProcess::Bursty { mean_interarrival_ns: 100, burst_len: 4, peak_to_mean: 4 };
        let out = p.rewrite(&base, 1);
        assert_eq!(out[0].op, OpType::Write);
        assert_eq!(out[1].op, OpType::Read);
    }
}
