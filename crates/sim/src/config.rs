//! Simulation configuration: SSD, cache size, policy and host-mode selection.

use crate::buffer::PolicyBuffer;
use crate::host::SubmitMode;
use reqblock_cache::policies::{
    BplruCache, BplruConfig, CflruCache, CflruConfig, FabCache, FifoCache, LfuCache, LruCache,
    PudLruCache, VbbmsCache, VbbmsConfig,
};
use reqblock_cache::WriteBuffer;
use reqblock_core::{ReqBlock, ReqBlockConfig};
use reqblock_flash::{FaultConfig, SsdConfig};
use reqblock_obs::AttrConfig;
use serde::{Deserialize, Serialize};

/// The paper's three data-cache sizes (§4.1: "the size of data cache varying
/// from 16 MB to 64 MB for our 128 GB SSD device").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheSizeMb {
    /// 16 MB = 4096 pages.
    Mb16,
    /// 32 MB = 8192 pages.
    Mb32,
    /// 64 MB = 16384 pages.
    Mb64,
}

impl CacheSizeMb {
    /// All three sizes, smallest first.
    pub const ALL: [CacheSizeMb; 3] = [CacheSizeMb::Mb16, CacheSizeMb::Mb32, CacheSizeMb::Mb64];

    /// Size in megabytes.
    pub fn mb(self) -> usize {
        match self {
            CacheSizeMb::Mb16 => 16,
            CacheSizeMb::Mb32 => 32,
            CacheSizeMb::Mb64 => 64,
        }
    }

    /// Capacity in 4 KB pages.
    pub fn pages(self) -> usize {
        self.mb() * 1024 * 1024 / 4096
    }
}

impl std::fmt::Display for CacheSizeMb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}MB", self.mb())
    }
}

/// Which cache policy to run. Carries the per-policy configuration so a
/// whole experiment grid is expressible as data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// Page-level LRU (baseline).
    Lru,
    /// Page-level FIFO.
    Fifo,
    /// Page-level LFU.
    Lfu,
    /// Clean-first LRU.
    Cflru(CflruConfig),
    /// Flash-aware buffer (largest-group eviction).
    Fab,
    /// Predicted-update-distance block buffer.
    PudLru,
    /// Block padding LRU.
    Bplru(BplruConfig),
    /// Virtual-block split-region scheme.
    Vbbms(VbbmsConfig),
    /// The paper's contribution.
    ReqBlock(ReqBlockConfig),
}

impl PolicyKind {
    /// The four schemes of the paper's headline comparison (Figures 8-11),
    /// in the paper's order.
    pub fn paper_comparison() -> [PolicyKind; 4] {
        [
            PolicyKind::Lru,
            PolicyKind::Bplru(BplruConfig::default()),
            PolicyKind::Vbbms(VbbmsConfig::default()),
            PolicyKind::ReqBlock(ReqBlockConfig::paper()),
        ]
    }

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Lfu => "LFU",
            PolicyKind::Cflru(_) => "CFLRU",
            PolicyKind::Fab => "FAB",
            PolicyKind::PudLru => "PUD-LRU",
            PolicyKind::Bplru(_) => "BPLRU",
            PolicyKind::Vbbms(_) => "VBBMS",
            PolicyKind::ReqBlock(_) => "Req-block",
        }
    }

    /// Instantiate the policy for a cache of `cache_pages` pages on an SSD
    /// with `pages_per_block` pages per flash block.
    pub fn build(&self, cache_pages: usize, pages_per_block: usize) -> Box<dyn WriteBuffer> {
        match *self {
            PolicyKind::Lru => Box::new(LruCache::new(cache_pages)),
            PolicyKind::Fifo => Box::new(FifoCache::new(cache_pages)),
            PolicyKind::Lfu => Box::new(LfuCache::new(cache_pages)),
            PolicyKind::Cflru(cfg) => Box::new(CflruCache::new(cache_pages, cfg)),
            PolicyKind::Fab => Box::new(FabCache::new(cache_pages, pages_per_block)),
            PolicyKind::PudLru => Box::new(PudLruCache::new(cache_pages, pages_per_block)),
            PolicyKind::Bplru(cfg) => Box::new(BplruCache::new(cache_pages, pages_per_block, cfg)),
            PolicyKind::Vbbms(cfg) => Box::new(VbbmsCache::new(cache_pages, cfg)),
            PolicyKind::ReqBlock(cfg) => Box::new(ReqBlock::new(cache_pages, cfg)),
        }
    }

    /// Like [`PolicyKind::build`] but returns the statically dispatched
    /// [`PolicyBuffer`] the device's hot path uses.
    pub fn build_buffer(&self, cache_pages: usize, pages_per_block: usize) -> PolicyBuffer {
        match *self {
            PolicyKind::Lru => PolicyBuffer::Lru(LruCache::new(cache_pages)),
            PolicyKind::Fifo => PolicyBuffer::Fifo(FifoCache::new(cache_pages)),
            PolicyKind::Lfu => PolicyBuffer::Lfu(LfuCache::new(cache_pages)),
            PolicyKind::Cflru(cfg) => PolicyBuffer::Cflru(CflruCache::new(cache_pages, cfg)),
            PolicyKind::Fab => PolicyBuffer::Fab(FabCache::new(cache_pages, pages_per_block)),
            PolicyKind::PudLru => {
                PolicyBuffer::PudLru(PudLruCache::new(cache_pages, pages_per_block))
            }
            PolicyKind::Bplru(cfg) => {
                PolicyBuffer::Bplru(BplruCache::new(cache_pages, pages_per_block, cfg))
            }
            PolicyKind::Vbbms(cfg) => PolicyBuffer::Vbbms(VbbmsCache::new(cache_pages, cfg)),
            PolicyKind::ReqBlock(cfg) => PolicyBuffer::ReqBlock(ReqBlock::new(cache_pages, cfg)),
        }
    }
}

/// When the periodic time-series sampler snapshots device state into the
/// active [`reqblock_obs::Recorder`]. Sampling only happens while a
/// recording run is in flight — with the no-op recorder the sampler is
/// never consulted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SampleInterval {
    /// Never sample (the default; plain metric runs).
    #[default]
    Off,
    /// Snapshot every N completed requests (`t` = request index). The
    /// paper's Figure 13 samples every 10 000 requests at full scale.
    Requests(u64),
    /// Snapshot when at least this much simulated time (request arrival
    /// clock, ns) has passed since the previous snapshot (`t` = arrival ns).
    SimTimeNs(u64),
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// SSD geometry and timing (Table 1).
    pub ssd: SsdConfig,
    /// Data-cache capacity in pages.
    pub cache_pages: usize,
    /// Cache management scheme.
    pub policy: PolicyKind,
    /// Sample metadata size / node count every this many requests (for the
    /// Figure 12 space-overhead averages). 0 disables sampling.
    pub overhead_sample_every: u64,
    /// Time-series sampling cadence for recorded runs.
    pub sampling: SampleInterval,
    /// Fault-injection configuration for the FTL/flash layer. The default
    /// is zero-fault: behaviour (and golden metrics) identical to a run
    /// without the reliability layer.
    pub fault: FaultConfig,
    /// How the host issues requests ([`SubmitMode`]). The default,
    /// [`SubmitMode::Synchronous`], is the paper's one-at-a-time model and
    /// is byte-identical to the pre-host-layer simulator.
    pub submit: SubmitMode,
    /// Per-request latency attribution (DESIGN.md §7.4). `None` (the
    /// default) keeps the engine's plain path: no decomposition, no span
    /// sampling, no new telemetry keys — recorded JSONL stays
    /// byte-identical to earlier schema consumers. `Some` activates the
    /// attribution accumulator on *recorded* runs only; with the no-op
    /// recorder the enabled-flag guard monomorphizes the whole subsystem
    /// away.
    pub attr: Option<AttrConfig>,
}

impl SimConfig {
    /// The paper's setup: Table 1 SSD with one of the three cache sizes.
    pub fn paper(cache: CacheSizeMb, policy: PolicyKind) -> Self {
        Self {
            ssd: SsdConfig::paper(),
            cache_pages: cache.pages(),
            policy,
            overhead_sample_every: 1_000,
            sampling: SampleInterval::Off,
            fault: FaultConfig::default(),
            submit: SubmitMode::Synchronous,
            attr: None,
        }
    }

    /// Miniature setup for unit tests: tiny SSD, `cache_pages`-page cache.
    pub fn tiny(cache_pages: usize, policy: PolicyKind) -> Self {
        Self {
            ssd: SsdConfig::tiny(),
            cache_pages,
            policy,
            overhead_sample_every: 10,
            sampling: SampleInterval::Off,
            fault: FaultConfig::default(),
            submit: SubmitMode::Synchronous,
            attr: None,
        }
    }

    /// Same config with a different sampling cadence (builder-style).
    pub fn with_sampling(mut self, sampling: SampleInterval) -> Self {
        self.sampling = sampling;
        self
    }

    /// Same config with fault injection enabled (builder-style). Identical
    /// seeds and rates reproduce the exact same failures run after run.
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Same config with a different host submit mode (builder-style).
    pub fn with_submit(mut self, submit: SubmitMode) -> Self {
        self.submit = submit;
        self
    }

    /// Same config with per-request latency attribution enabled
    /// (builder-style). Only recorded runs attribute; see
    /// [`SimConfig::attr`].
    pub fn with_attribution(mut self, attr: AttrConfig) -> Self {
        self.attr = Some(attr);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_sizes_match_paper() {
        assert_eq!(CacheSizeMb::Mb16.pages(), 4096);
        assert_eq!(CacheSizeMb::Mb32.pages(), 8192);
        assert_eq!(CacheSizeMb::Mb64.pages(), 16384);
        assert_eq!(CacheSizeMb::Mb32.to_string(), "32MB");
    }

    #[test]
    fn paper_comparison_order() {
        let names: Vec<&str> = PolicyKind::paper_comparison().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["LRU", "BPLRU", "VBBMS", "Req-block"]);
    }

    #[test]
    fn build_constructs_each_policy() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Lfu,
            PolicyKind::Cflru(CflruConfig::default()),
            PolicyKind::Fab,
            PolicyKind::PudLru,
            PolicyKind::Bplru(BplruConfig::default()),
            PolicyKind::Vbbms(VbbmsConfig::default()),
            PolicyKind::ReqBlock(ReqBlockConfig::paper()),
        ] {
            let buf = kind.build(128, 64);
            assert_eq!(buf.capacity_pages(), 128);
            assert_eq!(buf.len_pages(), 0);
            assert_eq!(buf.name(), kind.name());
        }
    }
}
