//! Fleet orchestration: many independent simulated SSDs serving a blended
//! multi-tenant workload (DESIGN.md §7.5).
//!
//! The paper evaluates one drive at a time; a production deployment runs
//! *fleets* of drives behind a placement layer, and the numbers operators
//! care about — per-tenant p99/p999, the worst device in the fleet, what
//! one tenant's write bursts cost another tenant's read tail — only exist
//! at that scale. This module provides the smallest honest model of it:
//!
//! * A [`TenantMix`] describes the tenants: each [`TenantSpec`] names a
//!   workload profile (the calibrated Zipf/MSR synthetics or any
//!   [`WorkloadProfile`]), an open-loop [`ArrivalProcess`], and a seed.
//!   Each tenant's full request stream is generated **once**, independent
//!   of the device count and of every other tenant, so adding or removing
//!   a tenant never perturbs another tenant's arrivals.
//! * A [`Placement`] maps each tenant request to a device purely from
//!   `(tenant index, request sequence number, device count)` — no RNG, no
//!   load feedback — so the sharding is reproducible by construction.
//! * [`run_fleet`] drives one fresh [`Ssd`] per device over its merged
//!   stream on the barrier-free task pool ([`run_task_pool`]), with an
//!   optional wall-clock [`FleetControl::device_starts_per_s`] rate
//!   limiter and progress reporting, and aggregates per-device results
//!   into [`FleetMetrics`] in device order.
//! * [`noisy_neighbor`] reruns the same fleet with one tenant's stream
//!   removed — same seeds, same placement indices for everyone else — so
//!   the per-tenant p99 delta isolates interference, not RNG drift.
//!
//! # Byte-identity at any thread count
//!
//! Every source of nondeterminism is pinned:
//!
//! 1. Tenant streams are deterministic in `(profile, process, seed)`
//!    ([`ArrivalProcess::rewrite`] uses a seeded xorshift64*).
//! 2. Placement is a pure function of indices.
//! 3. Per-device merge order is the total order `(time_ns, tenant index,
//!    sequence number)` — a stable tie-break even when two tenants'
//!    arrivals collide on the nanosecond.
//! 4. Devices are simulated independently (a fresh [`Ssd`] each); workers
//!    only fill a dedicated `OnceLock` slot per device.
//! 5. Aggregation walks the slots in device order on the calling thread.
//!
//! The thread pool therefore only decides *when* each device is simulated,
//! never *what* any device computes or the order results are merged —
//! [`FleetMetrics`] is byte-identical at any `threads` value. The
//! wall-clock rate limiter and progress counter touch nothing the
//! simulation reads, so they cannot break this either. `tests/fleet.rs`
//! pins the property (proptest across thread counts) and a small-fleet
//! golden.

use crate::config::SimConfig;
use crate::host::Ssd;
use crate::load::ArrivalProcess;
use crate::runner::{run_task_pool, Task, TraceSource};
use reqblock_obs::telemetry::to_jsonl;
use reqblock_obs::{Histogram, MemoryRecorder};
use reqblock_trace::{Request, WorkloadProfile};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One tenant of the fleet: a named request stream with its own arrival
/// process and seed.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (`"web"`, `"batch"`, ...).
    pub name: String,
    /// The request mix: ops, addresses, sizes. Arrival times are replaced
    /// by `process`, so only the mix matters here.
    pub profile: WorkloadProfile,
    /// Open-loop arrival process re-timing the profile's requests.
    pub process: ArrivalProcess,
    /// Seed of this tenant's arrival RNG. Independent per tenant: two
    /// tenants never share a generator, so removing one cannot shift
    /// another's arrivals.
    pub seed: u64,
}

impl TenantSpec {
    /// This tenant's full request stream: the profile synthesized once
    /// (shared process-wide via the trace cache) and re-timed by the
    /// arrival process. Deterministic in `(profile, process, seed)`.
    pub fn stream(&self) -> Vec<Request> {
        let base = TraceSource::Synthetic(self.profile.clone()).shared_requests();
        self.process.rewrite(&base, self.seed)
    }
}

/// The blended tenant population offered to the fleet.
#[derive(Debug, Clone, Default)]
pub struct TenantMix {
    /// The tenants, in a fixed order; the index into this vector is the
    /// tenant's identity everywhere (placement, metrics, exclusion).
    pub tenants: Vec<TenantSpec>,
}

impl TenantMix {
    /// A mix over the given tenants.
    pub fn new(tenants: Vec<TenantSpec>) -> Self {
        Self { tenants }
    }

    /// Every tenant's stream, index-aligned with [`TenantMix::tenants`].
    pub fn streams(&self) -> Vec<Vec<Request>> {
        self.tenants.iter().map(TenantSpec::stream).collect()
    }
}

/// Deterministic map from a tenant request to a device. Placement is a
/// pure function of `(tenant, sequence number, device count)`: no RNG and
/// no load feedback, so the same mix always shards identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Every tenant's requests round-robin over **all** devices: request
    /// `k` of any tenant lands on device `k % devices`. Maximum spreading,
    /// maximum inter-tenant contact.
    Striped,
    /// Each tenant owns a group of `devices_per_tenant` consecutive
    /// devices starting at `tenant * devices_per_tenant` (mod the device
    /// count) and round-robins within its group. Tenants collide only when
    /// the groups wrap — packing isolates tenants when the fleet is large
    /// enough and degrades gracefully (sharing) when it is not.
    Packed {
        /// Devices in each tenant's group (clamped to `1..=devices`).
        devices_per_tenant: usize,
    },
}

impl Placement {
    /// The device that serves request `seq` of tenant `tenant` in a fleet
    /// of `devices` devices.
    pub fn device_for(&self, tenant: usize, seq: usize, devices: usize) -> usize {
        debug_assert!(devices > 0);
        match *self {
            Placement::Striped => seq % devices,
            Placement::Packed { devices_per_tenant } => {
                let group = devices_per_tenant.clamp(1, devices);
                (tenant * group + seq % group) % devices
            }
        }
    }

    /// Short stable name for labels (`"striped"` / `"packed"`).
    pub fn name(&self) -> &'static str {
        match self {
            Placement::Striped => "striped",
            Placement::Packed { .. } => "packed",
        }
    }
}

/// The fleet itself: one [`SimConfig`] per device plus the placement map.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// One configuration per device — each device may have its own
    /// geometry, policy, cache size, submit mode, and fault config. Use
    /// [`FleetConfig::uniform`] for the common identical-hardware case.
    pub devices: Vec<SimConfig>,
    /// How tenant requests are sharded onto devices.
    pub placement: Placement,
    /// When set, every device records its run into a [`MemoryRecorder`]
    /// and its aggregate telemetry (counters, gauges, spans, series) is
    /// returned as one JSONL document per device in
    /// [`FleetResult::telemetry`], tagged with the device index — ready
    /// for a rotating [`reqblock_obs::TelemetryWriter`].
    pub telemetry: bool,
}

impl FleetConfig {
    /// A fleet of `devices` identical drives built from `template`, striped
    /// placement. When the template injects faults, each device's fault
    /// seed is offset by its index so fault streams decorrelate across the
    /// fleet (a real fleet does not fail in lockstep) while staying fully
    /// deterministic.
    pub fn uniform(devices: usize, template: SimConfig) -> Self {
        assert!(devices > 0, "a fleet needs at least one device");
        let devices = (0..devices)
            .map(|i| {
                let mut cfg = template.clone();
                cfg.fault.seed = cfg.fault.seed.wrapping_add(i as u64);
                cfg
            })
            .collect();
        Self { devices, placement: Placement::Striped, telemetry: false }
    }

    /// Number of devices in the fleet.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }
}

/// Execution knobs that cannot affect simulation output: worker threads,
/// the global wall-clock rate limiter, and progress reporting.
#[derive(Debug, Clone)]
pub struct FleetControl {
    /// Worker threads for the device pool; `1` is the explicit serial
    /// mode. Results are byte-identical at every value.
    pub threads: usize,
    /// Global rate limiter: at most this many device simulations *started*
    /// per wall-clock second, enforced across all workers. Paces host load
    /// (CPU, page cache) when a huge fleet shares a machine with other
    /// work; it delays starts only and cannot change any result.
    pub device_starts_per_s: Option<f64>,
    /// Report `fleet: <done>/<total> devices` to stderr every this many
    /// completed devices (stdout artifacts stay clean).
    pub progress_every: Option<usize>,
}

impl Default for FleetControl {
    fn default() -> Self {
        Self { threads: 1, device_starts_per_s: None, progress_every: None }
    }
}

impl FleetControl {
    /// `threads` workers, no pacing, no progress output.
    pub fn threads(threads: usize) -> Self {
        Self { threads, ..Self::default() }
    }
}

/// Token-interval pacer behind [`FleetControl::device_starts_per_s`]: each
/// start claims the next slot of a fixed-interval schedule and sleeps
/// until it. Wall-clock only — the simulation never reads it.
struct Pacer {
    interval: Duration,
    next: Mutex<Instant>,
}

impl Pacer {
    fn new(starts_per_s: f64) -> Self {
        assert!(
            starts_per_s.is_finite() && starts_per_s > 0.0,
            "device start rate must be positive"
        );
        Self { interval: Duration::from_secs_f64(1.0 / starts_per_s), next: Mutex::new(Instant::now()) }
    }

    fn wait(&self) {
        let at = {
            let mut next = self.next.lock().unwrap();
            let at = (*next).max(Instant::now());
            *next = at + self.interval;
            at
        };
        let now = Instant::now();
        if at > now {
            std::thread::sleep(at - now);
        }
    }
}

/// Fleet-wide response statistics for one tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name, copied from the [`TenantSpec`].
    pub name: String,
    /// Requests this tenant completed across the whole fleet.
    pub requests: u64,
    /// Response-time histogram (ns) merged across every device, latency
    /// preset shape.
    pub hist: Histogram,
}

impl TenantStats {
    /// Response quantile upper bound in milliseconds (`None` when the
    /// tenant completed no requests).
    pub fn percentile_ms(&self, q: f64) -> Option<f64> {
        self.hist.quantile_upper(q).map(|ns| ns as f64 / 1e6)
    }
}

/// One device's contribution to the fleet aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSummary {
    /// Requests this device served.
    pub requests: u64,
    /// p99 response upper bound on this device, ns (0 when idle).
    pub p99_ns: u64,
}

/// Aggregated fleet results: per-tenant and fleet-wide response
/// distributions plus per-device tails. Built by merging per-device
/// histograms in device order, so it is byte-identical at any thread
/// count (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetMetrics {
    /// Per-tenant stats, index-aligned with the [`TenantMix`].
    pub per_tenant: Vec<TenantStats>,
    /// Every response across every tenant and device.
    pub fleet: Histogram,
    /// Per-device summaries, device order.
    pub per_device: Vec<DeviceSummary>,
}

impl FleetMetrics {
    /// Devices in the fleet.
    pub fn devices(&self) -> usize {
        self.per_device.len()
    }

    /// Fleet-wide response quantile upper bound in milliseconds (0 when
    /// the fleet served nothing).
    pub fn fleet_percentile_ms(&self, q: f64) -> f64 {
        self.fleet.quantile_upper(q).unwrap_or(0) as f64 / 1e6
    }

    /// The worst single-device p99 in the fleet, ns.
    pub fn worst_device_p99_ns(&self) -> u64 {
        self.per_device.iter().map(|d| d.p99_ns).max().unwrap_or(0)
    }

    /// [`FleetMetrics::worst_device_p99_ns`] in milliseconds.
    pub fn worst_device_p99_ms(&self) -> f64 {
        self.worst_device_p99_ns() as f64 / 1e6
    }
}

/// Everything one fleet run produces.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// The deterministic aggregate (compare this across thread counts).
    pub metrics: FleetMetrics,
    /// One telemetry JSONL document per device when
    /// [`FleetConfig::telemetry`] is set (device order), else empty.
    pub telemetry: Vec<String>,
    /// Host wall-clock seconds the whole fleet took (throughput
    /// reporting; not deterministic, not part of [`FleetMetrics`]).
    pub host_elapsed_s: f64,
}

impl FleetResult {
    /// Devices simulated per host wall-clock second (0 when untimeable).
    pub fn devices_per_sec(&self) -> f64 {
        if self.host_elapsed_s <= 0.0 {
            return 0.0;
        }
        self.metrics.devices() as f64 / self.host_elapsed_s
    }
}

/// What one device's worker computes before aggregation.
struct DeviceOutcome {
    per_tenant: Vec<Histogram>,
    all: Histogram,
    requests: u64,
    telemetry: Option<String>,
}

/// Shard every tenant stream onto devices and return each device's merged
/// stream as `(request, tenant index)` in simulation order — sorted by
/// `(time_ns, tenant, seq)`, a total order, so the merge is unambiguous
/// even when arrivals collide on the nanosecond.
fn shard(
    streams: &[Vec<Request>],
    placement: Placement,
    devices: usize,
    exclude: Option<usize>,
) -> Vec<Vec<(Request, u32)>> {
    let mut per_device: Vec<Vec<(Request, u32, u32)>> = vec![Vec::new(); devices];
    for (tenant, stream) in streams.iter().enumerate() {
        if exclude == Some(tenant) {
            continue;
        }
        for (seq, req) in stream.iter().enumerate() {
            let d = placement.device_for(tenant, seq, devices);
            per_device[d].push((*req, tenant as u32, seq as u32));
        }
    }
    per_device
        .into_iter()
        .map(|mut v| {
            v.sort_unstable_by_key(|&(req, tenant, seq)| (req.time_ns, tenant, seq));
            v.into_iter().map(|(req, tenant, _)| (req, tenant)).collect()
        })
        .collect()
}

/// Run the fleet: every device simulated independently over its merged
/// stream, aggregated into [`FleetMetrics`] in device order. See the
/// module docs for the determinism argument.
pub fn run_fleet(cfg: &FleetConfig, mix: &TenantMix, ctl: &FleetControl) -> FleetResult {
    run_fleet_excluding(cfg, mix, None, ctl)
}

/// [`run_fleet`] with one tenant's stream withheld. Crucially the excluded
/// tenant keeps its index: every other tenant's stream, seed, and
/// placement slots are bit-identical to the full run, so comparing the
/// two isolates interference. The excluded tenant appears in the result
/// with zero requests.
pub fn run_fleet_excluding(
    cfg: &FleetConfig,
    mix: &TenantMix,
    exclude: Option<usize>,
    ctl: &FleetControl,
) -> FleetResult {
    let devices = cfg.device_count();
    assert!(devices > 0, "a fleet needs at least one device");
    let started = Instant::now();
    let streams = mix.streams();
    let shards = shard(&streams, cfg.placement, devices, exclude);
    let tenants = mix.tenants.len();

    let pacer = ctl.device_starts_per_s.map(Pacer::new);
    let done = AtomicUsize::new(0);
    let slots: Vec<OnceLock<DeviceOutcome>> = (0..devices).map(|_| OnceLock::new()).collect();
    let tasks: Vec<Task<'_>> = cfg
        .devices
        .iter()
        .zip(&shards)
        .zip(&slots)
        .enumerate()
        .map(|(idx, ((dev_cfg, stream), slot))| {
            let pacer = &pacer;
            let done = &done;
            Task::new(format!("fleet/device{idx}"), move || {
                if let Some(p) = pacer {
                    p.wait();
                }
                let mut per_tenant = vec![Histogram::latency(); tenants];
                let mut all = Histogram::latency();
                let mut ssd = Ssd::new(dev_cfg.clone());
                let mut rec = cfg.telemetry.then(MemoryRecorder::default);
                for (req, tenant) in stream {
                    let response = match &mut rec {
                        Some(rec) => ssd.submit_recorded(req, rec),
                        None => ssd.submit(req),
                    };
                    per_tenant[*tenant as usize].record(response);
                    all.record(response);
                }
                let telemetry = rec.map(|mut rec| {
                    ssd.finish_recording(&mut rec);
                    to_jsonl(
                        &rec,
                        &[
                            ("experiment", "fleet".into()),
                            ("device", idx.to_string()),
                            ("devices", devices.to_string()),
                            ("placement", cfg.placement.name().into()),
                        ],
                    )
                });
                let outcome =
                    DeviceOutcome { per_tenant, requests: all.count(), all, telemetry };
                let ok = slot.set(outcome).is_ok();
                debug_assert!(ok, "fleet device slot filled twice");
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(every) = ctl.progress_every {
                    if every > 0 && (finished.is_multiple_of(every) || finished == devices) {
                        eprintln!("fleet: {finished}/{devices} devices");
                    }
                }
            })
        })
        .collect();
    run_task_pool(tasks, ctl.threads);

    // Aggregate strictly in device order on this thread: thread-count
    // invariance lives here.
    let mut per_tenant: Vec<TenantStats> = mix
        .tenants
        .iter()
        .map(|t| TenantStats { name: t.name.clone(), requests: 0, hist: Histogram::latency() })
        .collect();
    let mut fleet = Histogram::latency();
    let mut per_device = Vec::with_capacity(devices);
    let mut telemetry = Vec::new();
    for slot in slots {
        let outcome = slot.into_inner().expect("every fleet device must finish");
        for (stats, h) in per_tenant.iter_mut().zip(&outcome.per_tenant) {
            stats.hist.merge(h);
            stats.requests += h.count();
        }
        fleet.merge(&outcome.all);
        per_device.push(DeviceSummary {
            requests: outcome.requests,
            p99_ns: outcome.all.quantile_upper(0.99).unwrap_or(0),
        });
        if let Some(doc) = outcome.telemetry {
            telemetry.push(doc);
        }
    }
    FleetResult {
        metrics: FleetMetrics { per_tenant, fleet, per_device },
        telemetry,
        host_elapsed_s: started.elapsed().as_secs_f64(),
    }
}

/// The noisy-neighbor experiment: the same fleet run with and without one
/// antagonist tenant, same seeds and placement for everyone else.
#[derive(Debug, Clone)]
pub struct NoisyNeighbor {
    /// The full mix, antagonist included.
    pub loaded: FleetMetrics,
    /// The mix with the antagonist's stream withheld (its tenant slot
    /// remains, with zero requests).
    pub solo: FleetMetrics,
    /// Index of the antagonist tenant in the mix.
    pub antagonist: usize,
}

impl NoisyNeighbor {
    /// How much the antagonist adds to `tenant`'s p99, in milliseconds
    /// (loaded minus solo). `None` for the antagonist itself and for
    /// tenants with no completed requests in either run.
    pub fn p99_delta_ms(&self, tenant: usize) -> Option<f64> {
        if tenant == self.antagonist {
            return None;
        }
        let loaded = self.loaded.per_tenant.get(tenant)?.percentile_ms(0.99)?;
        let solo = self.solo.per_tenant.get(tenant)?.percentile_ms(0.99)?;
        Some(loaded - solo)
    }
}

/// Run the fleet twice — with the full mix and with `antagonist` withheld —
/// and return both aggregates. Victim tenants keep byte-identical streams
/// and placement slots in both runs, so per-tenant deltas measure
/// interference alone (BARD's framing: one tenant's flush bursts surface
/// in another tenant's read tail).
pub fn noisy_neighbor(
    cfg: &FleetConfig,
    mix: &TenantMix,
    antagonist: usize,
    ctl: &FleetControl,
) -> NoisyNeighbor {
    assert!(antagonist < mix.tenants.len(), "antagonist index out of range");
    let loaded = run_fleet(cfg, mix, ctl).metrics;
    let solo = run_fleet_excluding(cfg, mix, Some(antagonist), ctl).metrics;
    NoisyNeighbor { loaded, solo, antagonist }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheSizeMb, PolicyKind};
    use reqblock_flash::FaultConfig;
    use reqblock_trace::profiles::{proj_0, ts_0};

    fn tiny_mix() -> TenantMix {
        TenantMix::new(vec![
            TenantSpec {
                name: "victim".into(),
                profile: ts_0().scaled(0.002),
                process: ArrivalProcess::poisson_rate(50_000.0),
                seed: 11,
            },
            TenantSpec {
                name: "antagonist".into(),
                profile: proj_0().scaled(0.002),
                process: ArrivalProcess::Bursty {
                    mean_interarrival_ns: 20_000,
                    burst_len: 32,
                    peak_to_mean: 8,
                },
                seed: 22,
            },
        ])
    }

    fn tiny_fleet(devices: usize) -> FleetConfig {
        FleetConfig::uniform(devices, SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru))
    }

    #[test]
    fn striped_placement_round_robins_over_all_devices() {
        let p = Placement::Striped;
        let hits: Vec<usize> = (0..8).map(|seq| p.device_for(3, seq, 4)).collect();
        assert_eq!(hits, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn packed_placement_confines_each_tenant_to_its_group() {
        let p = Placement::Packed { devices_per_tenant: 2 };
        for seq in 0..10 {
            assert!([0, 1].contains(&p.device_for(0, seq, 4)));
            assert!([2, 3].contains(&p.device_for(1, seq, 4)));
            // Third tenant wraps onto the first group.
            assert!([0, 1].contains(&p.device_for(2, seq, 4)));
        }
        // Group size clamps to the fleet.
        let wide = Placement::Packed { devices_per_tenant: 99 };
        let devs: std::collections::BTreeSet<usize> =
            (0..12).map(|seq| wide.device_for(0, seq, 3)).collect();
        assert_eq!(devs.len(), 3, "clamped group must still use every device");
    }

    #[test]
    fn fleet_is_deterministic_and_thread_invariant() {
        let cfg = tiny_fleet(3);
        let mix = tiny_mix();
        let serial = run_fleet(&cfg, &mix, &FleetControl::threads(1));
        let parallel = run_fleet(&cfg, &mix, &FleetControl::threads(4));
        assert_eq!(serial.metrics, parallel.metrics);
        let again = run_fleet(&cfg, &mix, &FleetControl::threads(4));
        assert_eq!(parallel.metrics, again.metrics);
    }

    #[test]
    fn excluding_the_antagonist_keeps_victim_slots_and_zeroes_its_traffic() {
        let cfg = tiny_fleet(4);
        let mix = tiny_mix();
        let ctl = FleetControl::threads(2);
        let nn = noisy_neighbor(&cfg, &mix, 1, &ctl);
        // Tenant slots persist in both runs.
        assert_eq!(nn.loaded.per_tenant.len(), 2);
        assert_eq!(nn.solo.per_tenant.len(), 2);
        assert_eq!(nn.solo.per_tenant[1].requests, 0, "withheld tenant serves nothing");
        // The victim completes the same number of requests either way —
        // interference changes response times, never the request stream.
        assert_eq!(nn.loaded.per_tenant[0].requests, nn.solo.per_tenant[0].requests);
        assert!(nn.loaded.per_tenant[0].requests > 0);
        // The antagonist's own delta is undefined by construction.
        assert!(nn.p99_delta_ms(1).is_none());
        assert!(nn.p99_delta_ms(0).is_some());
    }

    #[test]
    fn sharding_covers_every_request_exactly_once() {
        let mix = tiny_mix();
        let streams = mix.streams();
        let total: usize = streams.iter().map(Vec::len).sum();
        for placement in [Placement::Striped, Placement::Packed { devices_per_tenant: 2 }] {
            let shards = shard(&streams, placement, 4, None);
            assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), total);
            for dev in &shards {
                let mut prev = 0;
                for (req, _) in dev {
                    assert!(req.time_ns >= prev, "device stream must stay time-ordered");
                    prev = req.time_ns;
                }
            }
        }
    }

    #[test]
    fn telemetry_emits_one_document_per_device() {
        let mut cfg = tiny_fleet(3);
        cfg.telemetry = true;
        let result = run_fleet(&cfg, &tiny_mix(), &FleetControl::threads(2));
        assert_eq!(result.telemetry.len(), 3);
        for (i, doc) in result.telemetry.iter().enumerate() {
            assert!(doc.starts_with("{\"type\":\"run_meta\""), "doc must lead with meta");
            assert!(doc.contains(&format!("\"device\":\"{i}\"")), "device tag missing");
            assert!(doc.contains("\"key\":\"requests\""), "rollup counter missing");
        }
        // Telemetry capture must not perturb the simulation.
        let mut plain_cfg = tiny_fleet(3);
        plain_cfg.telemetry = false;
        let plain = run_fleet(&plain_cfg, &tiny_mix(), &FleetControl::threads(2));
        assert_eq!(plain.metrics, result.metrics);
    }

    #[test]
    fn pacing_and_progress_do_not_change_results() {
        let cfg = tiny_fleet(2);
        let mix = tiny_mix();
        let plain = run_fleet(&cfg, &mix, &FleetControl::threads(2));
        let paced = run_fleet(
            &cfg,
            &mix,
            &FleetControl {
                threads: 2,
                device_starts_per_s: Some(1e6),
                progress_every: Some(1),
            },
        );
        assert_eq!(plain.metrics, paced.metrics);
    }

    #[test]
    fn uniform_fleet_offsets_fault_seeds_per_device() {
        let template = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru)
            .with_faults(FaultConfig::with_rates(100, 1_000, 0, 0));
        let cfg = FleetConfig::uniform(3, template);
        let seeds: Vec<u64> = cfg.devices.iter().map(|d| d.fault.seed).collect();
        assert_eq!(seeds, vec![100, 101, 102]);
    }

    #[test]
    fn fleet_metrics_accessors_cover_empty_and_loaded_cases() {
        let cfg = tiny_fleet(2);
        let m = run_fleet(&cfg, &tiny_mix(), &FleetControl::threads(1)).metrics;
        assert_eq!(m.devices(), 2);
        assert!(m.fleet_percentile_ms(0.99) > 0.0);
        assert!(m.worst_device_p99_ms() >= m.fleet_percentile_ms(0.5));
        let empty = run_fleet(&cfg, &TenantMix::default(), &FleetControl::threads(1)).metrics;
        assert_eq!(empty.fleet_percentile_ms(0.99), 0.0);
        assert_eq!(empty.worst_device_p99_ns(), 0);
        assert!(empty.per_tenant.is_empty());
    }
}
