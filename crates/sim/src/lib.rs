//! Trace-driven SSD simulator.
//!
//! Ties the substrates together the way Figure 1 of the paper draws them:
//! host requests arrive at the HIL, write data is buffered in the DRAM
//! cache ([`reqblock_cache::WriteBuffer`]), evicted batches are flushed
//! through the page-level FTL ([`reqblock_ftl::Ftl`]) onto the multi-channel
//! flash array ([`reqblock_flash::FlashTimeline`]), and read misses fetch
//! from flash.
//!
//! Timing model (see `reqblock-flash` docs): operations reserve per-channel
//! and per-chip busy horizons; a request's response time is the completion
//! of its slowest page. Cache hits cost one DRAM access. A write that
//! triggers eviction **stalls until the victim flush completes** — the
//! buffered data cannot be overwritten before it is safe on flash — which is
//! the mechanism that translates eviction-batch placement into the response
//! time differences of the paper's Figure 8.
//!
//! The simulator core is split into three layers with explicit seams
//! (DESIGN.md §7.2): the [`device`] layer times operations (cache + FTL +
//! flash timeline behind the narrow [`Device`] API, returning structured
//! [`device::Completion`]s), the [`engine`] layer owns request identity,
//! metrics, sampling and telemetry, and the [`host`] layer decides how
//! requests are issued via a pluggable [`SubmitMode`] —
//! [`SubmitMode::Synchronous`] (the paper's one-at-a-time model,
//! byte-identical to the pre-layering simulator) or
//! [`SubmitMode::Queued`] (an outstanding-flush window of `depth - 1`
//! background slots; the X5 queue-depth sweep).
//!
//! * [`SimConfig`]/[`PolicyKind`]/[`CacheSizeMb`] — run configuration.
//! * [`host::Ssd`] — the host-facing façade (`submit` one request at a
//!   time; `submit_recorded` streams events into a
//!   [`reqblock_obs::Recorder`]).
//! * [`Metrics`] — hit/response/eviction counters (Figures 8-11).
//! * [`probes`] — figure-specific recorder consumers (Figures 2, 3).
//! * [`runner`] — whole-trace execution and multi-run sweeps.
//! * [`fleet`] — fleet orchestration: many independent devices under a
//!   blended multi-tenant workload, with deterministic placement,
//!   per-tenant response aggregation and noisy-neighbor measurement.
//!
//! Observability: pass any [`reqblock_obs::Recorder`] to the `*_recorded`
//! entry points to capture page events, flush-wait spans, the end-of-run
//! counter/gauge rollup, and — when [`config::SampleInterval`] is set —
//! periodic time series (hit ratio, write amplification, channel
//! utilization, buffer occupancy, free blocks, Req-block list occupancy).
//!
//! Reliability: set [`SimConfig::with_faults`] with a nonzero
//! [`FaultConfig`] to inject deterministic, seeded read/program/erase
//! failures (see `reqblock-flash`/`reqblock-ftl`). Fault counters, retired
//! bad blocks and degraded-mode state flow into the same recorder rollup
//! (`fault_*`, `bad_blocks*`, `rejected_write_pages`, `device_read_only`)
//! and into [`runner::RunResult::faults`]; zero-fault runs emit none of
//! these keys, so existing telemetry consumers see no change.

pub mod buffer;
pub mod config;
pub mod device;
pub mod engine;
pub mod event;
pub mod fleet;
pub mod host;
pub mod load;
pub mod metrics;
pub mod probes;
pub mod runner;

pub use buffer::PolicyBuffer;
pub use config::{CacheSizeMb, PolicyKind, SampleInterval, SimConfig};
pub use device::Device;
pub use engine::Engine;
pub use event::{ChipCursors, TimerWheel};
pub use fleet::{
    noisy_neighbor, run_fleet, run_fleet_excluding, DeviceSummary, FleetConfig, FleetControl,
    FleetMetrics, FleetResult, NoisyNeighbor, Placement, TenantMix, TenantSpec, TenantStats,
};
pub use host::{FlushWindow, Ssd, SubmitMode};
pub use load::ArrivalProcess;
pub use reqblock_flash::{DegradedMode, FaultConfig, FaultStats};
pub use reqblock_ftl::Health;
pub use metrics::Metrics;
pub use reqblock_flash::{IntervalLog, OpInterval, OpKind};
pub use reqblock_obs::Histogram as LatencyHistogram;
pub use reqblock_obs::{AttrAcc, AttrConfig, Component, SpanRecord};
pub use runner::{
    run_jobs, run_source, run_source_recorded, run_task_pool, run_trace, run_trace_drained,
    run_trace_recorded, Job, RunResult, Task, TraceSource,
};
