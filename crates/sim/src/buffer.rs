//! Static dispatch over the cache-policy zoo.
//!
//! [`Device`](crate::Device) used to hold its policy as a
//! `Box<dyn WriteBuffer>`, which costs an indirect call per buffered page —
//! the single hottest call site in the simulator (every page of every
//! request goes through `write`/`read`). [`PolicyBuffer`] closes the set:
//! the nine policy implementations become enum variants, so the per-page
//! calls devirtualize and inline into the engine loop, while everything
//! cold (occupancy queries, event counters, telemetry) still goes through
//! the trait object view returned by [`PolicyBuffer::as_dyn`].

use reqblock_cache::policies::{
    BplruCache, CflruCache, FabCache, FifoCache, LfuCache, LruCache, PudLruCache, VbbmsCache,
};
use reqblock_cache::{Access, EvictionBatch, WriteBuffer};
use reqblock_core::ReqBlock;

/// A write buffer with the policy chosen at construction but dispatched
/// statically: one branch per call instead of a vtable load + indirect
/// call per page.
pub enum PolicyBuffer {
    /// Page-level LRU.
    Lru(LruCache),
    /// Page-level FIFO.
    Fifo(FifoCache),
    /// Page-level LFU.
    Lfu(LfuCache),
    /// Clean-first LRU.
    Cflru(CflruCache),
    /// Flash-aware buffer.
    Fab(FabCache),
    /// Predicted-update-distance block buffer.
    PudLru(PudLruCache),
    /// Block padding LRU.
    Bplru(BplruCache),
    /// Virtual-block split-region scheme.
    Vbbms(VbbmsCache),
    /// The paper's contribution.
    ReqBlock(ReqBlock),
}

macro_rules! each_policy {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            PolicyBuffer::Lru($inner) => $body,
            PolicyBuffer::Fifo($inner) => $body,
            PolicyBuffer::Lfu($inner) => $body,
            PolicyBuffer::Cflru($inner) => $body,
            PolicyBuffer::Fab($inner) => $body,
            PolicyBuffer::PudLru($inner) => $body,
            PolicyBuffer::Bplru($inner) => $body,
            PolicyBuffer::Vbbms($inner) => $body,
            PolicyBuffer::ReqBlock($inner) => $body,
        }
    };
}

impl PolicyBuffer {
    /// Record a page write; returns whether it hit. See
    /// [`WriteBuffer::write`].
    #[inline]
    pub fn write(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool {
        each_policy!(self, c => c.write(a, evictions))
    }

    /// Record a page read; returns whether it hit. See
    /// [`WriteBuffer::read`].
    #[inline]
    pub fn read(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool {
        each_policy!(self, c => c.read(a, evictions))
    }

    /// Hand a flushed batch back for buffer reuse. See
    /// [`WriteBuffer::recycle`].
    #[inline]
    pub fn recycle(&mut self, batch: EvictionBatch) {
        each_policy!(self, c => c.recycle(batch))
    }

    /// Remove and return everything still buffered. See
    /// [`WriteBuffer::drain`].
    pub fn drain(&mut self) -> Vec<EvictionBatch> {
        each_policy!(self, c => c.drain())
    }

    /// Trait-object view for the cold paths (occupancy, metadata, events):
    /// they run once per sample or per run, not once per page.
    pub fn as_dyn(&self) -> &dyn WriteBuffer {
        each_policy!(self, c => c as &dyn WriteBuffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use reqblock_cache::policies::{BplruConfig, CflruConfig, VbbmsConfig};
    use reqblock_core::ReqBlockConfig;

    #[test]
    fn enum_dispatch_matches_boxed_dispatch() {
        // Same access stream through the enum and the trait object must
        // produce identical hit/miss decisions and eviction batches.
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Lfu,
            PolicyKind::Cflru(CflruConfig::default()),
            PolicyKind::Fab,
            PolicyKind::PudLru,
            PolicyKind::Bplru(BplruConfig::default()),
            PolicyKind::Vbbms(VbbmsConfig::default()),
            PolicyKind::ReqBlock(ReqBlockConfig::paper()),
        ] {
            let mut enum_buf = kind.build_buffer(16, 8);
            let mut boxed = kind.build(16, 8);
            let mut ev_a = Vec::new();
            let mut ev_b = Vec::new();
            for i in 0..200u64 {
                let lpn = (i * 7) % 48;
                let a = Access { lpn, req_id: i, req_pages: 4, now: i * 100 };
                let (ha, hb) = if i % 3 == 0 {
                    (enum_buf.read(&a, &mut ev_a), boxed.read(&a, &mut ev_b))
                } else {
                    (enum_buf.write(&a, &mut ev_a), boxed.write(&a, &mut ev_b))
                };
                assert_eq!(ha, hb, "{}: hit decision diverged at i={i}", kind.name());
            }
            assert_eq!(ev_a.len(), ev_b.len(), "{}: eviction count diverged", kind.name());
            for (a, b) in ev_a.iter().zip(&ev_b) {
                assert_eq!(a.lpns, b.lpns, "{}: eviction batch diverged", kind.name());
            }
            assert_eq!(enum_buf.as_dyn().len_pages(), boxed.len_pages());
            assert_eq!(enum_buf.as_dyn().name(), kind.name());
            assert_eq!(
                enum_buf.drain().len(),
                boxed.drain().len(),
                "{}: drain diverged",
                kind.name()
            );
        }
    }
}
