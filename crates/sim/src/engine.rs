//! Engine layer: request identity, metrics, sampling and telemetry.
//!
//! The [`Engine`] drives the [`Device`] one request at a time and owns
//! everything *about* the run that is not device state: the monotone
//! request counter, the logical page clock (Eq. 1's time base), the
//! [`Metrics`] accumulators, the periodic time-series sampler, and the
//! end-of-run recorder rollup. It is host-mode agnostic: the caller passes
//! the host's [`FlushWindow`], and the only thing the window changes is
//! *when a flush's completion becomes visible to the triggering request* —
//! with a zero-capacity window (synchronous mode) every flush is waited on
//! in place, reproducing the paper's model byte-for-byte.

use crate::config::{SampleInterval, SimConfig};
use crate::device::Device;
use crate::event::ChipCursors;
use crate::host::{FlushWindow, SubmitMode};
use crate::metrics::Metrics;
use reqblock_cache::{Access, EvictionBatch};
use reqblock_obs::attr::COMPONENTS;
use reqblock_obs::{series, AttrAcc, Component, PageEvent, Recorder};
use reqblock_trace::{OpType, Request};

/// Per-run orchestration state between the host interface and the device.
pub struct Engine {
    cfg: SimConfig,
    device: Device,
    metrics: Metrics,
    /// Logical time: pages processed so far (the time base of Eq. 1).
    logical_now: u64,
    /// Monotone request counter (request-block identity).
    req_counter: u64,
    /// Arrival time (ns) of the most recent request.
    last_arrival_ns: u64,
    /// Next `t` (request index or arrival ns, per the sampling mode) at
    /// which the time-series sampler fires. Starts at 0 so the first
    /// request is always sampled.
    next_sample: u64,
    /// Next request id at which the metadata-overhead sampler fires;
    /// threshold compare instead of a per-request modulo.
    next_overhead_sample: u64,
    /// Reused eviction-batch collection vector: taken at the top of each
    /// request, drained batch by batch (each batch handed back to the
    /// policy via recycle after its flush), and restored at the end — no
    /// per-request or per-eviction allocation.
    evict_scratch: Vec<EvictionBatch>,
    /// NCQ-style outstanding-read ledger: per-chip FIFO rings of flash
    /// read completions the host has issued but not yet observed retire.
    /// Maintained only on instrumented queued runs (recorder enabled and a
    /// non-zero flush window) so the uninstrumented hot path and the
    /// synchronous telemetry contract are untouched.
    read_cursors: ChipCursors,
    /// Per-request latency attribution accumulator; allocated only when
    /// [`SimConfig::attr`] is set, consulted only while the recorder is
    /// live (`rec.enabled()`), so both the no-op hot path and plain
    /// recorded runs are untouched.
    attr: Option<Box<AttrAcc>>,
    /// Whether the device's busy-interval capture has been switched on
    /// (lazily, at the first attributed request — a `NoopRecorder` run
    /// with attribution configured never enables it).
    intervals_on: bool,
}

impl Engine {
    /// Build the engine and its device per `cfg`.
    pub fn new(cfg: SimConfig) -> Self {
        let device = Device::new(&cfg);
        Self {
            device,
            metrics: Metrics::default(),
            logical_now: 0,
            req_counter: 0,
            last_arrival_ns: 0,
            next_sample: 0,
            next_overhead_sample: 0,
            // A page write triggers at most one eviction decision, and even
            // degenerate policies produce a handful of batches per request.
            evict_scratch: Vec::with_capacity(4),
            read_cursors: ChipCursors::new(cfg.ssd.total_chips()),
            attr: cfg.attr.map(|a| Box::new(AttrAcc::new(a))),
            intervals_on: false,
            cfg,
        }
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The device under this engine.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Run configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The attribution accumulator, when [`SimConfig::attr`] is set and at
    /// least one recorded request ran through it.
    pub fn attribution(&self) -> Option<&AttrAcc> {
        self.attr.as_deref()
    }

    /// Settle one eviction batch: account it, time it on the device, and
    /// decide — via the host's flush window — how much of the flush the
    /// triggering request actually waits for. Returns the completion time
    /// visible to the request plus — when `attr_on` — the GC busy time the
    /// flush provoked (for the caller's flush-stall vs GC-interference
    /// split; always 0 otherwise). The stall past `at` is attributed to
    /// the dedicated flush-wait span so buffer-induced stalls stay
    /// distinguishable from the device service time of the request's own
    /// pages.
    fn settle_flush<R: Recorder + ?Sized>(
        &mut self,
        batch: &EvictionBatch,
        at: u64,
        on: bool,
        attr_on: bool,
        rec: &mut R,
        window: &mut FlushWindow,
    ) -> (u64, u64) {
        if !batch.dirty {
            self.metrics.clean_dropped_pages += batch.lpns.len() as u64;
            return (at, 0);
        }
        self.metrics.evictions += 1;
        self.metrics.evicted_pages += batch.lpns.len() as u64;
        self.metrics.pad_read_pages += batch.pad_reads.len() as u64;
        let gc_before = if attr_on { self.device.ftl_obs().gc_busy_ns } else { 0 };
        let completion = self.device.flush(batch, at);
        let gc_ns =
            if attr_on { saturate_u64(self.device.ftl_obs().gc_busy_ns - gc_before) } else { 0 };
        let visible = if window.capacity() == 0 {
            // Synchronous: the request waits for its own victim flush — the
            // buffered data cannot be overwritten before it is safe on
            // flash (§4.2.2).
            completion.ready_ns
        } else {
            // Queued: the flush retires in the background. The request
            // stalls only when every window slot is occupied, and then only
            // until the *earliest* outstanding flush retires.
            window.admit(completion.ready_ns).unwrap_or(at)
        };
        let stall = visible.saturating_sub(at);
        if stall > 0 {
            self.metrics.flush_stalls += 1;
            self.metrics.flush_stall_ns += stall as u128;
            if on {
                rec.span("flush_wait", stall);
            }
        }
        (visible, gc_ns)
    }

    /// Submit one request, streaming page events, flush-wait spans and
    /// periodic samples into `rec`. With a disabled recorder every
    /// per-event hook is skipped — `rec.enabled()` is consulted once per
    /// request. The recorder is a generic parameter (not `dyn`) so the
    /// plain submit path monomorphizes with
    /// [`reqblock_obs::NoopRecorder`]: `enabled()` inlines to `false` and
    /// the optimizer removes every recording branch, leaving the
    /// uninstrumented hot path bit-identical in cost to one with no
    /// recorder argument at all.
    pub fn submit_recorded<R: Recorder + ?Sized>(
        &mut self,
        req: &Request,
        rec: &mut R,
        window: &mut FlushWindow,
    ) -> u64 {
        let on = rec.enabled();
        let at = req.time_ns;
        let pages = req.page_count();
        let req_id = self.req_counter;
        self.req_counter += 1;
        self.metrics.requests += 1;
        self.last_arrival_ns = self.last_arrival_ns.max(at);
        // Attribution is double-gated: the accumulator must be configured
        // AND the recorder live. With `NoopRecorder`, `on` is a constant
        // false and the whole decomposition (including the parts array
        // below) monomorphizes away; with a live recorder but no
        // `SimConfig::attr`, every attribution branch is one dead bool
        // test and the recorded telemetry stays byte-identical.
        let attr_on = on && self.attr.is_some();
        if attr_on && !self.intervals_on {
            // First attributed request: start the trace-export interval
            // capture. Lazy so a no-op-recorder run with attribution
            // configured (the bench overhead gate) never allocates it.
            self.intervals_on = true;
            self.device.enable_busy_intervals();
        }
        // Per-component shares of this request's response; every advance
        // of `done` below is charged to exactly one component, so the
        // parts sum to the response by construction.
        let mut parts = [0u64; COMPONENTS];
        // Background flushes that retired before this arrival free their
        // window slots (no-op with a zero-capacity synchronous window).
        window.retire_until(at);
        // The outstanding-read ledger is pure instrumentation: only kept
        // when the recorder is live *and* the submit mode admits background
        // work (`Queued { depth >= 2 }`), so the uninstrumented hot path
        // pays nothing and `Queued { 1 }` telemetry stays byte-identical
        // to `Synchronous`.
        let track_ncq = on && window.capacity() > 0;
        if track_ncq {
            self.read_cursors.drain_ready(at);
        }
        let mut done = at;
        let mut evictions = std::mem::take(&mut self.evict_scratch);
        match req.op {
            OpType::Write => {
                self.metrics.write_reqs += 1;
                for lpn in req.lpns() {
                    self.logical_now += 1;
                    let a = Access { lpn, req_id, req_pages: pages as u32, now: self.logical_now };
                    let hit = self.device.buffer_write(&a, &mut evictions);
                    self.metrics.write_pages += 1;
                    if hit {
                        self.metrics.write_hits += 1;
                    }
                    if on {
                        rec.page(&PageEvent {
                            lpn,
                            req_id,
                            req_pages: pages as u32,
                            now: self.logical_now,
                            is_write: true,
                            hit,
                        });
                    }
                    // Buffered write: one DRAM access, plus — when this page
                    // forced an eviction — whatever part of the victim flush
                    // the host makes it wait for. Batch evictions amortize
                    // this stall over every page they free (§4.2.2: "each
                    // eviction operation can make more available cache
                    // space"), and striped placement bounds it to about one
                    // program latency, while BPLRU's single-block flushes
                    // serialize.
                    if attr_on {
                        attribute_advance(
                            &mut done,
                            at + self.device.dram_access_ns(),
                            &mut parts,
                            &[],
                            Component::CacheService,
                        );
                    } else {
                        done = done.max(at + self.device.dram_access_ns());
                    }
                    if !evictions.is_empty() {
                        for batch in evictions.drain(..) {
                            let (visible, gc_ns) =
                                self.settle_flush(&batch, at, on, attr_on, rec, window);
                            if attr_on {
                                // Of the wait this flush added, the part the
                                // device provably spent garbage-collecting is
                                // GC interference; the rest is flush stall.
                                attribute_advance(
                                    &mut done,
                                    visible,
                                    &mut parts,
                                    &[(Component::GcInterference, gc_ns)],
                                    Component::FlushStall,
                                );
                            } else {
                                done = done.max(visible);
                            }
                            self.device.recycle(batch);
                        }
                    }
                }
            }
            OpType::Read => {
                self.metrics.read_reqs += 1;
                for lpn in req.lpns() {
                    self.logical_now += 1;
                    // Warm the FTL mapping entry behind the buffer lookup:
                    // on a miss the very next load is `l2p[lpn]`.
                    self.device.prefetch_read(lpn);
                    let a = Access { lpn, req_id, req_pages: pages as u32, now: self.logical_now };
                    let hit = self.device.buffer_read(&a, &mut evictions);
                    self.metrics.read_pages += 1;
                    if hit {
                        self.metrics.read_hits += 1;
                        if attr_on {
                            attribute_advance(
                                &mut done,
                                at + self.device.dram_access_ns(),
                                &mut parts,
                                &[],
                                Component::CacheService,
                            );
                        } else {
                            done = done.max(at + self.device.dram_access_ns());
                        }
                    } else {
                        // Snapshot the device's cumulative retry/GC/queue
                        // accounting around the read so the miss's advance
                        // can be split by cause (clamped in that order;
                        // the remainder is pure read service).
                        let (retry0, gc0, wait0) = if attr_on {
                            let o = self.device.ftl_obs();
                            (o.retry_busy_ns, o.gc_busy_ns, self.device.busy().wait_ns)
                        } else {
                            (0, 0, 0)
                        };
                        let c = self.device.flash_read(lpn, at);
                        if attr_on {
                            let o = self.device.ftl_obs();
                            let retry_ns = saturate_u64(o.retry_busy_ns - retry0);
                            let gc_ns = saturate_u64(o.gc_busy_ns - gc0);
                            let wait_ns = saturate_u64(self.device.busy().wait_ns - wait0);
                            attribute_advance(
                                &mut done,
                                c.ready_ns,
                                &mut parts,
                                &[
                                    (Component::ReadRetry, retry_ns),
                                    (Component::GcInterference, gc_ns),
                                    (Component::ReadQueueWait, wait_ns),
                                ],
                                Component::ReadService,
                            );
                        } else {
                            done = done.max(c.ready_ns);
                        }
                        if track_ncq {
                            // Ledger the read on the chip that served it;
                            // per-chip completion times are monotone (the
                            // chip busy horizon only advances), which is
                            // what keeps the cursor rings FIFO.
                            if let Some(chip) = self.device.chip_of_lpn(lpn) {
                                self.read_cursors.push(chip, c.ready_ns);
                            }
                        }
                    }
                    if on {
                        rec.page(&PageEvent {
                            lpn,
                            req_id,
                            req_pages: pages as u32,
                            now: self.logical_now,
                            is_write: false,
                            hit,
                        });
                    }
                    // Read-caching policies (CFLRU ablation) may evict here;
                    // same stall rules as the write path.
                    if !evictions.is_empty() {
                        for batch in evictions.drain(..) {
                            let (visible, gc_ns) =
                                self.settle_flush(&batch, at, on, attr_on, rec, window);
                            if attr_on {
                                attribute_advance(
                                    &mut done,
                                    visible,
                                    &mut parts,
                                    &[(Component::GcInterference, gc_ns)],
                                    Component::FlushStall,
                                );
                            } else {
                                done = done.max(visible);
                            }
                            self.device.recycle(batch);
                        }
                    }
                }
            }
        }
        self.evict_scratch = evictions;
        let response = done.saturating_sub(at);
        self.metrics.record_response(response);
        if self.cfg.overhead_sample_every > 0 && req_id >= self.next_overhead_sample {
            self.next_overhead_sample = req_id + self.cfg.overhead_sample_every;
            self.metrics.overhead_samples += 1;
            self.metrics.metadata_bytes_sum += self.device.cache().metadata_bytes() as u128;
            self.metrics.node_count_sum += self.device.cache().node_count() as u128;
        }
        if on {
            if attr_on {
                if let Some(acc) = self.attr.as_deref_mut() {
                    acc.observe(req_id, at, response, parts);
                }
            }
            rec.request_end(req_id);
            self.maybe_sample(req_id, at, rec, window);
        }
        response
    }

    /// Fire the periodic sampler if the configured interval has elapsed.
    fn maybe_sample<R: Recorder + ?Sized>(
        &mut self,
        req_id: u64,
        arrival_ns: u64,
        rec: &mut R,
        window: &FlushWindow,
    ) {
        let t = match self.cfg.sampling {
            SampleInterval::Off => return,
            SampleInterval::Requests(n) => {
                if req_id < self.next_sample {
                    return;
                }
                self.next_sample = req_id + n.max(1);
                req_id
            }
            SampleInterval::SimTimeNs(dt) => {
                if arrival_ns < self.next_sample {
                    return;
                }
                self.next_sample = arrival_ns + dt.max(1);
                arrival_ns
            }
        };
        self.emit_sample(t, rec, window);
    }

    /// The utilization window: how much wall-clock the run spans so far.
    /// Windowing on the *later* of the last arrival and the device's
    /// completion horizon keeps utilization within `[0, 1]` even when
    /// service outruns arrivals (busy time can never exceed the horizon).
    fn utilization_window_ns(&self) -> u64 {
        self.last_arrival_ns.max(self.device.completion_horizon_ns())
    }

    /// Snapshot the device state as one point per time series.
    fn emit_sample<R: Recorder + ?Sized>(&self, t: u64, rec: &mut R, window: &FlushWindow) {
        rec.sample("hit_ratio", t, self.metrics.hit_ratio());
        rec.sample("write_amp", t, self.device.flash_counters().write_amplification());
        rec.sample("chan_util", t, self.device.busy().channel_utilization(self.utilization_window_ns()));
        let occ = self.device.cache().len_pages() as f64 / self.device.cache().capacity_pages() as f64;
        rec.sample("buf_occupancy", t, occ);
        rec.sample("free_blocks", t, self.device.free_blocks_total() as f64);
        if !self.cfg.fault.is_inert() {
            rec.sample("bad_blocks", t, self.device.bad_blocks_total() as f64);
        }
        if window.capacity() > 0 {
            // Host queue occupancy exists only in queued mode; gating the
            // series keeps synchronous telemetry byte-identical.
            rec.sample(series::QDEPTH, t, window.outstanding() as f64);
            rec.sample(series::OUTSTANDING_READS, t, self.read_cursors.outstanding() as f64);
        }
        if let Some([irl, srl, drl]) = self.device.cache().list_occupancy() {
            rec.sample("irl_pages", t, irl as f64);
            rec.sample("srl_pages", t, srl as f64);
            rec.sample("drl_pages", t, drl as f64);
        }
    }

    /// Emit the end-of-run rollup into `rec`: flash/FTL/cache/metric
    /// counters, final gauges, and per-channel busy time. No-op when the
    /// recorder is disabled. Runners call this automatically.
    pub fn finish_recording<R: Recorder + ?Sized>(&mut self, rec: &mut R, window: &FlushWindow) {
        if !rec.enabled() {
            return;
        }
        let m = &self.metrics;
        rec.counter("requests", m.requests);
        rec.counter("read_reqs", m.read_reqs);
        rec.counter("write_reqs", m.write_reqs);
        rec.counter("read_pages", m.read_pages);
        rec.counter("write_pages", m.write_pages);
        rec.counter("read_hits", m.read_hits);
        rec.counter("write_hits", m.write_hits);
        rec.counter("evictions", m.evictions);
        rec.counter("evicted_pages", m.evicted_pages);
        rec.counter("clean_dropped_pages", m.clean_dropped_pages);
        rec.counter("pad_read_pages", m.pad_read_pages);
        rec.counter("flush_stalls", m.flush_stalls);
        rec.counter("flush_stall_ns", saturate_u64(m.flush_stall_ns));

        let c = *self.device.flash_counters();
        rec.counter("flash_user_reads", c.user_reads);
        rec.counter("flash_user_programs", c.user_programs);
        rec.counter("flash_gc_reads", c.gc_reads);
        rec.counter("flash_gc_programs", c.gc_programs);
        rec.counter("flash_erases", c.erases);

        let f = *self.device.ftl_stats();
        rec.counter("gc_runs", f.gc_runs);
        rec.counter("gc_migrated_pages", f.gc_migrated_pages);
        rec.counter("gc_erased_blocks", f.gc_erased_blocks);
        rec.counter("unmapped_reads", f.unmapped_reads);
        let o = *self.device.ftl_obs();
        rec.counter("gc_busy_ns", saturate_u64(o.gc_busy_ns));
        rec.gauge("gc_max_pause_ms", o.gc_max_pause_ns as f64 / 1e6);

        // Reliability rollup: emitted only when fault injection is
        // configured, so zero-fault telemetry stays byte-identical to
        // pre-reliability-layer runs.
        if !self.cfg.fault.is_inert() || self.cfg.fault.read_only_free_floor > 0 {
            let fs = *self.device.fault_stats();
            rec.counter("fault_read_faults", fs.read_faults);
            rec.counter("fault_read_retries", fs.read_retries);
            rec.counter("fault_read_uncorrectable", fs.read_uncorrectable);
            rec.counter("fault_program_failures", fs.program_failures);
            rec.counter("fault_erase_failures", fs.erase_failures);
            rec.counter("bad_blocks_retired", fs.retired_blocks);
            rec.counter("remapped_pages", fs.remapped_pages);
            rec.counter("rejected_write_pages", fs.rejected_write_pages);
            rec.gauge("bad_blocks", self.device.bad_blocks_total() as f64);
            rec.gauge("device_read_only", if self.device.is_read_only() { 1.0 } else { 0.0 });
        }

        if let Some(ev) = self.device.cache().events() {
            rec.counter("cache_srl_upgrades", ev.srl_upgrades);
            rec.counter("cache_drl_splits", ev.drl_splits);
            rec.counter("cache_downgrade_merges", ev.downgrade_merges);
            rec.counter("cache_victim_selections", ev.victim_selections);
        }

        let busy = self.device.busy().clone();
        rec.counter("flash_waits", busy.waited_ops);
        rec.counter("flash_wait_ns", saturate_u64(busy.wait_ns));
        for (ch, &ns) in busy.channel_busy_ns.iter().enumerate() {
            rec.gauge(&format!("chan{ch}_busy_ms"), ns as f64 / 1e6);
        }
        let chips = &busy.chip_busy_ns;
        if !chips.is_empty() {
            let max = chips.iter().copied().max().unwrap_or(0);
            let mean = chips.iter().map(|&n| n as u128).sum::<u128>() as f64 / chips.len() as f64;
            rec.gauge("chip_busy_ms_max", max as f64 / 1e6);
            rec.gauge("chip_busy_ms_mean", mean / 1e6);
        }

        rec.gauge("hit_ratio", m.hit_ratio());
        rec.gauge("write_amp", c.write_amplification());
        rec.gauge("chan_util", busy.channel_utilization(self.utilization_window_ns()));
        rec.gauge(
            "buf_occupancy",
            self.device.cache().len_pages() as f64 / self.device.cache().capacity_pages() as f64,
        );
        rec.gauge("free_blocks", self.device.free_blocks_total() as f64);
        rec.gauge("avg_response_ms", m.avg_response_ms());
        rec.gauge("p99_response_ms", m.response_percentile_ms(0.99));
        rec.gauge("avg_flush_stall_ms", m.avg_flush_stall_ms());

        // Host-layer rollup: only queued mode has a window to report, and
        // gating it keeps synchronous JSONL byte-identical.
        if window.capacity() > 0 {
            let depth = match self.cfg.submit {
                SubmitMode::Queued { depth } => depth,
                SubmitMode::Synchronous => 1,
            };
            rec.gauge(series::HOST_QDEPTH, depth as f64);
            rec.gauge(series::HOST_MAX_OUTSTANDING, window.max_outstanding() as f64);
            rec.gauge(
                series::HOST_MAX_READS_OUTSTANDING,
                self.read_cursors.max_outstanding() as f64,
            );
        }

        // Attribution rollup: emitted only when [`SimConfig::attr`] is
        // configured, so plain recorded telemetry stays byte-identical to
        // pre-attribution runs. All components are emitted (even all-zero
        // ones) so the key set is stable across policies and loads.
        if let Some(acc) = self.attr.as_deref() {
            for comp in Component::ALL {
                let h = acc.component_hist(comp);
                let name = comp.name();
                rec.counter(
                    &format!("{}{name}_ns", series::ATTR_PREFIX),
                    saturate_u64(acc.total_ns(comp)),
                );
                rec.counter(&format!("{}{name}_reqs", series::ATTR_PREFIX), h.count());
                rec.gauge(&format!("{}{name}_max_ms", series::ATTR_PREFIX), h.max() as f64 / 1e6);
            }
            rec.counter(series::ATTR_SAMPLED_SPANS, acc.sampled_spans().len() as u64);
            rec.counter("attr_dropped_samples", acc.dropped_samples());
            rec.gauge(
                series::ATTR_P99_RESPONSE_MS,
                acc.response_hist().quantile_upper(0.99).unwrap_or(0) as f64 / 1e6,
            );
        }
    }

    /// Flush everything still buffered (end-of-trace). The flush traffic is
    /// counted in the flash counters but not in request response times; it
    /// is issued at the run's completion horizon so it lands on the
    /// timelines *after* every request has arrived and been served.
    pub fn drain_cache(&mut self) {
        let at = self.utilization_window_ns();
        for batch in self.device.drain_buffer() {
            if batch.dirty {
                self.metrics.evictions += 1;
                self.metrics.evicted_pages += batch.lpns.len() as u64;
                self.device.write_back(&batch, at);
            }
        }
    }
}

/// Clamp a u128 nanosecond total into the u64 counter domain.
fn saturate_u64(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// Advance `done` to at least `to`, attributing the advance delta across
/// `splits` in order (each clamped to what remains) with the remainder
/// charged to `rest`. Because every nanosecond of advance lands in exactly
/// one component, a request's parts sum exactly to its response time —
/// the invariant the workspace attribution proptest pins.
#[inline]
fn attribute_advance(
    done: &mut u64,
    to: u64,
    parts: &mut [u64; COMPONENTS],
    splits: &[(Component, u64)],
    rest: Component,
) {
    let before = *done;
    *done = before.max(to);
    let mut delta = *done - before;
    for &(c, cap) in splits {
        let take = delta.min(cap);
        parts[c.index()] += take;
        delta -= take;
    }
    parts[rest.index()] += delta;
}
