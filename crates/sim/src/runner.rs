//! Whole-trace execution and multi-run sweeps.

use crate::config::SimConfig;
use crate::machine::Ssd;
use crate::metrics::Metrics;
use reqblock_flash::{FaultStats, OpCounters};
use reqblock_ftl::{FtlStats, Health};
use reqblock_obs::{NoopRecorder, Recorder};
use reqblock_trace::{Request, SyntheticTrace, WorkloadProfile};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Policy name (e.g. `"Req-block"`).
    pub policy: String,
    /// Cache capacity in pages.
    pub cache_pages: usize,
    /// Request/hit/eviction/response metrics.
    pub metrics: Metrics,
    /// Flash operation counters (Figure 11's write count lives here).
    pub flash: OpCounters,
    /// GC statistics.
    pub ftl: FtlStats,
    /// Reliability counters (all zero unless the run injected faults).
    pub faults: FaultStats,
    /// Device health at end of run (degrades under fault injection).
    pub health: Health,
    /// Host wall-clock time the replay took, in seconds (simulator
    /// throughput, not simulated time).
    pub host_elapsed_s: f64,
}

impl RunResult {
    /// Figure 11's "write count to flash memory": pages programmed on behalf
    /// of cache flushes during the trace (GC traffic reported separately).
    pub fn flash_user_writes(&self) -> u64 {
        self.flash.user_programs
    }

    /// Replay throughput in requests per host-second (0 when the run was
    /// too fast to time).
    pub fn requests_per_sec(&self) -> f64 {
        if self.host_elapsed_s <= 0.0 {
            return 0.0;
        }
        self.metrics.requests as f64 / self.host_elapsed_s
    }
}

fn collect(cfg: &SimConfig, ssd: &Ssd, started: Instant) -> RunResult {
    RunResult {
        policy: cfg.policy.name().to_string(),
        cache_pages: cfg.cache_pages,
        metrics: ssd.metrics().clone(),
        flash: *ssd.flash_counters(),
        ftl: *ssd.ftl_stats(),
        faults: *ssd.fault_stats(),
        health: ssd.health(),
        host_elapsed_s: started.elapsed().as_secs_f64(),
    }
}

/// Replay `trace` through a fresh device built from `cfg`.
///
/// The residual cache content is *not* drained: the paper's metrics count
/// traffic during the trace. Use [`run_trace_drained`] when write
/// amplification over the full data set matters.
pub fn run_trace<I>(cfg: &SimConfig, trace: I) -> RunResult
where
    I: IntoIterator<Item = Request>,
{
    run_trace_recorded(cfg, trace, &mut NoopRecorder)
}

/// [`run_trace`] with the event stream mirrored into `rec` (page events,
/// flush-wait spans, periodic samples per [`SimConfig::sampling`], and the
/// end-of-run counter/gauge rollup). The recorder is generic so the plain
/// [`run_trace`] path monomorphizes with [`NoopRecorder`] and compiles the
/// instrumentation out entirely.
pub fn run_trace_recorded<I, R>(cfg: &SimConfig, trace: I, rec: &mut R) -> RunResult
where
    I: IntoIterator<Item = Request>,
    R: Recorder + ?Sized,
{
    let started = Instant::now();
    let mut ssd = Ssd::new(cfg.clone());
    for req in trace {
        ssd.submit_recorded(&req, rec);
    }
    ssd.finish_recording(rec);
    collect(cfg, &ssd, started)
}

/// [`run_trace`] followed by a full cache drain.
pub fn run_trace_drained<I>(cfg: &SimConfig, trace: I) -> RunResult
where
    I: IntoIterator<Item = Request>,
{
    let started = Instant::now();
    let mut ssd = Ssd::new(cfg.clone());
    for req in trace {
        ssd.submit(&req);
    }
    ssd.drain_cache();
    collect(cfg, &ssd, started)
}

/// Where a job's requests come from.
#[derive(Debug, Clone)]
pub enum TraceSource {
    /// Synthesize from a workload profile (deterministic, seeded).
    Synthetic(WorkloadProfile),
    /// Parse an MSR-Cambridge CSV file (the paper's original traces).
    MsrFile(std::path::PathBuf),
}

impl TraceSource {
    /// Materialize the request stream. Panics on unreadable/invalid trace
    /// files — experiment grids should fail loudly, not silently skip runs.
    ///
    /// Replay paths should prefer [`TraceSource::for_each_request`], which
    /// never builds the full `Vec<Request>`.
    pub fn requests(&self) -> Vec<Request> {
        let mut out = Vec::new();
        self.for_each_request(|r| out.push(r));
        out
    }

    /// Stream the request stream in order without materializing it:
    /// synthetic traces generate lazily, MSR files parse line by line
    /// (two passes; see [`reqblock_trace::msr::stream_file`]). Panics on
    /// unreadable/invalid trace files, like [`TraceSource::requests`].
    pub fn for_each_request<F: FnMut(Request)>(&self, mut f: F) {
        match self {
            TraceSource::Synthetic(profile) => {
                for r in SyntheticTrace::new(profile.clone()) {
                    f(r);
                }
            }
            TraceSource::MsrFile(path) => {
                reqblock_trace::msr::stream_file(path, f)
                    .unwrap_or_else(|e| panic!("cannot load trace {}: {e}", path.display()));
            }
        }
    }
}

/// Replay a [`TraceSource`] through a fresh device without materializing the
/// request stream.
pub fn run_source(cfg: &SimConfig, source: &TraceSource) -> RunResult {
    run_source_recorded(cfg, source, &mut NoopRecorder)
}

/// [`run_source`] with the event stream mirrored into `rec` (see
/// [`run_trace_recorded`]).
pub fn run_source_recorded<R: Recorder + ?Sized>(
    cfg: &SimConfig,
    source: &TraceSource,
    rec: &mut R,
) -> RunResult {
    let started = Instant::now();
    let mut ssd = Ssd::new(cfg.clone());
    source.for_each_request(|req| {
        ssd.submit_recorded(&req, rec);
    });
    ssd.finish_recording(rec);
    collect(cfg, &ssd, started)
}

/// One entry of an experiment grid: a labelled (config, workload) pair.
/// The trace is materialized inside the worker, so jobs are cheap to
/// construct and independent.
#[derive(Debug, Clone)]
pub struct Job {
    /// Free-form label (e.g. `"fig8/ts_0/32MB/Req-block"`).
    pub label: String,
    /// Device and policy configuration.
    pub cfg: SimConfig,
    /// Workload to replay.
    pub source: TraceSource,
}

impl Job {
    /// Convenience constructor for synthetic jobs.
    pub fn synthetic(label: impl Into<String>, cfg: SimConfig, profile: WorkloadProfile) -> Self {
        Self { label: label.into(), cfg, source: TraceSource::Synthetic(profile) }
    }
}

/// Run a grid of jobs on up to `threads` worker threads (std scoped threads;
/// traces stream inside the worker, never materialized). Results keep job
/// order. Each result carries its own host wall-clock duration
/// ([`RunResult::host_elapsed_s`]), so grid summaries can report per-job
/// replay throughput.
///
/// Each worker writes its result into a dedicated per-job slot — no mutex,
/// no label cloning on the hot path. If any worker panics, the panic is
/// propagated with the failing job's label so grid failures are debuggable.
pub fn run_jobs(jobs: &[Job], threads: usize) -> Vec<(String, RunResult)> {
    assert!(threads > 0, "need at least one worker");
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<RunResult>> = (0..jobs.len()).map(|_| OnceLock::new()).collect();
    let failure: OnceLock<(usize, String)> = OnceLock::new();
    let workers = threads.min(jobs.len()).max(1);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= jobs.len() {
                    break;
                }
                let job = &jobs[idx];
                match std::panic::catch_unwind(AssertUnwindSafe(|| {
                    run_source(&job.cfg, &job.source)
                })) {
                    Ok(result) => {
                        let ok = slots[idx].set(result).is_ok();
                        debug_assert!(ok, "job index {idx} dispatched twice");
                    }
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        let _ = failure.set((idx, msg));
                        break;
                    }
                }
            });
        }
    });
    if let Some((idx, msg)) = failure.into_inner() {
        panic!("worker running job '{}' panicked: {msg}", jobs[idx].label);
    }
    jobs.iter()
        .zip(slots)
        .map(|(job, slot)| {
            let result = slot.into_inner().expect("every job must produce a result");
            (job.label.clone(), result)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheSizeMb, PolicyKind, SampleInterval};
    use reqblock_core::ReqBlockConfig;
    use reqblock_obs::MemoryRecorder;
    use reqblock_trace::profiles::ts_0;

    fn mini_profile() -> WorkloadProfile {
        ts_0().scaled(0.002) // ~3.6k requests
    }

    #[test]
    fn run_trace_produces_metrics() {
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru);
        let res = run_trace(&cfg, SyntheticTrace::new(mini_profile()));
        assert_eq!(res.policy, "LRU");
        assert_eq!(res.metrics.requests, mini_profile().requests);
        assert!(res.metrics.hit_ratio() > 0.0, "ts_0-like reuse must hit");
        assert!(res.metrics.avg_response_ms() > 0.0);
        assert!(res.host_elapsed_s > 0.0, "replay must take measurable time");
        assert!(res.requests_per_sec() > 0.0);
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper()));
        let a = run_trace(&cfg, SyntheticTrace::new(mini_profile()));
        let b = run_trace(&cfg, SyntheticTrace::new(mini_profile()));
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.flash, b.flash);
    }

    #[test]
    fn recorded_run_matches_plain_run_and_captures_series() {
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper()))
            .with_sampling(SampleInterval::Requests(500));
        let plain = run_trace(&cfg, SyntheticTrace::new(mini_profile()));
        let mut rec = MemoryRecorder::default();
        let recorded = run_trace_recorded(&cfg, SyntheticTrace::new(mini_profile()), &mut rec);
        assert_eq!(plain.metrics, recorded.metrics, "recording must not change the model");
        assert_eq!(plain.flash, recorded.flash);
        assert_eq!(rec.counter_value("requests"), recorded.metrics.requests);
        let pts = rec.series_points("hit_ratio");
        assert!(pts.len() >= 3, "expected >= 3 samples, got {}", pts.len());
    }

    #[test]
    fn drained_run_writes_at_least_as_much() {
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru);
        let plain = run_trace(&cfg, SyntheticTrace::new(mini_profile()));
        let drained = run_trace_drained(&cfg, SyntheticTrace::new(mini_profile()));
        assert!(drained.flash.user_programs >= plain.flash.user_programs);
    }

    #[test]
    fn run_jobs_preserves_order_and_labels() {
        let jobs: Vec<Job> = PolicyKind::paper_comparison()
            .iter()
            .map(|p| Job {
                label: format!("test/{}", p.name()),
                cfg: SimConfig::paper(CacheSizeMb::Mb16, *p),
                source: TraceSource::Synthetic(mini_profile()),
            })
            .collect();
        let results = run_jobs(&jobs, 2);
        assert_eq!(results.len(), 4);
        for (job, (label, res)) in jobs.iter().zip(&results) {
            assert_eq!(&job.label, label);
            assert_eq!(res.policy, job.cfg.policy.name());
            assert!(res.host_elapsed_s > 0.0, "per-job wall clock must be kept");
        }
    }

    #[test]
    fn streaming_source_matches_materialized_run() {
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper()));
        let source = TraceSource::Synthetic(mini_profile());
        let streamed = run_source(&cfg, &source);
        let materialized = run_trace(&cfg, source.requests());
        assert_eq!(streamed.metrics, materialized.metrics);
        assert_eq!(streamed.flash, materialized.flash);
        assert_eq!(streamed.ftl, materialized.ftl);
    }

    #[test]
    fn run_jobs_propagates_panic_with_job_label() {
        let jobs = vec![
            Job::synthetic(
                "ok-job",
                SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru),
                mini_profile(),
            ),
            Job {
                label: "bad-job".into(),
                cfg: SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru),
                source: TraceSource::MsrFile("/nonexistent/reqblock-test-trace.csv".into()),
            },
        ];
        let err = std::panic::catch_unwind(|| run_jobs(&jobs, 2)).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("bad-job"), "panic should name the job: {msg}");
    }

    #[test]
    fn reqblock_beats_lru_on_hit_ratio_for_reuse_heavy_trace() {
        // The headline claim at miniature scale: on a ts_0-like workload the
        // Req-block policy should not lose to LRU on hit ratio.
        let profile = ts_0().scaled(0.01);
        let lru = run_trace(
            &SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru),
            SyntheticTrace::new(profile.clone()),
        );
        let rb = run_trace(
            &SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper())),
            SyntheticTrace::new(profile),
        );
        assert!(
            rb.metrics.hit_ratio() >= lru.metrics.hit_ratio() * 0.95,
            "Req-block {:.4} vs LRU {:.4}",
            rb.metrics.hit_ratio(),
            lru.metrics.hit_ratio()
        );
    }
}
