//! Whole-trace execution and multi-run sweeps.

use crate::config::SimConfig;
use crate::host::Ssd;
use crate::metrics::Metrics;
use reqblock_flash::{FaultStats, OpCounters};
use reqblock_ftl::{FtlStats, Health};
use reqblock_obs::{NoopRecorder, Recorder};
use reqblock_trace::{Request, SyntheticTrace, WorkloadProfile};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Policy name (e.g. `"Req-block"`).
    pub policy: String,
    /// Cache capacity in pages.
    pub cache_pages: usize,
    /// Request/hit/eviction/response metrics.
    pub metrics: Metrics,
    /// Flash operation counters (Figure 11's write count lives here).
    pub flash: OpCounters,
    /// GC statistics.
    pub ftl: FtlStats,
    /// Reliability counters (all zero unless the run injected faults).
    pub faults: FaultStats,
    /// Device health at end of run (degrades under fault injection).
    pub health: Health,
    /// Host wall-clock time the replay took, in seconds (simulator
    /// throughput, not simulated time).
    pub host_elapsed_s: f64,
}

impl RunResult {
    /// Figure 11's "write count to flash memory": pages programmed on behalf
    /// of cache flushes during the trace (GC traffic reported separately).
    pub fn flash_user_writes(&self) -> u64 {
        self.flash.user_programs
    }

    /// Replay throughput in requests per host-second (0 when the run was
    /// too fast to time).
    pub fn requests_per_sec(&self) -> f64 {
        if self.host_elapsed_s <= 0.0 {
            return 0.0;
        }
        self.metrics.requests as f64 / self.host_elapsed_s
    }
}

fn collect(cfg: &SimConfig, ssd: &Ssd, started: Instant) -> RunResult {
    RunResult {
        policy: cfg.policy.name().to_string(),
        cache_pages: cfg.cache_pages,
        metrics: ssd.metrics().clone(),
        flash: *ssd.flash_counters(),
        ftl: *ssd.ftl_stats(),
        faults: *ssd.fault_stats(),
        health: ssd.health(),
        host_elapsed_s: started.elapsed().as_secs_f64(),
    }
}

/// Replay `trace` through a fresh device built from `cfg`.
///
/// The residual cache content is *not* drained: the paper's metrics count
/// traffic during the trace. Use [`run_trace_drained`] when write
/// amplification over the full data set matters.
pub fn run_trace<I>(cfg: &SimConfig, trace: I) -> RunResult
where
    I: IntoIterator<Item = Request>,
{
    run_trace_recorded(cfg, trace, &mut NoopRecorder)
}

/// [`run_trace`] with the event stream mirrored into `rec` (page events,
/// flush-wait spans, periodic samples per [`SimConfig::sampling`], and the
/// end-of-run counter/gauge rollup). The recorder is generic so the plain
/// [`run_trace`] path monomorphizes with [`NoopRecorder`] and compiles the
/// instrumentation out entirely.
pub fn run_trace_recorded<I, R>(cfg: &SimConfig, trace: I, rec: &mut R) -> RunResult
where
    I: IntoIterator<Item = Request>,
    R: Recorder + ?Sized,
{
    let started = Instant::now();
    let mut ssd = Ssd::new(cfg.clone());
    for req in trace {
        ssd.submit_recorded(&req, rec);
    }
    ssd.finish_recording(rec);
    collect(cfg, &ssd, started)
}

/// [`run_trace`] followed by a full cache drain.
pub fn run_trace_drained<I>(cfg: &SimConfig, trace: I) -> RunResult
where
    I: IntoIterator<Item = Request>,
{
    let started = Instant::now();
    let mut ssd = Ssd::new(cfg.clone());
    for req in trace {
        ssd.submit(&req);
    }
    ssd.drain_cache();
    collect(cfg, &ssd, started)
}

/// Where a job's requests come from.
#[derive(Debug, Clone)]
pub enum TraceSource {
    /// Synthesize from a workload profile (deterministic, seeded).
    Synthetic(WorkloadProfile),
    /// Parse an MSR-Cambridge CSV file (the paper's original traces).
    MsrFile(std::path::PathBuf),
    /// A base source with its arrival times rewritten by an open-loop
    /// process ([`crate::load::ArrivalProcess::rewrite`]): same ops,
    /// addresses, and sizes; synthetic offered rate. This is what the X6
    /// latency-vs-throughput sweep replays — the base trace is still
    /// materialized (and shared) once, only the cheap rewrite is per-job.
    OpenLoop {
        /// The request mix to re-time.
        base: Box<TraceSource>,
        /// How interarrival gaps are drawn.
        process: crate::load::ArrivalProcess,
        /// Seed of the per-job arrival RNG.
        seed: u64,
    },
}

impl TraceSource {
    /// Convenience constructor for [`TraceSource::OpenLoop`].
    pub fn open_loop(base: TraceSource, process: crate::load::ArrivalProcess, seed: u64) -> Self {
        TraceSource::OpenLoop { base: Box::new(base), process, seed }
    }
    /// Materialize the request stream. Panics on unreadable/invalid trace
    /// files — experiment grids should fail loudly, not silently skip runs.
    ///
    /// Replay paths should prefer [`TraceSource::for_each_request`] (which
    /// iterates the shared cache slice zero-copy when the cache is on) or
    /// [`TraceSource::shared_requests`] (which shares one materialization
    /// across jobs) over this per-call copy.
    pub fn requests(&self) -> Vec<Request> {
        let mut out = Vec::new();
        self.for_each_request(|r| out.push(r));
        out
    }

    /// The materialized request slice for this source, shared process-wide
    /// via [`reqblock_trace::shared`]: the first caller synthesizes/parses,
    /// every later caller (and every concurrent sweep job) gets the same
    /// `Arc<[Request]>` zero-copy. When the cache is disabled
    /// (`REQBLOCK_TRACE_CACHE=0`), a fresh uncached slice is built per call.
    /// Panics on unreadable/invalid trace files, like
    /// [`TraceSource::requests`].
    pub fn shared_requests(&self) -> std::sync::Arc<[Request]> {
        use reqblock_trace::shared;
        match self {
            TraceSource::Synthetic(profile) => {
                if shared::enabled() {
                    shared::synthetic(profile)
                } else {
                    SyntheticTrace::new(profile.clone()).generate_all().into()
                }
            }
            TraceSource::MsrFile(path) => {
                let loaded = if shared::enabled() {
                    shared::msr_file(path)
                } else {
                    reqblock_trace::msr::parse_file(path).map(std::sync::Arc::from)
                };
                loaded.unwrap_or_else(|e| panic!("cannot load trace {}: {e}", path.display()))
            }
            TraceSource::OpenLoop { base, process, seed } => {
                // The base slice is shared via the cache as usual; the
                // arrival rewrite is deterministic in (base, process, seed)
                // and cheap relative to a replay, so it is done per call.
                process.rewrite(&base.shared_requests(), *seed).into()
            }
        }
    }

    /// Stream the requests in order. With the shared trace cache on (the
    /// default), this iterates the cached `Arc<[Request]>` slice — each
    /// distinct trace is synthesized/parsed once per process, not once per
    /// job. With the cache off it streams without materializing: synthetic
    /// traces generate lazily, MSR files parse line by line (see
    /// [`reqblock_trace::msr::stream_file`]). Panics on unreadable/invalid
    /// trace files, like [`TraceSource::requests`].
    pub fn for_each_request<F: FnMut(Request)>(&self, mut f: F) {
        if reqblock_trace::shared::enabled() {
            for &r in self.shared_requests().iter() {
                f(r);
            }
            return;
        }
        self.for_each_request_uncached(f)
    }

    /// [`TraceSource::for_each_request`] bypassing the shared cache: always
    /// regenerates/re-reads the trace, never touches cached state. The
    /// equivalence tests use this as the ground truth the cache must match.
    pub fn for_each_request_uncached<F: FnMut(Request)>(&self, f: F) {
        match self {
            TraceSource::Synthetic(profile) => {
                let mut f = f;
                for r in SyntheticTrace::new(profile.clone()) {
                    f(r);
                }
            }
            TraceSource::MsrFile(path) => {
                reqblock_trace::msr::stream_file(path, f)
                    .unwrap_or_else(|e| panic!("cannot load trace {}: {e}", path.display()));
            }
            TraceSource::OpenLoop { base, process, seed } => {
                let mut requests = Vec::new();
                let mut push = |r: Request| requests.push(r);
                // `dyn` indirection: calling the generic method recursively
                // with a fresh closure type would monomorphize without bound
                // (OpenLoop sources can nest).
                base.for_each_request_uncached(&mut push as &mut dyn FnMut(Request));
                let mut f = f;
                for r in process.rewrite(&requests, *seed) {
                    f(r);
                }
            }
        }
    }
}

/// Replay a [`TraceSource`] through a fresh device without materializing the
/// request stream.
pub fn run_source(cfg: &SimConfig, source: &TraceSource) -> RunResult {
    run_source_recorded(cfg, source, &mut NoopRecorder)
}

/// [`run_source`] with the event stream mirrored into `rec` (see
/// [`run_trace_recorded`]).
pub fn run_source_recorded<R: Recorder + ?Sized>(
    cfg: &SimConfig,
    source: &TraceSource,
    rec: &mut R,
) -> RunResult {
    let started = Instant::now();
    let mut ssd = Ssd::new(cfg.clone());
    source.for_each_request(|req| {
        ssd.submit_recorded(&req, rec);
    });
    ssd.finish_recording(rec);
    collect(cfg, &ssd, started)
}

/// One entry of an experiment grid: a labelled (config, workload) pair.
/// The trace is materialized inside the worker, so jobs are cheap to
/// construct and independent.
#[derive(Debug, Clone)]
pub struct Job {
    /// Free-form label (e.g. `"fig8/ts_0/32MB/Req-block"`).
    pub label: String,
    /// Device and policy configuration.
    pub cfg: SimConfig,
    /// Workload to replay.
    pub source: TraceSource,
}

impl Job {
    /// Convenience constructor for synthetic jobs.
    pub fn synthetic(label: impl Into<String>, cfg: SimConfig, profile: WorkloadProfile) -> Self {
        Self { label: label.into(), cfg, source: TraceSource::Synthetic(profile) }
    }
}

/// One unit of work for [`run_task_pool`]: a labelled closure. The closure
/// owns its output routing (typically writing into a caller-held
/// `OnceLock`/slot), which is what lets heterogeneous work — simulation
/// jobs, trace-statistics probes, recorded telemetry runs — share a single
/// pool with no barriers between the figures that submitted them.
pub struct Task<'scope> {
    /// Free-form label, reported when the task panics.
    pub label: String,
    /// The work. Runs exactly once on some worker thread.
    pub work: Box<dyn FnOnce() + Send + 'scope>,
}

impl<'scope> Task<'scope> {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, work: impl FnOnce() + Send + 'scope) -> Self {
        Self { label: label.into(), work: Box::new(work) }
    }
}

impl std::fmt::Debug for Task<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task").field("label", &self.label).finish_non_exhaustive()
    }
}

/// Run every task on up to `threads` worker threads (std scoped threads)
/// and return when all have finished. Tasks are claimed in submission order
/// by whichever worker frees up first, so a slow task never idles the other
/// workers — this is the barrier-free scheduler underneath `repro all`:
/// every figure submits its tasks into one pool and collects results from
/// the slots its closures filled.
///
/// If any task panics, the first panic is re-raised after the pool drains,
/// prefixed with the failing task's label so sweep failures are debuggable.
/// Workers stop claiming new tasks once a panic is recorded.
pub fn run_task_pool(tasks: Vec<Task<'_>>, threads: usize) {
    type Cell<'scope> = std::sync::Mutex<Option<Box<dyn FnOnce() + Send + 'scope>>>;
    assert!(threads > 0, "need at least one worker");
    let count = tasks.len();
    let cells: Vec<Cell<'_>> = tasks.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let mut labels = Vec::with_capacity(count);
    for (task, cell) in tasks.into_iter().zip(&cells) {
        labels.push(task.label);
        *cell.lock().unwrap() = Some(task.work);
    }
    let next = AtomicUsize::new(0);
    let failure: OnceLock<(usize, String)> = OnceLock::new();
    let workers = threads.min(count).max(1);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                if failure.get().is_some() {
                    break;
                }
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= count {
                    break;
                }
                let work = cells[idx]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("task index dispatched twice");
                if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(work)) {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    let _ = failure.set((idx, msg));
                    break;
                }
            });
        }
    });
    if let Some((idx, msg)) = failure.into_inner() {
        panic!("worker running task '{}' panicked: {msg}", labels[idx]);
    }
}

/// Run a grid of jobs on up to `threads` worker threads. Results keep job
/// order. Each result carries its own host wall-clock duration
/// ([`RunResult::host_elapsed_s`]), so grid summaries can report per-job
/// replay throughput.
///
/// Each worker writes its result into a dedicated per-job slot — no mutex,
/// no label cloning on the hot path. If any worker panics, the panic is
/// propagated with the failing job's label so grid failures are debuggable.
/// This is a thin wrapper over [`run_task_pool`]; figure builders that want
/// to share one pool across grids submit the tasks themselves.
pub fn run_jobs(jobs: &[Job], threads: usize) -> Vec<(String, RunResult)> {
    let slots: Vec<OnceLock<RunResult>> = (0..jobs.len()).map(|_| OnceLock::new()).collect();
    let tasks: Vec<Task<'_>> = jobs
        .iter()
        .zip(&slots)
        .map(|(job, slot)| {
            Task::new(job.label.clone(), move || {
                let result = run_source(&job.cfg, &job.source);
                let ok = slot.set(result).is_ok();
                debug_assert!(ok, "job slot filled twice");
            })
        })
        .collect();
    run_task_pool(tasks, threads);
    jobs.iter()
        .zip(slots)
        .map(|(job, slot)| {
            let result = slot.into_inner().expect("every job must produce a result");
            (job.label.clone(), result)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheSizeMb, PolicyKind, SampleInterval};
    use reqblock_core::ReqBlockConfig;
    use reqblock_obs::MemoryRecorder;
    use reqblock_trace::profiles::ts_0;

    fn mini_profile() -> WorkloadProfile {
        ts_0().scaled(0.002) // ~3.6k requests
    }

    #[test]
    fn run_trace_produces_metrics() {
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru);
        let res = run_trace(&cfg, SyntheticTrace::new(mini_profile()));
        assert_eq!(res.policy, "LRU");
        assert_eq!(res.metrics.requests, mini_profile().requests);
        assert!(res.metrics.hit_ratio() > 0.0, "ts_0-like reuse must hit");
        assert!(res.metrics.avg_response_ms() > 0.0);
        assert!(res.host_elapsed_s > 0.0, "replay must take measurable time");
        assert!(res.requests_per_sec() > 0.0);
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper()));
        let a = run_trace(&cfg, SyntheticTrace::new(mini_profile()));
        let b = run_trace(&cfg, SyntheticTrace::new(mini_profile()));
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.flash, b.flash);
    }

    #[test]
    fn recorded_run_matches_plain_run_and_captures_series() {
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper()))
            .with_sampling(SampleInterval::Requests(500));
        let plain = run_trace(&cfg, SyntheticTrace::new(mini_profile()));
        let mut rec = MemoryRecorder::default();
        let recorded = run_trace_recorded(&cfg, SyntheticTrace::new(mini_profile()), &mut rec);
        assert_eq!(plain.metrics, recorded.metrics, "recording must not change the model");
        assert_eq!(plain.flash, recorded.flash);
        assert_eq!(rec.counter_value("requests"), recorded.metrics.requests);
        let pts = rec.series_points("hit_ratio");
        assert!(pts.len() >= 3, "expected >= 3 samples, got {}", pts.len());
    }

    #[test]
    fn drained_run_writes_at_least_as_much() {
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru);
        let plain = run_trace(&cfg, SyntheticTrace::new(mini_profile()));
        let drained = run_trace_drained(&cfg, SyntheticTrace::new(mini_profile()));
        assert!(drained.flash.user_programs >= plain.flash.user_programs);
    }

    #[test]
    fn run_jobs_preserves_order_and_labels() {
        let jobs: Vec<Job> = PolicyKind::paper_comparison()
            .iter()
            .map(|p| Job {
                label: format!("test/{}", p.name()),
                cfg: SimConfig::paper(CacheSizeMb::Mb16, *p),
                source: TraceSource::Synthetic(mini_profile()),
            })
            .collect();
        let results = run_jobs(&jobs, 2);
        assert_eq!(results.len(), 4);
        for (job, (label, res)) in jobs.iter().zip(&results) {
            assert_eq!(&job.label, label);
            assert_eq!(res.policy, job.cfg.policy.name());
            assert!(res.host_elapsed_s > 0.0, "per-job wall clock must be kept");
        }
    }

    #[test]
    fn streaming_source_matches_materialized_run() {
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper()));
        let source = TraceSource::Synthetic(mini_profile());
        let streamed = run_source(&cfg, &source);
        let materialized = run_trace(&cfg, source.requests());
        assert_eq!(streamed.metrics, materialized.metrics);
        assert_eq!(streamed.flash, materialized.flash);
        assert_eq!(streamed.ftl, materialized.ftl);
    }

    #[test]
    fn run_jobs_propagates_panic_with_job_label() {
        let jobs = vec![
            Job::synthetic(
                "ok-job",
                SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru),
                mini_profile(),
            ),
            Job {
                label: "bad-job".into(),
                cfg: SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru),
                source: TraceSource::MsrFile("/nonexistent/reqblock-test-trace.csv".into()),
            },
        ];
        let err = std::panic::catch_unwind(|| run_jobs(&jobs, 2)).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("bad-job"), "panic should name the job: {msg}");
    }

    #[test]
    fn task_pool_runs_every_task_once() {
        let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        let tasks: Vec<Task<'_>> = hits
            .iter()
            .enumerate()
            .map(|(i, h)| {
                Task::new(format!("t{i}"), move || {
                    h.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        run_task_pool(tasks, 4);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} must run exactly once");
        }
    }

    #[test]
    fn task_pool_propagates_panic_with_task_label() {
        let tasks = vec![
            Task::new("fine", || {}),
            Task::new("exploding-task", || panic!("boom")),
            Task::new("also-fine", || {}),
        ];
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| run_task_pool(tasks, 2)))
            .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("exploding-task"), "panic should name the task: {msg}");
        assert!(msg.contains("boom"), "panic should carry the payload: {msg}");
    }

    #[test]
    fn open_loop_source_matches_direct_rewrite() {
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru);
        let base = TraceSource::Synthetic(mini_profile());
        let process = crate::load::ArrivalProcess::Poisson { mean_interarrival_ns: 20_000 };
        let source = TraceSource::open_loop(base.clone(), process, 11);
        let via_source = run_source(&cfg, &source);
        let direct = run_trace(&cfg, process.rewrite(&base.shared_requests(), 11));
        assert_eq!(via_source.metrics, direct.metrics);
        assert_eq!(via_source.flash, direct.flash);
        // The uncached stream path must agree with the cached one.
        let mut uncached = Vec::new();
        source.for_each_request_uncached(|r| uncached.push(r));
        assert_eq!(&uncached[..], &source.shared_requests()[..]);
    }

    #[test]
    fn shared_source_matches_uncached_stream() {
        let source = TraceSource::Synthetic(mini_profile());
        let shared = source.shared_requests();
        let mut streamed = Vec::new();
        source.for_each_request_uncached(|r| streamed.push(r));
        assert_eq!(&shared[..], &streamed[..]);
        // A second materialization reuses the cached slice.
        assert!(std::sync::Arc::ptr_eq(&shared, &source.shared_requests()));
    }

    #[test]
    fn reqblock_beats_lru_on_hit_ratio_for_reuse_heavy_trace() {
        // The headline claim at miniature scale: on a ts_0-like workload the
        // Req-block policy should not lose to LRU on hit ratio.
        let profile = ts_0().scaled(0.01);
        let lru = run_trace(
            &SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru),
            SyntheticTrace::new(profile.clone()),
        );
        let rb = run_trace(
            &SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper())),
            SyntheticTrace::new(profile),
        );
        assert!(
            rb.metrics.hit_ratio() >= lru.metrics.hit_ratio() * 0.95,
            "Req-block {:.4} vs LRU {:.4}",
            rb.metrics.hit_ratio(),
            lru.metrics.hit_ratio()
        );
    }
}
