//! Log-bucketed latency histogram.
//!
//! The paper reports mean response times (Figure 8); tail behaviour is an
//! extension this reproduction adds because the policies differ most in
//! their *tails*: a BPLRU whole-block flush stalls one request for tens of
//! milliseconds while barely moving the mean. Buckets grow geometrically
//! (x2) from 1 us, covering 1 us .. ~1100 s in 30 buckets, with exact
//! tracking of count, sum, min and max.

use serde::{Deserialize, Serialize};

/// Number of geometric buckets.
const BUCKETS: usize = 30;
/// Lower bound of bucket 0 in ns (1 us).
const BASE_NS: u64 = 1_000;

/// Fixed-size log2 histogram of response times.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self { counts: [0; BUCKETS], total: 0, sum_ns: 0, min_ns: u64::MAX, max_ns: 0 }
    }

    /// Smallest bucket whose upper bound covers `ns`: bucket `i` holds
    /// samples in `(BASE << (i-1), BASE << i]` (bucket 0: `[0, BASE]`).
    fn bucket_of(ns: u64) -> usize {
        if ns <= BASE_NS {
            return 0;
        }
        let q = ns.div_ceil(BASE_NS); // > 1 here
        ((64 - (q - 1).leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` in ns (the last bucket is
    /// unbounded and reports `u64::MAX`).
    pub fn bucket_upper_ns(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            BASE_NS << i
        }
    }

    /// Record one sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean in ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / self.total as f64
    }

    /// Smallest sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest sample.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper bound (ns) of the bucket containing the q-quantile
    /// (0.0 < q <= 1.0). Bucketed, so accurate to a factor of two — enough
    /// to distinguish "microseconds" from "a flush stall".
    pub fn quantile_upper_ns(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= rank {
                // Cap by the observed max: tighter than the bucket bound.
                return Self::bucket_upper_ns(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        if other.total > 0 {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
    }

    /// `(bucket_upper_ns, count)` pairs for non-empty buckets.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper_ns(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.quantile_upper_ns(0.99), 0);
    }

    #[test]
    fn exact_stats_are_exact() {
        let mut h = LatencyHistogram::new();
        for ns in [1_000u64, 2_000, 3_000, 10_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean_ns(), 4_000.0);
        assert_eq!(h.min_ns(), 1_000);
        assert_eq!(h.max_ns(), 10_000);
    }

    #[test]
    fn quantiles_bracket_samples() {
        let mut h = LatencyHistogram::new();
        // 99 fast samples, 1 slow one.
        for _ in 0..99 {
            h.record(2_000);
        }
        h.record(50_000_000); // 50 ms
        let p50 = h.quantile_upper_ns(0.5);
        assert!(p50 <= 4_000, "p50 {p50}");
        let p99 = h.quantile_upper_ns(0.99);
        assert!(p99 <= 4_000, "p99 {p99}");
        let p100 = h.quantile_upper_ns(1.0);
        assert_eq!(p100, 50_000_000);
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut prev = 0;
        for i in 0..BUCKETS {
            let b = LatencyHistogram::bucket_upper_ns(i);
            assert!(b > prev);
            prev = b;
        }
    }

    #[test]
    fn samples_fall_into_their_bucket() {
        for ns in [0u64, 1, 999, 1_000, 1_001, 123_456, u64::MAX / 2] {
            let b = LatencyHistogram::bucket_of(ns);
            assert!(ns <= LatencyHistogram::bucket_upper_ns(b));
            if b > 0 {
                assert!(ns > LatencyHistogram::bucket_upper_ns(b - 1));
            }
        }
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(1_000);
        b.record(1_000_000);
        b.record(8_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min_ns(), 1_000);
        assert_eq!(a.max_ns(), 1_000_000);
        assert_eq!(a.nonzero_buckets().len(), 3);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_out_of_range() {
        let h = LatencyHistogram::new();
        let _ = h.quantile_upper_ns(1.5);
    }
}
