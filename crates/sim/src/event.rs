//! Allocation-free event core: the host engine's completion bookkeeping.
//!
//! Two structures, both designed for single-core speed on the submit hot
//! path (DESIGN.md §7.3):
//!
//! * [`TimerWheel`] — a bucketed calendar queue over an arena of event
//!   slots with an intrusive freelist. It replaces the per-event
//!   `BinaryHeap<Reverse<u64>>` churn of the original flush window: slots
//!   are recycled through the freelist (no allocation after the initial
//!   reserve), events hash into time buckets by a shift, and the earliest
//!   event is found by scanning forward from a floor cursor instead of
//!   re-heapifying. Drain order is **exactly** the order a min-heap of
//!   `(time, insertion_seq)` would produce — ties retire in insertion
//!   order — which the event-core proptest pins against a reference
//!   `BinaryHeap`.
//!
//! * [`ChipCursors`] — per-chip FIFO rings of outstanding completion
//!   times. Chip timelines serialize (a read holds the chip through its
//!   bus transfer, a program holds it to the end of the array operation),
//!   so per-chip completion times are monotone and a plain ring with a
//!   head cursor drains ready completions in batches with one comparison
//!   each — no ordering structure at all. This is the NCQ-style
//!   outstanding-I/O ledger the engine samples in queued mode.

/// Sentinel for "no slot" in the intrusive chains.
const NIL: u32 = u32::MAX;

/// Bucket width = `2^BUCKET_SHIFT` ns (~1.05 ms): comparable to one flash
/// program (2 ms), so a queued window's in-flight flushes land within a few
/// buckets of the floor cursor.
const BUCKET_SHIFT: u32 = 20;

/// Bucket count (power of two). One rotation covers ~67 ms — past the
/// slowest single operation (15 ms erase); anything further wraps and is
/// found by the rotation-miss rescan.
const BUCKETS: usize = 64;

/// One arena slot: an event in a bucket chain, or a freelist link.
#[derive(Debug, Clone)]
struct EventSlot {
    /// Retire time of the event, ns.
    time: u64,
    /// Insertion sequence number — the deterministic tie-breaker.
    seq: u64,
    /// Caller payload (opaque).
    payload: u64,
    /// Next slot in this bucket's chain (or next free slot).
    next: u32,
}

/// Bucketed calendar queue over an arena of event slots.
///
/// `insert` is O(1); `pop_earliest`/`peek_earliest` scan buckets forward
/// from the floor cursor (the bucket of the last popped event) and fall
/// back to one O(n) rescan when a whole rotation is empty — in the
/// simulator's workloads events sit within a couple of buckets of the
/// floor, so the common case is a handful of comparisons.
#[derive(Debug, Clone)]
pub struct TimerWheel {
    /// Arena of event slots; freed slots are chained through `free_head`.
    slots: Vec<EventSlot>,
    /// Intrusive freelist head (`NIL` when every slot is live).
    free_head: u32,
    /// Chain head per bucket (`NIL` when empty).
    buckets: [u32; BUCKETS],
    /// Occupancy bitmap: bit `b` set iff `buckets[b]` is non-empty. Scans
    /// (earliest-event search, retirement sweeps) jump between set bits
    /// with `trailing_zeros` instead of probing all 64 chain heads — with
    /// a handful of events in flight that is the difference between ~64
    /// loads per scan and ~2.
    occupied: u64,
    /// Absolute bucket (`time >> BUCKET_SHIFT`) at/after which the
    /// earliest live event is known to sit.
    floor_bucket: u64,
    /// Live events.
    len: usize,
    /// Monotone insertion counter (tie order).
    seq: u64,
    /// Cached earliest retire time (cleared by pops, refined by inserts).
    earliest: Option<u64>,
    /// Lower bound on every live event's retire time — unlike `earliest`
    /// it survives pops and sweeps, so [`TimerWheel::retire_until`] can
    /// answer "nothing ready yet" in O(1) between retirements.
    min_bound: u64,
    /// High-water mark of `len` over the wheel's lifetime.
    max_len: usize,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl TimerWheel {
    /// A wheel with `capacity` event slots pre-reserved (it grows past
    /// this only if more events are ever in flight at once).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            free_head: NIL,
            buckets: [NIL; BUCKETS],
            occupied: 0,
            floor_bucket: 0,
            len: 0,
            seq: 0,
            earliest: None,
            min_bound: u64::MAX,
            max_len: 0,
        }
    }

    /// Live events in the wheel.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no event is in flight.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water mark of [`TimerWheel::len`] over the wheel's lifetime.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Arena slots currently allocated (capacity diagnostics).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn bucket_of(time: u64) -> usize {
        ((time >> BUCKET_SHIFT) as usize) & (BUCKETS - 1)
    }

    /// Insert an event retiring at `time` with an opaque `payload`.
    pub fn insert(&mut self, time: u64, payload: u64) {
        let seq = self.seq;
        self.seq += 1;
        let idx = if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.slots[idx as usize].next;
            idx
        } else {
            assert!(self.slots.len() < NIL as usize, "event arena exhausted");
            self.slots.push(EventSlot { time: 0, seq: 0, payload: 0, next: NIL });
            (self.slots.len() - 1) as u32
        };
        let bucket = Self::bucket_of(time);
        let slot = &mut self.slots[idx as usize];
        slot.time = time;
        slot.seq = seq;
        slot.payload = payload;
        slot.next = self.buckets[bucket];
        self.buckets[bucket] = idx;
        self.occupied |= 1u64 << bucket;
        self.len += 1;
        self.max_len = self.max_len.max(self.len);
        let abs = time >> BUCKET_SHIFT;
        if self.len == 1 || abs < self.floor_bucket {
            self.floor_bucket = abs;
        }
        // Refine the cached minimum only when it is known: after a pop the
        // cache is unknown (`None`) and must stay so — a surviving event
        // may retire earlier than this insert.
        if self.len == 1 {
            self.earliest = Some(time);
            self.min_bound = time;
        } else {
            if let Some(cur) = self.earliest {
                if time < cur {
                    self.earliest = Some(time);
                }
            }
            self.min_bound = self.min_bound.min(time);
        }
    }

    /// Locate the earliest live event: `(bucket, prev_slot, slot)` with
    /// `prev_slot == NIL` when the slot heads its chain. `None` when empty.
    fn find_earliest(&mut self) -> Option<(usize, u32, u32)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Scan one rotation forward from the floor cursor, visiting
            // only occupied buckets (rotate the bitmap so the floor's
            // bucket is bit 0, then jump between set bits). Events in a
            // visited bucket only count when they belong to this rotation
            // (their absolute bucket matches), otherwise they are aliases a
            // full rotation (or more) away.
            let start = (self.floor_bucket as usize) & (BUCKETS - 1);
            let mut mask = self.occupied.rotate_right(start as u32);
            while mask != 0 {
                let off = mask.trailing_zeros() as u64;
                mask &= mask - 1;
                let abs = self.floor_bucket + off;
                let bucket = (abs as usize) & (BUCKETS - 1);
                let mut best: Option<(u64, u64, u32, u32)> = None; // (time, seq, prev, slot)
                let mut prev = NIL;
                let mut cur = self.buckets[bucket];
                while cur != NIL {
                    let s = &self.slots[cur as usize];
                    if s.time >> BUCKET_SHIFT == abs
                        && best.is_none_or(|(t, q, _, _)| (s.time, s.seq) < (t, q))
                    {
                        best = Some((s.time, s.seq, prev, cur));
                    }
                    prev = cur;
                    cur = s.next;
                }
                if let Some((_, _, prev, slot)) = best {
                    self.floor_bucket = abs;
                    return Some((bucket, prev, slot));
                }
            }
            // Rotation miss: every live event is at least one full rotation
            // past the floor. Recompute the true floor in one O(n) sweep
            // and rescan (guaranteed hit on the first bucket then).
            let min_abs = self
                .slots
                .iter()
                .enumerate()
                .filter(|&(i, _)| self.is_live(i as u32))
                .map(|(_, s)| s.time >> BUCKET_SHIFT)
                .min()
                .expect("non-empty wheel must have a live event");
            debug_assert!(min_abs >= self.floor_bucket + BUCKETS as u64);
            self.floor_bucket = min_abs;
        }
    }

    /// Is arena slot `idx` live (reachable from a bucket chain)? O(free
    /// list); used only by the rotation-miss rescan.
    fn is_live(&self, idx: u32) -> bool {
        let mut cur = self.free_head;
        while cur != NIL {
            if cur == idx {
                return false;
            }
            cur = self.slots[cur as usize].next;
        }
        true
    }

    /// Retire time of the earliest event, if any.
    pub fn peek_earliest(&mut self) -> Option<u64> {
        if let Some(t) = self.earliest {
            return Some(t);
        }
        let (_, _, slot) = self.find_earliest()?;
        let t = self.slots[slot as usize].time;
        self.earliest = Some(t);
        Some(t)
    }

    /// Remove and return the earliest event as `(time, payload)`; ties
    /// retire in insertion order.
    pub fn pop_earliest(&mut self) -> Option<(u64, u64)> {
        let (bucket, prev, slot) = self.find_earliest()?;
        let next = self.slots[slot as usize].next;
        if prev == NIL {
            self.buckets[bucket] = next;
            if next == NIL {
                self.occupied &= !(1u64 << bucket);
            }
        } else {
            self.slots[prev as usize].next = next;
        }
        let s = &mut self.slots[slot as usize];
        let out = (s.time, s.payload);
        s.next = self.free_head;
        self.free_head = slot;
        self.len -= 1;
        if self.len == 0 {
            self.earliest = None;
            self.min_bound = u64::MAX;
        } else {
            // Refresh the exact minimum while the floor cursor is parked
            // right at it — with the occupancy bitmap this is a couple of
            // probes, and it keeps every retire_until call until the next
            // event is actually due on the O(1) path.
            let (_, _, slot) = self.find_earliest().expect("non-empty wheel has an earliest");
            let t = self.slots[slot as usize].time;
            self.earliest = Some(t);
            self.min_bound = t;
        }
        Some(out)
    }

    /// Pop every event retiring at or before `now`, returning how many
    /// retired. Events strictly after `now` stay in flight.
    ///
    /// Retirement discards events, so no ordering work is needed: this is
    /// one sweep over the bucket range `[floor, now]` unlinking everything
    /// ready — not a pop-loop of earliest-scans.
    #[inline]
    pub fn retire_until(&mut self, now: u64) -> usize {
        // Split so the two-compare idle path always inlines into the
        // engine's per-request loop; the sweep below stays out of line.
        if self.len == 0 || self.min_bound > now {
            return 0;
        }
        self.retire_sweep(now)
    }

    /// The non-trivial tail of [`TimerWheel::retire_until`]: at least one
    /// event is due.
    fn retire_sweep(&mut self, now: u64) -> usize {
        let now_abs = now >> BUCKET_SHIFT;
        // `floor_bucket` lower-bounds every live event's absolute bucket,
        // so events with `time <= now` sit in `[floor_bucket, now_abs]`.
        // When that span covers a full rotation every bucket index aliases
        // into it; otherwise only the spanned buckets need visiting —
        // and among those, only the occupied ones (bitmap jump).
        let span = now_abs.saturating_sub(self.floor_bucket);
        let start = (self.floor_bucket as usize) & (BUCKETS - 1);
        let mut mask = self.occupied.rotate_right(start as u32);
        if span < BUCKETS as u64 - 1 {
            mask &= (2u64 << span) - 1; // keep offsets 0..=span only
        }
        let mut retired = 0;
        while mask != 0 {
            let off = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let bucket = (start + off) & (BUCKETS - 1);
            let mut prev = NIL;
            let mut cur = self.buckets[bucket];
            while cur != NIL {
                let next = self.slots[cur as usize].next;
                let t = self.slots[cur as usize].time;
                if t <= now {
                    if prev == NIL {
                        self.buckets[bucket] = next;
                    } else {
                        self.slots[prev as usize].next = next;
                    }
                    self.slots[cur as usize].next = self.free_head;
                    self.free_head = cur;
                    retired += 1;
                } else {
                    prev = cur;
                }
                cur = next;
            }
            if self.buckets[bucket] == NIL {
                self.occupied &= !(1u64 << bucket);
            }
        }
        self.len -= retired;
        // Every survivor has `time > now`, hence an absolute bucket at or
        // past `now`'s — the new floor.
        self.floor_bucket = now_abs;
        if self.len == 0 {
            self.earliest = None;
            self.min_bound = u64::MAX;
        } else {
            // Recompute the exact minimum now rather than settling for the
            // next bucket boundary as a lower bound: an exact
            // `earliest`/`min_bound` keeps every retire_until call until
            // that event is actually due on the O(1) path, instead of
            // re-sweeping once per ~1 ms bucket crossing. It also leaves
            // the floor cursor parked on the earliest event's bucket, so a
            // following pop finds it immediately.
            let (_, _, slot) = self.find_earliest().expect("non-empty wheel has an earliest");
            let t = self.slots[slot as usize].time;
            self.earliest = Some(t);
            self.min_bound = t;
        }
        retired
    }
}

/// Per-chip FIFO rings of outstanding completion times.
///
/// Completion times are monotone per chip (the flash timeline serializes
/// each chip's operations), so ready completions drain from each ring's
/// head in a batch — one comparison per drained event, no re-ordering.
#[derive(Debug, Clone)]
pub struct ChipCursors {
    /// One ring per chip: `(buffer, head)`. Entries at/after `head` are in
    /// flight; the prefix before it is drained and reclaimed when the ring
    /// empties.
    rings: Vec<(Vec<u64>, usize)>,
    /// Total in-flight completions across chips.
    outstanding: usize,
    /// High-water mark of `outstanding`.
    max_outstanding: usize,
}

impl ChipCursors {
    /// Cursors for a `chips`-chip device.
    pub fn new(chips: usize) -> Self {
        Self { rings: vec![(Vec::new(), 0); chips], outstanding: 0, max_outstanding: 0 }
    }

    /// Record a completion on `chip` retiring at `ready_ns`. Completion
    /// times must be monotone per chip (the timeline guarantees this).
    pub fn push(&mut self, chip: usize, ready_ns: u64) {
        let (ring, head) = &mut self.rings[chip];
        debug_assert!(ring.last().is_none_or(|&t| t <= ready_ns), "per-chip completions must be monotone");
        if *head == ring.len() {
            // Ring fully drained: reclaim the buffer instead of growing.
            ring.clear();
            *head = 0;
        }
        ring.push(ready_ns);
        self.outstanding += 1;
        self.max_outstanding = self.max_outstanding.max(self.outstanding);
    }

    /// Drain every completion ready at or before `now` (batch per chip:
    /// advance the head cursor while the head entry is ready).
    pub fn drain_ready(&mut self, now: u64) {
        for (ring, head) in &mut self.rings {
            while *head < ring.len() && ring[*head] <= now {
                *head += 1;
                self.outstanding -= 1;
            }
        }
    }

    /// Completions currently in flight across all chips.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// In-flight completions on `chip`.
    pub fn outstanding_on(&self, chip: usize) -> usize {
        let (ring, head) = &self.rings[chip];
        ring.len() - head
    }

    /// High-water mark of [`ChipCursors::outstanding`].
    pub fn max_outstanding(&self) -> usize {
        self.max_outstanding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn empty_wheel() {
        let mut w = TimerWheel::default();
        assert!(w.is_empty());
        assert_eq!(w.peek_earliest(), None);
        assert_eq!(w.pop_earliest(), None);
        assert_eq!(w.retire_until(u64::MAX), 0);
    }

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::default();
        for (t, p) in [(500u64, 1u64), (300, 2), (700, 3)] {
            w.insert(t, p);
        }
        assert_eq!(w.pop_earliest(), Some((300, 2)));
        assert_eq!(w.pop_earliest(), Some((500, 1)));
        assert_eq!(w.pop_earliest(), Some((700, 3)));
        assert!(w.is_empty());
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut w = TimerWheel::default();
        w.insert(42, 10);
        w.insert(42, 20);
        w.insert(42, 30);
        assert_eq!(w.pop_earliest(), Some((42, 10)));
        assert_eq!(w.pop_earliest(), Some((42, 20)));
        assert_eq!(w.pop_earliest(), Some((42, 30)));
    }

    #[test]
    fn retire_until_is_inclusive() {
        let mut w = TimerWheel::default();
        for t in [100u64, 200, 300] {
            w.insert(t, t);
        }
        assert_eq!(w.retire_until(99), 0);
        assert_eq!(w.retire_until(200), 2);
        assert_eq!(w.len(), 1);
        assert_eq!(w.peek_earliest(), Some(300));
    }

    #[test]
    fn slots_are_recycled_not_grown() {
        let mut w = TimerWheel::with_capacity(4);
        for round in 0..100u64 {
            for k in 0..4 {
                w.insert(round * 1_000_000 + k, k);
            }
            assert_eq!(w.retire_until(u64::MAX), 4);
        }
        assert_eq!(w.slot_count(), 4, "freelist must recycle the four slots");
        assert_eq!(w.max_len(), 4);
    }

    #[test]
    fn far_future_events_survive_rotation_wrap() {
        let mut w = TimerWheel::default();
        // 15 ms erase horizon and a multi-rotation outlier (> 67 ms).
        w.insert(15_000_000, 1);
        w.insert(500_000_000, 2);
        w.insert(1_000, 3);
        assert_eq!(w.pop_earliest(), Some((1_000, 3)));
        assert_eq!(w.pop_earliest(), Some((15_000_000, 1)));
        assert_eq!(w.pop_earliest(), Some((500_000_000, 2)));
    }

    #[test]
    fn aliased_buckets_resolve_by_absolute_time() {
        let mut w = TimerWheel::default();
        let rotation = (BUCKETS as u64) << BUCKET_SHIFT;
        // Same bucket residue, one rotation apart: the earlier must win.
        w.insert(rotation + 5, 1);
        w.insert(5, 2);
        assert_eq!(w.pop_earliest(), Some((5, 2)));
        assert_eq!(w.pop_earliest(), Some((rotation + 5, 1)));
    }

    #[test]
    fn matches_reference_heap_on_mixed_ops() {
        // Deterministic pseudo-random interleaving of inserts and pops.
        let mut w = TimerWheel::with_capacity(8);
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut seq = 0u64;
        for _ in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if !state.is_multiple_of(3) || heap.is_empty() {
                let t = state % 200_000_000; // spans several rotations
                w.insert(t, seq);
                heap.push(Reverse((t, seq)));
                seq += 1;
            } else {
                let Reverse((t, p)) = heap.pop().unwrap();
                assert_eq!(w.pop_earliest(), Some((t, p)));
            }
        }
        while let Some(Reverse((t, p))) = heap.pop() {
            assert_eq!(w.pop_earliest(), Some((t, p)));
        }
        assert!(w.is_empty());
    }

    #[test]
    fn chip_cursors_drain_in_batches() {
        let mut c = ChipCursors::new(2);
        c.push(0, 100);
        c.push(0, 200);
        c.push(1, 150);
        assert_eq!(c.outstanding(), 3);
        assert_eq!(c.max_outstanding(), 3);
        c.drain_ready(150);
        assert_eq!(c.outstanding(), 1);
        assert_eq!(c.outstanding_on(0), 1);
        assert_eq!(c.outstanding_on(1), 0);
        c.drain_ready(200);
        assert_eq!(c.outstanding(), 0);
        assert_eq!(c.max_outstanding(), 3);
    }

    #[test]
    fn chip_cursor_buffers_are_reclaimed() {
        let mut c = ChipCursors::new(1);
        for round in 0..1_000u64 {
            c.push(0, round * 10);
            c.drain_ready(round * 10);
        }
        let (ring, head) = &c.rings[0];
        assert!(ring.capacity() <= 8, "drained ring must reclaim, not grow");
        assert_eq!(*head, ring.len());
    }
}
