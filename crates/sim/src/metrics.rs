//! Run metrics: everything the paper's Figures 8-12 report, plus response
//! tail percentiles (an extension; see [`reqblock_obs::Histogram`]).

use reqblock_obs::Histogram as LatencyHistogram;
use serde::{Deserialize, Serialize};

/// Counters accumulated over one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Host requests processed.
    pub requests: u64,
    /// Read requests.
    pub read_reqs: u64,
    /// Write requests.
    pub write_reqs: u64,
    /// Pages accessed by reads.
    pub read_pages: u64,
    /// Pages accessed by writes.
    pub write_pages: u64,
    /// Read pages served from the buffer.
    pub read_hits: u64,
    /// Write pages absorbed by the buffer (overwrite of a cached page).
    pub write_hits: u64,
    /// Eviction operations (victim selections) performed.
    pub evictions: u64,
    /// Pages evicted across all evictions (dirty flushes).
    pub evicted_pages: u64,
    /// Clean pages dropped without flash writes (read-caching policies).
    pub clean_dropped_pages: u64,
    /// Pages read from flash for BPLRU-style padding.
    pub pad_read_pages: u64,
    /// Sum of per-request response times, ns.
    pub total_response_ns: u128,
    /// Slowest single request, ns.
    pub max_response_ns: u64,
    /// Samples of (metadata bytes, node count) for the Figure 12 averages.
    pub overhead_samples: u64,
    /// Sum of sampled metadata bytes.
    pub metadata_bytes_sum: u128,
    /// Sum of sampled node counts.
    pub node_count_sum: u128,
    /// Nanoseconds requests spent stalled waiting for eviction flushes to
    /// complete (buffer-induced stalls, as opposed to device service time
    /// of the request's own pages).
    pub flush_stall_ns: u128,
    /// Flush waits that actually stalled a request (stall > 0).
    pub flush_stalls: u64,
    /// Per-request response-time distribution (extension beyond Figure 8's
    /// means: p50/p99/max).
    pub response_hist: LatencyHistogram,
}

impl Metrics {
    /// Page-level cache hit ratio over reads and writes ("the ratio of the
    /// pages from the I/O request that is absorbed by the cache", §4.2.3).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.read_pages + self.write_pages;
        if total == 0 {
            return 0.0;
        }
        (self.read_hits + self.write_hits) as f64 / total as f64
    }

    /// Write-page hit ratio only.
    pub fn write_hit_ratio(&self) -> f64 {
        if self.write_pages == 0 {
            return 0.0;
        }
        self.write_hits as f64 / self.write_pages as f64
    }

    /// Read-page hit ratio only.
    pub fn read_hit_ratio(&self) -> f64 {
        if self.read_pages == 0 {
            return 0.0;
        }
        self.read_hits as f64 / self.read_pages as f64
    }

    /// Mean response time in milliseconds (Figure 8's unit).
    pub fn avg_response_ms(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.total_response_ns as f64 / self.requests as f64 / 1e6
    }

    /// Mean pages per eviction operation (Figure 10).
    pub fn avg_pages_per_eviction(&self) -> f64 {
        if self.evictions == 0 {
            return 0.0;
        }
        self.evicted_pages as f64 / self.evictions as f64
    }

    /// Mean sampled metadata size in bytes (Figure 12).
    pub fn avg_metadata_bytes(&self) -> f64 {
        if self.overhead_samples == 0 {
            return 0.0;
        }
        self.metadata_bytes_sum as f64 / self.overhead_samples as f64
    }

    /// Mean sampled node count.
    pub fn avg_node_count(&self) -> f64 {
        if self.overhead_samples == 0 {
            return 0.0;
        }
        self.node_count_sum as f64 / self.overhead_samples as f64
    }

    /// Response-time percentile in milliseconds (bucketed upper bound;
    /// 0.0 for an empty run).
    pub fn response_percentile_ms(&self, q: f64) -> f64 {
        self.response_hist.quantile_upper(q).unwrap_or(0) as f64 / 1e6
    }

    /// Mean flush-induced stall per request in milliseconds. Together with
    /// [`Metrics::avg_response_ms`] this splits response time into "waiting
    /// for the buffer" vs "serving the request's own pages".
    pub fn avg_flush_stall_ms(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.flush_stall_ns as f64 / self.requests as f64 / 1e6
    }

    /// Record one request's response time.
    pub(crate) fn record_response(&mut self, ns: u64) {
        self.total_response_ns += ns as u128;
        self.max_response_ns = self.max_response_ns.max(ns);
        self.response_hist.record(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_run() {
        let m = Metrics::default();
        assert_eq!(m.hit_ratio(), 0.0);
        assert_eq!(m.avg_response_ms(), 0.0);
        assert_eq!(m.avg_pages_per_eviction(), 0.0);
        assert_eq!(m.avg_metadata_bytes(), 0.0);
    }

    #[test]
    fn hit_ratio_combines_reads_and_writes() {
        let m = Metrics {
            read_pages: 10,
            read_hits: 5,
            write_pages: 10,
            write_hits: 10,
            ..Default::default()
        };
        assert!((m.hit_ratio() - 0.75).abs() < 1e-12);
        assert!((m.read_hit_ratio() - 0.5).abs() < 1e-12);
        assert!((m.write_hit_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn response_accounting() {
        let mut m = Metrics { requests: 2, ..Default::default() };
        m.record_response(1_000_000);
        m.record_response(3_000_000);
        assert!((m.avg_response_ms() - 2.0).abs() < 1e-12);
        assert_eq!(m.max_response_ns, 3_000_000);
    }

    #[test]
    fn eviction_average() {
        let m = Metrics { evictions: 4, evicted_pages: 10, ..Default::default() };
        assert!((m.avg_pages_per_eviction() - 2.5).abs() < 1e-12);
    }
}
