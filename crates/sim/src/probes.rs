//! Figure-specific consumers of the observability layer.
//!
//! These used to be a bespoke `Probe` mechanism; they are now ordinary
//! [`Recorder`] implementations fed by [`crate::host::Ssd::submit_recorded`],
//! so figure instrumentation and run telemetry share one event stream.
//! Two are provided:
//!
//! * [`SizeCdfProbe`] — Figure 2: CDFs of page inserts and page hits as a
//!   function of the size of the *inserting* write request.
//! * [`LargeReqHitProbe`] — Figure 3: what fraction of pages inserted by
//!   large requests is ever re-accessed while cached.
//!
//! The former Figure 13 list-occupancy probe is gone: per-list occupancy is
//! now a sampled time series (`irl_pages`/`srl_pages`/`drl_pages`) captured
//! by any [`reqblock_obs::MemoryRecorder`] when the run's
//! [`crate::config::SampleInterval`] is set. Use [`reqblock_obs::Fanout`] to
//! feed several consumers from one run.

use reqblock_cache::FxHashMap;
use reqblock_obs::{PageEvent, Recorder};
use reqblock_trace::Lpn;

/// Figure 2 probe: attribute every page insert and every subsequent hit to
/// the page count of the write request that inserted the page.
#[derive(Debug, Default)]
pub struct SizeCdfProbe {
    /// lpn -> size (pages) of the request that last inserted it.
    inserted_by: FxHashMap<Lpn, u32>,
    /// request size -> pages inserted.
    pub inserts_by_size: FxHashMap<u32, u64>,
    /// request size (of the inserting request) -> hits observed.
    pub hits_by_size: FxHashMap<u32, u64>,
}

impl SizeCdfProbe {
    /// Fresh probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// CDF points `(size, cumulative_fraction)` for a counter map, sorted by
    /// size ascending.
    fn cdf(map: &FxHashMap<u32, u64>) -> Vec<(u32, f64)> {
        let total: u64 = map.values().sum();
        if total == 0 {
            return Vec::new();
        }
        let mut sizes: Vec<u32> = map.keys().copied().collect();
        sizes.sort_unstable();
        let mut acc = 0u64;
        sizes
            .into_iter()
            .map(|s| {
                acc += map[&s];
                (s, acc as f64 / total as f64)
            })
            .collect()
    }

    /// CDF of inserted pages by request size.
    pub fn insert_cdf(&self) -> Vec<(u32, f64)> {
        Self::cdf(&self.inserts_by_size)
    }

    /// CDF of page hits by inserting-request size.
    pub fn hit_cdf(&self) -> Vec<(u32, f64)> {
        Self::cdf(&self.hits_by_size)
    }

    /// Fraction of all hits landing on pages inserted by requests of at most
    /// `size` pages.
    pub fn hit_fraction_upto(&self, size: u32) -> f64 {
        let total: u64 = self.hits_by_size.values().sum();
        if total == 0 {
            return 0.0;
        }
        let small: u64 =
            self.hits_by_size.iter().filter(|(s, _)| **s <= size).map(|(_, c)| *c).sum();
        small as f64 / total as f64
    }

    /// Fraction of all inserted pages coming from requests of at most `size`
    /// pages.
    pub fn insert_fraction_upto(&self, size: u32) -> f64 {
        let total: u64 = self.inserts_by_size.values().sum();
        if total == 0 {
            return 0.0;
        }
        let small: u64 =
            self.inserts_by_size.iter().filter(|(s, _)| **s <= size).map(|(_, c)| *c).sum();
        small as f64 / total as f64
    }
}

impl Recorder for SizeCdfProbe {
    fn enabled(&self) -> bool {
        true
    }

    fn page(&mut self, ev: &PageEvent) {
        if ev.hit {
            if let Some(&size) = self.inserted_by.get(&ev.lpn) {
                *self.hits_by_size.entry(size).or_insert(0) += 1;
            }
        } else if ev.is_write {
            // Insert: the page now belongs to this request's size class.
            self.inserted_by.insert(ev.lpn, ev.req_pages);
            *self.inserts_by_size.entry(ev.req_pages).or_insert(0) += 1;
        }
    }
}

/// Figure 3 probe: per *insertion episode* of pages written by large
/// requests (strictly more pages than `threshold`), record whether the page
/// was hit before being re-inserted. The paper's Figure 3 reports the
/// hit/not-hit split of those episodes (22.0-37.2 % hit).
#[derive(Debug)]
pub struct LargeReqHitProbe {
    threshold: u32,
    /// lpn -> was this episode's page hit yet?
    live: FxHashMap<Lpn, bool>,
    /// Completed episodes.
    pub episodes: u64,
    /// Completed episodes whose page was hit at least once.
    pub episodes_hit: u64,
}

impl LargeReqHitProbe {
    /// Pages from requests with more than `threshold_pages` pages count as
    /// "large" (the paper uses the trace's mean request size).
    pub fn new(threshold_pages: u32) -> Self {
        Self { threshold: threshold_pages, live: FxHashMap::default(), episodes: 0, episodes_hit: 0 }
    }

    fn finalize(&mut self, hit: bool) {
        self.episodes += 1;
        if hit {
            self.episodes_hit += 1;
        }
    }

    /// Close all outstanding episodes; call once after the trace.
    pub fn finish(&mut self) {
        let live = std::mem::take(&mut self.live);
        for (_, hit) in live {
            self.finalize(hit);
        }
    }

    /// Fraction of large-request pages re-accessed while cached.
    pub fn hit_fraction(&self) -> f64 {
        if self.episodes == 0 {
            return 0.0;
        }
        self.episodes_hit as f64 / self.episodes as f64
    }
}

impl Recorder for LargeReqHitProbe {
    fn enabled(&self) -> bool {
        true
    }

    fn page(&mut self, ev: &PageEvent) {
        if ev.hit {
            if let Some(flag) = self.live.get_mut(&ev.lpn) {
                *flag = true;
            }
            return;
        }
        if ev.is_write && ev.req_pages > self.threshold {
            // New episode for this page; close any previous one.
            if let Some(prev) = self.live.insert(ev.lpn, false) {
                self.finalize(prev);
            }
        } else if ev.is_write {
            // A small request re-inserted the page: the large episode ends.
            if let Some(prev) = self.live.remove(&ev.lpn) {
                self.finalize(prev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(lpn: Lpn, req_pages: u32, is_write: bool, hit: bool) -> PageEvent {
        PageEvent { lpn, req_id: 0, req_pages, now: 0, is_write, hit }
    }

    #[test]
    fn size_cdf_attributes_hits_to_inserting_request() {
        let mut p = SizeCdfProbe::new();
        // Insert lpn 0 via a 2-page request, lpn 1 via a 10-page request.
        p.page(&ev(0, 2, true, false));
        p.page(&ev(1, 10, true, false));
        // Three hits on lpn 0 (even from differently sized requests).
        p.page(&ev(0, 8, false, true));
        p.page(&ev(0, 1, true, true));
        p.page(&ev(0, 1, false, true));
        // One hit on lpn 1.
        p.page(&ev(1, 1, false, true));
        assert_eq!(p.inserts_by_size[&2], 1);
        assert_eq!(p.inserts_by_size[&10], 1);
        assert_eq!(p.hits_by_size[&2], 3);
        assert_eq!(p.hits_by_size[&10], 1);
        assert!((p.hit_fraction_upto(2) - 0.75).abs() < 1e-12);
        assert!((p.insert_fraction_upto(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn size_cdf_reinsert_reattributes() {
        let mut p = SizeCdfProbe::new();
        p.page(&ev(0, 10, true, false)); // inserted by large
        // Evicted (invisible to the probe), re-inserted by a small request.
        p.page(&ev(0, 1, true, false));
        p.page(&ev(0, 4, false, true));
        assert_eq!(p.hits_by_size[&1], 1);
        assert!(!p.hits_by_size.contains_key(&10));
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut p = SizeCdfProbe::new();
        for (lpn, size) in [(0u64, 1u32), (1, 1), (2, 4), (3, 16)] {
            p.page(&ev(lpn, size, true, false));
        }
        let cdf = p.insert_cdf();
        assert_eq!(cdf.len(), 3);
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 < w[1].0);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn large_hit_probe_counts_episodes() {
        let mut p = LargeReqHitProbe::new(4);
        // Two pages inserted by a large (8-page) request.
        p.page(&ev(0, 8, true, false));
        p.page(&ev(1, 8, true, false));
        // lpn 0 gets hit; lpn 1 never.
        p.page(&ev(0, 1, false, true));
        p.finish();
        assert_eq!(p.episodes, 2);
        assert_eq!(p.episodes_hit, 1);
        assert!((p.hit_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn large_hit_probe_ignores_small_inserts() {
        let mut p = LargeReqHitProbe::new(4);
        p.page(&ev(0, 2, true, false)); // small insert: not tracked
        p.page(&ev(0, 1, false, true));
        p.finish();
        assert_eq!(p.episodes, 0);
    }

    #[test]
    fn large_hit_probe_closes_episode_on_reinsert() {
        let mut p = LargeReqHitProbe::new(4);
        p.page(&ev(0, 8, true, false));
        p.page(&ev(0, 8, true, false)); // re-insert: closes unhit episode
        p.page(&ev(0, 2, true, false)); // small insert closes second one
        p.finish();
        assert_eq!(p.episodes, 2);
        assert_eq!(p.episodes_hit, 0);
    }

    #[test]
    fn probes_consume_a_recorded_run_via_fanout() {
        use crate::config::{PolicyKind, SimConfig};
        use crate::host::Ssd;
        use reqblock_obs::Fanout;
        use reqblock_trace::Request;

        let mut cdf = SizeCdfProbe::new();
        let mut large = LargeReqHitProbe::new(4);
        {
            let mut ssd = Ssd::new(SimConfig::tiny(32, PolicyKind::Lru));
            let mut fan = Fanout::new();
            fan.push(&mut cdf);
            fan.push(&mut large);
            for i in 0..4u64 {
                ssd.submit_recorded(&Request::write_pages(i, i * 8, 8), &mut fan);
            }
            ssd.submit_recorded(&Request::write_pages(10, 0, 1), &mut fan);
        }
        large.finish();
        assert_eq!(cdf.inserts_by_size[&8], 32);
        assert_eq!(cdf.hits_by_size[&8], 1, "the 1-page overwrite hit");
        assert!(large.episodes >= 1);
    }
}
