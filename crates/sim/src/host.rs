//! Host layer: how requests are issued to the device.
//!
//! The host owns the submit policy ([`SubmitMode`]) and the bounded
//! outstanding-flush window that queued mode adds; everything below it —
//! accounting ([`crate::engine::Engine`]) and timing
//! ([`crate::device::Device`]) — is host-mode agnostic.
//!
//! **Byte-identity guarantee.** Under [`SubmitMode::Synchronous`] (and its
//! alias `Queued { depth: 1 }`) the window has zero capacity, every
//! eviction flush is waited on in place, and the simulator reproduces the
//! pre-layering output bit for bit: same [`Metrics`], same flash counters,
//! same telemetry JSONL. The golden tests pin this. Queued mode changes
//! *only* which part of a flush the triggering request waits for — the
//! flush operations themselves are issued on the flash timelines at the
//! same instants in every mode, so flash counters and GC behaviour are
//! depth-invariant.
//!
//! [`Metrics`]: crate::metrics::Metrics

use crate::config::SimConfig;
use crate::device::Device;
use crate::engine::Engine;
use crate::metrics::Metrics;
use reqblock_cache::WriteBuffer;
use reqblock_flash::{FaultStats, OpCounters};
use reqblock_ftl::{FtlStats, Health};
use crate::event::TimerWheel;
use reqblock_obs::{NoopRecorder, Recorder};
use reqblock_trace::Request;

/// How the host issues requests to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubmitMode {
    /// One request at a time; every eviction flush is waited on
    /// synchronously. This is the paper's evaluation model (§4) and the
    /// default.
    #[default]
    Synchronous,
    /// Up to `depth` requests overlap: a request still issues at its trace
    /// arrival time, but the eviction flushes it triggers retire
    /// asynchronously in a window of `depth - 1` background slots — the
    /// request stalls only when the window is full, and then only until
    /// the earliest outstanding flush retires. Reads on distinct chips
    /// already overlap on the timelines. `depth: 1` leaves no background
    /// slot and is exactly [`SubmitMode::Synchronous`].
    Queued {
        /// Outstanding-request window size (>= 1).
        depth: u32,
    },
}

impl SubmitMode {
    /// Background-flush slots this mode admits: a depth-`d` window lets
    /// the current request overlap with `d - 1` in-flight flushes.
    pub fn window_slots(self) -> usize {
        match self {
            SubmitMode::Synchronous => 0,
            SubmitMode::Queued { depth } => depth.max(1) as usize - 1,
        }
    }
}

impl std::fmt::Display for SubmitMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitMode::Synchronous => write!(f, "sync"),
            SubmitMode::Queued { depth } => write!(f, "qd{depth}"),
        }
    }
}

/// The host's bounded window of in-flight eviction flushes (queued mode's
/// event order), carried by the allocation-free [`TimerWheel`] event core:
/// the arena is pre-reserved to [`SubmitMode::window_slots`] at
/// construction and slots recycle through the wheel's intrusive freelist,
/// so a run performs no per-flush allocation. Zero-capacity in synchronous
/// mode, where it is never consulted.
///
/// Retire semantics are identical to the min-heap this replaced: a full
/// window waits for the *earliest* outstanding flush, and `retire_until`
/// drops everything at or before `now` — the queued-mode golden pins stay
/// valid bit for bit.
#[derive(Debug, Clone, Default)]
pub struct FlushWindow {
    slots: usize,
    inflight: TimerWheel,
}

impl FlushWindow {
    /// A window sized for `mode`, with its event arena pre-reserved to the
    /// mode's slot count (no mid-run growth).
    pub fn new(mode: SubmitMode) -> Self {
        let slots = mode.window_slots();
        Self { slots, inflight: TimerWheel::with_capacity(slots) }
    }

    /// Background-flush slots (0 in synchronous mode).
    pub fn capacity(&self) -> usize {
        self.slots
    }

    /// Flushes currently in flight.
    pub fn outstanding(&self) -> usize {
        self.inflight.len()
    }

    /// High-water mark of [`FlushWindow::outstanding`] over the run.
    pub fn max_outstanding(&self) -> usize {
        self.inflight.max_len()
    }

    /// Drop every in-flight flush that has retired by `now` (event order:
    /// earliest retire time first).
    #[inline]
    pub fn retire_until(&mut self, now: u64) {
        self.inflight.retire_until(now);
    }

    /// Admit a flush retiring at `ready_ns`. When the window is full the
    /// host must first wait for the earliest outstanding flush; that
    /// flush's retire time is returned so the caller can charge the stall.
    /// Must not be called on a zero-capacity window.
    pub fn admit(&mut self, ready_ns: u64) -> Option<u64> {
        debug_assert!(self.slots > 0, "synchronous hosts never admit background flushes");
        let waited = if self.inflight.len() >= self.slots {
            self.inflight.pop_earliest().map(|(t, _)| t)
        } else {
            None
        };
        self.inflight.insert(ready_ns, 0);
        waited
    }
}

/// One simulated SSD instance: the host-facing façade over the
/// engine/device stack. Feed it requests in trace order via [`Ssd::submit`]
/// (or [`Ssd::submit_recorded`] to stream events into a [`Recorder`]);
/// collect results with the accessors afterwards.
pub struct Ssd {
    engine: Engine,
    window: FlushWindow,
}

impl Ssd {
    /// Build a fresh device per `cfg` (including its [`SubmitMode`]).
    pub fn new(cfg: SimConfig) -> Self {
        let window = FlushWindow::new(cfg.submit);
        Self { engine: Engine::new(cfg), window }
    }

    /// Submit one request; returns its response time in ns.
    pub fn submit(&mut self, req: &Request) -> u64 {
        self.submit_recorded(req, &mut NoopRecorder)
    }

    /// Submit one request, streaming page events, flush-wait spans and
    /// periodic samples into `rec` (see [`Engine::submit_recorded`]).
    pub fn submit_recorded<R: Recorder + ?Sized>(&mut self, req: &Request, rec: &mut R) -> u64 {
        self.engine.submit_recorded(req, rec, &mut self.window)
    }

    /// Emit the end-of-run rollup into `rec`. Runners call this
    /// automatically.
    pub fn finish_recording<R: Recorder + ?Sized>(&mut self, rec: &mut R) {
        self.engine.finish_recording(rec, &self.window)
    }

    /// Flush everything still buffered (end-of-trace).
    pub fn drain_cache(&mut self) {
        self.engine.drain_cache()
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        self.engine.metrics()
    }

    /// Flash operation counters (user/GC programs, reads, erases).
    pub fn flash_counters(&self) -> &OpCounters {
        self.engine.device().flash_counters()
    }

    /// FTL/GC statistics.
    pub fn ftl_stats(&self) -> &FtlStats {
        self.engine.device().ftl_stats()
    }

    /// Reliability counters (all zero with the default zero-fault config).
    pub fn fault_stats(&self) -> &FaultStats {
        self.engine.device().fault_stats()
    }

    /// Current device health (degrades under fault injection).
    pub fn health(&self) -> Health {
        self.engine.device().health()
    }

    /// The cache policy (for occupancy queries and event counters).
    pub fn cache(&self) -> &dyn WriteBuffer {
        self.engine.device().cache()
    }

    /// Run configuration.
    pub fn config(&self) -> &SimConfig {
        self.engine.config()
    }

    /// The device layer (timing queries and component accessors).
    pub fn device(&self) -> &Device {
        self.engine.device()
    }

    /// The host flush window (queued-mode occupancy diagnostics).
    pub fn window(&self) -> &FlushWindow {
        &self.window
    }

    /// Per-request latency attribution, when [`SimConfig::attr`] is set
    /// (see [`Engine::attribution`]). Captured busy intervals for trace
    /// export are reachable through [`Ssd::device`].
    pub fn attribution(&self) -> Option<&reqblock_obs::AttrAcc> {
        self.engine.attribution()
    }

    /// Nanoseconds the given chip's busy horizon extends past `now`
    /// (diagnostics; 0 when the chip is idle at `now`).
    pub fn chip_lag_ns(&self, chip: usize, now: u64) -> i64 {
        self.engine.device().chip_free_at(chip) as i64 - now as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PolicyKind, SampleInterval};
    use reqblock_core::ReqBlockConfig;
    use reqblock_obs::MemoryRecorder;

    fn tiny(policy: PolicyKind, cache_pages: usize) -> Ssd {
        Ssd::new(SimConfig::tiny(cache_pages, policy))
    }

    fn tiny_queued(policy: PolicyKind, cache_pages: usize, depth: u32) -> Ssd {
        Ssd::new(
            SimConfig::tiny(cache_pages, policy).with_submit(SubmitMode::Queued { depth }),
        )
    }

    #[test]
    fn buffered_write_is_fast() {
        let mut ssd = tiny(PolicyKind::Lru, 16);
        let r = ssd.submit(&Request::write_pages(0, 0, 2));
        // Two pages, no eviction: response = DRAM access time.
        assert_eq!(r, ssd.config().ssd.dram_access_ns);
        assert_eq!(ssd.metrics().write_pages, 2);
        assert_eq!(ssd.flash_counters().user_programs, 0, "no flash traffic yet");
    }

    #[test]
    fn read_hit_from_buffer_read_miss_from_flash() {
        let mut ssd = tiny(PolicyKind::Lru, 16);
        ssd.submit(&Request::write_pages(0, 0, 1));
        let hit = ssd.submit(&Request::read_pages(1000, 0, 1));
        assert_eq!(hit, ssd.config().ssd.dram_access_ns);
        let miss = ssd.submit(&Request::read_pages(2000, 50, 1));
        assert!(miss > hit, "flash read must be slower than DRAM");
        assert_eq!(ssd.metrics().read_hits, 1);
        assert_eq!(ssd.metrics().read_pages, 2);
    }

    #[test]
    fn eviction_stalls_the_triggering_write() {
        let mut ssd = tiny(PolicyKind::Lru, 4);
        for i in 0..4 {
            ssd.submit(&Request::write_pages(i, i, 1));
        }
        // The 5th write waits for the victim flush: >= transfer + program.
        let r = ssd.submit(&Request::write_pages(100, 100, 1));
        let cfg = &ssd.config().ssd;
        assert!(r >= cfg.page_transfer_ns() + cfg.program_latency_ns);
        assert_eq!(ssd.metrics().evictions, 1);
        assert_eq!(ssd.flash_counters().user_programs, 1);
    }

    #[test]
    fn flush_stall_attributed_to_dedicated_span() {
        let mut ssd = tiny(PolicyKind::Lru, 4);
        let mut rec = MemoryRecorder::default();
        for i in 0..4 {
            ssd.submit_recorded(&Request::write_pages(i, i, 1), &mut rec);
        }
        assert!(rec.span_stats("flush_wait").is_none(), "no eviction yet");
        let r = ssd.submit_recorded(&Request::write_pages(100, 100, 1), &mut rec);
        let span = rec.span_stats("flush_wait").expect("eviction must record a stall");
        assert_eq!(span.count, 1);
        assert_eq!(span.max_ns, r, "whole response is the flush wait here");
        assert_eq!(ssd.metrics().flush_stalls, 1);
        assert_eq!(ssd.metrics().flush_stall_ns, r as u128);
        // Stall accounting is recorder-independent: a fresh device replaying
        // the same requests without a recorder sees the same metrics.
        let mut plain = tiny(PolicyKind::Lru, 4);
        for i in 0..4 {
            plain.submit(&Request::write_pages(i, i, 1));
        }
        plain.submit(&Request::write_pages(100, 100, 1));
        assert_eq!(plain.metrics(), ssd.metrics());
    }

    #[test]
    fn write_hit_absorbs_without_flash_traffic() {
        let mut ssd = tiny(PolicyKind::Lru, 4);
        ssd.submit(&Request::write_pages(0, 7, 1));
        ssd.submit(&Request::write_pages(10, 7, 1));
        assert_eq!(ssd.metrics().write_hits, 1);
        assert_eq!(ssd.flash_counters().user_programs, 0);
    }

    #[test]
    fn reqblock_policy_runs_end_to_end() {
        let mut ssd = tiny(PolicyKind::ReqBlock(ReqBlockConfig::paper()), 32);
        for i in 0..20u64 {
            ssd.submit(&Request::write_pages(i * 10, (i * 3) % 64, 1 + i % 6));
        }
        for i in 0..10u64 {
            ssd.submit(&Request::read_pages(1000 + i, (i * 3) % 64, 1));
        }
        let m = ssd.metrics();
        assert_eq!(m.requests, 30);
        assert!(m.hit_ratio() > 0.0);
        assert!(ssd.cache().list_occupancy().is_some());
    }

    #[test]
    fn drain_flushes_residual_pages() {
        let mut ssd = tiny(PolicyKind::Lru, 16);
        ssd.submit(&Request::write_pages(0, 0, 5));
        assert_eq!(ssd.flash_counters().user_programs, 0);
        ssd.drain_cache();
        assert_eq!(ssd.flash_counters().user_programs, 5);
        assert_eq!(ssd.cache().len_pages(), 0);
    }

    #[test]
    fn drain_lands_after_the_last_request() {
        // The end-of-trace write-back is issued at the arrival/completion
        // horizon, not at the logical access counter: drain traffic must
        // never be backdated onto timelines the requests already used.
        let mut ssd = tiny(PolicyKind::Lru, 16);
        ssd.submit(&Request::write_pages(5_000_000, 0, 5));
        ssd.drain_cache();
        assert_eq!(ssd.flash_counters().user_programs, 5);
        assert!(ssd.device().completion_horizon_ns() > 5_000_000);
        // Every chip the drain touched now frees up after the last arrival.
        let chips = ssd.config().ssd.total_chips();
        for chip in (0..chips).filter(|&c| ssd.device().chip_free_at(c) > 0) {
            assert!(
                ssd.device().chip_free_at(chip) > 5_000_000,
                "chip {chip}: drain program backdated before the last arrival"
            );
        }
    }

    #[test]
    fn response_time_counts_from_arrival() {
        let mut ssd = tiny(PolicyKind::Lru, 16);
        // Arrival far in the future: response is still just the DRAM time.
        let r = ssd.submit(&Request::write_pages(1_000_000_000, 0, 1));
        assert_eq!(r, ssd.config().ssd.dram_access_ns);
    }

    #[test]
    fn overhead_sampling_accumulates() {
        let mut ssd = tiny(PolicyKind::Lru, 16);
        for i in 0..25u64 {
            ssd.submit(&Request::write_pages(i, i % 8, 1));
        }
        // sample_every = 10 in tiny config -> samples at req 0, 10, 20.
        assert_eq!(ssd.metrics().overhead_samples, 3);
        assert!(ssd.metrics().avg_metadata_bytes() > 0.0);
    }

    #[test]
    fn request_sampler_emits_series_on_schedule() {
        let cfg = SimConfig::tiny(16, PolicyKind::ReqBlock(ReqBlockConfig::paper()))
            .with_sampling(SampleInterval::Requests(2));
        let mut ssd = Ssd::new(cfg);
        let mut rec = MemoryRecorder::default();
        for i in 0..5u64 {
            ssd.submit_recorded(&Request::write_pages(i, i, 1), &mut rec);
        }
        // Samples at requests 0, 2, 4.
        let hits = rec.series_points("hit_ratio");
        assert_eq!(hits.iter().map(|&(t, _)| t).collect::<Vec<_>>(), vec![0, 2, 4]);
        // Req-block reports its per-list series too.
        for series in ["write_amp", "chan_util", "buf_occupancy", "free_blocks", "irl_pages"] {
            assert_eq!(rec.series_points(series).len(), 3, "{series}");
        }
    }

    #[test]
    fn sim_time_sampler_respects_interval() {
        let cfg = SimConfig::tiny(16, PolicyKind::Lru)
            .with_sampling(SampleInterval::SimTimeNs(1_000));
        let mut ssd = Ssd::new(cfg);
        let mut rec = MemoryRecorder::default();
        for t in [0u64, 100, 999, 1_500, 1_600, 3_000] {
            ssd.submit_recorded(&Request::write_pages(t, t / 100, 1), &mut rec);
        }
        let pts = rec.series_points("buf_occupancy");
        assert_eq!(pts.iter().map(|&(t, _)| t).collect::<Vec<_>>(), vec![0, 1_500, 3_000]);
        // LRU has no per-list occupancy series.
        assert!(rec.series_points("irl_pages").is_empty());
    }

    #[test]
    fn disabled_recorder_skips_sampling_but_not_metrics() {
        let cfg = SimConfig::tiny(16, PolicyKind::Lru)
            .with_sampling(SampleInterval::Requests(1));
        let mut ssd = Ssd::new(cfg);
        for i in 0..5u64 {
            ssd.submit(&Request::write_pages(i, i, 1));
        }
        assert_eq!(ssd.metrics().requests, 5);
    }

    #[test]
    fn fault_rollup_recorded_only_when_faults_configured() {
        use reqblock_flash::FaultConfig;
        // Zero-fault run: no reliability keys in the rollup at all, so
        // pre-reliability telemetry is byte-identical.
        let mut plain = tiny(PolicyKind::Lru, 4);
        let mut rec = MemoryRecorder::default();
        for i in 0..20u64 {
            plain.submit_recorded(&Request::write_pages(i, i, 1), &mut rec);
        }
        plain.finish_recording(&mut rec);
        assert_eq!(rec.counter_value("fault_read_retries"), 0);
        assert!(rec.gauge_value("device_read_only").is_none());

        // Faulty run: counters and health gauge appear.
        let cfg = SimConfig::tiny(4, PolicyKind::Lru)
            .with_faults(FaultConfig::with_rates(42, 300_000, 0, 0));
        let mut ssd = Ssd::new(cfg);
        let mut rec = MemoryRecorder::default();
        for i in 0..40u64 {
            ssd.submit_recorded(&Request::write_pages(i * 1_000, i, 1), &mut rec);
        }
        for i in 0..40u64 {
            ssd.submit_recorded(&Request::read_pages(100_000 + i * 1_000, i, 1), &mut rec);
        }
        ssd.finish_recording(&mut rec);
        assert!(ssd.fault_stats().read_faults > 0, "30% read faults never fired");
        assert_eq!(rec.counter_value("fault_read_faults"), ssd.fault_stats().read_faults);
        assert_eq!(rec.counter_value("fault_read_retries"), ssd.fault_stats().read_retries);
        assert_eq!(rec.gauge_value("device_read_only"), Some(0.0));
    }

    #[test]
    fn finish_recording_rolls_up_counters_and_gauges() {
        let mut ssd = tiny(PolicyKind::ReqBlock(ReqBlockConfig::paper()), 8);
        let mut rec = MemoryRecorder::default();
        for i in 0..30u64 {
            ssd.submit_recorded(&Request::write_pages(i * 50, i * 2, 2), &mut rec);
        }
        ssd.finish_recording(&mut rec);
        assert_eq!(rec.counter_value("requests"), 30);
        assert_eq!(rec.counter_value("write_pages"), 60);
        assert_eq!(rec.counter_value("flash_user_programs"), ssd.flash_counters().user_programs);
        assert_eq!(
            rec.counter_value("cache_victim_selections"),
            ssd.cache().events().unwrap().victim_selections
        );
        assert!(rec.gauge_value("hit_ratio").is_some());
        assert!(rec.gauge_value("chan0_busy_ms").is_some());
        assert!(rec.gauge_value("avg_response_ms").unwrap() > 0.0);
    }

    #[test]
    fn sampled_utilization_never_exceeds_one() {
        // Overload: every request arrives at t = 0, so service far outruns
        // arrivals. Windowed on arrivals alone, utilization would blow past
        // 1; windowed on the completion horizon it must stay within [0, 1].
        let cfg = SimConfig::tiny(4, PolicyKind::Lru).with_sampling(SampleInterval::Requests(1));
        let mut ssd = Ssd::new(cfg);
        let mut rec = MemoryRecorder::default();
        for i in 0..64u64 {
            ssd.submit_recorded(&Request::write_pages(0, i, 1), &mut rec);
        }
        ssd.finish_recording(&mut rec);
        let samples = rec.series_points("chan_util");
        assert!(!samples.is_empty());
        assert!(samples.iter().any(|&(_, v)| v > 0.0));
        for &(t, v) in samples {
            assert!((0.0..=1.0).contains(&v), "chan_util {v} out of range at t={t}");
        }
        let final_util = rec.gauge_value("chan_util").unwrap();
        assert!((0.0..=1.0).contains(&final_util), "final chan_util {final_util}");
    }

    #[test]
    fn attribution_parts_sum_to_response_and_emit_rollup() {
        use reqblock_obs::{AttrConfig, Component};
        let cfg = SimConfig::tiny(4, PolicyKind::Lru)
            .with_attribution(AttrConfig { sample_every: 1, slowest: 4, seed: 7 });
        let mut ssd = Ssd::new(cfg);
        let mut rec = MemoryRecorder::default();
        for i in 0..24u64 {
            ssd.submit_recorded(&Request::write_pages(i * 10, i % 12, 1), &mut rec);
        }
        for i in 0..8u64 {
            ssd.submit_recorded(&Request::read_pages(10_000 + i * 10, i, 1), &mut rec);
        }
        ssd.finish_recording(&mut rec);
        let acc = ssd.attribution().expect("attr configured");
        assert_eq!(acc.requests(), 32);
        // Exact decomposition: per-component totals sum to the metrics'
        // summed response time, and every sampled span sums to its own
        // response.
        let total: u128 = Component::ALL.iter().map(|&c| acc.total_ns(c)).sum();
        assert_eq!(total, ssd.metrics().total_response_ns);
        for span in acc.sampled_spans() {
            assert_eq!(span.parts_sum(), span.response_ns, "req {}", span.req_id);
        }
        // Eviction stalls and flash misses both occurred, so both causes
        // show up in the decomposition.
        assert!(acc.total_ns(Component::FlushStall) > 0);
        assert!(acc.total_ns(Component::ReadService) > 0);
        // Rollup keys are present, with stable spelling.
        assert_eq!(
            rec.counter_value("attr_flush_stall_ns"),
            u64::try_from(acc.total_ns(Component::FlushStall)).unwrap()
        );
        assert_eq!(rec.counter_value("attr_sampled_spans"), acc.sampled_spans().len() as u64);
        assert!(rec.gauge_value("attr_p99_response_ms").is_some());
        // Busy intervals were captured lazily for trace export.
        assert!(ssd.device().busy_intervals().is_some());
    }

    #[test]
    fn attribution_keys_absent_without_config_or_recorder() {
        use reqblock_obs::AttrConfig;
        // Live recorder, no attr config: no attr_* keys, no intervals.
        let mut plain = tiny(PolicyKind::Lru, 4);
        let mut rec = MemoryRecorder::default();
        for i in 0..16u64 {
            plain.submit_recorded(&Request::write_pages(i * 10, i % 8, 1), &mut rec);
        }
        plain.finish_recording(&mut rec);
        assert_eq!(rec.counter_value("attr_cache_service_ns"), 0);
        assert!(rec.gauge_value("attr_p99_response_ms").is_none());
        assert!(plain.attribution().is_none());
        assert!(plain.device().busy_intervals().is_none());
        // Attr config but no-op recorder: the accumulator stays untouched
        // and interval capture is never switched on (the bench overhead
        // mode), while metrics match a plain run exactly.
        let cfg = SimConfig::tiny(4, PolicyKind::Lru).with_attribution(AttrConfig::default());
        let mut noop = Ssd::new(cfg);
        for i in 0..16u64 {
            noop.submit(&Request::write_pages(i * 10, i % 8, 1));
        }
        assert_eq!(noop.attribution().expect("allocated but idle").requests(), 0);
        assert!(noop.device().busy_intervals().is_none());
        assert_eq!(noop.metrics(), plain.metrics());
    }

    #[test]
    fn window_slots_per_mode() {
        assert_eq!(SubmitMode::Synchronous.window_slots(), 0);
        assert_eq!(SubmitMode::Queued { depth: 1 }.window_slots(), 0);
        assert_eq!(SubmitMode::Queued { depth: 8 }.window_slots(), 7);
        assert_eq!(SubmitMode::Synchronous.to_string(), "sync");
        assert_eq!(SubmitMode::Queued { depth: 4 }.to_string(), "qd4");
    }

    #[test]
    fn flush_window_retires_in_event_order() {
        let mut w = FlushWindow::new(SubmitMode::Queued { depth: 3 });
        assert_eq!(w.capacity(), 2);
        assert_eq!(w.admit(500), None);
        assert_eq!(w.admit(300), None, "two slots, no wait yet");
        // Full: admitting waits for the *earliest* outstanding flush (300).
        assert_eq!(w.admit(700), Some(300));
        assert_eq!(w.outstanding(), 2);
        assert_eq!(w.max_outstanding(), 2);
        // Time passes to 600: the 500-flush retires, 700 stays in flight.
        w.retire_until(600);
        assert_eq!(w.outstanding(), 1);
        assert_eq!(w.admit(800), None);
    }

    #[test]
    fn queued_depth_one_is_synchronous() {
        let mut sync = tiny(PolicyKind::Lru, 4);
        let mut qd1 = tiny_queued(PolicyKind::Lru, 4, 1);
        for i in 0..32u64 {
            let req = Request::write_pages(i * 10, i % 12, 1);
            assert_eq!(sync.submit(&req), qd1.submit(&req));
        }
        assert_eq!(sync.metrics(), qd1.metrics());
        assert_eq!(sync.flash_counters(), qd1.flash_counters());
    }

    #[test]
    fn queued_mode_absorbs_flush_stalls_without_changing_flash_traffic() {
        let mut sync = tiny(PolicyKind::Lru, 4);
        let mut qd8 = tiny_queued(PolicyKind::Lru, 4, 8);
        for i in 0..64u64 {
            let req = Request::write_pages(i * 10, i % 16, 1);
            sync.submit(&req);
            qd8.submit(&req);
        }
        // Identical flash traffic: flushes are issued at the same instants
        // in every mode.
        assert_eq!(sync.flash_counters(), qd8.flash_counters());
        assert!(sync.metrics().flush_stalls > 0, "workload must evict");
        // The window absorbs stall time the synchronous host eats in full.
        assert!(qd8.metrics().flush_stall_ns < sync.metrics().flush_stall_ns);
        assert!(qd8.metrics().total_response_ns < sync.metrics().total_response_ns);
    }

    #[test]
    fn qdepth_telemetry_gated_on_queued_mode() {
        let run = |submit: SubmitMode| {
            let cfg = SimConfig::tiny(4, PolicyKind::Lru)
                .with_sampling(SampleInterval::Requests(1))
                .with_submit(submit);
            let mut ssd = Ssd::new(cfg);
            let mut rec = MemoryRecorder::default();
            for i in 0..32u64 {
                ssd.submit_recorded(&Request::write_pages(i * 10, i % 12, 1), &mut rec);
            }
            ssd.finish_recording(&mut rec);
            rec
        };
        let sync = run(SubmitMode::Synchronous);
        assert!(sync.series_points("qdepth").is_empty());
        assert!(sync.gauge_value("host_qdepth").is_none());

        let queued = run(SubmitMode::Queued { depth: 4 });
        assert!(!queued.series_points("qdepth").is_empty());
        assert_eq!(queued.gauge_value("host_qdepth"), Some(4.0));
        let hwm = queued.gauge_value("host_max_outstanding").unwrap();
        assert!((1.0..=3.0).contains(&hwm), "window of depth 4 holds at most 3, saw {hwm}");
    }
}
