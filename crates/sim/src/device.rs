//! Device layer: DRAM write buffer + FTL + flash timeline behind a narrow
//! timing API.
//!
//! The [`Device`] owns every stateful component below the host interface
//! and exposes a handful of operations that return structured
//! [`Completion`]s instead of bare `u64` finish times. It performs **no
//! metrics accounting, sampling or telemetry** — that is the engine's job
//! ([`crate::engine::Engine`]) — and it knows nothing about submit modes or
//! request identity. Keeping the seam this narrow is what lets the host
//! layer reschedule *when* results become visible (queued mode) without
//! touching *how* the device services them: the flash traffic a workload
//! generates is identical under every [`crate::host::SubmitMode`].

use crate::buffer::PolicyBuffer;
use crate::config::SimConfig;
use reqblock_cache::{Access, EvictionBatch, Placement as CachePlacement, WriteBuffer};
use reqblock_flash::{BusyStats, FaultStats, FlashTimeline, IntervalLog, OpCounters};
use reqblock_ftl::{Ftl, FtlObs, FtlStats, Health, Placement as FtlPlacement};
use reqblock_trace::Lpn;

/// Structured completion of one device operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When the device is done with the operation, ns (never before the
    /// issue time).
    pub ready_ns: u64,
    /// How far past the issue time the operation ran (`ready_ns - at`).
    /// This is the stall a host that waits synchronously would observe.
    pub stall_ns: u64,
    /// Pages actually programmed to flash by this operation — 0 for clean
    /// drops, reads, and batches a degraded (read-only) device rejected.
    pub flushes: u64,
}

impl Completion {
    /// An operation that completed instantly at `at` with no flash traffic.
    fn immediate(at: u64) -> Self {
        Completion { ready_ns: at, stall_ns: 0, flushes: 0 }
    }
}

/// The simulated device below the host interface: cache policy state, FTL
/// and flash timeline. Built from a [`SimConfig`]; driven by the engine.
pub struct Device {
    cache: PolicyBuffer,
    ftl: Ftl,
    timeline: FlashTimeline,
    dram_access_ns: u64,
}

impl Device {
    /// Build a fresh device per `cfg`.
    pub fn new(cfg: &SimConfig) -> Self {
        cfg.ssd.validate().expect("invalid SSD config");
        assert!(cfg.cache_pages > 0, "cache must hold at least one page");
        Self {
            cache: cfg.policy.build_buffer(cfg.cache_pages, cfg.ssd.pages_per_block),
            ftl: Ftl::with_faults(&cfg.ssd, cfg.fault.clone()),
            timeline: FlashTimeline::new(&cfg.ssd),
            dram_access_ns: cfg.ssd.dram_access_ns,
        }
    }

    /// Cost of one DRAM (buffer) access, ns.
    pub fn dram_access_ns(&self) -> u64 {
        self.dram_access_ns
    }

    /// Record a page write in the buffer. Returns whether it hit; any
    /// eviction batches the policy decided on are appended to `evictions`
    /// for the caller to [`Device::flush`].
    #[inline]
    pub fn buffer_write(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool {
        self.cache.write(a, evictions)
    }

    /// Record a page read in the buffer; same contract as
    /// [`Device::buffer_write`]. A miss must be followed by a
    /// [`Device::flash_read`] to obtain its timing.
    #[inline]
    pub fn buffer_read(&mut self, a: &Access, evictions: &mut Vec<EvictionBatch>) -> bool {
        self.cache.read(a, evictions)
    }

    /// Hint that `lpn` may shortly need a [`Device::flash_read`]: warms the
    /// FTL mapping entry while the caller is still doing buffer work.
    #[inline]
    pub fn prefetch_read(&self, lpn: Lpn) {
        self.ftl.prefetch_lpn(lpn);
    }

    /// Service a read miss of `lpn` from flash at `at`.
    pub fn flash_read(&mut self, lpn: Lpn, at: u64) -> Completion {
        let io = self.ftl.read_page_completion(lpn, at, &mut self.timeline);
        Completion { ready_ns: io.done_ns, stall_ns: io.service_ns, flushes: 0 }
    }

    /// Chip currently backing `lpn` (`None` when unmapped) — the chip a
    /// [`Device::flash_read`] of that LPN is serviced by, for the host's
    /// per-chip outstanding-read ledger.
    #[inline]
    pub fn chip_of_lpn(&self, lpn: Lpn) -> Option<usize> {
        self.ftl.chip_of_lpn(lpn)
    }

    /// Flush one eviction batch at `at`: clean batches are dropped for
    /// free; dirty batches pad-read any missing pages (BPLRU) and then
    /// program every page per the batch's placement.
    pub fn flush(&mut self, batch: &EvictionBatch, at: u64) -> Completion {
        if !batch.dirty {
            return Completion::immediate(at);
        }
        let mut done = at;
        // BPLRU padding: fetch the block's missing pages before programming.
        for &lpn in &batch.pad_reads {
            done = done.max(self.ftl.read_page_completion(lpn, at, &mut self.timeline).done_ns);
        }
        let io =
            self.ftl.write_pages_completion(&batch.lpns, done, placement_of(batch), &mut self.timeline);
        let ready_ns = done.max(io.done_ns);
        Completion { ready_ns, stall_ns: ready_ns.saturating_sub(at), flushes: io.flash_ops }
    }

    /// Program a drained batch's pages at `at`, with no pad reads — the
    /// end-of-trace write-back path.
    pub fn write_back(&mut self, batch: &EvictionBatch, at: u64) -> Completion {
        let io =
            self.ftl.write_pages_completion(&batch.lpns, at, placement_of(batch), &mut self.timeline);
        Completion { ready_ns: io.done_ns, stall_ns: io.service_ns, flushes: io.flash_ops }
    }

    /// Hand a flushed batch back to the policy for reuse.
    #[inline]
    pub fn recycle(&mut self, batch: EvictionBatch) {
        self.cache.recycle(batch)
    }

    /// Remove and return everything still buffered (end-of-trace).
    pub fn drain_buffer(&mut self) -> Vec<EvictionBatch> {
        self.cache.drain()
    }

    /// The latest instant any flash resource stays busy — when the last
    /// scheduled operation completes. See [`FlashTimeline::horizon_ns`].
    pub fn completion_horizon_ns(&self) -> u64 {
        self.timeline.horizon_ns()
    }

    /// The cache policy (occupancy queries and event counters).
    pub fn cache(&self) -> &dyn WriteBuffer {
        self.cache.as_dyn()
    }

    /// Flash operation counters (user/GC programs, reads, erases).
    pub fn flash_counters(&self) -> &OpCounters {
        self.timeline.counters()
    }

    /// Flash busy-time accounting.
    pub fn busy(&self) -> &BusyStats {
        self.timeline.busy()
    }

    /// FTL/GC statistics.
    pub fn ftl_stats(&self) -> &FtlStats {
        self.ftl.stats()
    }

    /// FTL observability aggregates (GC busy time, max pause).
    pub fn ftl_obs(&self) -> &FtlObs {
        self.ftl.obs()
    }

    /// Reliability counters (all zero with the default zero-fault config).
    pub fn fault_stats(&self) -> &FaultStats {
        self.ftl.fault_stats()
    }

    /// Current device health (degrades under fault injection).
    pub fn health(&self) -> Health {
        self.ftl.health()
    }

    /// Free flash blocks across all chips.
    pub fn free_blocks_total(&self) -> usize {
        self.ftl.free_blocks_total()
    }

    /// Retired (bad) flash blocks across all chips.
    pub fn bad_blocks_total(&self) -> usize {
        self.ftl.bad_blocks_total()
    }

    /// Whether the device has degraded to read-only.
    pub fn is_read_only(&self) -> bool {
        self.ftl.is_read_only()
    }

    /// Earliest time `chip` can start an array operation (diagnostics).
    pub fn chip_free_at(&self, chip: usize) -> u64 {
        self.timeline.chip_free_at(chip)
    }

    /// Start capturing per-chip / per-channel busy intervals (trace
    /// export). Idempotent; the plain path never pays for this — the
    /// engine enables it lazily on attribution-recorded runs only.
    pub fn enable_busy_intervals(&mut self) {
        self.timeline.enable_interval_capture();
    }

    /// Captured busy intervals, when [`Device::enable_busy_intervals`] was
    /// called.
    pub fn busy_intervals(&self) -> Option<&IntervalLog> {
        self.timeline.intervals()
    }
}

/// Map a batch's cache-level placement to the FTL's.
fn placement_of(batch: &EvictionBatch) -> FtlPlacement {
    match batch.placement {
        CachePlacement::Striped => FtlPlacement::Striped,
        CachePlacement::SingleBlock => FtlPlacement::SingleBlock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PolicyKind, SimConfig};

    fn tiny_device() -> Device {
        Device::new(&SimConfig::tiny(16, PolicyKind::Lru))
    }

    #[test]
    fn clean_batch_flushes_for_free() {
        let mut dev = tiny_device();
        let mut batch = EvictionBatch::striped(vec![1, 2, 3]);
        batch.dirty = false;
        let c = dev.flush(&batch, 500);
        assert_eq!(c, Completion { ready_ns: 500, stall_ns: 0, flushes: 0 });
        assert_eq!(dev.flash_counters().user_programs, 0);
    }

    #[test]
    fn dirty_batch_reports_stall_and_flush_count() {
        let mut dev = tiny_device();
        let batch = EvictionBatch::striped(vec![1, 2, 3]);
        let c = dev.flush(&batch, 100);
        assert_eq!(c.flushes, 3);
        assert_eq!(c.ready_ns, 100 + c.stall_ns);
        assert!(c.stall_ns > 0, "programs take time");
        assert_eq!(dev.flash_counters().user_programs, 3);
        assert_eq!(dev.completion_horizon_ns(), c.ready_ns);
    }
}
