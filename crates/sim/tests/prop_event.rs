//! Property-based tests of the event core: on arbitrary (time, id)
//! schedules the timer wheel must drain in exactly the order of a
//! reference min-heap keyed on (time, insertion seq), and bulk retirement
//! must agree with a reference filter. Times span multiple wheel rotations
//! so bucket aliasing, rotation wrap, and the occupancy bitmap are all
//! exercised.

use proptest::prelude::*;
use reqblock_sim::TimerWheel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// (event time, pop-right-after?) pairs. The time range covers several
/// wheel rotations (one rotation is 64 buckets x ~1.05 ms = ~67 ms).
fn schedule() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..400_000_000, any::<bool>()), 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wheel_drains_like_reference_heap(ops in schedule()) {
        let mut w = TimerWheel::with_capacity(8);
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        for (seq, (t, pop)) in ops.into_iter().enumerate() {
            let seq = seq as u64;
            w.insert(t, seq);
            heap.push(Reverse((t, seq)));
            if pop {
                let Reverse(expect) = heap.pop().unwrap();
                prop_assert_eq!(w.pop_earliest(), Some(expect));
            }
            prop_assert_eq!(w.len(), heap.len());
            prop_assert_eq!(w.peek_earliest(), heap.peek().map(|Reverse((t, _))| *t));
        }
        while let Some(Reverse(expect)) = heap.pop() {
            prop_assert_eq!(w.pop_earliest(), Some(expect));
        }
        prop_assert!(w.is_empty());
    }

    #[test]
    fn retire_until_matches_reference_filter(
        times in proptest::collection::vec(0u64..100_000_000, 1..200),
        cut in 0u64..120_000_000,
    ) {
        let mut w = TimerWheel::with_capacity(8);
        for (i, &t) in times.iter().enumerate() {
            w.insert(t, i as u64);
        }
        let expect_retired = times.iter().filter(|&&t| t <= cut).count();
        prop_assert_eq!(w.retire_until(cut), expect_retired);
        // Survivors still drain in exact (time, insertion seq) order.
        let mut survivors: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t > cut)
            .map(|(i, &t)| (t, i as u64))
            .collect();
        survivors.sort_unstable();
        for expect in survivors {
            prop_assert_eq!(w.pop_earliest(), Some(expect));
        }
        prop_assert!(w.is_empty());
    }
}
