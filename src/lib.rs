//! # reqblock — facade crate
//!
//! Reproduction of *"DRAM Cache Management with Request Granularity for
//! NAND-based SSDs"* (Lin et al., ICPP 2022). This crate re-exports the
//! public API of every workspace member so downstream users can depend on a
//! single crate:
//!
//! * [`trace`] — request model, MSR-Cambridge parser, synthetic workloads.
//! * [`flash`] — SSD geometry and flash timing model (SSDsim-style).
//! * [`ftl`] — page-level FTL with greedy garbage collection.
//! * [`cache`] — DRAM write-buffer framework and baseline policies.
//! * [`core`] — the paper's contribution: the Req-block policy.
//! * [`obs`] — observability: recorders, histograms, JSONL telemetry.
//! * [`sim`] — the trace-driven simulator tying everything together.
//!
//! ## Quickstart
//!
//! ```
//! use reqblock::prelude::*;
//!
//! // A scaled-down version of the paper's ts_0 workload.
//! let profile = reqblock::trace::profiles::ts_0().scaled(0.005);
//! let trace = SyntheticTrace::new(profile);
//!
//! // Simulate it through a 16 MB Req-block write buffer on the paper's SSD.
//! let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper()));
//! let result = run_trace(&cfg, trace);
//! assert!(result.metrics.hit_ratio() > 0.0);
//! ```

pub use reqblock_cache as cache;
pub use reqblock_core as core;
pub use reqblock_flash as flash;
pub use reqblock_ftl as ftl;
pub use reqblock_obs as obs;
pub use reqblock_sim as sim;
pub use reqblock_trace as trace;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use reqblock_cache::{EvictionBatch, Placement, WriteBuffer};
    pub use reqblock_core::{ReqBlock, ReqBlockConfig};
    pub use reqblock_flash::{DegradedMode, FaultConfig, FaultStats, SsdConfig};
    pub use reqblock_obs::{MemoryRecorder, NoopRecorder, Recorder};
    pub use reqblock_sim::{run_trace, CacheSizeMb, PolicyKind, SampleInterval, SimConfig};
    pub use reqblock_trace::{
        paper_profiles, OpType, Request, SyntheticTrace, TraceStats, WorkloadProfile, PAGE_SIZE,
    };
}
