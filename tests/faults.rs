//! End-to-end reliability tests: fault injection through the full stack.
//!
//! The fault model's contract is *deterministic chaos*: a seeded
//! [`FaultConfig`] makes reads, programs, and erases fail at configured
//! rates, and everything downstream — retries, bad-block retirement, page
//! remapping, degraded-mode rejection, and the JSONL telemetry — must be
//! a pure function of (trace seed, fault seed, config). These tests pin
//! that contract at the outermost layer:
//!
//! * two identical faulty runs serialize to byte-identical JSONL that
//!   actually contains the reliability counters;
//! * a zero-fault run emits *none* of the reliability keys, so existing
//!   telemetry consumers never see the feature;
//! * a run driven into degraded mode keeps serving reads and reports
//!   `ReadOnly` health instead of corrupting or crashing.

use reqblock::core::ReqBlockConfig;
use reqblock::obs::telemetry::to_jsonl;
use reqblock::obs::MemoryRecorder;
use reqblock::prelude::FaultConfig;
use reqblock::sim::{
    run_source, run_source_recorded, CacheSizeMb, Health, PolicyKind, SampleInterval, SimConfig,
    TraceSource,
};
use reqblock::trace::profiles::ts_0;

/// Pressured two-chip device (the golden test's geometry): 16 384 pages
/// against a ts_0 slice with a 14 500-page footprint, so the append
/// stream cycles the free-block pool and GC erases fire.
fn pressured_cfg(fault: FaultConfig) -> (SimConfig, TraceSource) {
    let mut ssd = reqblock::flash::SsdConfig::paper();
    ssd.channels = 2;
    ssd.chips_per_channel = 1;
    ssd.capacity_bytes = 16_384 * ssd.page_size;
    let cfg = SimConfig {
        ssd,
        cache_pages: 64,
        policy: PolicyKind::ReqBlock(ReqBlockConfig::paper()),
        overhead_sample_every: 1_000,
        sampling: SampleInterval::Requests(2_000),
        fault,
        submit: reqblock::sim::SubmitMode::Synchronous,
        attr: None,
    };
    (cfg, TraceSource::Synthetic(ts_0().scaled(0.01)))
}

fn record_jsonl(cfg: &SimConfig, source: &TraceSource) -> (MemoryRecorder, String) {
    let mut rec = MemoryRecorder::default();
    run_source_recorded(cfg, source, &mut rec);
    let jsonl = to_jsonl(&rec, &[("trace", "ts_0".to_string())]);
    (rec, jsonl)
}

#[test]
fn seeded_faulty_runs_are_byte_identical_jsonl() {
    let fault = FaultConfig::with_rates(0xFA117, 5_000, 2_000, 2_000);
    let (cfg, source) = pressured_cfg(fault);
    let (rec_a, a) = record_jsonl(&cfg, &source);
    let (_, b) = record_jsonl(&cfg, &source);
    assert_eq!(a, b, "same fault seed + config must serialize identically");

    // The telemetry must actually carry the reliability rollup, or the
    // byte-equality above proves nothing about the fault path.
    assert!(rec_a.counter_value("fault_read_faults") > 0, "read faults never fired");
    assert!(rec_a.counter_value("fault_program_failures") > 0, "program faults never fired");
    for key in [
        "fault_read_faults",
        "fault_read_retries",
        "fault_program_failures",
        "fault_erase_failures",
        "bad_blocks_retired",
        "remapped_pages",
        "rejected_write_pages",
    ] {
        assert!(a.contains(&format!("\"key\":\"{key}\"")), "missing counter {key}");
    }
    assert!(a.contains("\"key\":\"device_read_only\""), "missing health gauge");
    assert!(a.contains("\"series\":\"bad_blocks\""), "missing bad_blocks time series");
}

#[test]
fn different_fault_seeds_diverge() {
    let (cfg_a, source) = pressured_cfg(FaultConfig::with_rates(1, 5_000, 2_000, 2_000));
    let (cfg_b, _) = pressured_cfg(FaultConfig::with_rates(2, 5_000, 2_000, 2_000));
    let a = run_source(&cfg_a, &source);
    let b = run_source(&cfg_b, &source);
    assert_ne!(a.faults, b.faults, "distinct seeds must draw distinct fault streams");
}

#[test]
fn zero_fault_run_emits_no_reliability_telemetry() {
    let (cfg, source) = pressured_cfg(FaultConfig::default());
    let (_, jsonl) = record_jsonl(&cfg, &source);
    assert!(!jsonl.contains("fault_"), "zero-fault telemetry leaked fault counters");
    assert!(!jsonl.contains("device_read_only"));
    assert!(!jsonl.contains("bad_blocks"));
    assert!(!jsonl.contains("remapped_pages"));
}

#[test]
fn zero_fault_run_matches_fault_free_results() {
    let (cfg, source) = pressured_cfg(FaultConfig::default());
    let r = run_source(&cfg, &source);
    assert_eq!(r.health, Health::Healthy);
    assert_eq!(r.faults, Default::default(), "inert fault model must count nothing");
    // Pinned by the golden test as well; a cheap cross-check here.
    assert_eq!(r.metrics.requests, 18_017);
}

#[test]
fn heavy_faults_degrade_to_read_only_but_finish_the_trace() {
    // 3% program / 3% erase failures on a device with only 2 x 128 blocks
    // retires enough of the array to cross the free-block floor.
    let fault = FaultConfig {
        read_only_free_floor: 8,
        ..FaultConfig::with_rates(0xDEAD, 0, 30_000, 30_000)
    };
    let (cfg, source) = pressured_cfg(fault);
    let r = run_source(&cfg, &source);
    assert_eq!(r.health, Health::ReadOnly, "device should have degraded: {:?}", r.faults);
    assert!(r.faults.retired_blocks > 0);
    assert!(r.faults.rejected_write_pages > 0, "read-only mode must reject writes");
    // The run completed the whole trace (no panic, no truncation): every
    // request got a response, including post-degradation reads.
    assert_eq!(r.metrics.requests, 18_017);
    assert!(r.metrics.read_pages > 0);
}

#[test]
fn paper_device_read_faults_only_slow_reads_down() {
    // On the huge paper device nothing retires; a pure read-fault config
    // must leave all write-side counters untouched and only add retries.
    let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper()))
        .with_faults(FaultConfig::with_rates(7, 50_000, 0, 0));
    let source = TraceSource::Synthetic(ts_0().scaled(0.02));
    let r = run_source(&cfg, &source);
    assert!(r.faults.read_faults > 0);
    assert_eq!(r.faults.program_failures, 0);
    assert_eq!(r.faults.erase_failures, 0);
    assert_eq!(r.faults.retired_blocks, 0);
    assert_eq!(r.health, Health::Healthy);

    let base_cfg =
        SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper()));
    let base = run_source(&base_cfg, &source);
    assert_eq!(base.flash.user_programs, r.flash.user_programs, "writes must be unaffected");
    assert!(
        r.metrics.total_response_ns > base.metrics.total_response_ns,
        "retries must cost simulated time"
    );
}
