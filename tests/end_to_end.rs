//! End-to-end integration: every paper policy on every paper workload,
//! with cross-layer conservation invariants.

use reqblock::prelude::*;
use reqblock::sim::runner::run_trace_drained;

/// All six workloads at a tiny but non-degenerate scale.
fn workloads() -> Vec<WorkloadProfile> {
    paper_profiles().into_iter().map(|p| p.scaled(0.002)).collect()
}

#[test]
fn every_policy_runs_every_workload() {
    for profile in workloads() {
        for policy in PolicyKind::paper_comparison() {
            let cfg = SimConfig::paper(CacheSizeMb::Mb16, policy);
            let r = run_trace(&cfg, SyntheticTrace::new(profile.clone()));
            let m = &r.metrics;
            assert_eq!(m.requests, profile.requests, "{}/{}", profile.name, r.policy);
            assert_eq!(m.requests, m.read_reqs + m.write_reqs);
            assert!(m.read_hits <= m.read_pages);
            assert!(m.write_hits <= m.write_pages);
            assert!(m.hit_ratio() <= 1.0);
            assert!(
                m.avg_response_ms() >= 0.0 && m.avg_response_ms().is_finite(),
                "{}/{}: bad response {}",
                profile.name,
                r.policy,
                m.avg_response_ms()
            );
        }
    }
}

#[test]
fn page_conservation_after_drain() {
    // Once drained, every page ever inserted into the buffer must have been
    // programmed to flash exactly once per insertion (write-buffer pages are
    // always dirty; padding is off for all compared policies).
    for profile in workloads() {
        for policy in PolicyKind::paper_comparison() {
            let cfg = SimConfig::paper(CacheSizeMb::Mb16, policy);
            let r = run_trace_drained(&cfg, SyntheticTrace::new(profile.clone()));
            let inserted = r.metrics.write_pages - r.metrics.write_hits;
            assert_eq!(
                r.flash.user_programs,
                inserted,
                "{}/{}: programs {} != inserted {}",
                profile.name,
                r.policy,
                r.flash.user_programs,
                inserted
            );
            assert_eq!(r.metrics.evicted_pages, inserted, "{}/{}", profile.name, r.policy);
        }
    }
}

#[test]
fn flash_write_count_bounded_by_inserts_before_drain() {
    for policy in PolicyKind::paper_comparison() {
        let profile = reqblock::trace::profiles::proj_0().scaled(0.002);
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, policy);
        let r = run_trace(&cfg, SyntheticTrace::new(profile));
        let inserted = r.metrics.write_pages - r.metrics.write_hits;
        assert!(r.flash.user_programs <= inserted);
        // Whatever was not flushed is still resident: at most the cache size.
        assert!(inserted - r.flash.user_programs <= 4096);
    }
}

#[test]
fn gc_activates_and_preserves_correctness_under_churn() {
    use reqblock::sim::Ssd;
    // A small logical working set hammered on the tiny SSD forces GC while
    // the 64-page cache forces constant evictions.
    let mut cfg = SimConfig::tiny(64, PolicyKind::ReqBlock(ReqBlockConfig::paper()));
    cfg.ssd = reqblock::flash::SsdConfig::tiny();
    let mut ssd = Ssd::new(cfg);
    let mut t = 0u64;
    for round in 0..60u64 {
        for start in (0..160).step_by(4) {
            t += 1_000_000;
            ssd.submit(&Request::write_pages(t, start, 4));
            let _ = round;
        }
    }
    assert!(ssd.ftl_stats().gc_runs > 0, "GC should have triggered");
    assert!(ssd.flash_counters().write_amplification() >= 1.0);
    // All data remains readable (timing-wise; correctness is the mapping).
    for start in (0..160).step_by(4) {
        t += 1_000_000;
        let resp = ssd.submit(&Request::read_pages(t, start, 4));
        assert!(resp > 0);
    }
}

#[test]
fn larger_caches_never_hurt_hit_ratio_much() {
    // Monotonicity sanity: for stack-friendly policies the hit ratio should
    // not collapse as the cache grows (allow small non-monotonic wiggle for
    // the non-stack block policies).
    let profile = reqblock::trace::profiles::ts_0().scaled(0.005);
    for policy in PolicyKind::paper_comparison() {
        let mut prev = 0.0;
        for cache in CacheSizeMb::ALL {
            let r = run_trace(&SimConfig::paper(cache, policy), SyntheticTrace::new(profile.clone()));
            let h = r.metrics.hit_ratio();
            assert!(
                h >= prev - 0.05,
                "{} hit ratio dropped from {prev:.3} to {h:.3} at {cache}",
                r.policy
            );
            prev = h;
        }
    }
}
