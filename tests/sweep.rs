//! Integration tests for the sweep-scale throughput work: the shared trace
//! cache must be invisible to simulation results, and the barrier-free
//! `repro all` pool must emit byte-identical artifacts at any thread count.

use reqblock::sim::{
    run_trace_recorded, CacheSizeMb, PolicyKind, RunResult, SimConfig, TraceSource,
};
use reqblock::trace::shared;
use reqblock_experiments::sweep::run_all;
use reqblock_experiments::Opts;
use std::path::PathBuf;

fn tiny_opts(threads: usize) -> Opts {
    Opts { scale: 0.001, threads, out_dir: std::env::temp_dir(), trace_dir: None }
}

/// The simulated half of a [`RunResult`] — everything except the host
/// wall-clock, which legitimately differs between runs.
fn simulated(r: &RunResult) -> String {
    format!("{} {} {:?} {:?} {:?} {:?} {:?}", r.policy, r.cache_pages, r.metrics, r.flash, r.ftl, r.faults, r.health)
}

/// Run one job over the explicitly shared (cached) request slice.
fn run_cached(cfg: &SimConfig, source: &TraceSource) -> RunResult {
    let requests = source.shared_requests();
    run_trace_recorded(cfg, requests.iter().copied(), &mut reqblock::obs::NoopRecorder)
}

/// Run the same job by regenerating the trace from scratch, bypassing the
/// process-wide cache entirely.
fn run_uncached(cfg: &SimConfig, source: &TraceSource) -> RunResult {
    let mut requests = Vec::new();
    source.for_each_request_uncached(|r| requests.push(r));
    run_trace_recorded(cfg, requests, &mut reqblock::obs::NoopRecorder)
}

#[test]
fn cached_replay_matches_uncached_regeneration_synthetic() {
    let profile = reqblock::trace::profiles::src1_2().scaled(0.002);
    let source = TraceSource::Synthetic(profile);
    for policy in [PolicyKind::Lru, PolicyKind::ReqBlock(Default::default())] {
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, policy);
        let cached = run_cached(&cfg, &source);
        let fresh = run_uncached(&cfg, &source);
        assert_eq!(simulated(&cached), simulated(&fresh));
    }
}

#[test]
fn cached_replay_matches_uncached_regeneration_msr_file() {
    let dir = std::env::temp_dir().join("reqblock_sweep_msr_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join("ts_0.csv");
    let profile = reqblock::trace::profiles::ts_0().scaled(0.001);
    let reqs: Vec<reqblock::trace::Request> =
        reqblock::trace::SyntheticTrace::new(profile).generate_all();
    reqblock::trace::msr::write_file(&path, &reqs).unwrap();

    let source = TraceSource::MsrFile(path);
    let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(Default::default()));
    let cached = run_cached(&cfg, &source);
    let fresh = run_uncached(&cfg, &source);
    assert_eq!(simulated(&cached), simulated(&fresh));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shared_slice_is_reused_not_regenerated() {
    let profile = reqblock::trace::profiles::hm_1().scaled(0.001);
    let source = TraceSource::Synthetic(profile);
    let a = source.shared_requests();
    let b = source.shared_requests();
    assert!(
        std::sync::Arc::ptr_eq(&a, &b) || !shared::enabled(),
        "two lookups of the same (source, scale) must share one allocation"
    );
}

/// The tentpole determinism guarantee: `repro all` on one worker and on
/// four workers must produce byte-identical tables and telemetry. Only the
/// "perf" section may differ — its cells embed host wall-clock.
#[test]
fn run_all_is_thread_count_invariant() {
    let serial = run_all(&tiny_opts(1));
    let parallel = run_all(&tiny_opts(4));

    assert_eq!(serial.telemetry_jsonl, parallel.telemetry_jsonl);
    assert_eq!(serial.resp_chart, parallel.resp_chart);
    assert_eq!(serial.hit_chart, parallel.hit_chart);
    assert_eq!(serial.sections.len(), parallel.sections.len());
    for ((name_s, tables_s), (name_p, tables_p)) in
        serial.sections.iter().zip(&parallel.sections)
    {
        assert_eq!(name_s, name_p);
        if name_s == "perf" {
            continue;
        }
        assert_eq!(tables_s.len(), tables_p.len(), "{name_s}");
        for (ts, tp) in tables_s.iter().zip(tables_p) {
            assert_eq!(ts.to_markdown(), tp.to_markdown(), "section {name_s} diverged");
        }
    }
}
