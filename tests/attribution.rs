//! Workspace-level invariants of the latency-attribution layer
//! (DESIGN.md §7.4).
//!
//! The exact-sum contract: every nanosecond of every request's response
//! time is charged to exactly one [`Component`] — the per-component
//! totals sum to the metrics' `total_response_ns` with no slack, and
//! every sampled span's parts sum to its own response. The property
//! test drives arbitrary workloads through both submit modes; the unit
//! test pins that the deterministic sampler's selection is a pure
//! function of the seeded config and the request stream, so running
//! the simulation on a different thread (or more of them) cannot
//! change which spans are captured.

use proptest::prelude::*;
use reqblock::core::ReqBlockConfig;
use reqblock::obs::{AttrConfig, Component, MemoryRecorder};
use reqblock::sim::{PolicyKind, SimConfig, SpanRecord, Ssd, SubmitMode};
use reqblock::trace::{OpType, Request};

const PAGE: u64 = 4096;

/// Arbitrary request streams: mixed reads/writes over a footprint that
/// overflows the tiny cache (24 pages) but fits the tiny flash array
/// (512 pages), with irregular arrival gaps.
fn requests() -> impl Strategy<Value = Vec<Request>> {
    proptest::collection::vec(
        (any::<bool>(), 0u64..320, 1u64..24, 0u64..150_000),
        1..300,
    )
    .prop_map(|steps| {
        let mut t = 0u64;
        steps
            .into_iter()
            .map(|(is_write, page, pages, gap)| {
                t += gap;
                let op = if is_write { OpType::Write } else { OpType::Read };
                Request::new(t, op, page * PAGE, pages * PAGE)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-component attributed time sums *exactly* to the summed
    /// response time, for arbitrary workloads, in both submit modes,
    /// and every captured span decomposes its own response exactly.
    #[test]
    fn attribution_sums_exactly_for_arbitrary_workloads(
        reqs in requests(),
        depth in 1u32..5,
        synchronous in any::<bool>(),
        sample_every in 1u64..8,
    ) {
        let mode = if synchronous {
            SubmitMode::Synchronous
        } else {
            SubmitMode::Queued { depth }
        };
        let cfg = SimConfig::tiny(24, PolicyKind::ReqBlock(ReqBlockConfig::paper()))
            .with_submit(mode)
            .with_attribution(AttrConfig { sample_every, slowest: 8, seed: 0xA77 });
        let mut rec = MemoryRecorder::default();
        let mut ssd = Ssd::new(cfg);
        for r in &reqs {
            ssd.submit_recorded(r, &mut rec);
        }
        ssd.finish_recording(&mut rec);

        let acc = ssd.attribution().expect("attribution configured");
        prop_assert_eq!(acc.requests(), reqs.len() as u64);
        let by_component: u128 = Component::ALL.iter().map(|&c| acc.total_ns(c)).sum();
        prop_assert_eq!(by_component, ssd.metrics().total_response_ns);
        prop_assert_eq!(acc.total_response_ns(), ssd.metrics().total_response_ns);
        for span in acc.sampled_spans() {
            prop_assert_eq!(span.parts_sum(), span.response_ns);
        }
        // The rollup repeats the exact sums, component by component.
        let mut rollup: u128 = 0;
        for c in Component::ALL {
            rollup += u128::from(
                rec.counter_value(&format!("attr_{}_ns", c.name())),
            );
        }
        prop_assert_eq!(rollup, by_component);
    }
}

/// One deterministic mixed workload with real tail structure: enough
/// writes to force evictions, enough reads to miss.
fn sampled_spans_of_run() -> Vec<SpanRecord> {
    let cfg = SimConfig::tiny(24, PolicyKind::Lru)
        .with_attribution(AttrConfig { sample_every: 3, slowest: 5, seed: 0xDE7E });
    let mut ssd = Ssd::new(cfg);
    let mut rec = MemoryRecorder::default();
    for i in 0..200u64 {
        let req = if i % 3 == 0 {
            Request::read_pages(i * 1_000, (i * 7) % 320, 2)
        } else {
            Request::write_pages(i * 1_000, (i * 11) % 320, 3)
        };
        ssd.submit_recorded(&req, &mut rec);
    }
    ssd.attribution().expect("attribution configured").sampled_spans()
}

/// The sampler (every-Kth ∪ slowest-N) must select the same spans no
/// matter which thread runs the simulation or how many peers run
/// beside it — selection is seeded state, never wall clock, thread id,
/// or scheduling order.
#[test]
fn sampler_selection_is_thread_invariant() {
    let baseline = sampled_spans_of_run();
    assert!(!baseline.is_empty(), "workload must capture spans");
    let handles: Vec<_> = (0..3).map(|_| std::thread::spawn(sampled_spans_of_run)).collect();
    for h in handles {
        assert_eq!(h.join().expect("worker panicked"), baseline);
    }
}
