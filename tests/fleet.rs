//! Fleet-layer integration tests: the byte-identity contract of
//! `reqblock_sim::fleet` (DESIGN.md §7.5).
//!
//! The property test drives random small fleets — device count, thread
//! count, placement, and tenant seeds all vary — and requires the
//! aggregated [`FleetMetrics`] to be *equal* (derived `PartialEq`, i.e.
//! every histogram bucket, every per-device summary) between a
//! single-threaded and a multi-threaded run of the same fleet. The
//! golden test then pins one 2-tenant × 4-device fleet exactly, so the
//! tenant-stream synthesis, placement sharding, per-device simulation
//! and device-order aggregation cannot drift silently.

use proptest::prelude::*;
use reqblock::sim::{
    run_fleet, ArrivalProcess, CacheSizeMb, FleetConfig, FleetControl, Placement, PolicyKind,
    SimConfig, TenantMix, TenantSpec,
};
use reqblock::trace::profiles::{proj_0, ts_0};

/// A 2-tenant mix: a Poisson "victim" over a read-heavy profile and a
/// bursty "antagonist" over a write-heavy one. Deterministic in the
/// seeds, so golden-pinnable.
fn two_tenant_mix(victim_seed: u64, antagonist_seed: u64) -> TenantMix {
    TenantMix::new(vec![
        TenantSpec {
            name: "victim".into(),
            profile: ts_0().scaled(0.002),
            process: ArrivalProcess::poisson_rate(50_000.0),
            seed: victim_seed,
        },
        TenantSpec {
            name: "antagonist".into(),
            profile: proj_0().scaled(0.002),
            process: ArrivalProcess::Bursty {
                mean_interarrival_ns: 20_000,
                burst_len: 32,
                peak_to_mean: 8,
            },
            seed: antagonist_seed,
        },
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Fleet aggregation is thread-invariant: any thread count produces
    /// byte-identical `FleetMetrics` for the same fleet.
    #[test]
    fn fleet_aggregation_is_thread_invariant(
        devices in 1usize..6,
        threads in 2usize..5,
        victim_seed in 0u64..1_000,
        antagonist_seed in 0u64..1_000,
        packed in any::<bool>(),
    ) {
        let mix = two_tenant_mix(victim_seed, antagonist_seed);
        let mut cfg = FleetConfig::uniform(
            devices,
            SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru),
        );
        cfg.placement = if packed {
            Placement::Packed { devices_per_tenant: 2 }
        } else {
            Placement::Striped
        };
        cfg.telemetry = true;

        let serial = run_fleet(&cfg, &mix, &FleetControl::threads(1));
        let pooled = run_fleet(&cfg, &mix, &FleetControl::threads(threads));
        prop_assert_eq!(&serial.metrics, &pooled.metrics);
        prop_assert_eq!(&serial.telemetry, &pooled.telemetry);
    }
}

/// Pinned small-fleet golden: 2 tenants × 4 devices on the paper 16 MB
/// LRU config. Every number below was produced by this test and frozen;
/// a change means the fleet layer (tenant synthesis, arrival re-timing,
/// placement, simulation, or aggregation) changed behaviour and the new
/// values must be justified before re-pinning.
#[test]
fn small_fleet_golden() {
    let mix = two_tenant_mix(11, 22);
    let cfg = FleetConfig::uniform(4, SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::Lru));
    let result = run_fleet(&cfg, &mix, &FleetControl::threads(2));
    let m = &result.metrics;

    let victim = &m.per_tenant[0];
    let antagonist = &m.per_tenant[1];
    assert_eq!(victim.name, "victim");
    assert_eq!(antagonist.name, "antagonist");

    let got = (
        victim.requests,
        victim.hist.quantile_upper(0.99),
        antagonist.requests,
        antagonist.hist.quantile_upper(0.99),
        m.fleet.quantile_upper(0.50),
        m.fleet.quantile_upper(0.99),
        m.fleet.quantile_upper(0.999),
        m.worst_device_p99_ns(),
        m.per_device.iter().map(|d| d.requests).collect::<Vec<_>>(),
    );
    let want = (
        3603u64,
        Some(131_072_000),
        8449u64,
        Some(964_196_761),
        Some(2_000),
        Some(964_196_761),
        Some(964_196_761),
        964_196_761u64,
        vec![3014u64, 3013, 3013, 3012],
    );
    assert_eq!(got, want, "small-fleet golden drifted");
}
