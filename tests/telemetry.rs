//! Golden schema + determinism tests for the JSONL run telemetry.
//!
//! The `reqblock-obs/1` JSONL schema is a contract with external tooling
//! (plot scripts, dashboards): this test pins the line types, their field
//! names, and their field order against a real recorded run, and checks
//! that re-running the same seeded workload yields byte-identical output.
//! Extend the schema by adding fields/types — renames or reorders must
//! bump `SCHEMA_VERSION` and update this test in the same change.
//!
//! No JSON parser exists in this offline workspace, so the checks are
//! structural string assertions; the writer is hand-rolled too, so the
//! two stay honest against each other.

use reqblock::core::ReqBlockConfig;
use reqblock::obs::telemetry::{summary_rows, to_jsonl, SCHEMA_VERSION};
use reqblock::obs::MemoryRecorder;
use reqblock::sim::{
    run_source_recorded, CacheSizeMb, PolicyKind, SampleInterval, SimConfig, TraceSource,
};
use reqblock::trace::profiles::ts_0;

/// One small recorded run: seeded ts_0 slice, Req-block on the paper
/// device, a sample every 500 requests.
fn record_run() -> (MemoryRecorder, String) {
    let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper()))
        .with_sampling(SampleInterval::Requests(2_000));
    // Large enough to fill the 16 MB buffer and force evictions, so the
    // flush-wait span shows up in the telemetry (0.01 never evicts).
    let source = TraceSource::Synthetic(ts_0().scaled(0.05));
    let mut rec = MemoryRecorder::default();
    run_source_recorded(&cfg, &source, &mut rec);
    let meta = [
        ("trace", "ts_0".to_string()),
        ("policy", "Req-block".to_string()),
        ("cache", "16MB".to_string()),
    ];
    let jsonl = to_jsonl(&rec, &meta);
    (rec, jsonl)
}

/// Split `{"type":"point","series":"x",...}` into its `"k":v` fields.
fn fields(line: &str) -> Vec<(&str, &str)> {
    let inner = line
        .strip_prefix('{')
        .and_then(|l| l.strip_suffix('}'))
        .unwrap_or_else(|| panic!("line is not a JSON object: {line}"));
    // No string value in the schema contains ',' or ':', so a flat split
    // is sound — revisit if run_meta ever carries free-form values.
    inner
        .split(',')
        .map(|kv| {
            let (k, v) = kv.split_once(':').unwrap_or_else(|| panic!("bad field {kv:?}"));
            (
                k.strip_prefix('"').and_then(|k| k.strip_suffix('"')).unwrap(),
                v,
            )
        })
        .collect()
}

fn is_json_number(v: &str) -> bool {
    !v.is_empty()
        && v.chars().all(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
}

#[test]
fn golden_jsonl_schema() {
    let (_, jsonl) = record_run();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(lines.len() > 30, "expected a real run, got {} lines", lines.len());

    // Line 1: run_meta with the schema tag, then caller meta in order.
    let meta = fields(lines[0]);
    assert_eq!(meta[0], ("type", "\"run_meta\""));
    assert_eq!(meta[1].0, "schema");
    assert_eq!(meta[1].1, format!("\"{SCHEMA_VERSION}\""));
    assert_eq!(meta[1].1, "\"reqblock-obs/1\"");
    assert_eq!(meta[2].0, "trace");
    assert_eq!(meta[3].0, "policy");
    assert_eq!(meta[4].0, "cache");

    // Every following line is one of the four aggregate types with pinned
    // field names in pinned order; kinds appear grouped in schema order.
    let mut kinds = Vec::new();
    for line in &lines[1..] {
        let f = fields(line);
        let kind = f[0].1;
        assert_eq!(f[0].0, "type");
        match kind {
            "\"point\"" => {
                assert_eq!(f[1].0, "series");
                assert_eq!(f[2].0, "t");
                assert_eq!(f[3].0, "v");
                assert_eq!(f.len(), 4, "{line}");
                assert!(is_json_number(f[2].1), "{line}");
            }
            "\"counter\"" => {
                assert_eq!(f[1].0, "key");
                assert_eq!(f[2].0, "value");
                assert_eq!(f.len(), 3, "{line}");
                assert!(f[2].1.chars().all(|c| c.is_ascii_digit()), "counter is a u64: {line}");
            }
            "\"gauge\"" => {
                assert_eq!(f[1].0, "key");
                assert_eq!(f[2].0, "value");
                assert_eq!(f.len(), 3, "{line}");
                assert!(is_json_number(f[2].1) || f[2].1 == "null", "{line}");
            }
            "\"span\"" => {
                assert_eq!(f[1].0, "key");
                assert_eq!(f[2].0, "count");
                assert_eq!(f[3].0, "total_ns");
                assert_eq!(f[4].0, "max_ns");
                assert_eq!(f[5].0, "mean_ns");
                assert_eq!(f.len(), 6, "{line}");
            }
            other => panic!("unknown line type {other}: {line}"),
        }
        if kinds.last() != Some(&kind) {
            kinds.push(kind);
        }
    }
    assert_eq!(
        kinds,
        vec!["\"point\"", "\"counter\"", "\"gauge\"", "\"span\""],
        "aggregate sections must appear once each, in schema order"
    );
}

#[test]
fn recorded_run_covers_expected_names() {
    let (rec, jsonl) = record_run();
    // At least the three core time series, sampled more than once.
    for series in ["hit_ratio", "write_amp", "chan_util", "irl_pages"] {
        assert!(
            rec.series_points(series).len() >= 2,
            "series {series} missing or single-point"
        );
        assert!(jsonl.contains(&format!("\"series\":\"{series}\"")));
    }
    assert!(jsonl.contains("\"key\":\"requests\""));
    assert!(jsonl.contains("\"key\":\"flash_user_programs\""));
    assert!(jsonl.contains("\"key\":\"flush_wait\""), "flush-wait span must be present");

    // The human summary mirrors the same recorder.
    let rows = summary_rows(&rec);
    assert!(rows.iter().any(|(k, n, _)| k == "span" && n == "flush_wait"));
    assert!(rows.iter().any(|(k, n, _)| k == "series" && n == "hit_ratio"));
}

#[test]
fn same_seed_twice_is_byte_identical() {
    let (_, a) = record_run();
    let (_, b) = record_run();
    assert_eq!(a, b, "identical seeded runs must serialize to identical bytes");
}
