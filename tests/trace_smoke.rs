//! Smoke test for the Chrome `trace_event` export (`repro why`): every
//! emitted document must parse as the JSON shape Perfetto loads, and
//! the complete (`ph:"X"`) slices on each `(pid, tid)` track must be
//! monotone and non-overlapping — sampled-request tracks lay the
//! components back to back, and chip/channel tracks inherit the flash
//! timeline's busy-horizon guarantee.
//!
//! The validator is deliberately hand-rolled (no JSON dependency): the
//! exporter writes one event per line with a fixed key order, so exact
//! string scanning both checks the events and pins that shape.

use reqblock_experiments::extensions;
use reqblock_experiments::Opts;
use std::collections::HashMap;

fn tiny_opts() -> Opts {
    Opts { scale: 0.01, threads: 2, out_dir: std::env::temp_dir(), trace_dir: None }
}

/// Extract the value following `"key":` on this line, up to the next
/// `,` or `}` — enough for the exporter's flat one-line events.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(&rest[..end])
}

/// Parse the exporter's fixed-point microsecond notation (`"{}.{:03}"`)
/// back to exact nanoseconds.
fn us_to_ns(v: &str) -> u64 {
    let (whole, frac) = v.split_once('.').expect("ts/dur carry 3 decimals");
    assert_eq!(frac.len(), 3, "exactly µs.3-digit-ns notation: {v:?}");
    whole.parse::<u64>().unwrap() * 1_000 + frac.parse::<u64>().unwrap()
}

#[test]
fn why_traces_parse_and_tracks_never_overlap() {
    let report = extensions::why(&tiny_opts());
    assert!(!report.traces.is_empty(), "why must emit trace documents");
    for (stem, doc) in &report.traces {
        // Document frame: a single traceEvents array, one event per line.
        assert!(doc.starts_with("{\"traceEvents\":[\n"), "{stem}: bad header");
        assert!(doc.ends_with("\n]}\n"), "{stem}: bad footer");
        let body = &doc["{\"traceEvents\":[\n".len()..doc.len() - "\n]}\n".len()];

        let mut tracks: HashMap<(u64, u64), u64> = HashMap::new();
        let mut slices = 0usize;
        let mut metadata = 0usize;
        for line in body.lines() {
            let line = line.trim_end_matches(',');
            assert!(line.starts_with('{') && line.ends_with('}'), "{stem}: not an object: {line}");
            let ph = field(line, "ph").unwrap_or_else(|| panic!("{stem}: event without ph"));
            match ph {
                "\"M\"" => {
                    // Metadata names a process or thread.
                    let name = field(line, "name").unwrap();
                    assert!(
                        name == "\"process_name\"" || name == "\"thread_name\"",
                        "{stem}: unknown metadata {name}"
                    );
                    metadata += 1;
                }
                "\"X\"" => {
                    let pid: u64 = field(line, "pid").unwrap().parse().unwrap();
                    let tid: u64 = field(line, "tid").unwrap().parse().unwrap();
                    let ts = us_to_ns(field(line, "ts").unwrap());
                    let dur = us_to_ns(field(line, "dur").unwrap());
                    // Monotone, non-overlapping per track: each slice
                    // starts at or after the previous slice's end.
                    let horizon = tracks.entry((pid, tid)).or_insert(0);
                    assert!(
                        ts >= *horizon,
                        "{stem}: track ({pid},{tid}) overlaps: slice at {ts} ns \
                         before horizon {} ns",
                        *horizon
                    );
                    *horizon = ts + dur;
                    slices += 1;
                }
                other => panic!("{stem}: unexpected phase {other}"),
            }
        }
        assert!(metadata > 0, "{stem}: no process/thread names");
        assert!(slices > 0, "{stem}: no slices");
    }
}
