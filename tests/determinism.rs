//! Reproducibility: everything in the pipeline is deterministic — the same
//! profile and configuration must produce byte-identical results, because
//! the reproduction's numbers are only meaningful if they are stable.

use reqblock::prelude::*;

#[test]
fn trace_generation_is_deterministic() {
    for profile in paper_profiles() {
        let name = profile.name.clone();
        let p = profile.scaled(0.001);
        let a = SyntheticTrace::new(p.clone()).generate_all();
        let b = SyntheticTrace::new(p).generate_all();
        assert_eq!(a, b, "{name} generation differs between runs");
    }
}

#[test]
fn simulation_is_deterministic_per_policy() {
    let profile = reqblock::trace::profiles::src1_2().scaled(0.002);
    for policy in PolicyKind::paper_comparison() {
        let cfg = SimConfig::paper(CacheSizeMb::Mb16, policy);
        let a = run_trace(&cfg, SyntheticTrace::new(profile.clone()));
        let b = run_trace(&cfg, SyntheticTrace::new(profile.clone()));
        assert_eq!(a.metrics, b.metrics, "{} metrics differ", a.policy);
        assert_eq!(a.flash, b.flash, "{} flash counters differ", a.policy);
        assert_eq!(a.ftl, b.ftl, "{} ftl stats differ", a.policy);
    }
}

#[test]
fn parallel_runner_matches_serial_runs() {
    use reqblock::sim::{run_jobs, Job, TraceSource};
    let profile = reqblock::trace::profiles::ts_0().scaled(0.002);
    let jobs: Vec<Job> = PolicyKind::paper_comparison()
        .iter()
        .map(|p| Job {
            label: p.name().to_string(),
            cfg: SimConfig::paper(CacheSizeMb::Mb16, *p),
            source: TraceSource::Synthetic(profile.clone()),
        })
        .collect();
    let parallel = run_jobs(&jobs, 4);
    for (job, (label, result)) in jobs.iter().zip(&parallel) {
        assert_eq!(&job.label, label);
        let serial = run_trace(&job.cfg, job.source.requests());
        assert_eq!(serial.metrics, result.metrics, "{label} parallel != serial");
    }
}

#[test]
fn different_seeds_produce_different_traces() {
    let mut p = reqblock::trace::profiles::ts_0().scaled(0.001);
    let a = SyntheticTrace::new(p.clone()).generate_all();
    p.seed ^= 0xdead_beef;
    let b = SyntheticTrace::new(p).generate_all();
    assert_ne!(a, b, "seed must matter");
}
