//! Cross-crate check: a synthetic workload exported to the MSR CSV format
//! and replayed from the file behaves identically to the in-memory trace.

use reqblock::prelude::*;
use reqblock::trace::msr;

#[test]
fn exported_trace_replays_identically() {
    // Quantize timestamps to filetime ticks so the export is lossless.
    let reqs: Vec<Request> = SyntheticTrace::new(reqblock::trace::profiles::usr_0().scaled(0.001))
        .map(|mut r| {
            r.time_ns = (r.time_ns / 100) * 100;
            r
        })
        .collect();

    let path = std::env::temp_dir().join("reqblock_it_roundtrip.csv");
    msr::write_file(&path, &reqs).expect("write trace file");
    let parsed = msr::parse_file(&path).expect("parse trace file");
    let _ = std::fs::remove_file(&path);
    assert_eq!(parsed.len(), reqs.len());

    let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper()));
    let direct = run_trace(&cfg, reqs.iter().copied());
    let roundtrip = run_trace(&cfg, parsed.iter().copied());
    assert_eq!(direct.metrics, roundtrip.metrics);
    assert_eq!(direct.flash, roundtrip.flash);
}

#[test]
fn stats_survive_roundtrip() {
    let reqs: Vec<Request> = SyntheticTrace::new(reqblock::trace::profiles::ts_0().scaled(0.001))
        .map(|mut r| {
            r.time_ns = (r.time_ns / 100) * 100;
            r
        })
        .collect();
    let before = reqblock::trace::stats::compute(&reqs);
    let parsed = msr::parse_str(&msr::write_csv(&reqs)).unwrap();
    let after = reqblock::trace::stats::compute(&parsed);
    assert_eq!(before, after);
}
