//! Host submit-mode tests: the byte-identity contract of the
//! host/engine/device split (DESIGN.md §7.2).
//!
//! `SubmitMode::Queued { depth: 1 }` has a zero-slot flush window, so it
//! must be *exactly* the synchronous simulator — not approximately: the
//! property test below requires identical `Metrics`, flash counters, GC
//! stats, and byte-identical telemetry JSONL for arbitrary workloads.
//! A golden test then pins one `Queued { depth: 8 }` run so queued-mode
//! timing cannot drift silently, and checks the mode's core invariant:
//! the flush window reschedules *when* stalls are charged, never *what*
//! the flash array does, so flash traffic is depth-invariant.

use proptest::prelude::*;
use reqblock::core::ReqBlockConfig;
use reqblock::obs::telemetry::to_jsonl;
use reqblock::obs::MemoryRecorder;
use reqblock::sim::{
    run_source, run_trace_recorded, CacheSizeMb, PolicyKind, SampleInterval, SimConfig,
    SubmitMode, TraceSource,
};
use reqblock::trace::profiles::ts_0;
use reqblock::trace::{OpType, Request};

const PAGE: u64 = 4096;

/// Arbitrary request streams: mixed reads/writes over a footprint that
/// overflows the tiny cache (24 pages) but fits the tiny flash array
/// (512 pages), with irregular arrival gaps.
fn requests() -> impl Strategy<Value = Vec<Request>> {
    proptest::collection::vec(
        (any::<bool>(), 0u64..320, 1u64..24, 0u64..150_000),
        1..300,
    )
    .prop_map(|steps| {
        let mut t = 0u64;
        steps
            .into_iter()
            .map(|(is_write, page, pages, gap)| {
                t += gap;
                let op = if is_write { OpType::Write } else { OpType::Read };
                Request::new(t, op, page * PAGE, pages * PAGE)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Queued mode at depth 1 is the synchronous simulator, bit for bit:
    /// same metrics, same device state, and the same recorded telemetry.
    #[test]
    fn queued_depth_one_matches_synchronous_exactly(
        reqs in requests(),
        delta in 1u32..6,
    ) {
        let policy = PolicyKind::ReqBlock(ReqBlockConfig {
            delta,
            ..ReqBlockConfig::paper()
        });
        let sync_cfg = SimConfig::tiny(24, policy)
            .with_sampling(SampleInterval::Requests(50));
        let queued_cfg = sync_cfg.clone().with_submit(SubmitMode::Queued { depth: 1 });

        let mut sync_rec = MemoryRecorder::default();
        let sync = run_trace_recorded(&sync_cfg, reqs.iter().cloned(), &mut sync_rec);
        let mut queued_rec = MemoryRecorder::default();
        let queued = run_trace_recorded(&queued_cfg, reqs.iter().cloned(), &mut queued_rec);

        prop_assert_eq!(&sync.metrics, &queued.metrics);
        prop_assert_eq!(sync.flash, queued.flash);
        prop_assert_eq!(sync.ftl, queued.ftl);
        let meta = [("trace", "prop".to_string())];
        prop_assert_eq!(to_jsonl(&sync_rec, &meta), to_jsonl(&queued_rec, &meta));
    }
}

/// Golden queued-mode baseline: the synchronous golden scenario
/// (`tests/golden_reqblock.rs`) re-run at depth 8. Flash traffic and
/// cache behaviour must match the synchronous pins exactly; the pinned
/// response/stall numbers are queued-mode semantics and must only change
/// with a deliberate (and documented) semantic change.
#[test]
fn queued_golden_paper_device() {
    let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper()))
        .with_submit(SubmitMode::Queued { depth: 8 });
    let source = TraceSource::Synthetic(ts_0().scaled(0.05));
    let a = run_source(&cfg, &source);
    let b = run_source(&cfg, &source);
    assert_eq!(a.metrics, b.metrics, "queued mode must be deterministic");
    assert_eq!(a.flash, b.flash);

    // Depth-invariant: identical to the synchronous golden baseline.
    assert_eq!(a.flash.user_reads, 12_772);
    assert_eq!(a.flash.user_programs, 14_863);
    assert_eq!(a.flash.erases, 0);
    assert_eq!(a.metrics.evictions, 1_626);
    assert_eq!(a.metrics.evicted_pages, 14_863);
    assert_eq!(a.metrics.read_hits, 22_920);
    assert_eq!(a.metrics.write_hits, 129_568);

    // Queued-mode host timing (the synchronous run pins
    // total_response_ns = 3_551_149_040; the 7-slot window absorbs most
    // flush waits).
    assert_eq!(a.metrics.total_response_ns, 897_900_880);
    assert_eq!(a.metrics.max_response_ns, 2_081_920);
    assert_eq!(a.metrics.flush_stalls, 57);
    assert_eq!(a.metrics.flush_stall_ns, 116_990_080);
    assert!(
        a.metrics.total_response_ns < 3_551_149_040,
        "the flush window must absorb stall versus the synchronous run"
    );
}
