//! Golden determinism-regression test for the Req-block hot path.
//!
//! The arena/hashing refactor of the per-access bookkeeping must change no
//! simulation output: this test replays fixed seeded `ts_0` slices through
//! two fresh Req-block devices, checks they agree with each other, and pins
//! every counter in `Metrics`, `OpCounters`, and `FtlStats` to a committed
//! golden baseline captured from the pre-refactor (HashMap + linear scan)
//! implementation.
//!
//! If this test fails after a hot-path change, the change altered simulation
//! *semantics*, not just speed — that is a bug (or a deliberate semantic
//! change that must re-capture the baseline and say so in its commit).

use reqblock::core::ReqBlockConfig;
use reqblock::flash::OpCounters;
use reqblock::ftl::FtlStats;
use reqblock::sim::{run_source, CacheSizeMb, PolicyKind, SimConfig, TraceSource};
use reqblock::trace::profiles::ts_0;

/// Snapshot of every integer counter a run reports.
#[derive(Debug, PartialEq)]
struct Golden {
    requests: u64,
    read_reqs: u64,
    write_reqs: u64,
    read_pages: u64,
    write_pages: u64,
    read_hits: u64,
    write_hits: u64,
    evictions: u64,
    evicted_pages: u64,
    clean_dropped_pages: u64,
    pad_read_pages: u64,
    total_response_ns: u128,
    max_response_ns: u64,
    overhead_samples: u64,
    metadata_bytes_sum: u128,
    node_count_sum: u128,
    flash: OpCounters,
    ftl: FtlStats,
}

/// Run the scenario twice from scratch and require bit-identical output
/// before snapshotting it.
fn run_twice(cfg: &SimConfig, source: &TraceSource) -> Golden {
    let a = run_source(cfg, source);
    let b = run_source(cfg, source);
    assert_eq!(a.metrics, b.metrics, "fresh instances must agree exactly");
    assert_eq!(a.flash, b.flash);
    assert_eq!(a.ftl, b.ftl);
    let m = a.metrics;
    Golden {
        requests: m.requests,
        read_reqs: m.read_reqs,
        write_reqs: m.write_reqs,
        read_pages: m.read_pages,
        write_pages: m.write_pages,
        read_hits: m.read_hits,
        write_hits: m.write_hits,
        evictions: m.evictions,
        evicted_pages: m.evicted_pages,
        clean_dropped_pages: m.clean_dropped_pages,
        pad_read_pages: m.pad_read_pages,
        total_response_ns: m.total_response_ns,
        max_response_ns: m.max_response_ns,
        overhead_samples: m.overhead_samples,
        metadata_bytes_sum: m.metadata_bytes_sum,
        node_count_sum: m.node_count_sum,
        flash: a.flash,
        ftl: a.ftl,
    }
}

/// Paper-scale device: 16 MB cache on the Table 1 SSD. At trace scale 0.05
/// the working set overflows the cache, so evictions, downgraded-block
/// merging, and flash programs all fire.
#[test]
fn reqblock_golden_paper_device() {
    let cfg = SimConfig::paper(CacheSizeMb::Mb16, PolicyKind::ReqBlock(ReqBlockConfig::paper()));
    let source = TraceSource::Synthetic(ts_0().scaled(0.05));
    let got = run_twice(&cfg, &source);
    let want = Golden {
        requests: 90_086,
        read_reqs: 15_887,
        write_reqs: 74_199,
        read_pages: 35_692,
        write_pages: 148_515,
        read_hits: 22_920,
        write_hits: 129_568,
        evictions: 1_626,
        evicted_pages: 14_863,
        clean_dropped_pages: 0,
        pad_read_pages: 0,
        total_response_ns: 3_551_149_040,
        max_response_ns: 8_204_800,
        overhead_samples: 91,
        metadata_bytes_sum: 5_364_096,
        node_count_sum: 167_628,
        flash: OpCounters {
            user_reads: 12_772,
            user_programs: 14_863,
            gc_reads: 0,
            gc_programs: 0,
            erases: 0,
        },
        ftl: FtlStats {
            gc_runs: 0,
            gc_migrated_pages: 0,
            gc_erased_blocks: 0,
            unmapped_reads: 9_337,
        },
    };
    assert_eq!(got, want, "paper-device golden baseline drifted");
}

/// Pressured device: a 64-page cache on an SSD whose flash array barely
/// fits the trace footprint (14 500 pages into 16 384), so garbage
/// collection runs and the GC counters are pinned as well.
#[test]
fn reqblock_golden_pressured_device_with_gc() {
    let mut ssd = reqblock::flash::SsdConfig::paper();
    ssd.channels = 2;
    ssd.chips_per_channel = 1;
    // 2 chips x 128 blocks x 64 pages = 16 384 pages of 4 KB.
    ssd.capacity_bytes = 16_384 * ssd.page_size;
    let cfg = SimConfig {
        ssd,
        cache_pages: 64,
        policy: PolicyKind::ReqBlock(ReqBlockConfig::paper()),
        overhead_sample_every: 1_000,
        sampling: reqblock::sim::SampleInterval::Off,
        fault: reqblock::flash::FaultConfig::default(),
        submit: reqblock::sim::SubmitMode::Synchronous,
        attr: None,
    };
    let source = TraceSource::Synthetic(ts_0().scaled(0.01));
    let got = run_twice(&cfg, &source);
    assert!(got.ftl.gc_runs > 0, "pressured device must garbage-collect");
    let want = Golden {
        requests: 18_017,
        read_reqs: 3_153,
        write_reqs: 14_864,
        read_pages: 7_006,
        write_pages: 29_517,
        read_hits: 1_285,
        write_hits: 7_871,
        evictions: 10_998,
        evicted_pages: 21_583,
        clean_dropped_pages: 0,
        pad_read_pages: 0,
        total_response_ns: 27_695_411_886,
        max_response_ns: 55_819_200,
        overhead_samples: 19,
        metadata_bytes_sum: 20_224,
        node_count_sum: 632,
        flash: OpCounters {
            user_reads: 5_721,
            user_programs: 21_583,
            gc_reads: 0,
            gc_programs: 0,
            erases: 108,
        },
        ftl: FtlStats {
            gc_runs: 108,
            gc_migrated_pages: 0,
            gc_erased_blocks: 108,
            unmapped_reads: 1_887,
        },
    };
    assert_eq!(got, want, "pressured-device golden baseline drifted");
}
