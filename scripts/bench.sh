#!/usr/bin/env bash
# Hot-path regression gates: build release, replay the hotpath bench, and
# compare requests/sec per policy against the committed BENCH_hotpath.json.
#
#   gate 1 (tolerance 20%): no-op-recorder requests/sec vs the committed
#           "obs" baseline — catches genuine hot-path regressions.
#   gate 2 (tolerance 2%):  same comparison, tight — catches the
#           observability layer growing a cost on the disabled path. The
#           2% bar is below the noise floor of a busy machine, so this
#           gate retries (keeping the best per policy across attempts)
#           and MUST be run on an otherwise idle box to be meaningful.
#
# Usage: scripts/bench.sh [--scale S] [--repeats N] [--attempts N]
#        NOOP_TOLERANCE=0.02 REGRESSION_TOLERANCE=0.20 scripts/bench.sh
#
# Numbers are wall-clock on whatever machine runs this; the committed
# baseline was taken on a single-vCPU container.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE=0.25
REPEATS=5
ATTEMPTS=3
while [[ $# -gt 0 ]]; do
    case "$1" in
        --scale) SCALE="$2"; shift 2 ;;
        --repeats) REPEATS="$2"; shift 2 ;;
        --attempts) ATTEMPTS="$2"; shift 2 ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

echo "== building release bench =="
cargo build --release -p reqblock-bench --bin hotpath

OUTS=()
for ((i = 1; i <= ATTEMPTS; i++)); do
    OUT=$(mktemp /tmp/hotpath.XXXXXX.json)
    OUTS+=("$OUT")
    echo "== replaying ts_0 x$SCALE ($REPEATS repeats per policy, attempt $i/$ATTEMPTS) =="
    ./target/release/hotpath --scale "$SCALE" --repeats "$REPEATS" --out "$OUT"
done
trap 'rm -f "${OUTS[@]}"' EXIT

echo "== comparing against committed BENCH_hotpath.json =="
python3 - "${OUTS[@]}" <<'PY'
import json
import os
import sys

# Gate 1: real hot-path regressions. Gate 2: the disabled observability
# layer must stay (near-)free; 2% is the acceptance bar from the obs PR.
REGRESSION_TOL = float(os.environ.get("REGRESSION_TOLERANCE", "0.20"))
NOOP_TOL = float(os.environ.get("NOOP_TOLERANCE", "0.02"))

# Best req/s per policy across all attempts: the minimum over repeats and
# attempts is the least-noisy estimate a shared machine can give.
current = {}
overhead = {}
for path in sys.argv[1:]:
    with open(path) as f:
        run = json.load(f)
    for p in run["policies"]:
        current[p["name"]] = max(current.get(p["name"], 0.0), p["requests_per_sec"])
    for o in run.get("recording_overhead_pct", []):
        overhead.setdefault(o["name"], []).append(o["pct"])

with open("BENCH_hotpath.json") as f:
    committed = {
        p["name"]: p["requests_per_sec"]
        for p in json.load(f)["obs"]["policies"]
    }

failed = False
for name, base in sorted(committed.items()):
    now = current.get(name)
    if now is None:
        print(f"FAIL {name}: missing from bench output")
        failed = True
        continue
    ratio = now / base
    if ratio < 1.0 - REGRESSION_TOL:
        verdict = f"FAIL (>{REGRESSION_TOL:.0%} hot-path regression)"
        failed = True
    elif ratio < 1.0 - NOOP_TOL:
        verdict = f"FAIL (no-op recorder overhead >{NOOP_TOL:.0%} vs committed baseline)"
        failed = True
    else:
        verdict = "ok"
    pcts = overhead.get(name, [])
    rec = f", recording overhead {min(pcts):+.1f}%..{max(pcts):+.1f}%" if pcts else ""
    print(f"{name}: {now:,.0f} req/s vs committed {base:,.0f} "
          f"({ratio:.2f}x) {verdict}{rec}")

sys.exit(1 if failed else 0)
PY
echo "== hot path within tolerance =="
