#!/usr/bin/env bash
# Hot-path regression gate: build release, replay the hotpath bench, and
# compare requests/sec per policy against the committed BENCH_hotpath.json
# ("after" numbers). Fails loudly on a >20% regression.
#
# Usage: scripts/bench.sh [--scale S] [--repeats N]
#
# Numbers are wall-clock on whatever machine runs this, so run it on an
# otherwise idle box; the committed baseline was taken on an idle
# single-vCPU container.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE=0.25
REPEATS=5
while [[ $# -gt 0 ]]; do
    case "$1" in
        --scale) SCALE="$2"; shift 2 ;;
        --repeats) REPEATS="$2"; shift 2 ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

echo "== building release bench =="
cargo build --release -p reqblock-bench --bin hotpath

OUT=$(mktemp /tmp/hotpath.XXXXXX.json)
trap 'rm -f "$OUT"' EXIT

echo "== replaying ts_0 x$SCALE ($REPEATS repeats per policy) =="
./target/release/hotpath --scale "$SCALE" --repeats "$REPEATS" --out "$OUT"

echo "== comparing against committed BENCH_hotpath.json =="
python3 - "$OUT" <<'PY'
import json
import sys

TOLERANCE = 0.20  # fail on >20% regression vs the committed numbers

with open(sys.argv[1]) as f:
    current = {p["name"]: p["requests_per_sec"] for p in json.load(f)["policies"]}
with open("BENCH_hotpath.json") as f:
    committed = {
        p["name"]: p["requests_per_sec"]
        for p in json.load(f)["after"]["policies"]
    }

failed = False
for name, base in sorted(committed.items()):
    now = current.get(name)
    if now is None:
        print(f"FAIL {name}: missing from bench output")
        failed = True
        continue
    ratio = now / base
    verdict = "ok"
    if ratio < 1.0 - TOLERANCE:
        verdict = f"FAIL (>{TOLERANCE:.0%} regression)"
        failed = True
    print(f"{name}: {now:,.0f} req/s vs committed {base:,.0f} "
          f"({ratio:.2f}x) {verdict}")

sys.exit(1 if failed else 0)
PY
echo "== hot path within tolerance =="
