#!/usr/bin/env bash
# Performance regression gates: build release, replay the hotpath and sweep
# benches, and compare against the committed BENCH_hotpath.json /
# BENCH_sweep.json baselines. All gates read median-of-repeats (robust to a
# single noisy repeat); best-of is still reported in the JSON.
#
# Hotpath gates (per policy, median req/s vs the committed baseline):
#   gate 1 (tolerance 20%): catches genuine hot-path regressions.
#   gate 2 (tolerance 2%):  tight bar for the disabled observability layer.
#           2% is below the noise floor of a busy machine, so this gate
#           retries (keeping the best median per policy across attempts)
#           and MUST be run on an otherwise idle box to be meaningful.
#   gate 3 (tolerance 5%):  the refactored synchronous path vs the
#           host_refactor section — the host/engine/device layering must
#           not tax the paper-faithful one-at-a-time path.
#   gate 4 (tolerance 15%): queued qd8 vs the synchronous path of the SAME
#           run — the timer-wheel event core must keep out-of-order
#           completion within 15% of one-at-a-time submission. The ratio is
#           taken within each attempt (both sides see the same machine
#           conditions) and the best attempt's ratio is gated, so a slow
#           attempt cannot fail the gate on noise alone. The committed
#           `engine` baselines are reported alongside for context.
#   gate 5 (tolerance 2%):  attribution configured under the no-op
#           recorder (attr_noop) vs the plain no-op path of the SAME
#           attempt — the engine's double gate must monomorphize the whole
#           attribution layer away when the recorder is disabled. Like the
#           queued gate, the within-attempt ratio is gated and the best
#           attempt wins, so no committed baseline is needed.
#
# Sweep gate (tolerance 5%): the `repro all` pool, cached + parallel, must
#   not get slower than the committed median wall-clock. Like the 2% gate,
#   5% sits below a shared machine's noise floor, so the sweep runs
#   multiple attempts and gates on the best median per mode. The sweep
#   bench also asserts all three modes emit byte-identical artifacts, so
#   this doubles as an end-to-end determinism check.
#
# Fleet throughput (informational, NO gate): a small `repro fleet` grid is
#   timed and its devices-simulated-per-second line is echoed, so fleet
#   orchestration cost is visible in bench logs without a machine-sensitive
#   pass/fail bar. --no-fleet skips it.
#
# Usage: scripts/bench.sh [--scale S] [--repeats N] [--attempts N]
#                         [--sweep-scale S] [--sweep-repeats N]
#                         [--sweep-attempts N] [--no-sweep] [--no-fleet]
#        NOOP_TOLERANCE=0.02 REGRESSION_TOLERANCE=0.20 SYNC_TOLERANCE=0.05 \
#            QUEUED_TOLERANCE=0.15 ATTR_TOLERANCE=0.02 SWEEP_TOLERANCE=0.05 \
#            scripts/bench.sh
#
# Numbers are wall-clock on whatever machine runs this; the committed
# baselines were taken on a single-vCPU container.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE=0.25
REPEATS=5
ATTEMPTS=3
SWEEP_SCALE=0.02
SWEEP_REPEATS=3
SWEEP_ATTEMPTS=2
RUN_SWEEP=1
RUN_FLEET=1
while [[ $# -gt 0 ]]; do
    case "$1" in
        --scale) SCALE="$2"; shift 2 ;;
        --repeats) REPEATS="$2"; shift 2 ;;
        --attempts) ATTEMPTS="$2"; shift 2 ;;
        --sweep-scale) SWEEP_SCALE="$2"; shift 2 ;;
        --sweep-repeats) SWEEP_REPEATS="$2"; shift 2 ;;
        --sweep-attempts) SWEEP_ATTEMPTS="$2"; shift 2 ;;
        --no-sweep) RUN_SWEEP=0; shift ;;
        --no-fleet) RUN_FLEET=0; shift ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

echo "== building release benches =="
cargo build --release -p reqblock-bench --bin hotpath --bin sweep

OUTS=()
for ((i = 1; i <= ATTEMPTS; i++)); do
    OUT=$(mktemp /tmp/hotpath.XXXXXX.json)
    OUTS+=("$OUT")
    echo "== replaying ts_0 x$SCALE ($REPEATS repeats per policy, attempt $i/$ATTEMPTS) =="
    ./target/release/hotpath --scale "$SCALE" --repeats "$REPEATS" --out "$OUT"
done
SWEEP_OUTS=()
FLEET_TMP=""
trap 'rm -f "${OUTS[@]}" "${SWEEP_OUTS[@]}"; [[ -n "$FLEET_TMP" ]] && rm -rf "$FLEET_TMP"' EXIT

echo "== comparing against committed BENCH_hotpath.json (median gate) =="
python3 - "${OUTS[@]}" <<'PY'
import json
import os
import sys

# Gate 1: real hot-path regressions. Gate 2: the disabled observability
# layer must stay (near-)free; 2% is the acceptance bar from the obs PR.
# Gate 3: the refactored synchronous path vs the host_refactor section;
# 5% is the acceptance bar from the host/engine/device layering PR.
# Gate 4: queued qd8 vs the synchronous path of the same run; 15% is the
# acceptance bar from the timer-wheel event-core PR.
# Gate 5: attribution configured under a disabled recorder vs the plain
# no-op path of the same attempt; 2% is the acceptance bar from the tail-
# forensics PR (the double gate must compile the layer away entirely).
REGRESSION_TOL = float(os.environ.get("REGRESSION_TOLERANCE", "0.20"))
NOOP_TOL = float(os.environ.get("NOOP_TOLERANCE", "0.02"))
SYNC_TOL = float(os.environ.get("SYNC_TOLERANCE", "0.05"))
QUEUED_TOL = float(os.environ.get("QUEUED_TOLERANCE", "0.15"))
ATTR_TOL = float(os.environ.get("ATTR_TOLERANCE", "0.02"))

# Best *median* req/s per policy across all attempts: the median absorbs a
# noisy repeat inside one attempt, the max across attempts absorbs a noisy
# attempt on a shared machine. The queued gate instead keeps the best
# *within-attempt* queued/sync ratio, so both sides of the comparison
# always come from the same attempt.
current = {}
queued = {}
queued_ratio = {}
attr = {}
attr_ratio = {}
overhead = {}
for path in sys.argv[1:]:
    with open(path) as f:
        run = json.load(f)
    sync_this = {}
    for p in run["policies"]:
        med = p.get("median_requests_per_sec", p["requests_per_sec"])
        current[p["name"]] = max(current.get(p["name"], 0.0), med)
        sync_this[p["name"]] = med
    for p in run.get("queued_policies", []):
        med = p.get("median_requests_per_sec", p["requests_per_sec"])
        queued[p["name"]] = max(queued.get(p["name"], 0.0), med)
        if p["name"] in sync_this:
            ratio = med / sync_this[p["name"]]
            queued_ratio[p["name"]] = max(
                queued_ratio.get(p["name"], 0.0), ratio
            )
    for p in run.get("attr_noop_policies", []):
        med = p.get("median_requests_per_sec", p["requests_per_sec"])
        attr[p["name"]] = max(attr.get(p["name"], 0.0), med)
        if p["name"] in sync_this:
            ratio = med / sync_this[p["name"]]
            attr_ratio[p["name"]] = max(attr_ratio.get(p["name"], 0.0), ratio)
    for o in run.get("recording_overhead_pct", []):
        overhead.setdefault(o["name"], []).append(o["pct"])

with open("BENCH_hotpath.json") as f:
    baselines = json.load(f)
committed = {
    p["name"]: p.get("median_requests_per_sec", p["requests_per_sec"])
    for p in baselines["batched"]["policies"]
}
sync_base = {
    p["name"]: p.get("median_requests_per_sec", p["requests_per_sec"])
    for p in baselines["host_refactor"]["policies"]
}
queued_base = {
    p["name"]: p.get("median_requests_per_sec", p["requests_per_sec"])
    for p in baselines["engine"]["queued_policies"]
}

failed = False
for name, base in sorted(committed.items()):
    now = current.get(name)
    if now is None:
        print(f"FAIL {name}: missing from bench output")
        failed = True
        continue
    ratio = now / base
    if ratio < 1.0 - REGRESSION_TOL:
        verdict = f"FAIL (>{REGRESSION_TOL:.0%} hot-path regression)"
        failed = True
    elif ratio < 1.0 - NOOP_TOL:
        verdict = f"FAIL (no-op recorder overhead >{NOOP_TOL:.0%} vs committed baseline)"
        failed = True
    else:
        verdict = "ok"
    pcts = overhead.get(name, [])
    rec = f", recording overhead {min(pcts):+.1f}%..{max(pcts):+.1f}%" if pcts else ""
    print(f"{name}: median {now:,.0f} req/s vs committed {base:,.0f} "
          f"({ratio:.2f}x) {verdict}{rec}")

print("-- sync gate (host/engine/device layering, host_refactor baseline) --")
for name, base in sorted(sync_base.items()):
    now = current.get(name)
    if now is None:
        print(f"FAIL {name}: missing from bench output")
        failed = True
        continue
    ratio = now / base
    if ratio < 1.0 - SYNC_TOL:
        verdict = f"FAIL (>{SYNC_TOL:.0%} synchronous-path regression)"
        failed = True
    else:
        verdict = "ok"
    print(f"{name}: sync median {now:,.0f} req/s vs committed {base:,.0f} "
          f"({ratio:.2f}x) {verdict}")
print("-- queued gate (timer-wheel event core, qd8 vs same-run sync) --")
for name, base in sorted(queued_base.items()):
    now = queued.get(name)
    ratio = queued_ratio.get(name)
    if now is None or ratio is None:
        print(f"FAIL {name}: queued qd8 missing from bench output")
        failed = True
        continue
    if ratio < 1.0 - QUEUED_TOL:
        verdict = f"FAIL (queued qd8 >{QUEUED_TOL:.0%} below synchronous)"
        failed = True
    else:
        verdict = "ok"
    print(f"{name}: queued qd8 median {now:,.0f} req/s, best queued/sync "
          f"{ratio:.2f}x {verdict} (committed engine baseline {base:,.0f})")
print("-- attribution gate (tail forensics, attr-noop vs same-run noop) --")
for name in sorted(current):
    now = attr.get(name)
    ratio = attr_ratio.get(name)
    if now is None or ratio is None:
        print(f"FAIL {name}: attr_noop missing from bench output")
        failed = True
        continue
    if ratio < 1.0 - ATTR_TOL:
        verdict = f"FAIL (disabled attribution costs >{ATTR_TOL:.0%})"
        failed = True
    else:
        verdict = "ok"
    print(f"{name}: attr-noop median {now:,.0f} req/s, best attr/noop "
          f"{ratio:.2f}x {verdict}")

sys.exit(1 if failed else 0)
PY
echo "== hot path within tolerance =="

if [[ "$RUN_SWEEP" == 1 ]]; then
    for ((i = 1; i <= SWEEP_ATTEMPTS; i++)); do
        SWEEP_OUT=$(mktemp /tmp/sweep.XXXXXX.json)
        SWEEP_OUTS+=("$SWEEP_OUT")
        echo "== sweep bench: repro-all pool at scale $SWEEP_SCALE ($SWEEP_REPEATS repeats, attempt $i/$SWEEP_ATTEMPTS) =="
        ./target/release/sweep --scale "$SWEEP_SCALE" --repeats "$SWEEP_REPEATS" --out "$SWEEP_OUT"
    done

    echo "== comparing against committed BENCH_sweep.json (median gate) =="
    python3 - "${SWEEP_OUTS[@]}" <<'PY'
import json
import os
import sys

SWEEP_TOL = float(os.environ.get("SWEEP_TOLERANCE", "0.05"))

# Best median wall-clock per mode across attempts: the median absorbs a
# noisy repeat inside one attempt, the min across attempts absorbs a noisy
# attempt on a shared machine (mirrors the hotpath gate's structure).
now = {}
speedups = []
for path in sys.argv[1:]:
    with open(path) as f:
        run = json.load(f)
    for m in run["modes"]:
        prev = now.get(m["name"])
        now[m["name"]] = min(prev, m["median_s"]) if prev else m["median_s"]
    speedups.append((run["speedup_cache"]["median"], run["speedup_total"]["median"]))
with open("BENCH_sweep.json") as f:
    committed = json.load(f)
base = {m["name"]: m["median_s"] for m in committed["modes"]}

failed = False
# Gate the optimized configurations only; uncached_serial is the reference
# shape and is reported informationally.
for name in ("cached_serial", "cached_parallel"):
    ratio = now[name] / base[name]
    if ratio > 1.0 + SWEEP_TOL:
        verdict = f"FAIL (>{SWEEP_TOL:.0%} median sweep regression)"
        failed = True
    else:
        verdict = "ok"
    print(f"{name}: median {now[name]:.2f}s vs committed {base[name]:.2f}s "
          f"({ratio:.2f}x) {verdict}")
print(f"uncached_serial: median {now['uncached_serial']:.2f}s "
      f"(committed {base['uncached_serial']:.2f}s)")
for cache_s, total_s in speedups:
    print(f"speedup over uncached: cache {cache_s:.2f}x, total {total_s:.2f}x (median)")

sys.exit(1 if failed else 0)
PY
    echo "== sweep within tolerance =="
else
    echo "== sweep bench skipped (--no-sweep) =="
fi

if [[ "$RUN_FLEET" == 1 ]]; then
    echo "== fleet throughput (informational, no gate) =="
    cargo build --release -p reqblock-experiments --bin repro
    FLEET_TMP=$(mktemp -d /tmp/fleet.XXXXXX)
    ./target/release/repro --scale 0.01 --out "$FLEET_TMP" fleet | grep "fleet throughput"
else
    echo "== fleet throughput skipped (--no-fleet) =="
fi
