#!/usr/bin/env bash
# Full pre-merge gate: release build, every test (including the Perfetto
# trace-JSON smoke test, tests/trace_smoke.rs, and an explicit release
# run of the small-fleet golden, tests/fleet.rs), clippy with warnings
# denied, and the benchmark gates from scripts/bench.sh — the hot-path
# median gates (the <2% no-op recorder overhead check and the <2%
# attribution-compiled-out check) plus the small-scale sweep gate
# (`repro all` pool median wall-clock, >5% median regression fails).
#
# Usage: scripts/check.sh [--no-bench]
#
# The bench step measures wall-clock and needs an otherwise idle machine;
# --no-bench skips it for correctness-only runs (CI boxes under load).
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_BENCH=1
while [[ $# -gt 0 ]]; do
    case "$1" in
        --no-bench) RUN_BENCH=0; shift ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== small-fleet golden (tests/fleet.rs, release) =="
cargo test -q --release --test fleet

echo "== cargo clippy (warnings denied) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

if [[ "$RUN_BENCH" == 1 ]]; then
    scripts/bench.sh
else
    echo "== bench gates skipped (--no-bench) =="
fi

echo "== all checks passed =="
