#!/usr/bin/env bash
# CPU profile of a release binary with gprofng (the profiler this container
# ships; `perf` is not installed). Builds the requested bench/repro binary
# with [profile.bench]-style debug info (the release profile already keeps
# debuginfo via Cargo.toml), records an experiment directory, and prints the
# hottest functions plus the callers/callees of the top symbol.
#
# Usage: scripts/profile.sh [-o DIR.er] [-n LINES] <binary> [args...]
#
#   scripts/profile.sh hotpath --scale 0.25 --repeats 2
#   scripts/profile.sh repro --threads 1 load
#   scripts/profile.sh -o /tmp/wheel.er -n 40 hotpath --scale 0.5
#
# <binary> is a target name in this workspace (hotpath, sweep, repro) or a
# path to an executable. The experiment directory is kept so you can dig
# further, e.g.:
#   gprofng display text -functions /tmp/profile.er
#   gprofng display text -lines /tmp/profile.er
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v gprofng >/dev/null 2>&1; then
    echo "profile.sh: gprofng not found on PATH." >&2
    echo "This wrapper records with gprofng (GNU binutils >= 2.39);" >&2
    echo "install binutils with gprofng enabled, or profile manually." >&2
    exit 1
fi

OUT=""
LINES=25
while [[ $# -gt 0 ]]; do
    case "$1" in
        -o) OUT="$2"; shift 2 ;;
        -n) LINES="$2"; shift 2 ;;
        -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
        *) break ;;
    esac
done
[[ $# -ge 1 ]] || { echo "usage: scripts/profile.sh [-o DIR.er] [-n LINES] <binary> [args...]" >&2; exit 2; }
BIN="$1"
shift

# Resolve a bare target name to the workspace's release binary, building it
# on demand (release keeps debuginfo, so symbols resolve).
if [[ ! -x "$BIN" || "$BIN" != */* ]]; then
    case "$BIN" in
        hotpath|sweep) cargo build --release -p reqblock-bench --bin "$BIN" ;;
        repro) cargo build --release -p reqblock-experiments --bin repro ;;
        *) echo "profile.sh: unknown target '$BIN' (expected hotpath, sweep, repro, or a path)" >&2; exit 2 ;;
    esac
    BIN="./target/release/$BIN"
fi

if [[ -z "$OUT" ]]; then
    OUT=$(mktemp -u /tmp/profile.XXXXXX.er)
fi
rm -rf "$OUT"

echo "== recording $BIN $* -> $OUT =="
gprofng collect app -o "$OUT" "$BIN" "$@"

echo "== hottest functions (exclusive CPU, top $LINES) =="
gprofng display text -limit "$LINES" -functions "$OUT"

# Caller/callee panels for the hottest symbols so the first report already
# answers "who calls it".
echo "== callers / callees of the top symbols =="
gprofng display text -limit 5 -callers-callees "$OUT" || true

echo "== experiment kept at $OUT =="
